"""Setuptools shim: enables legacy editable installs in offline
environments that lack the `wheel` package (PEP 660 builds need it)."""

from setuptools import setup

setup()

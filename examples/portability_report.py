#!/usr/bin/env python
"""Portability report: the Section 4 kernel optimizations on both devices.

Exercises the executable OpenCL device model: vertical/horizontal fusion
(with the 64 KB RMA gate), indirect-access elimination (with a real
gather-map correctness check) and the (p, m) loop collapse (with the
real index bijection).

    python examples/portability_report.py
"""

import numpy as np

from repro.ocl import (
    Device,
    Kernel,
    NDRange,
    apply_gather_map,
    build_gather_map,
    collapse_pm_loop,
    eliminate_indirect_accesses,
    horizontal_fusion,
    vertical_fusion,
)
from repro.runtime import HPC1_SUNWAY, HPC2_AMD
from repro.utils.reports import TableFormatter


def main() -> None:
    devices = {
        "HPC#1 core group": Device(HPC1_SUNWAY.accelerator),
        "HPC#2 MI50 GPU": Device(HPC2_AMD.accelerator),
    }

    # --- Kernel fusion with wide dependence (Section 4.2) -------------
    producer = Kernel("spline_producer", flops_per_item=5e5,
                      bytes_written_per_item=48)
    consumer = Kernel("interp_consumer", flops_per_item=4e4,
                      bytes_read_per_item=96)
    p_range, c_range = NDRange(64, 49), NDRange(256, 200)

    table = TableFormatter(
        ["device", "mode", "intermediate", "applied", "speedup", "why"],
        title="Fusing kernels with wide dependence",
    )
    for name, dev in devices.items():
        for nbytes, label in ((28 * 1024, "28 KB"), (498 * 1024, "498 KB")):
            v = vertical_fusion(dev, producer, p_range, consumer, c_range, nbytes)
            table.add_row([name, "vertical", label, v.applied,
                           f"{v.speedup:.2f}x", v.reason[:46]])
        h = horizontal_fusion(dev, producer, p_range, consumer, c_range,
                              498 * 1024, group_size=8)
        table.add_row([name, "horizontal", "498 KB", h.applied,
                       f"{h.speedup:.2f}x", h.reason[:46]])
    print(table.render())

    # --- Indirect-access elimination (Section 4.3) --------------------
    rng = np.random.default_rng(0)
    coord_center = rng.normal(size=(3006, 3))          # per local atom id
    atom_list = rng.permutation(3006)                  # global -> local
    permuted = build_gather_map(coord_center, atom_list)
    i_center = rng.integers(0, 3006, size=10)
    assert np.array_equal(
        apply_gather_map(permuted, i_center), coord_center[atom_list[i_center]]
    )
    print("\nIndirect-access elimination "
          "(coord_center[atom_list[i]] -> permuted[i]): verified exact")

    init = Kernel("grid_partition_init", flops_per_item=8000,
                  bytes_read_per_item=48, indirect_accesses_per_item=4)
    direct = eliminate_indirect_accesses(init)
    nd = NDRange(1024, 200)
    for name, dev in devices.items():
        t0 = dev.estimate(init, nd).total_time
        t1 = dev.estimate(direct, nd).total_time
        print(f"  {name}: init phase {t0 * 1e3:.2f} ms -> {t1 * 1e3:.2f} ms "
              f"({t0 / t1:.1f}x)")

    # --- Fine-grained parallelization (Section 4.4) -------------------
    table2 = collapse_pm_loop(9)
    print(f"\nLoop collapse: (p, m) nest with p_max=9 exposes "
          f"{len(table2)} parallel iterations instead of 10")
    print(f"  first entries: {[tuple(r) for r in table2[:5]]}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Exascale scaling study on the H(C2H4)nH polyethylene family.

Models the paper's strong/weak scaling (Figs. 15-16) for a chain of
30 002 atoms on both machine presets, printing per-phase CPSCF-cycle
times, parallel efficiencies and the communication scheme's share.

    python examples/polyethylene_scaling.py
"""

from repro.atoms import polyethylene, polyethylene_units_for_atoms
from repro.config import get_settings
from repro.core import OptimizationFlags, PerturbationSimulator
from repro.runtime import HPC1_SUNWAY, HPC2_AMD
from repro.utils.reports import TableFormatter, format_bytes, format_seconds

N_ATOMS = 30002


def main() -> None:
    chain = polyethylene(polyethylene_units_for_atoms(N_ATOMS))
    print(f"System: {chain} ({chain.n_electrons:,} electrons)")
    sim = PerturbationSimulator(chain, get_settings("light"))
    print(f"Workload: {sim.workload.n_grid_points:,} grid points, "
          f"{sim.workload.n_basis:,} basis functions, "
          f"{len(sim.batches):,} batches")

    for machine, ranks_list in (
        (HPC1_SUNWAY, (2500, 5000, 10000)),
        (HPC2_AMD, (1024, 2048, 4096, 8192)),
    ):
        table = TableFormatter(
            ["ranks", "DM", "Sumup", "Rho", "H", "Comm", "cycle", "speedup",
             "mem/rank"],
            title=f"\nStrong scaling on {machine.name} (optimized)",
        )
        base = None
        for ranks in ranks_list:
            rep = sim.run_model(machine, ranks)
            if base is None:
                base = (ranks, rep.cycle_seconds)
            speedup = base[1] / rep.cycle_seconds
            table.add_row([
                ranks,
                *[format_seconds(rep.per_cycle_seconds[k])
                  for k in ("DM", "Sumup", "Rho", "H", "Comm")],
                format_seconds(rep.cycle_seconds),
                f"{speedup:.2f}x",
                format_bytes(rep.memory_per_rank_bytes),
            ])
        print(table.render())

    # Before/after the paper's innovations at one representative scale.
    print("\nImpact of the innovations (HPC#2, 2048 ranks):")
    opt = sim.run_model(HPC2_AMD, 2048)
    base = sim.run_model(HPC2_AMD, 2048, OptimizationFlags.none())
    for phase in ("DM", "Sumup", "Rho", "H", "Comm"):
        t0, t1 = base.per_cycle_seconds[phase], opt.per_cycle_seconds[phase]
        print(f"  {phase:6s} {format_seconds(t0):>10s} -> {format_seconds(t1):>10s}"
              f"   ({t0 / t1:5.1f}x)")
    print(f"  TOTAL  {format_seconds(base.cycle_seconds):>10s} -> "
          f"{format_seconds(opt.cycle_seconds):>10s}   "
          f"({base.cycle_seconds / opt.cycle_seconds:5.1f}x)")
    print(f"  memory/rank: {format_bytes(base.memory_per_rank_bytes)} -> "
          f"{format_bytes(opt.memory_per_rank_bytes)}")


if __name__ == "__main__":
    main()

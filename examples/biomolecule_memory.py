#!/usr/bin/env python
"""Biomolecular memory study: why locality mapping enables large systems.

Reproduces the Section 3.1 story on the RBD-like 3 006-atom protein:
under the existing least-loaded mapping every rank replicates the global
sparse Hamiltonian; under Algorithm 1 each rank holds a small dense
local block.  Also writes/reads the geometry in FHI-aims format.

    python examples/biomolecule_memory.py
"""

import tempfile
from pathlib import Path

from repro.atoms import hiv_ligand, rbd_like_protein, read_geometry_in, write_geometry_in
from repro.config import get_settings
from repro.core.workload import build_workload, synthetic_batches
from repro.mapping import (
    HamiltonianMemoryModel,
    load_balancing_mapping,
    locality_enhancing_mapping,
    spline_counts_per_rank,
)
from repro.utils.reports import TableFormatter, format_bytes


def main() -> None:
    protein = rbd_like_protein()
    ligand = hiv_ligand()
    print(f"Systems: {protein} and {ligand}")

    # Round-trip the protein through the artifact's geometry format.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "geometry.in"
        write_geometry_in(protein, path)
        back = read_geometry_in(path)
        print(f"geometry.in round-trip: {back.n_atoms} atoms, "
              f"{path.stat().st_size // 1024} KB on disk")

    workload = build_workload(protein, get_settings("light"))
    batches = synthetic_batches(workload)
    print(f"\nGrid: {workload.n_grid_points:,} points in {len(batches):,} batches; "
          f"{workload.n_basis:,} basis functions")

    model = HamiltonianMemoryModel(protein)
    csr = model.global_sparse_csr_bytes()
    print(f"Global sparse Hamiltonian (CSR): {format_bytes(csr)} "
          f"(replicated on every rank under the existing mapping)")

    table = TableFormatter(
        ["ranks", "existing (per rank)", "locality avg", "locality max",
         "splines existing", "splines locality"],
        title="\nPer-rank footprint: existing vs locality-enhancing mapping",
    )
    for ranks in (64, 128, 256, 512):
        a_ex = load_balancing_mapping(batches, ranks)
        a_lo = locality_enhancing_mapping(batches, ranks)
        dense = model.dense_local_bytes(a_lo, batches)
        sp_ex = spline_counts_per_rank(a_ex, batches, protein)
        sp_lo = spline_counts_per_rank(a_lo, batches, protein)
        table.add_row([
            ranks,
            format_bytes(csr),
            format_bytes(float(dense.mean())),
            format_bytes(float(dense.max())),
            f"{sp_ex.mean():.0f}",
            f"{sp_lo.mean():.0f}",
        ])
    print(table.render())
    print("\nThe dense-local footprint shrinks with rank count while the "
          "replicated CSR does not — the scaling obstacle of Fig. 3.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: all-electron DFPT polarizability of a water molecule.

Runs the full pipeline on real physics — ground-state SCF, the coupled-
perturbed (CPSCF) response cycle of Fig. 1, and the polarizability of
Eq. (13) — then validates against a finite-field reference.

    python examples/quickstart.py
"""

import numpy as np

from repro.atoms import water
from repro.config import get_settings
from repro.constants import POLARIZABILITY_AU_IN_A3
from repro.core import PerturbationSimulator
from repro.dfpt import finite_difference_polarizability, isotropic_polarizability
from repro.utils.reports import format_seconds


def main() -> None:
    settings = get_settings("minimal")  # laptop-friendly grids
    molecule = water()
    print(f"System: {molecule}")
    print(f"Electrons: {molecule.n_electrons}, basis functions: "
          f"{molecule.n_basis_functions()}")

    sim = PerturbationSimulator(molecule, settings)
    result = sim.run_physics()
    gs = result.ground_state

    print(f"\nGround state converged in {gs.iterations} SCF iterations")
    print(f"  total energy : {gs.total_energy:.6f} Ha")
    print(f"  HOMO / LUMO  : {gs.eigenvalues[gs.n_occupied - 1]:.4f} / "
          f"{gs.eigenvalues[gs.n_occupied]:.4f} Ha")
    print(f"  dipole |mu|  : {np.linalg.norm(gs.dipole_moment()):.4f} e*Bohr")

    alpha = result.polarizability
    iso = isotropic_polarizability(alpha)
    print("\nDFPT polarizability tensor (a.u.):")
    for row in alpha:
        print("   " + "  ".join(f"{v:9.4f}" for v in row))
    print(f"  isotropic: {iso:.4f} a.u. = {iso * POLARIZABILITY_AU_IN_A3:.4f} A^3 "
          "(experiment: ~1.45 A^3)")

    print("\nValidating against finite-field SCF (6 extra SCF runs)...")
    alpha_fd = finite_difference_polarizability(molecule, settings)
    err = np.abs(alpha - alpha_fd).max()
    print(f"  max |alpha_DFPT - alpha_FD| = {err:.2e} a.u.  "
          f"({'OK' if err < 1e-3 else 'MISMATCH'})")

    print("\nPhase timings (measured):")
    for phase, seconds in result.phase_seconds.items():
        print(f"  {phase:12s} {format_seconds(seconds)}")


if __name__ == "__main__":
    main()

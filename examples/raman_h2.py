#!/usr/bin/env python
"""Raman spectrum of H2 — the paper lineage's target application.

The SC'21 predecessor of the reproduced paper accelerated all-electron
*Raman* simulations; this example runs the whole chain on real physics:
finite-difference normal modes on the SCF engine, then DFPT
polarizability derivatives along each mode (Eq. 13 differentiated).

    python examples/raman_h2.py        (~15 s)
"""

import numpy as np

from repro.atoms import hydrogen_molecule
from repro.config import get_settings
from repro.dfpt.raman import raman_spectrum
from repro.dfpt.vibrations import normal_modes

#: The minimal model's own equilibrium bond length (Bohr).
MODEL_BOND = 1.5449


def main() -> None:
    settings = get_settings("minimal")
    h2 = hydrogen_molecule(MODEL_BOND)
    print(f"System: {h2} at the model equilibrium ({MODEL_BOND} Bohr)")

    print("Computing the finite-difference Hessian (13 SCF runs)...")
    modes = normal_modes(h2, settings)
    vib = modes.vibrational_frequencies(n_rigid=5)
    print(f"  stretch frequency: {vib[0]:.0f} cm^-1 (experiment: 4161)")

    print("Differentiating DFPT polarizabilities along the mode...")
    spectrum = raman_spectrum(h2, modes, settings, n_rigid=5)
    for freq, act in zip(spectrum.frequencies_cm1, spectrum.activities):
        bar = "#" * min(60, int(act / spectrum.activities.max() * 60))
        print(f"  {freq:8.0f} cm^-1  activity {act:10.2f}  {bar}")
    print("\nThe homonuclear stretch is Raman active (and IR silent), "
          "as symmetry demands.")


if __name__ == "__main__":
    main()

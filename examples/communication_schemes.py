#!/usr/bin/env python
"""Packed hierarchical collectives, executed on real data (Section 3.2).

Runs all three reduction schemes over actual per-rank rho_multipole
partial arrays on a simulated 64-rank HPC#2 cluster, verifies the
results agree bit-for-bit (packing) / to round-off (hierarchy), and
prints the modeled times at paper scale.

    python examples/communication_schemes.py
"""

import numpy as np

from repro.comm import (
    BaselineRowwiseAllreduce,
    PackedAllreduce,
    PackedHierarchicalAllreduce,
)
from repro.experiments.fig10_allreduce import rho_multipole_row_bytes
from repro.runtime import HPC1_SUNWAY, HPC2_AMD, SimCluster
from repro.utils.reports import TableFormatter, format_seconds


def main() -> None:
    rng = np.random.default_rng(42)
    cluster = SimCluster(HPC2_AMD, 64)
    n_rows, row_len = 300, 49
    data = [rng.normal(size=(n_rows, row_len)) for _ in range(64)]
    reference = np.sum(data, axis=0)

    print("Executable check on a 64-rank simulated HPC#2 cluster "
          f"({n_rows} rho_multipole rows):")
    for scheme in (
        BaselineRowwiseAllreduce(),
        PackedAllreduce(rows_cap=64),
        PackedHierarchicalAllreduce(rows_cap=64),
    ):
        out, rep = scheme.reduce(cluster, data)
        err = np.abs(out - reference).max()
        print(f"  {rep.scheme:22s} {rep.n_collectives:4d} collectives, "
              f"max error {err:.2e}, modeled "
              f"{format_seconds(rep.communication_time + rep.local_update_time)}")

    row_bytes = rho_multipole_row_bytes()
    print(f"\nModeled at paper scale (row = {row_bytes / 1024:.1f} KB, "
          "30 002 atoms):")
    for machine in (HPC1_SUNWAY, HPC2_AMD):
        table = TableFormatter(
            ["ranks", "baseline", "packed", "hierarchical"],
            title=f"\n{machine.name}",
        )
        for ranks in (256, 1024, 4096, 8192):
            b = BaselineRowwiseAllreduce().estimate(machine, ranks, 30002, row_bytes)
            p = PackedAllreduce().estimate(machine, ranks, 30002, row_bytes)
            cells = [ranks, format_seconds(b.total_time),
                     f"{format_seconds(p.total_time)} ({b.total_time / p.total_time:.0f}x)"]
            if machine.shm_windows:
                h = PackedHierarchicalAllreduce().estimate(
                    machine, ranks, 30002, row_bytes
                )
                cells.append(
                    f"{format_seconds(h.total_time)} ({b.total_time / h.total_time:.0f}x)"
                )
            else:
                cells.append("n/a (no SHM)")
            table.add_row(cells)
        print(table.render())


if __name__ == "__main__":
    main()

"""Test harnesses shipped with the library.

:mod:`repro.testing.chaos` runs the full physics + communication
pipeline under a seeded fault plan and checks that recovery is
bit-exact against the fault-free reference.
:mod:`repro.testing.fixtures` holds the machine/cluster factories the
pytest and benchmark conftests wrap as fixtures.
"""

from repro.testing.chaos import ChaosReport, run_chaos
from repro.testing.fixtures import make_cluster, make_machine

__all__ = ["ChaosReport", "make_cluster", "make_machine", "run_chaos"]

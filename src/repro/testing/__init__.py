"""Test harnesses shipped with the library.

:mod:`repro.testing.chaos` runs the full physics + communication
pipeline under a seeded fault plan and checks that recovery is
bit-exact against the fault-free reference.
"""

from repro.testing.chaos import ChaosReport, run_chaos

__all__ = ["ChaosReport", "run_chaos"]

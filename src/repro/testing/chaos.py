"""Chaos harness: the whole pipeline under a seeded fault plan.

One :func:`run_chaos` call plays the same scenario twice:

1. **Fault-free reference** — ground-state SCF + CPSCF polarizability,
   plus the serial (rank-ascending) sum of the per-rank
   ``rho_multipole`` partials.
2. **Faulted run** — the same physics with a
   :class:`~repro.runtime.faults.CycleFaultInjector` forcing
   checkpoint-restarts of SCF/CPSCF cycles, and the same reduction
   through :class:`~repro.comm.resilient.ResilientReduction` on a
   cluster carrying the :class:`~repro.runtime.faults.FaultPlan`
   (rank failures, corrupted/dropped collectives, stragglers,
   persistent faults that force scheme degradation).

The :class:`ChaosReport` exposes what the chaos suite asserts: the
faulted polarizability is **bit-exact** with the reference, the
reduction completed (bit-exact when it ended on a flat scheme), and
:class:`~repro.runtime.simmpi.CommStats` shows the retries and the
degradation path taken.

Everything is deterministic in ``seed``: same seed, same faults, same
recovery, same bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.atoms import hydrogen_molecule
from repro.atoms.structure import Structure
from repro.comm.resilient import ResilientReduction
from repro.comm.schemes import (
    BaselineRowwiseAllreduce,
    PackedAllreduce,
    PackedHierarchicalAllreduce,
)
from repro.config import get_settings
from repro.dfpt.response import DFPTSolver
from repro.dft.scf import SCFDriver
from repro.runtime.faults import (
    CycleFaultInjector,
    FaultEvent,
    FaultPlan,
    FaultRates,
    RetryPolicy,
    ScheduledFault,
)
from repro.runtime.machines import HPC2_AMD, MachineSpec
from repro.runtime.simmpi import CommStats, SimCluster


def default_rates() -> FaultRates:
    """Background fault pressure for a chaos run."""
    return FaultRates(
        message_corruption=0.05,
        collective_error=0.05,
        straggler=0.10,
        cycle_fault=0.15,
        straggler_delay=5.0e-4,
    )


def default_schedule(n_ranks: int) -> List[ScheduledFault]:
    """Guaranteed faults: one rank death, one unrecoverable collective.

    The persistent corruption at collective #2 exhausts the retry
    budget and forces the reduction ladder down one rung — the
    degradation path the acceptance criteria require to be visible.
    """
    return [
        ScheduledFault("rank_failure", call_index=0, rank=min(1, n_ranks - 1)),
        ScheduledFault("message_corruption", call_index=2, persistent=True),
    ]


@dataclass
class ChaosReport:
    """Everything a chaos assertion needs from one seeded run."""

    seed: int
    machine: str
    n_ranks: int
    polarizability: np.ndarray
    reference_polarizability: np.ndarray
    scheme_used: str
    reduction_max_abs_err: float
    comm_stats: CommStats  # cluster-aggregate, including retries/backoff
    degradations: List[str]
    fault_events: List[FaultEvent]
    scf_restarts: int
    cpscf_restarts: int

    @property
    def polarizability_bit_exact(self) -> bool:
        return bool(
            np.array_equal(self.polarizability, self.reference_polarizability)
        )

    @property
    def reduction_bit_exact(self) -> bool:
        return self.reduction_max_abs_err == 0.0

    @property
    def bit_exact(self) -> bool:
        """The acceptance-criterion verdict: recovery changed no bits."""
        return self.polarizability_bit_exact

    def event_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for ev in self.fault_events:
            counts[ev.kind] = counts.get(ev.kind, 0) + 1
        return counts

    def summary(self) -> str:
        s = self.comm_stats
        lines = [
            f"chaos run  seed={self.seed}  {self.machine}  {self.n_ranks} ranks",
            "injected faults: "
            + (
                ", ".join(f"{k}={n}" for k, n in sorted(self.event_counts().items()))
                or "none"
            ),
            f"cycle restarts: SCF={self.scf_restarts}  CPSCF={self.cpscf_restarts}",
            f"collective retries: {s.retries}  "
            f"(backoff {s.backoff_time:.3g}s, recovery {s.recovery_time:.3g}s, "
            f"rank failures {s.rank_failures}, corrupted {s.corrupted_collectives}, "
            f"dropped {s.dropped_messages}, stragglers {s.straggler_events})",
            "degradation path: "
            + (" | ".join(self.degradations) if self.degradations else "none"),
            f"reduction scheme used: {self.scheme_used}  "
            f"(max |err| vs serial sum: {self.reduction_max_abs_err:.3g})",
            f"polarizability bit-exact vs fault-free: "
            f"{'YES' if self.polarizability_bit_exact else 'NO'}",
        ]
        return "\n".join(lines)


@dataclass
class ServiceChaosReport:
    """Crash/retry verdict for one seeded service chaos scenario.

    ``payload_bytes`` / ``reference_bytes`` map each cache key to the
    provenance-stable serialized result (``timings`` stripped) of the
    faulted and fault-free runs; ``bit_exact`` is the acceptance
    criterion — injected worker crashes changed no result bytes.
    """

    seed: int
    n_workers: int
    crashes: int
    completed: int
    errored: int
    attempts: Dict[str, int]
    payload_bytes: Dict[str, bytes]
    reference_bytes: Dict[str, bytes]

    @property
    def bit_exact(self) -> bool:
        return (
            set(self.payload_bytes) == set(self.reference_bytes)
            and all(
                self.payload_bytes[k] == self.reference_bytes[k]
                for k in self.reference_bytes
            )
        )

    def summary(self) -> str:
        return (
            f"service chaos  seed={self.seed}  {self.n_workers} workers: "
            f"{self.completed} completed, {self.errored} errored, "
            f"{self.crashes} injected crash(es); results bit-exact vs "
            f"fault-free: {'YES' if self.bit_exact else 'NO'}"
        )


def run_service_chaos(
    requests=None,
    seed: int = 2023,
    n_workers: int = 2,
    rates: Optional[FaultRates] = None,
    schedule: Optional[Sequence[ScheduledFault]] = None,
    runner=None,
    store_path=None,
    lease_seconds: float = 2.0,
    max_steps: int = 10_000,
    fleet: Optional[int] = None,
):
    """Service-layer chaos: seeded worker crashes vs a fault-free run.

    Submits the same ``requests`` (default: one minimal-level H2 job)
    to two statestores, drains one pool fault-free and one under a
    :class:`~repro.runtime.faults.FaultPlan` whose ``worker_crash``
    rate/schedule kills workers after claiming, and compares the
    provenance-stable result bytes key by key.  Deterministic in
    ``seed``; ``runner`` lets tests substitute a cheap stub for the
    real physics runner.

    ``fleet=N`` puts only the **faulted** pool into fleet mode (waves
    of up to N tasks through one shared substrate) while the reference
    stays sequential — so ``bit_exact`` then also proves fleet
    execution under crashes changes no result bytes vs task-at-a-time.
    """
    from repro.config import get_settings
    from repro.service import (
        StateStore,
        WorkerPool,
        JobRequest,
        stable_result_bytes,
        submit_batch,
    )
    from repro.service.statestore import COMPLETE, ERRORED

    if requests is None:
        requests = [JobRequest("h2", get_settings("minimal"))]
    if rates is None:
        rates = FaultRates(worker_crash=0.3)
    if schedule is None:
        schedule = [ScheduledFault("worker_crash", call_index=0, site="worker:w0")]

    def _drain(
        store: StateStore,
        plan: Optional[FaultPlan],
        fleet_size: Optional[int] = None,
    ):
        submit_batch(store, requests, commit=f"chaos-{seed}", now=0.0)
        pool = WorkerPool(
            store, n_workers=n_workers, runner=runner, fault_plan=plan,
            fleet=fleet_size,
        )
        report = pool.run_until_idle(max_steps=max_steps)
        payloads = {
            t.key: stable_result_bytes(store.result_for_key(t.key))
            for t in store.tasks(COMPLETE)
        }
        return report, payloads

    _, reference = _drain(StateStore(lease_seconds=lease_seconds), None)
    plan = FaultPlan(seed=seed, rates=rates, schedule=schedule)
    faulted_store = StateStore(store_path, lease_seconds=lease_seconds)
    pool_report, payloads = _drain(faulted_store, plan, fleet_size=fleet)

    return ServiceChaosReport(
        seed=seed,
        n_workers=n_workers,
        crashes=pool_report.crashes,
        completed=pool_report.completed,
        errored=len(faulted_store.tasks(ERRORED)),
        attempts={t.task_id: t.attempts for t in faulted_store.tasks()},
        payload_bytes=payloads,
        reference_bytes=reference,
    )


def _polarizability(solver: DFPTSolver, dipoles: np.ndarray) -> tuple:
    alpha = np.empty((3, 3))
    restarts = 0
    for j in range(3):
        result = solver.solve_direction(j)
        alpha[:, j] = result.polarizability_column(dipoles)
        restarts += result.restarts
    return alpha, restarts


def run_chaos(
    structure: Optional[Structure] = None,
    level: str = "minimal",
    seed: int = 2023,
    machine: MachineSpec = HPC2_AMD,
    n_ranks: int = 8,
    rates: Optional[FaultRates] = None,
    schedule: Optional[Sequence[ScheduledFault]] = None,
    retry_policy: Optional[RetryPolicy] = None,
    n_rows: int = 24,
    row_len: int = 6,
    rows_cap: int = 4,
) -> ChaosReport:
    """Run reference + faulted pipelines and report the comparison.

    With the default ``rates``/``schedule``, the run injects at least
    one rank failure and one persistently corrupted collective, forcing
    one reduction-scheme degradation, plus randomized cycle faults that
    exercise the drivers' checkpoint-restart.
    """
    structure = structure or hydrogen_molecule()
    settings = get_settings(level)
    if rates is None:
        rates = default_rates()
    if schedule is None:
        schedule = default_schedule(n_ranks)

    # ------------------------------------------------------------------
    # Fault-free reference
    # ------------------------------------------------------------------
    ref_gs = SCFDriver(structure, settings).run()
    ref_alpha, _ = _polarizability(
        DFPTSolver(ref_gs, settings.cpscf), ref_gs.dipoles
    )

    # ------------------------------------------------------------------
    # Faulted physics: SCF + CPSCF with checkpoint-restart
    # ------------------------------------------------------------------
    plan = FaultPlan(seed=seed, rates=rates, schedule=schedule)
    injector = CycleFaultInjector(plan)
    gs = SCFDriver(structure, settings).run(fault_injector=injector)
    solver = DFPTSolver(gs, settings.cpscf, fault_injector=injector)
    alpha, cpscf_restarts = _polarizability(solver, gs.dipoles)

    # ------------------------------------------------------------------
    # Faulted communication: resilient rho_multipole reduction
    # ------------------------------------------------------------------
    rng = np.random.default_rng(seed)
    rows = [rng.normal(size=(n_rows, row_len)) for _ in range(n_ranks)]
    serial = rows[0].copy()
    for a in rows[1:]:
        serial = serial + a  # rank-ascending, the collectives' order

    cluster = SimCluster(
        machine, n_ranks, fault_plan=plan, retry_policy=retry_policy
    )
    scheme = ResilientReduction(
        [
            PackedHierarchicalAllreduce(rows_cap=rows_cap),
            PackedAllreduce(rows_cap=rows_cap),
            BaselineRowwiseAllreduce(),
        ]
    )
    reduced, reduction_report = scheme.reduce(cluster, rows)
    err = float(np.abs(reduced - serial).max())

    return ChaosReport(
        seed=seed,
        machine=machine.name,
        n_ranks=n_ranks,
        polarizability=alpha,
        reference_polarizability=ref_alpha,
        scheme_used=reduction_report.scheme,
        reduction_max_abs_err=err,
        comm_stats=cluster.stats,
        degradations=list(cluster.stats.degradations),
        fault_events=list(cluster.fault_events) + list(injector.events),
        scf_restarts=gs.restarts,
        cpscf_restarts=cpscf_restarts,
    )

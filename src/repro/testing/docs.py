"""Docstring-coverage lint for the observability-facing public API.

``make docs-check`` runs this (via ``tools/check_docstrings.py``)
alongside ``pytest --doctest-modules``: the doctests prove the examples
work, this lint proves the examples *exist* — every public module,
class and function in the audited modules must carry a docstring.

>>> missing_docstrings(["repro.obs.tracer"])
[]
"""

from __future__ import annotations

import importlib
import inspect
from typing import List

#: The modules whose public API is under the documentation contract
#: (DESIGN §10.7).  Extend this list as subsystems are audited.
AUDITED_MODULES = (
    "repro.obs",
    "repro.obs.tracer",
    "repro.obs.metrics",
    "repro.obs.export",
    "repro.obs.report",
    "repro.obs.regress",
    "repro.obs.bench",
    "repro.obs.analyze",
    "repro.obs.analyze.timeline",
    "repro.obs.analyze.imbalance",
    "repro.obs.analyze.comms",
    "repro.obs.analyze.diff",
    "repro.obs.analyze.history",
    "repro.obs.analyze.scaling",
    "repro.obs.telemetry",
    "repro.obs.telemetry.events",
    "repro.obs.telemetry.rollup",
    "repro.obs.telemetry.health",
    "repro.obs.telemetry.alerts",
    "repro.obs.telemetry.slo",
    "repro.service",
    "repro.service.statestore",
    "repro.service.jobs",
    "repro.service.worker",
    "repro.utils.artifacts",
    "repro.utils.balance",
    "repro.utils.timing",
    "repro.runtime.trace",
    "repro.grids.sparsity",
    "repro.fleet",
    "repro.fleet.driver",
    "repro.fleet.device",
    "repro.fleet.shared",
    "repro.tune",
    "repro.tune.space",
    "repro.tune.costmodel",
    "repro.tune.decision",
    "repro.tune.tuner",
    "repro.tune.waves",
)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def missing_docstrings(module_names=AUDITED_MODULES) -> List[str]:
    """Dotted paths of every audited public object lacking a docstring.

    Covers the module itself, its public classes and functions defined
    in that module (not re-exports), and public methods of those
    classes.  An empty list means the contract holds.

    Every audited module is visited even when an earlier one fails to
    import — one run reports the *complete* set of offenders (an
    unimportable module is itself an offender), instead of stopping at
    the first broken module and hiding the rest.
    """
    offenders: List[str] = []
    for module_name in module_names:
        try:
            module = importlib.import_module(module_name)
        except Exception as exc:  # noqa: BLE001 — record and keep auditing
            offenders.append(f"{module_name} (import failed: {exc})")
            continue
        if not inspect.getdoc(module):
            offenders.append(module_name)
        for name, obj in vars(module).items():
            if not _is_public(name):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module_name:
                continue  # re-export; audited where it is defined
            if not inspect.getdoc(obj):
                offenders.append(f"{module_name}.{name}")
            if inspect.isclass(obj):
                for mname, member in vars(obj).items():
                    if not _is_public(mname):
                        continue
                    func = member
                    if isinstance(member, property):
                        func = member.fget
                    elif isinstance(member, (staticmethod, classmethod)):
                        func = member.__func__
                    if not inspect.isfunction(func):
                        continue
                    if not inspect.getdoc(func):
                        offenders.append(f"{module_name}.{name}.{mname}")
    return sorted(set(offenders))

"""Shared machine/cluster factories for the test and bench harnesses.

The runtime, communication, fault and verification suites all need small
:class:`~repro.runtime.machines.MachineSpec` variants and
:class:`~repro.runtime.cluster.SimCluster` instances.  These plain
factories are the single source of truth; ``tests/conftest.py`` and
``benchmarks/conftest.py`` wrap them as pytest fixtures, and library
code (e.g. :mod:`repro.verify.differential`) can call them directly.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.runtime import HPC2_AMD, SimCluster
from repro.runtime.machines import MachineSpec


def make_machine(base: MachineSpec = HPC2_AMD, **overrides) -> MachineSpec:
    """Clone a machine preset with field overrides.

    ``make_machine(procs_per_node=4)`` derives from HPC#2; pass
    ``base=HPC1_SUNWAY`` to start from the other preset.  With no
    overrides the preset itself is returned (MachineSpec is frozen, so
    sharing is safe).
    """
    return replace(base, **overrides) if overrides else base


def make_cluster(
    n_ranks: int = 8,
    fault_plan=None,
    retry_policy=None,
    base: MachineSpec = HPC2_AMD,
    **machine_overrides,
) -> SimCluster:
    """Build a small simulated cluster.

    ``make_cluster(8)`` gives 8 ranks on HPC#2; keyword arguments are
    split between MachineSpec overrides (``procs_per_node=...``) and
    SimCluster options (``fault_plan=``, ``retry_policy=``, ``base=``).
    """
    machine = make_machine(base, **machine_overrides)
    return SimCluster(
        machine, n_ranks, fault_plan=fault_plan, retry_policy=retry_policy
    )

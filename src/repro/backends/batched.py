"""Batch-local streaming backend with a bounded LRU block cache.

The paper's Alg. 1 locality payoff applied to the single-node hot path:
instead of one O(grid) basis table, per-:class:`GridBatch` chi blocks
stream through a byte-bounded LRU cache and every contraction is
accumulated batch by batch.  Memory stays O(cache bound) no matter how
large the grid grows, and — unlike the legacy over-``_CACHE_LIMIT``
path — blocks that fit the cache are *never* re-evaluated across
SCF/CPSCF cycles.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple, Union

import numpy as np

from repro.backends.base import ExecutionBackend
from repro.backends.registry import register_backend
from repro.errors import BackendError
from repro.grids.batching import GridBatch

#: Default block-cache budget (bytes); ~64 MiB holds every block of the
#: molecules the physics path targets while staying strictly bounded.
DEFAULT_CACHE_BYTES: int = 64 << 20


#: Dense blocks key on the batch index; screened compact blocks key on
#: ``(batch index, active-set hash)`` so a pattern change can never
#: serve a stale compact block.  Backends sharing one cache across
#: molecules (the fleet driver) additionally prefix every key with a
#: per-molecule *scope*, so two molecules' batch 0 can never alias.
CacheKey = Union[int, Tuple]


def block_cache_key(
    batch_index: int,
    scope: Optional[str] = None,
    active_hash: Optional[str] = None,
) -> CacheKey:
    """The LRU key for one basis block.

    Unscoped dense keys stay plain ints (the single-molecule layout the
    backend benchmark pins); the screened variant appends the
    pattern's active-set hash, and a *scope* (the fleet's molecule id)
    prefixes either form so distinct molecules occupy disjoint key
    spaces in a shared cache.

    >>> block_cache_key(3)
    3
    >>> block_cache_key(3, active_hash="a1")
    (3, 'a1')
    >>> block_cache_key(3, scope="mol-0")
    ('mol-0', 3)
    >>> block_cache_key(3, scope="mol-0", active_hash="a1")
    ('mol-0', 3, 'a1')
    """
    key: Tuple = (int(batch_index),)
    if active_hash is not None:
        key = key + (active_hash,)
    if scope is not None:
        return (scope,) + key
    return key[0] if len(key) == 1 else key


class BlockCache:
    """Byte-bounded LRU cache of per-batch basis blocks.

    Keys are :data:`CacheKey` values — plain batch indices for dense
    ``(batch_points, n_basis)`` blocks, ``(batch, active-set hash)``
    tuples for compact screened blocks.  Eviction is strict LRU, except
    that the most recently inserted block always survives (a single
    block larger than the budget must still be usable — it is simply
    evicted by the next insertion).
    """

    def __init__(self, max_bytes: int) -> None:
        if max_bytes < 0:
            raise BackendError(f"cache budget must be >= 0, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self._blocks: "OrderedDict[CacheKey, np.ndarray]" = OrderedDict()
        self.current_bytes = 0
        self.peak_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._blocks

    def get(self, key: CacheKey) -> Optional[np.ndarray]:
        """The cached block, refreshed to most-recently-used; else None."""
        block = self._blocks.get(key)
        if block is None:
            self.misses += 1
            return None
        self._blocks.move_to_end(key)
        self.hits += 1
        return block

    def put(self, key: CacheKey, block: np.ndarray) -> None:
        """Insert a block, evicting least-recently-used ones over budget."""
        if key in self._blocks:
            self.current_bytes -= int(self._blocks.pop(key).nbytes)
        self._blocks[key] = block
        self.current_bytes += int(block.nbytes)
        self.peak_bytes = max(self.peak_bytes, self.current_bytes)
        while self.current_bytes > self.max_bytes and len(self._blocks) > 1:
            _, evicted = self._blocks.popitem(last=False)
            self.current_bytes -= int(evicted.nbytes)
            self.evictions += 1

    def clear(self) -> None:
        self._blocks.clear()
        self.current_bytes = 0


@register_backend("batched")
class BatchedBackend(ExecutionBackend):
    """Streaming backend: O(batch) working set, LRU-cached blocks."""

    def __init__(
        self,
        max_cache_bytes: int = DEFAULT_CACHE_BYTES,
        *,
        cache: Optional[BlockCache] = None,
        scope: Optional[str] = None,
    ) -> None:
        super().__init__()
        # A fleet driver passes one shared `cache` to every molecule's
        # backend plus a per-molecule `scope` widening the keys; the
        # default remains a private cache with unscoped keys.
        self.cache = cache if cache is not None else BlockCache(max_cache_bytes)
        self.scope = scope
        self.profile.cache_max_bytes = self.cache.max_bytes

    def _lookup(self, batch: GridBatch, key: CacheKey, active=None) -> np.ndarray:
        """Cached block for *key*, with hit/miss/eviction counters kept
        per backend (not copied from the cache, which may be shared
        across molecules — each molecule's profile must charge only its
        own traffic)."""
        from repro.obs.tracer import obs_counter

        block = self.cache.get(key)
        if block is None:
            obs_counter("backend.cache.misses")
            self.profile.cache_misses += 1
            block = self._evaluate_block(batch, active=active)
            evictions_before = self.cache.evictions
            self.cache.put(key, block)
            self.profile.cache_evictions += (
                self.cache.evictions - evictions_before
            )
        else:
            obs_counter("backend.cache.hits")
            self.profile.cache_hits += 1
        # Peak occupancy is a property of the (possibly shared) cache.
        self.profile.cache_peak_bytes = self.cache.peak_bytes
        return block

    def basis_block(self, batch: GridBatch) -> np.ndarray:
        return self._lookup(batch, block_cache_key(batch.index, scope=self.scope))

    def basis_block_active(self, batch: GridBatch) -> np.ndarray:
        pattern = self._require_pattern()
        # The active-set hash in the key makes compact entries
        # self-invalidating: a different pattern (tighter threshold,
        # new structure) can never alias a stale compact block.
        key = block_cache_key(
            batch.index,
            scope=self.scope,
            active_hash=pattern.active_hash(batch.index),
        )
        return self._lookup(
            batch, key, active=pattern.active_functions[batch.index]
        )

"""Pluggable execution backends for the SCF/CPSCF hot phases.

One seam (:class:`ExecutionBackend`), three bit-exact engines:

* ``numpy`` — the reference: full-grid cached basis table, O(grid) memory;
* ``batched`` — per-batch streaming through a bounded LRU block cache,
  O(batch) memory, nothing recomputed while the cache holds it;
* ``device`` — the same operations as priced launches on the
  :mod:`repro.ocl` accelerator model.

Select one end-to-end with ``SCFDriver(..., backend="batched")`` /
``DFPTSolver(..., backend=...)`` / ``repro physics ... --backend batched``.
"""

from repro.backends.base import (
    BackendProfile,
    ExecutionBackend,
    PhaseStats,
    density_block,
    first_order_dm_dense,
    potential_block,
)
from repro.backends.registry import (
    DEFAULT_BACKEND,
    available_backends,
    create_backend,
    register_backend,
    resolve_backend,
)

# Importing the implementation modules registers the built-in backends.
from repro.backends.numpy_backend import NumpyBackend
from repro.backends.batched import BatchedBackend, BlockCache, DEFAULT_CACHE_BYTES
from repro.backends.device import DeviceBackend

__all__ = [
    "BackendProfile",
    "BatchedBackend",
    "BlockCache",
    "DEFAULT_BACKEND",
    "DEFAULT_CACHE_BYTES",
    "DeviceBackend",
    "ExecutionBackend",
    "NumpyBackend",
    "PhaseStats",
    "available_backends",
    "create_backend",
    "density_block",
    "first_order_dm_dense",
    "potential_block",
    "register_backend",
    "resolve_backend",
]

"""Device backend: the phase operations as priced OpenCL-model launches.

Routes the same batch-ordered math through :class:`repro.ocl.device.Device`
— one work-group per batch, work-items sized by the *largest* batch —
so the priced kernel layer finally sits under the real SCF/CPSCF loops
instead of beside them.  The kernel bodies call the exact shared block
functions of :mod:`repro.backends.base`, so results are bit-identical
to the ``numpy`` and ``batched`` backends while every launch and
host<->device transfer is charged to the profile.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.backends.base import (
    ExecutionBackend,
    density_block,
    first_order_dm_dense,
    potential_block,
)
from repro.backends.registry import register_backend
from repro.errors import BackendError
from repro.ocl.buffers import DeviceBuffer
from repro.ocl.device import Device
from repro.ocl.kernel import Kernel, NDRange


@register_backend("device")
class DeviceBackend(ExecutionBackend):
    """Accelerator-model backend (bit-exact, launch-priced)."""

    def __init__(
        self, device: Optional[Device] = None, machine: str = "hpc2"
    ) -> None:
        super().__init__()
        if device is None:
            from repro.runtime.machines import machine_by_name

            device = Device(machine_by_name(machine).accelerator)
        self.device = device
        self._phi: Optional[DeviceBuffer] = None
        self._weights: Optional[DeviceBuffer] = None

    # ------------------------------------------------------------------
    def _on_bind(self) -> None:
        builder = self._require_bound()
        # Stage the density-independent tables into __global memory once.
        # The table is assembled per batch with the shared evaluation, so
        # its rows are bitwise identical to the other backends' blocks.
        table = np.zeros((builder.grid.n_points, builder.basis.n_basis))
        for b in builder.batches:
            table[b.point_indices] = self._evaluate_block(b)
        self._phi = DeviceBuffer("basis_values", table)
        self._weights = DeviceBuffer("weights", builder.grid.weights)
        self._to_device(self._phi)
        self._to_device(self._weights)

    def _ndrange(self, n_groups: Optional[int] = None) -> NDRange:
        """One work-group per batch, items sized by the largest batch.

        Sizing by the *mean* batch (the old ``_ndrange`` bug) starves
        work-items whenever batches are uneven; the max guarantees every
        point of every batch maps to an item.  Screened launches pass
        *n_groups* to schedule only the batches with a non-empty active
        set — the model prices only launched blocks.
        """
        builder = self._require_bound()
        items = max(1, max(b.n_points for b in builder.batches))
        if n_groups is None:
            n_groups = len(builder.batches)
        return NDRange(n_groups=max(n_groups, 1), items_per_group=items)

    def _screen_pricing(self) -> Tuple[float, float, int]:
        """Point-weighted active-set sizes for screened kernel pricing.

        Returns ``(avg_active, avg_active_sq, live_groups)``: the mean
        active-function count per grid point, its square's mean (what a
        per-point ``act x act`` contraction costs), and the number of
        batches with a non-empty active set.  Replaces the dense
        ``n_basis`` factors in the launch model, so the device is
        charged only for the blocks it actually launches.
        """
        pattern = self._require_pattern()
        builder = self._require_bound()
        pts = np.array([b.n_points for b in builder.batches], dtype=float)
        act = np.array(
            [pattern.n_active(b.index) for b in builder.batches], dtype=float
        )
        total = max(pts.sum(), 1.0)
        avg = float((pts * act).sum() / total)
        avg_sq = float((pts * act * act).sum() / total)
        return avg, avg_sq, int(np.count_nonzero(act > 0))

    def _launch(
        self,
        kernel: Kernel,
        buffers: Dict[str, DeviceBuffer],
        ndrange: Optional[NDRange] = None,
    ) -> None:
        report = self.device.launch(kernel, ndrange or self._ndrange(), buffers)
        self.profile.device_launches += 1
        self.profile.device_modeled_seconds += report.total_time

    # Transfers are charged by delta, not by copying the device's
    # absolute counter: the device may be shared across molecules (the
    # fleet driver), and each molecule's profile must attribute only
    # its own traffic.
    def _to_device(self, buffer: DeviceBuffer) -> None:
        before = self.device.bytes_transferred
        self.device.to_device(buffer)
        self.profile.device_bytes_transferred += (
            self.device.bytes_transferred - before
        )

    def _from_device(self, buffer: DeviceBuffer) -> None:
        before = self.device.bytes_transferred
        self.device.from_device(buffer)
        self.profile.device_bytes_transferred += (
            self.device.bytes_transferred - before
        )

    def basis_block(self, batch) -> np.ndarray:
        if self._phi is None:
            raise BackendError("device backend used before bind()")
        return self._phi.data[batch.point_indices]

    # ------------------------------------------------------------------
    # Phase operations as kernel launches
    # ------------------------------------------------------------------
    def _density_impl(self, p: np.ndarray) -> np.ndarray:
        builder = self._require_bound()
        nb = builder.basis.n_basis
        pattern = builder.pattern
        p_buf = DeviceBuffer("p", p)
        out = DeviceBuffer("n", np.zeros(builder.grid.n_points))
        self._to_device(p_buf)
        self._to_device(out)
        batches = builder.batches

        if pattern is None:

            def body(bufs: Dict[str, DeviceBuffer]) -> None:
                phi = bufs["basis_values"].data
                p_local = bufs["p"].data
                n = bufs["n"].data
                for b in batches:
                    idx = b.point_indices
                    n[idx] = density_block(phi[idx], p_local)

            kernel = Kernel(
                name="sumup_density",
                func=body,
                flops_per_item=2.0 * nb**2,
                bytes_read_per_item=8.0 * nb,
                bytes_written_per_item=8.0,
            )
            ndrange = self._ndrange()
        else:
            # Block-sparse Sumup: gather the staged table's active
            # columns per batch (same compact math as the other
            # backends) and price the launch by the active sets only.
            record = self._record_screened_batch

            def body(bufs: Dict[str, DeviceBuffer]) -> None:
                phi = bufs["basis_values"].data
                p_local = bufs["p"].data
                n = bufs["n"].data
                for b in batches:
                    record(b)
                    act = pattern.active_functions[b.index]
                    if act.size == 0:
                        continue
                    idx = b.point_indices
                    n[idx] = density_block(
                        phi[idx][:, act], p_local[np.ix_(act, act)]
                    )

            avg, avg_sq, groups = self._screen_pricing()
            kernel = Kernel(
                name="sumup_density_screened",
                func=body,
                flops_per_item=2.0 * avg_sq,
                bytes_read_per_item=8.0 * avg,
                bytes_written_per_item=8.0,
            )
            ndrange = self._ndrange(n_groups=groups)
        self._launch(
            kernel, {"basis_values": self._phi, "p": p_buf, "n": out},
            ndrange=ndrange,
        )
        self._from_device(out)
        return out.data

    def _potential_impl(self, v: np.ndarray) -> np.ndarray:
        from repro.utils.linalg import symmetrize

        builder = self._require_bound()
        nb = builder.basis.n_basis
        pattern = builder.pattern
        v_buf = DeviceBuffer("v", v)
        out = DeviceBuffer("h", np.zeros((nb, nb)))
        self._to_device(v_buf)
        self._to_device(out)
        batches = builder.batches

        if pattern is None:

            def body(bufs: Dict[str, DeviceBuffer]) -> None:
                phi = bufs["basis_values"].data
                wv = bufs["weights"].data * bufs["v"].data
                acc = np.zeros((nb, nb))
                for b in batches:
                    idx = b.point_indices
                    acc += potential_block(phi[idx], wv[idx])
                bufs["h"].data[...] = symmetrize(acc)

            kernel = Kernel(
                name="h_integration",
                func=body,
                flops_per_item=3.0 * nb**2,
                bytes_read_per_item=8.0 * nb,
                bytes_written_per_item=8.0,
            )
            ndrange = self._ndrange()
        else:
            # Block-sparse H: per-batch (act x act) blocks scatter-added
            # at the active indices; only live batches are scheduled.
            record = self._record_screened_batch

            def body(bufs: Dict[str, DeviceBuffer]) -> None:
                phi = bufs["basis_values"].data
                wv = bufs["weights"].data * bufs["v"].data
                acc = np.zeros((nb, nb))
                for b in batches:
                    record(b)
                    act = pattern.active_functions[b.index]
                    if act.size == 0:
                        continue
                    idx = b.point_indices
                    acc[np.ix_(act, act)] += potential_block(
                        phi[idx][:, act], wv[idx]
                    )
                bufs["h"].data[...] = symmetrize(acc)

            avg, avg_sq, groups = self._screen_pricing()
            kernel = Kernel(
                name="h_integration_screened",
                func=body,
                flops_per_item=3.0 * avg_sq,
                bytes_read_per_item=8.0 * avg,
                bytes_written_per_item=8.0,
            )
            ndrange = self._ndrange(n_groups=groups)
        self._launch(
            kernel,
            {
                "basis_values": self._phi,
                "weights": self._weights,
                "v": v_buf,
                "h": out,
            },
            ndrange=ndrange,
        )
        self._from_device(out)
        return out.data

    def _dm_impl(
        self,
        h1: np.ndarray,
        inv_gaps: np.ndarray,
        c_occ: np.ndarray,
        c_virt: np.ndarray,
        f_occ: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        builder = self._require_bound()
        nb = builder.basis.n_basis
        h1_buf = DeviceBuffer("h1", np.asarray(h1))
        p1_buf = DeviceBuffer("p1", np.zeros((nb, nb)))
        self._to_device(h1_buf)
        self._to_device(p1_buf)
        result: Dict[str, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

        def body(bufs: Dict[str, DeviceBuffer]) -> None:
            out = first_order_dm_dense(
                bufs["h1"].data, inv_gaps, c_occ, c_virt, f_occ
            )
            result["dm"] = out
            bufs["p1"].data[...] = out[2]

        # Under screening h1 only carries the pattern's atom-pair
        # blocks, so the read side of the rotation is priced by the
        # average nonzeros per row instead of the dense n_basis.
        if builder.pattern is None:
            nnz_per_row = float(nb)
        else:
            nnz_per_row = builder.pattern.matrix_nnz / max(nb, 1)
        kernel = Kernel(
            name="dm_response",
            func=body,
            flops_per_item=2.0 * nnz_per_row,
            bytes_read_per_item=16.0,
            bytes_written_per_item=8.0,
        )
        self._launch(kernel, {"h1": h1_buf, "p1": p1_buf})
        self._from_device(p1_buf)
        u, c1, _ = result["dm"]
        return u, c1, p1_buf.data

"""Backend registry: names -> :class:`ExecutionBackend` classes.

Drivers accept ``backend=`` as either a registry name (``"numpy"``,
``"batched"``, ``"device"``) or a pre-configured
:class:`~repro.backends.base.ExecutionBackend` instance; this module
resolves both to a bound instance.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple, Type, Union

from repro.backends.base import ExecutionBackend
from repro.errors import BackendError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dft.hamiltonian import MatrixBuilder

#: Default backend used when drivers and settings are silent.
DEFAULT_BACKEND = "numpy"

_REGISTRY: Dict[str, Type[ExecutionBackend]] = {}


def register_backend(name: str) -> Callable[[Type[ExecutionBackend]], Type[ExecutionBackend]]:
    """Class decorator registering a backend under *name*."""

    def decorator(cls: Type[ExecutionBackend]) -> Type[ExecutionBackend]:
        if name in _REGISTRY:
            raise BackendError(f"backend {name!r} registered twice")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def create_backend(name: str, **kwargs) -> ExecutionBackend:
    """Instantiate a registered backend (unbound) by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise BackendError(
            f"unknown execution backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None
    return cls(**kwargs)


def resolve_backend(
    spec: Union[str, ExecutionBackend, None],
    builder: "MatrixBuilder",
) -> ExecutionBackend:
    """Turn a name / instance / ``None`` into a backend bound to *builder*."""
    if spec is None:
        spec = DEFAULT_BACKEND
    if isinstance(spec, str):
        backend: ExecutionBackend = create_backend(spec)
    elif isinstance(spec, ExecutionBackend):
        backend = spec
    else:
        raise BackendError(
            f"backend must be a name or ExecutionBackend instance, "
            f"got {type(spec).__name__}"
        )
    return backend.bind(builder)

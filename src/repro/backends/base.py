"""The execution-backend seam under the SCF/CPSCF drivers.

The paper's central claim (§4.1) is a *single-source* pipeline whose
hot phases — ``DM``, ``Sumup``, ``Rho``, ``H`` — run unchanged on
heterogeneous backends.  :class:`ExecutionBackend` is that seam for
this reproduction: the four phase operations the drivers need
(:meth:`~ExecutionBackend.basis_block`,
:meth:`~ExecutionBackend.density_on_grid`,
:meth:`~ExecutionBackend.potential_matrix`,
:meth:`~ExecutionBackend.first_order_dm`), implemented once as
batch-ordered numpy math so every registered backend is *bit-exact*
with every other — backends differ only in where the per-batch basis
blocks come from (full cached table, bounded LRU block cache, device
buffers) and in what bookkeeping each launch is charged.

Every backend records a per-phase :class:`BackendProfile` (calls,
elements processed, wall seconds, block-cache hits/misses, device
launch and transfer statistics) which the CLI and
:mod:`repro.utils.reports` surface — the repo's end-to-end
observability of the phases the paper names.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, ClassVar, Dict, Optional, Tuple

import numpy as np

from repro.errors import BackendError, GridError
from repro.grids.batching import GridBatch
from repro.obs.tracer import obs_counter, obs_span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dft.hamiltonian import MatrixBuilder


# ----------------------------------------------------------------------
# The shared batch-local kernel math.
#
# All backends call these exact functions in the exact same batch order,
# which is what makes the numpy/batched/device parity *bitwise* rather
# than merely approximate: given bit-identical basis blocks, the
# floating-point operation sequence is identical.
# ----------------------------------------------------------------------
def density_block(phi_b: np.ndarray, density_matrix: np.ndarray) -> np.ndarray:
    """Pointwise density of one batch: ``sum_mu_nu P phi_mu phi_nu``."""
    return np.einsum("pi,pi->p", phi_b @ density_matrix, phi_b, optimize=True)


def potential_block(phi_b: np.ndarray, wv_b: np.ndarray) -> np.ndarray:
    """One batch's contribution to ``<chi_mu | v | chi_nu>``."""
    return phi_b.T @ (phi_b * wv_b[:, None])


def first_order_dm_dense(
    h1: np.ndarray,
    inv_gaps: np.ndarray,
    c_occ: np.ndarray,
    c_virt: np.ndarray,
    f_occ: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """DM phase: ``U_ai``, ``C^(1)`` and ``P^(1)`` (Eq. 7, Sternheimer)."""
    h1_vo = c_virt.T @ h1 @ c_occ  # (n_virt, n_occ)
    u = h1_vo * inv_gaps
    c1_occ = c_virt @ u  # (n_basis, n_occ)
    p1 = (c1_occ * f_occ[None, :]) @ c_occ.T
    return u, c1_occ, p1 + p1.T  # Eq. (7): C1 C + C C1


# ----------------------------------------------------------------------
# Profiling
# ----------------------------------------------------------------------
@dataclass
class PhaseStats:
    """Accumulated counters for one backend phase."""

    calls: int = 0
    elements: int = 0  # grid-point x basis (or matrix) elements processed
    seconds: float = 0.0

    def record(self, elements: int, seconds: float) -> None:
        self.calls += 1
        self.elements += int(elements)
        self.seconds += float(seconds)


@dataclass
class BackendProfile:
    """Per-phase execution statistics of one backend instance.

    Phases use the paper's names where they exist: ``Sumup`` (density on
    the grid), ``H`` (potential-matrix integration), ``DM`` (first-order
    density matrix) plus ``basis`` for actual basis-block evaluations
    (cache misses evaluate; hits do not).
    """

    backend: str
    phases: Dict[str, PhaseStats] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_peak_bytes: int = 0
    cache_max_bytes: int = 0
    device_launches: int = 0
    device_modeled_seconds: float = 0.0
    device_bytes_transferred: int = 0

    def record(self, phase: str, elements: int, seconds: float) -> None:
        self.phases.setdefault(phase, PhaseStats()).record(elements, seconds)

    def total_seconds(self) -> float:
        return sum(s.seconds for s in self.phases.values())

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-friendly snapshot (used by the backend benchmark)."""
        return {
            "backend": self.backend,
            "phases": {
                name: {
                    "calls": s.calls,
                    "elements": s.elements,
                    "seconds": s.seconds,
                }
                for name, s in self.phases.items()
            },
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "evictions": self.cache_evictions,
                "peak_bytes": self.cache_peak_bytes,
                "max_bytes": self.cache_max_bytes,
            },
            "device": {
                "launches": self.device_launches,
                "modeled_seconds": self.device_modeled_seconds,
                "bytes_transferred": self.device_bytes_transferred,
            },
        }


# ----------------------------------------------------------------------
# The backend protocol
# ----------------------------------------------------------------------
class ExecutionBackend:
    """One execution engine for the grid-heavy phase operations.

    A backend is constructed unbound (so drivers can accept either a
    name or a configured instance) and bound to one
    :class:`~repro.dft.hamiltonian.MatrixBuilder` via :meth:`bind`
    before use.  Subclasses override :meth:`basis_block` (where a
    batch's ``(batch_points, n_basis)`` chi table comes from) and may
    wrap the phase implementations with device launches; the numerical
    work itself is shared so results stay bit-identical across
    backends.
    """

    #: Registry name, set by ``@register_backend``.
    name: ClassVar[str] = "abstract"

    def __init__(self) -> None:
        self.builder: Optional["MatrixBuilder"] = None
        self.profile = BackendProfile(backend=self.name)

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------
    def bind(self, builder: "MatrixBuilder") -> "ExecutionBackend":
        """Attach this backend to one matrix builder (idempotent)."""
        if self.builder is builder:
            return self
        if self.builder is not None:
            raise BackendError(
                f"backend {self.name!r} is already bound to another builder"
            )
        self.builder = builder
        self._on_bind()
        return self

    def _on_bind(self) -> None:
        """Hook for subclasses (stage buffers, size caches...)."""

    def _require_bound(self) -> "MatrixBuilder":
        if self.builder is None:
            raise BackendError(
                f"backend {self.name!r} is not bound; call bind(builder) first"
            )
        return self.builder

    # ------------------------------------------------------------------
    # Validation shared by all backends
    # ------------------------------------------------------------------
    def _check_density_matrix(self, density_matrix: np.ndarray) -> np.ndarray:
        p = np.asarray(density_matrix, dtype=float)
        nb = self._require_bound().basis.n_basis
        if p.shape != (nb, nb):
            raise ValueError(f"density matrix shape {p.shape}, basis size {nb}")
        return p

    def _check_potential(self, potential_values: np.ndarray) -> np.ndarray:
        v = np.asarray(potential_values, dtype=float)
        n_points = self._require_bound().grid.n_points
        if v.shape[0] != n_points:
            raise GridError(
                f"{v.shape[0]} potential samples for {n_points} grid points"
            )
        return v

    # ------------------------------------------------------------------
    # The four phase operations
    # ------------------------------------------------------------------
    def basis_block(self, batch: GridBatch) -> np.ndarray:
        """chi_mu table of one batch, ``(batch.n_points, n_basis)``."""
        raise NotImplementedError

    def density_on_grid(self, density_matrix: np.ndarray) -> np.ndarray:
        """Pointwise density for one density matrix (Sumup phase)."""
        builder = self._require_bound()
        p = self._check_density_matrix(density_matrix)
        elements = builder.grid.n_points * builder.basis.n_basis
        start = time.perf_counter()
        with obs_span("Sumup", category="backend", backend=self.name):
            out = self._density_impl(p)
        self.profile.record("Sumup", elements, time.perf_counter() - start)
        obs_counter("backend.Sumup.calls")
        obs_counter("backend.Sumup.elements", elements)
        return out

    def potential_matrix(self, potential_values: np.ndarray) -> np.ndarray:
        """``<chi_mu | v | chi_nu>`` for a pointwise potential (H phase)."""
        builder = self._require_bound()
        v = self._check_potential(potential_values)
        elements = builder.grid.n_points * builder.basis.n_basis
        start = time.perf_counter()
        with obs_span("H", category="backend", backend=self.name):
            out = self._potential_impl(v)
        self.profile.record("H", elements, time.perf_counter() - start)
        obs_counter("backend.H.calls")
        obs_counter("backend.H.elements", elements)
        return out

    def first_order_dm(
        self,
        h1: np.ndarray,
        inv_gaps: np.ndarray,
        c_occ: np.ndarray,
        c_virt: np.ndarray,
        f_occ: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(U, C^(1), P^(1))`` from a response Hamiltonian (DM phase)."""
        start = time.perf_counter()
        with obs_span("DM", category="backend", backend=self.name):
            out = self._dm_impl(h1, inv_gaps, c_occ, c_virt, f_occ)
        elements = int(np.asarray(h1).size)
        self.profile.record("DM", elements, time.perf_counter() - start)
        obs_counter("backend.DM.calls")
        obs_counter("backend.DM.elements", elements)
        return out

    # ------------------------------------------------------------------
    # Shared implementations (batch-ordered; overridable for devices)
    # ------------------------------------------------------------------
    def _density_impl(self, p: np.ndarray) -> np.ndarray:
        builder = self._require_bound()
        out = np.zeros(builder.grid.n_points)
        for b in builder.batches:
            out[b.point_indices] = density_block(self.basis_block(b), p)
        return out

    def _potential_impl(self, v: np.ndarray) -> np.ndarray:
        from repro.utils.linalg import symmetrize

        builder = self._require_bound()
        wv = builder.grid.weights * v
        nb = builder.basis.n_basis
        acc = np.zeros((nb, nb))
        for b in builder.batches:
            acc += potential_block(self.basis_block(b), wv[b.point_indices])
        return symmetrize(acc)

    def _dm_impl(
        self,
        h1: np.ndarray,
        inv_gaps: np.ndarray,
        c_occ: np.ndarray,
        c_virt: np.ndarray,
        f_occ: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return first_order_dm_dense(h1, inv_gaps, c_occ, c_virt, f_occ)

    # ------------------------------------------------------------------
    def _evaluate_block(self, batch: GridBatch) -> np.ndarray:
        """Evaluate one batch's basis block for real (profiled)."""
        builder = self._require_bound()
        start = time.perf_counter()
        phi_b = builder.basis.evaluate(
            builder.grid.points[batch.point_indices], atoms=batch.relevant_atoms
        )
        self.profile.record(
            "basis",
            batch.n_points * builder.basis.n_basis,
            time.perf_counter() - start,
        )
        obs_counter("backend.basis.blocks_evaluated")
        obs_counter(
            "backend.basis.elements", batch.n_points * builder.basis.n_basis
        )
        return phi_b

    def __repr__(self) -> str:
        bound = "bound" if self.builder is not None else "unbound"
        return f"{type(self).__name__}(name={self.name!r}, {bound})"

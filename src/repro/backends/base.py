"""The execution-backend seam under the SCF/CPSCF drivers.

The paper's central claim (§4.1) is a *single-source* pipeline whose
hot phases — ``DM``, ``Sumup``, ``Rho``, ``H`` — run unchanged on
heterogeneous backends.  :class:`ExecutionBackend` is that seam for
this reproduction: the four phase operations the drivers need
(:meth:`~ExecutionBackend.basis_block`,
:meth:`~ExecutionBackend.density_on_grid`,
:meth:`~ExecutionBackend.potential_matrix`,
:meth:`~ExecutionBackend.first_order_dm`), implemented once as
batch-ordered numpy math so every registered backend is *bit-exact*
with every other — backends differ only in where the per-batch basis
blocks come from (full cached table, bounded LRU block cache, device
buffers) and in what bookkeeping each launch is charged.

Every backend records a per-phase :class:`BackendProfile` (calls,
elements processed, wall seconds, block-cache hits/misses, device
launch and transfer statistics) which the CLI and
:mod:`repro.utils.reports` surface — the repo's end-to-end
observability of the phases the paper names.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, ClassVar, Dict, Optional, Tuple

import numpy as np

from repro.errors import BackendError, GridError
from repro.grids.batching import GridBatch
from repro.obs.tracer import obs_counter, obs_span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dft.hamiltonian import MatrixBuilder
    from repro.grids.sparsity import SparsityPattern


# ----------------------------------------------------------------------
# The shared batch-local kernel math.
#
# All backends call these exact functions in the exact same batch order,
# which is what makes the numpy/batched/device parity *bitwise* rather
# than merely approximate: given bit-identical basis blocks, the
# floating-point operation sequence is identical.
# ----------------------------------------------------------------------
def density_block(phi_b: np.ndarray, density_matrix: np.ndarray) -> np.ndarray:
    """Pointwise density of one batch: ``sum_mu_nu P phi_mu phi_nu``."""
    return np.einsum("pi,pi->p", phi_b @ density_matrix, phi_b, optimize=True)


def potential_block(phi_b: np.ndarray, wv_b: np.ndarray) -> np.ndarray:
    """One batch's contribution to ``<chi_mu | v | chi_nu>``."""
    return phi_b.T @ (phi_b * wv_b[:, None])


def first_order_dm_dense(
    h1: np.ndarray,
    inv_gaps: np.ndarray,
    c_occ: np.ndarray,
    c_virt: np.ndarray,
    f_occ: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """DM phase: ``U_ai``, ``C^(1)`` and ``P^(1)`` (Eq. 7, Sternheimer)."""
    h1_vo = c_virt.T @ h1 @ c_occ  # (n_virt, n_occ)
    u = h1_vo * inv_gaps
    c1_occ = c_virt @ u  # (n_basis, n_occ)
    p1 = (c1_occ * f_occ[None, :]) @ c_occ.T
    return u, c1_occ, p1 + p1.T  # Eq. (7): C1 C + C C1


# ----------------------------------------------------------------------
# Profiling
# ----------------------------------------------------------------------
@dataclass
class PhaseStats:
    """Accumulated counters for one backend phase."""

    calls: int = 0
    elements: int = 0  # grid-point x basis (or matrix) elements processed
    seconds: float = 0.0

    def record(self, elements: int, seconds: float) -> None:
        self.calls += 1
        self.elements += int(elements)
        self.seconds += float(seconds)


@dataclass
class BackendProfile:
    """Per-phase execution statistics of one backend instance.

    Phases use the paper's names where they exist: ``Sumup`` (density on
    the grid), ``H`` (potential-matrix integration), ``DM`` (first-order
    density matrix) plus ``basis`` for actual basis-block evaluations
    (cache misses evaluate; hits do not).
    """

    backend: str
    phases: Dict[str, PhaseStats] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_peak_bytes: int = 0
    cache_max_bytes: int = 0
    device_launches: int = 0
    device_modeled_seconds: float = 0.0
    device_bytes_transferred: int = 0
    # Screening counters (all zero on dense runs): (batch, atom) basis
    # blocks touched vs skipped by the pattern, compact vs dense element
    # counts, and the pattern-level fill summary set at bind time.
    screen_blocks_evaluated: int = 0
    screen_blocks_skipped: int = 0
    screen_elements_active: int = 0
    screen_elements_dense: int = 0
    screen_fill_fraction: float = 0.0
    screen_histogram: Tuple[int, ...] = ()

    def record(self, phase: str, elements: int, seconds: float) -> None:
        self.phases.setdefault(phase, PhaseStats()).record(elements, seconds)

    def record_screening(
        self, blocks_active: int, blocks_dense: int, elements_active: int,
        elements_dense: int,
    ) -> None:
        """Charge one batch's screened contraction to the profile."""
        self.screen_blocks_evaluated += int(blocks_active)
        self.screen_blocks_skipped += int(blocks_dense - blocks_active)
        self.screen_elements_active += int(elements_active)
        self.screen_elements_dense += int(elements_dense)

    def total_seconds(self) -> float:
        return sum(s.seconds for s in self.phases.values())

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-friendly snapshot (used by the backend benchmark)."""
        return {
            "backend": self.backend,
            "phases": {
                name: {
                    "calls": s.calls,
                    "elements": s.elements,
                    "seconds": s.seconds,
                }
                for name, s in self.phases.items()
            },
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "evictions": self.cache_evictions,
                "peak_bytes": self.cache_peak_bytes,
                "max_bytes": self.cache_max_bytes,
            },
            "device": {
                "launches": self.device_launches,
                "modeled_seconds": self.device_modeled_seconds,
                "bytes_transferred": self.device_bytes_transferred,
            },
            "sparsity": {
                "blocks_evaluated": self.screen_blocks_evaluated,
                "blocks_skipped": self.screen_blocks_skipped,
                "elements_active": self.screen_elements_active,
                "elements_dense": self.screen_elements_dense,
                "fill_fraction": self.screen_fill_fraction,
                "histogram": list(self.screen_histogram),
            },
        }


# ----------------------------------------------------------------------
# The backend protocol
# ----------------------------------------------------------------------
class ExecutionBackend:
    """One execution engine for the grid-heavy phase operations.

    A backend is constructed unbound (so drivers can accept either a
    name or a configured instance) and bound to one
    :class:`~repro.dft.hamiltonian.MatrixBuilder` via :meth:`bind`
    before use.  Subclasses override :meth:`basis_block` (where a
    batch's ``(batch_points, n_basis)`` chi table comes from) and may
    wrap the phase implementations with device launches; the numerical
    work itself is shared so results stay bit-identical across
    backends.
    """

    #: Registry name, set by ``@register_backend``.
    name: ClassVar[str] = "abstract"

    def __init__(self) -> None:
        self.builder: Optional["MatrixBuilder"] = None
        self.profile = BackendProfile(backend=self.name)

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------
    def bind(self, builder: "MatrixBuilder") -> "ExecutionBackend":
        """Attach this backend to one matrix builder (idempotent)."""
        if self.builder is builder:
            return self
        if self.builder is not None:
            raise BackendError(
                f"backend {self.name!r} is already bound to another builder"
            )
        self.builder = builder
        self._on_bind()
        if builder.pattern is not None:
            stats = builder.pattern.stats
            self.profile.screen_fill_fraction = stats.fill_fraction
            self.profile.screen_histogram = stats.histogram
        return self

    def _on_bind(self) -> None:
        """Hook for subclasses (stage buffers, size caches...)."""

    def _require_bound(self) -> "MatrixBuilder":
        if self.builder is None:
            raise BackendError(
                f"backend {self.name!r} is not bound; call bind(builder) first"
            )
        return self.builder

    def _require_pattern(self) -> "SparsityPattern":
        pattern = self._require_bound().pattern
        if pattern is None:
            raise BackendError(
                f"backend {self.name!r} has no screening pattern; "
                "basis_block_active() needs screening_threshold > 0"
            )
        return pattern

    # ------------------------------------------------------------------
    # Validation shared by all backends
    # ------------------------------------------------------------------
    def _check_density_matrix(self, density_matrix: np.ndarray) -> np.ndarray:
        p = np.asarray(density_matrix, dtype=float)
        nb = self._require_bound().basis.n_basis
        if p.shape != (nb, nb):
            raise ValueError(f"density matrix shape {p.shape}, basis size {nb}")
        return p

    def _check_potential(self, potential_values: np.ndarray) -> np.ndarray:
        v = np.asarray(potential_values, dtype=float)
        n_points = self._require_bound().grid.n_points
        if v.shape[0] != n_points:
            raise GridError(
                f"{v.shape[0]} potential samples for {n_points} grid points"
            )
        return v

    # ------------------------------------------------------------------
    # The four phase operations
    # ------------------------------------------------------------------
    def basis_block(self, batch: GridBatch) -> np.ndarray:
        """chi_mu table of one batch, ``(batch.n_points, n_basis)``."""
        raise NotImplementedError

    def basis_block_active(self, batch: GridBatch) -> np.ndarray:
        """Compact chi table of one batch, ``(batch.n_points, n_active)``.

        Columns are the pattern's active functions for this batch, in
        ascending index order.  Per-shell evaluation is independent of
        which other atoms are requested, so this compact block is a
        *bitwise* column slice of the dense :meth:`basis_block` — the
        parity anchor that keeps all screened backends identical.  The
        default slices the dense block; subclasses override where a
        cheaper compact source exists (cached table slice, compact LRU
        entries).
        """
        pattern = self._require_pattern()
        return self.basis_block(batch)[:, pattern.active_functions[batch.index]]

    def _phase_elements(self) -> int:
        """Grid-point x function elements one Sumup/H pass contracts."""
        builder = self._require_bound()
        if builder.pattern is not None:
            return builder.pattern.stats.elements_active
        return builder.grid.n_points * builder.basis.n_basis

    def _record_screened_batch(self, batch: GridBatch) -> None:
        """Charge one screened batch's block accounting to the profile."""
        pattern = self._require_pattern()
        builder = self._require_bound()
        n_active = pattern.n_active(batch.index)
        self.profile.record_screening(
            blocks_active=len(pattern.active_atoms[batch.index]),
            blocks_dense=builder.basis.structure.n_atoms,
            elements_active=batch.n_points * n_active,
            elements_dense=batch.n_points * builder.basis.n_basis,
        )

    def density_on_grid(self, density_matrix: np.ndarray) -> np.ndarray:
        """Pointwise density for one density matrix (Sumup phase)."""
        builder = self._require_bound()
        p = self._check_density_matrix(density_matrix)
        elements = self._phase_elements()
        start = time.perf_counter()
        with obs_span("Sumup", category="backend", backend=self.name):
            out = self._density_impl(p)
        self.profile.record("Sumup", elements, time.perf_counter() - start)
        obs_counter("backend.Sumup.calls")
        obs_counter("backend.Sumup.elements", elements)
        return out

    def potential_matrix(self, potential_values: np.ndarray) -> np.ndarray:
        """``<chi_mu | v | chi_nu>`` for a pointwise potential (H phase)."""
        builder = self._require_bound()
        v = self._check_potential(potential_values)
        elements = self._phase_elements()
        start = time.perf_counter()
        with obs_span("H", category="backend", backend=self.name):
            out = self._potential_impl(v)
        self.profile.record("H", elements, time.perf_counter() - start)
        obs_counter("backend.H.calls")
        obs_counter("backend.H.elements", elements)
        return out

    def first_order_dm(
        self,
        h1: np.ndarray,
        inv_gaps: np.ndarray,
        c_occ: np.ndarray,
        c_virt: np.ndarray,
        f_occ: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(U, C^(1), P^(1))`` from a response Hamiltonian (DM phase)."""
        builder = self._require_bound()
        start = time.perf_counter()
        with obs_span("DM", category="backend", backend=self.name):
            out = self._dm_impl(h1, inv_gaps, c_occ, c_virt, f_occ)
        # The Sternheimer rotation itself stays dense (orbital space),
        # but under screening the response Hamiltonian only carries the
        # pattern's atom-pair blocks — charge just those elements.
        if builder.pattern is not None:
            elements = builder.pattern.matrix_nnz
        else:
            elements = int(np.asarray(h1).size)
        self.profile.record("DM", elements, time.perf_counter() - start)
        obs_counter("backend.DM.calls")
        obs_counter("backend.DM.elements", elements)
        return out

    # ------------------------------------------------------------------
    # Shared implementations (batch-ordered; overridable for devices)
    # ------------------------------------------------------------------
    def _density_impl(self, p: np.ndarray) -> np.ndarray:
        builder = self._require_bound()
        if builder.pattern is not None:
            return self._density_impl_screened(p)
        out = np.zeros(builder.grid.n_points)
        for b in builder.batches:
            out[b.point_indices] = density_block(self.basis_block(b), p)
        return out

    def _density_impl_screened(self, p: np.ndarray) -> np.ndarray:
        """Block-sparse Sumup: contract only each batch's active set.

        Gathers the compact chi block and the matching ``P`` sub-block,
        runs the *same* :func:`density_block` kernel, and scatters into
        the batch's grid points — identical batch order and identical
        compact math across every backend, so screened engines stay
        bit-exact with each other.
        """
        builder = self._require_bound()
        pattern = builder.pattern
        out = np.zeros(builder.grid.n_points)
        for b in builder.batches:
            self._record_screened_batch(b)
            act = pattern.active_functions[b.index]
            if act.size == 0:
                continue
            phi = self.basis_block_active(b)
            out[b.point_indices] = density_block(phi, p[np.ix_(act, act)])
        obs_counter("backend.screen.blocks_evaluated",
                    self.profile.screen_blocks_evaluated)
        return out

    def _potential_impl(self, v: np.ndarray) -> np.ndarray:
        from repro.utils.linalg import symmetrize

        builder = self._require_bound()
        if builder.pattern is not None:
            return self._potential_impl_screened(v)
        wv = builder.grid.weights * v
        nb = builder.basis.n_basis
        acc = np.zeros((nb, nb))
        for b in builder.batches:
            acc += potential_block(self.basis_block(b), wv[b.point_indices])
        return symmetrize(acc)

    def _potential_impl_screened(self, v: np.ndarray) -> np.ndarray:
        """Block-sparse H integration: scatter-add into active blocks.

        Each batch contributes only its ``(n_active, n_active)`` block,
        scatter-added into the dense accumulator at the active indices;
        matrix entries outside the pattern's atom-pair block mask stay
        exactly zero.
        """
        from repro.utils.linalg import symmetrize

        builder = self._require_bound()
        pattern = builder.pattern
        wv = builder.grid.weights * v
        nb = builder.basis.n_basis
        acc = np.zeros((nb, nb))
        for b in builder.batches:
            self._record_screened_batch(b)
            act = pattern.active_functions[b.index]
            if act.size == 0:
                continue
            phi = self.basis_block_active(b)
            acc[np.ix_(act, act)] += potential_block(phi, wv[b.point_indices])
        obs_counter("backend.screen.blocks_evaluated",
                    self.profile.screen_blocks_evaluated)
        return symmetrize(acc)

    def _dm_impl(
        self,
        h1: np.ndarray,
        inv_gaps: np.ndarray,
        c_occ: np.ndarray,
        c_virt: np.ndarray,
        f_occ: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return first_order_dm_dense(h1, inv_gaps, c_occ, c_virt, f_occ)

    # ------------------------------------------------------------------
    def _evaluate_block(
        self, batch: GridBatch, active: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Evaluate one batch's basis block for real (profiled).

        With *active* (the pattern's sorted index array for this batch),
        only the active atoms are evaluated and the compact column block
        is returned.  Per-shell evaluation does not depend on which
        other atoms are requested, so the compact block is bitwise equal
        to slicing those columns out of a full evaluation.
        """
        builder = self._require_bound()
        start = time.perf_counter()
        if active is None:
            phi_b = builder.basis.evaluate(
                builder.grid.points[batch.point_indices],
                atoms=batch.relevant_atoms,
            )
            elements = batch.n_points * builder.basis.n_basis
        else:
            pattern = self._require_pattern()
            phi_b = builder.basis.evaluate(
                builder.grid.points[batch.point_indices],
                atoms=pattern.active_atoms[batch.index],
            )[:, active]
            elements = batch.n_points * int(active.size)
        self.profile.record("basis", elements, time.perf_counter() - start)
        obs_counter("backend.basis.blocks_evaluated")
        obs_counter("backend.basis.elements", elements)
        return phi_b

    def __repr__(self) -> str:
        bound = "bound" if self.builder is not None else "unbound"
        return f"{type(self).__name__}(name={self.name!r}, {bound})"

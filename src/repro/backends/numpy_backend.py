"""The reference backend: the full-grid cached basis table.

This is the seed repo's behaviour made explicit: under the builder's
cache limit the whole ``(n_points, n_basis)`` chi table is materialized
once and every phase operation slices per-batch rows out of it —
O(grid) memory, zero re-evaluation.  Over the limit the old code
rebuilt the full table on *every* call; this backend instead falls back
to direct per-batch evaluation (no giant allocation, but still one
evaluation per call — the ``batched`` backend's LRU cache is the real
fix for that regime).
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import ExecutionBackend
from repro.backends.registry import register_backend
from repro.grids.batching import GridBatch


@register_backend("numpy")
class NumpyBackend(ExecutionBackend):
    """Full-grid table backend (the bit-exact reference)."""

    def basis_block(self, batch: GridBatch) -> np.ndarray:
        builder = self._require_bound()
        if builder.table_cache_enabled:
            # Rows were written by exactly the same per-batch evaluation
            # this slice replays, so the values are bitwise identical to
            # a fresh evaluation — the parity anchor for all backends.
            return builder.basis_values()[batch.point_indices]
        return self._evaluate_block(batch)

    def basis_block_active(self, batch: GridBatch) -> np.ndarray:
        builder = self._require_bound()
        active = self._require_pattern().active_functions[batch.index]
        if builder.table_cache_enabled:
            # Cached full-table rows are *sliced* by the active list —
            # never re-evaluated — so table caching and screening
            # compose: the cache hit survives, only the columns shrink.
            return builder.basis_values()[batch.point_indices][:, active]
        return self._evaluate_block(batch, active=active)

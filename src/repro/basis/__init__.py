"""Numeric atom-centered orbital (NAO) basis machinery.

Everything the all-electron pipeline needs to represent Kohn-Sham states
in the finite basis of Eq. (4): logarithmic radial grids, our own cubic
spline kernel (the object of the paper's spline-reuse optimization),
real spherical harmonics for the multipole expansion, and the per-element
"light" basis sets.
"""

from repro.basis.spline import CubicSpline, spline_coefficient_nbytes
from repro.basis.radial import LogRadialGrid
from repro.basis.ylm import real_spherical_harmonics, n_lm, lm_index, lm_pairs
from repro.basis.solid_harmonics import (
    MAX_BASIS_L,
    solid_harmonics,
    solid_harmonics_with_gradients,
)
from repro.basis.sets import RadialShell, light_shells, radial_function
from repro.basis.basis_set import BasisFunction, BasisSet, build_basis

__all__ = [
    "CubicSpline",
    "spline_coefficient_nbytes",
    "LogRadialGrid",
    "real_spherical_harmonics",
    "n_lm",
    "lm_index",
    "lm_pairs",
    "MAX_BASIS_L",
    "solid_harmonics",
    "solid_harmonics_with_gradients",
    "RadialShell",
    "light_shells",
    "radial_function",
    "BasisFunction",
    "BasisSet",
    "build_basis",
]

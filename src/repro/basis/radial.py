"""Logarithmic radial grids for tabulating atom-centered functions.

All radial quantities (basis radial parts, multipole densities, partial
Hartree potentials) live on per-species logarithmic grids
``r_i = r_min * (r_max / r_min)^(i / (n-1))`` — dense near the nucleus
where all-electron functions vary fast, sparse in the tail.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class LogRadialGrid:
    """A logarithmic radial mesh with quadrature weights.

    Attributes
    ----------
    r:
        Mesh points, strictly increasing, in Bohr.
    dr:
        ``dr/di`` at each mesh point: for the log mesh this is ``h * r``
        with ``h = ln(r_max/r_min)/(n-1)``, so trapezoid sums in the
        index variable integrate ``f(r) dr`` correctly.
    """

    r: np.ndarray
    dr: np.ndarray = field(repr=False)

    @staticmethod
    def make(r_min: float, r_max: float, n: int) -> "LogRadialGrid":
        """Construct the mesh from its extents and point count."""
        if not (0.0 < r_min < r_max):
            raise ValueError(f"need 0 < r_min < r_max, got {r_min}, {r_max}")
        if n < 4:
            raise ValueError(f"radial grid needs >= 4 points, got {n}")
        h = np.log(r_max / r_min) / (n - 1)
        i = np.arange(n, dtype=float)
        r = r_min * np.exp(h * i)
        r_arr = np.asarray(r)
        r_arr.setflags(write=False)
        dr = h * r_arr
        dr.setflags(write=False)
        return LogRadialGrid(r=r_arr, dr=dr)

    @staticmethod
    def for_species(z: int, n: int, r_max: float = 20.0) -> "LogRadialGrid":
        """Species-adapted mesh: inner point scales like 1/Z.

        Heavier nuclei need resolution closer to the origin (their 1s
        orbital decays like ``exp(-Z r)``).
        """
        r_min = 1e-4 / max(z, 1)
        return LogRadialGrid.make(r_min, r_max, n)

    @property
    def n(self) -> int:
        return self.r.shape[0]

    def integrate(self, f: np.ndarray) -> np.ndarray:
        """Trapezoid integral of ``f(r) dr`` over the whole mesh.

        *f* may have leading radial axis plus trailing axes; the result
        drops the radial axis.  Note this integrates ``f dr`` — callers
        integrating densities must fold in the ``r^2`` volume factor.
        """
        f = np.asarray(f)
        if f.shape[0] != self.n:
            raise ValueError(f"field has {f.shape[0]} radial values, grid has {self.n}")
        w = self.dr.reshape(-1, *([1] * (f.ndim - 1)))
        fw = f * w
        return np.trapz(fw, axis=0) if not hasattr(np, "trapezoid") else np.trapezoid(fw, axis=0)

    def cumulative_integral(self, f: np.ndarray) -> np.ndarray:
        """Running integral ``F_k = int_{r_0}^{r_k} f dr`` (trapezoid)."""
        f = np.asarray(f)
        if f.shape[0] != self.n:
            raise ValueError(f"field has {f.shape[0]} radial values, grid has {self.n}")
        w = self.dr.reshape(-1, *([1] * (f.ndim - 1)))
        fw = f * w
        out = np.zeros_like(fw)
        np.cumsum(0.5 * (fw[1:] + fw[:-1]), axis=0, out=out[1:])
        return out

"""Real solid harmonics S_lm = r^l Y_lm and their gradients, l <= 2.

Basis functions are evaluated as ``chi = g_l(r) * S_lm(r_vec)`` with
``g_l(r) = R(r)/r^l`` splined radially; since S_lm are polynomials this
form is smooth through the nucleus and its gradient is

    grad chi = g_l'(r) * (r_vec/r) * S_lm + g_l(r) * grad S_lm .

The basis only uses s, p and d channels ("light" NAO sets), so the nine
polynomials and their (linear) gradients are hard-coded; the general
machinery in :mod:`repro.basis.ylm` covers the high-l multipole needs
where gradients are never required.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Highest angular momentum supported for *basis* functions.
MAX_BASIS_L: int = 2

_C00 = 0.5 / np.sqrt(np.pi)  # 1/sqrt(4 pi)
_C1 = np.sqrt(3.0 / (4.0 * np.pi))
_C2A = 0.5 * np.sqrt(15.0 / np.pi)  # xy, yz, xz
_C20 = 0.25 * np.sqrt(5.0 / np.pi)  # 3z^2 - r^2
_C22 = 0.25 * np.sqrt(15.0 / np.pi)  # x^2 - y^2


def solid_harmonics(rvec: np.ndarray, l_max: int = MAX_BASIS_L) -> np.ndarray:
    """Values of S_lm for l <= l_max at displacement vectors.

    Parameters
    ----------
    rvec:
        ``(n, 3)`` displacement vectors from the basis-function centre.
    l_max:
        0, 1 or 2.

    Returns
    -------
    ``(n, (l_max+1)^2)`` array in flat (l, m) order consistent with
    :func:`repro.basis.ylm.lm_index`.
    """
    if not 0 <= l_max <= MAX_BASIS_L:
        raise ValueError(f"solid harmonics hard-coded for l <= {MAX_BASIS_L}, got {l_max}")
    rvec = np.atleast_2d(np.asarray(rvec, dtype=float))
    x, y, z = rvec[:, 0], rvec[:, 1], rvec[:, 2]
    n = rvec.shape[0]
    out = np.empty((n, (l_max + 1) ** 2))
    out[:, 0] = _C00
    if l_max >= 1:
        out[:, 1] = _C1 * y  # (1,-1)
        out[:, 2] = _C1 * z  # (1, 0)
        out[:, 3] = _C1 * x  # (1, 1)
    if l_max >= 2:
        r2 = x * x + y * y + z * z
        out[:, 4] = _C2A * x * y          # (2,-2)
        out[:, 5] = _C2A * y * z          # (2,-1)
        out[:, 6] = _C20 * (3.0 * z * z - r2)  # (2, 0)
        out[:, 7] = _C2A * x * z          # (2, 1)
        out[:, 8] = _C22 * (x * x - y * y)     # (2, 2)
    return out


def solid_harmonics_with_gradients(
    rvec: np.ndarray, l_max: int = MAX_BASIS_L
) -> Tuple[np.ndarray, np.ndarray]:
    """Values and Cartesian gradients of S_lm, l <= l_max.

    Returns ``(values, gradients)`` with shapes ``(n, n_lm)`` and
    ``(n, n_lm, 3)``.
    """
    values = solid_harmonics(rvec, l_max)
    rvec = np.atleast_2d(np.asarray(rvec, dtype=float))
    x, y, z = rvec[:, 0], rvec[:, 1], rvec[:, 2]
    n = rvec.shape[0]
    grads = np.zeros((n, (l_max + 1) ** 2, 3))
    # l = 0: gradient is zero.
    if l_max >= 1:
        grads[:, 1, 1] = _C1  # d(y)/dy
        grads[:, 2, 2] = _C1  # d(z)/dz
        grads[:, 3, 0] = _C1  # d(x)/dx
    if l_max >= 2:
        grads[:, 4, 0] = _C2A * y
        grads[:, 4, 1] = _C2A * x
        grads[:, 5, 1] = _C2A * z
        grads[:, 5, 2] = _C2A * y
        grads[:, 6, 0] = -2.0 * _C20 * x
        grads[:, 6, 1] = -2.0 * _C20 * y
        grads[:, 6, 2] = 4.0 * _C20 * z
        grads[:, 7, 0] = _C2A * z
        grads[:, 7, 2] = _C2A * x
        grads[:, 8, 0] = 2.0 * _C22 * x
        grads[:, 8, 1] = -2.0 * _C22 * y
    return values, grads

"""Real spherical harmonics via stable normalized recursion.

Used by the multipole-expansion Hartree solver (Eqs. 8-9), which needs
values (no gradients) up to ``l_max`` ~ 6-8.  The functions returned are
orthonormal over the unit sphere:

    int Y_lm Y_l'm' dOmega = delta_ll' delta_mm'

Index convention throughout the library: ``(l, m) -> l^2 + l + m``,
which enumerates ``(0,0), (1,-1), (1,0), (1,1), (2,-2), ...`` — the
same (p, m) enumeration whose collapsed form the paper's Section 4.4
parallelizes.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


def n_lm(l_max: int) -> int:
    """Number of (l, m) channels with ``l <= l_max``."""
    if l_max < 0:
        raise ValueError(f"l_max must be >= 0, got {l_max}")
    return (l_max + 1) ** 2


def lm_index(l: int, m: int) -> int:
    """Flat index of channel (l, m): ``l^2 + l + m``."""
    if l < 0 or abs(m) > l:
        raise ValueError(f"invalid (l, m) = ({l}, {m})")
    return l * l + l + m


def lm_pairs(l_max: int) -> List[Tuple[int, int]]:
    """All (l, m) pairs in flat-index order."""
    return [(l, m) for l in range(l_max + 1) for m in range(-l, l + 1)]


def _normalized_legendre(cos_theta: np.ndarray, sin_theta: np.ndarray, l_max: int) -> np.ndarray:
    """Fully normalized associated Legendre functions P-bar_lm.

    Returns ``(n_points, l_max+1, l_max+1)`` with axis-1 = l, axis-2 = m
    (entries with m > l are zero).  Normalization folds in the
    ``sqrt((2l+1)/(4 pi) (l-m)!/(l+m)!)`` factor, keeping the recursion
    stable to high l.  The Condon-Shortley phase is omitted (real
    harmonics convention).
    """
    n = cos_theta.shape[0]
    p = np.zeros((n, l_max + 1, l_max + 1))
    p[:, 0, 0] = np.sqrt(1.0 / (4.0 * np.pi))
    # Diagonal: P-bar_mm.
    for m in range(1, l_max + 1):
        p[:, m, m] = np.sqrt((2.0 * m + 1.0) / (2.0 * m)) * sin_theta * p[:, m - 1, m - 1]
    # First off-diagonal: P-bar_{m+1, m}.
    for m in range(l_max):
        p[:, m + 1, m] = np.sqrt(2.0 * m + 3.0) * cos_theta * p[:, m, m]
    # General recursion in l.
    for m in range(l_max + 1):
        for l in range(m + 2, l_max + 1):
            a = np.sqrt((4.0 * l * l - 1.0) / (l * l - m * m))
            b = np.sqrt(((l - 1.0) ** 2 - m * m) / (4.0 * (l - 1.0) ** 2 - 1.0))
            p[:, l, m] = a * (cos_theta * p[:, l - 1, m] - b * p[:, l - 2, m])
    return p


def real_spherical_harmonics(directions: np.ndarray, l_max: int) -> np.ndarray:
    """Evaluate all real Y_lm with l <= l_max at unit (or any) vectors.

    Parameters
    ----------
    directions:
        ``(n_points, 3)`` array of direction vectors; they are
        normalized internally.  Zero vectors map to the +z direction
        (only the l = 0 channel is nonzero there in practice because
        callers multiply by radial functions that vanish at the origin
        for l > 0).
    l_max:
        Highest angular momentum.

    Returns
    -------
    ``(n_points, (l_max+1)^2)`` array in flat (l, m) order.
    """
    directions = np.atleast_2d(np.asarray(directions, dtype=float))
    if directions.shape[1] != 3:
        raise ValueError(f"directions must be (n, 3), got {directions.shape}")
    norms = np.linalg.norm(directions, axis=1)
    safe = norms > 1e-300
    unit = np.zeros_like(directions)
    unit[safe] = directions[safe] / norms[safe, None]
    unit[~safe] = (0.0, 0.0, 1.0)

    x, y, z = unit[:, 0], unit[:, 1], unit[:, 2]
    cos_theta = np.clip(z, -1.0, 1.0)
    sin_theta = np.sqrt(np.maximum(0.0, 1.0 - cos_theta**2))

    p = _normalized_legendre(cos_theta, sin_theta, l_max)

    # cos(m phi), sin(m phi) without computing phi: recurrences on
    # (cos phi, sin phi) = (x, y)/sin_theta; at the poles sin_theta = 0
    # and every m > 0 channel carries a sin_theta^m factor from P-bar,
    # so the arbitrary azimuth there is harmless.
    with np.errstate(invalid="ignore", divide="ignore"):
        cos_phi = np.where(sin_theta > 1e-12, x / np.maximum(sin_theta, 1e-300), 1.0)
        sin_phi = np.where(sin_theta > 1e-12, y / np.maximum(sin_theta, 1e-300), 0.0)

    n = directions.shape[0]
    cos_m = np.ones((n, l_max + 1))
    sin_m = np.zeros((n, l_max + 1))
    for m in range(1, l_max + 1):
        cos_m[:, m] = cos_m[:, m - 1] * cos_phi - sin_m[:, m - 1] * sin_phi
        sin_m[:, m] = sin_m[:, m - 1] * cos_phi + cos_m[:, m - 1] * sin_phi

    sqrt2 = np.sqrt(2.0)
    out = np.zeros((n, n_lm(l_max)))
    for l in range(l_max + 1):
        out[:, lm_index(l, 0)] = p[:, l, 0]
        for m in range(1, l + 1):
            out[:, lm_index(l, m)] = sqrt2 * p[:, l, m] * cos_m[:, m]
            out[:, lm_index(l, -m)] = sqrt2 * p[:, l, m] * sin_m[:, m]
    return out

"""Structure-wide NAO basis: construction, indexing and grid evaluation.

A :class:`BasisSet` flattens the per-atom shells of Eq. (4) into a single
index ``mu`` and evaluates ``chi_mu`` (and gradients) at arbitrary point
batches with cutoff screening — the primitive underneath every grid
integral in the DFT/DFPT pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.atoms.structure import Structure
from repro.basis.radial import LogRadialGrid
from repro.basis.sets import RadialShell, light_shells, radial_function
from repro.basis.solid_harmonics import solid_harmonics, solid_harmonics_with_gradients
from repro.basis.spline import CubicSpline
from repro.errors import BasisError

#: Knots for tabulating species radial functions.
_RADIAL_KNOTS: int = 320

#: Radial samples used when locating a shell's screened effective radius.
_SCREEN_SAMPLES: int = 512


def effective_shell_radius(
    g_spline: CubicSpline,
    cutoff: float,
    l: int,
    threshold: float,
    samples: int = _SCREEN_SAMPLES,
) -> float:
    """Largest radius where ``|g(r)| * max(r, 1)^l`` still reaches *threshold*.

    The amplitude proxy bounds ``|chi_mu| = |g(r)| |S_lm|`` up to an
    l-dependent constant (solid harmonics grow like ``r^l``), so a batch
    farther than this radius (plus the batch's bounding radius) sees only
    sub-threshold values of the shell's functions.  Monotone
    non-increasing in the threshold by construction: raising it can only
    shrink the set of surviving sample radii.  ``threshold <= 0`` returns
    the full cutoff (screening disabled).
    """
    if threshold <= 0.0:
        return float(cutoff)
    r = np.linspace(0.0, float(cutoff), samples)
    amp = np.abs(g_spline(r)) * np.maximum(r, 1.0) ** l
    above = np.nonzero(amp >= threshold)[0]
    return float(r[above[-1]]) if above.size else 0.0


@dataclass(frozen=True)
class BasisFunction:
    """One atom-centered orbital chi_mu = g_l(|r-R|) S_lm(r-R)."""

    index: int
    atom: int
    l: int
    m: int
    shell_label: str
    cutoff: float


@dataclass(frozen=True)
class _ShellInstance:
    """A species shell planted on a specific atom."""

    atom: int
    center: np.ndarray
    shell: RadialShell
    g_spline: CubicSpline
    cutoff: float
    first_index: int


class BasisSet:
    """All NAO basis functions of one structure.

    Built via :func:`build_basis`; evaluation methods are vectorized over
    points and screened by each shell's effective cutoff radius.
    """

    def __init__(self, structure: Structure, shells: List[_ShellInstance]) -> None:
        self.structure = structure
        self._shells = shells
        self.functions: List[BasisFunction] = []
        offsets = np.zeros(structure.n_atoms + 1, dtype=np.int64)
        for inst in shells:
            l = inst.shell.l
            for m in range(-l, l + 1):
                self.functions.append(
                    BasisFunction(
                        index=len(self.functions),
                        atom=inst.atom,
                        l=l,
                        m=m,
                        shell_label=inst.shell.label,
                        cutoff=inst.cutoff,
                    )
                )
            offsets[inst.atom + 1] += inst.shell.n_functions
        self.atom_offsets = np.cumsum(offsets)
        self.n_basis = len(self.functions)
        self.function_atoms = np.array([f.atom for f in self.functions], dtype=np.int64)
        # Per-atom reach of the farthest basis function (for sparsity).
        self.atom_cutoffs = np.zeros(structure.n_atoms)
        for inst in shells:
            self.atom_cutoffs[inst.atom] = max(self.atom_cutoffs[inst.atom], inst.cutoff)

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def functions_of_atom(self, atom: int) -> range:
        """Flat indices of the basis functions centred on *atom*."""
        return range(int(self.atom_offsets[atom]), int(self.atom_offsets[atom + 1]))

    def n_functions_of_atoms(self, atoms: Sequence[int]) -> int:
        """Total basis size of an atom subset."""
        return int(
            sum(self.atom_offsets[a + 1] - self.atom_offsets[a] for a in atoms)
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self, points: np.ndarray, atoms: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Values chi_mu(r) at *points*, ``(n_points, n_basis)``.

        If *atoms* is given, only functions on those atoms are evaluated
        (other columns stay zero) — the screened path used by batch-local
        integration.
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        values = np.zeros((points.shape[0], self.n_basis))
        atom_filter = None if atoms is None else set(int(a) for a in atoms)
        for inst in self._shells:
            if atom_filter is not None and inst.atom not in atom_filter:
                continue
            d = points - inst.center
            r = np.linalg.norm(d, axis=1)
            mask = r <= inst.cutoff
            if not np.any(mask):
                continue
            g = inst.g_spline(r[mask])
            l = inst.shell.l
            s_all = solid_harmonics(d[mask], l)
            s = s_all[:, l * l : (l + 1) ** 2]
            cols = slice(inst.first_index, inst.first_index + inst.shell.n_functions)
            values[np.nonzero(mask)[0], cols] = g[:, None] * s
        return values

    def evaluate_with_gradients(
        self, points: np.ndarray, atoms: Optional[Sequence[int]] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Values and gradients: ``(n_points, n_basis)``, ``(n_points, n_basis, 3)``."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        n_pts = points.shape[0]
        values = np.zeros((n_pts, self.n_basis))
        grads = np.zeros((n_pts, self.n_basis, 3))
        atom_filter = None if atoms is None else set(int(a) for a in atoms)
        for inst in self._shells:
            if atom_filter is not None and inst.atom not in atom_filter:
                continue
            d = points - inst.center
            r = np.linalg.norm(d, axis=1)
            mask = r <= inst.cutoff
            if not np.any(mask):
                continue
            rm = r[mask]
            dm = d[mask]
            g = inst.g_spline(rm)
            dg = inst.g_spline.derivative(rm)
            l = inst.shell.l
            s_all, grad_all = solid_harmonics_with_gradients(dm, l)
            s = s_all[:, l * l : (l + 1) ** 2]
            grad_s = grad_all[:, l * l : (l + 1) ** 2, :]
            # Unit radial direction; safe at the nucleus because dg -> 0
            # there for the splined smooth g_l.
            safe_r = np.maximum(rm, 1e-12)
            rhat = dm / safe_r[:, None]
            rows = np.nonzero(mask)[0]
            cols = slice(inst.first_index, inst.first_index + inst.shell.n_functions)
            values[rows, cols] = g[:, None] * s
            grads[rows, cols, :] = (
                (dg[:, None] * s)[:, :, None] * rhat[:, None, :]
                + g[:, None, None] * grad_s
            )
        return values, grads

    # ------------------------------------------------------------------
    # Screening
    # ------------------------------------------------------------------
    def screened_function_cutoffs(self, threshold: float) -> np.ndarray:
        """Per-function effective reach at a screening threshold.

        Shape ``(n_basis,)``; every function of a shell shares the
        shell's :func:`effective_shell_radius`.  ``threshold <= 0``
        reproduces the full cutoffs (no screening).
        """
        out = np.empty(self.n_basis)
        for inst in self._shells:
            r_eff = effective_shell_radius(
                inst.g_spline, inst.cutoff, inst.shell.l, threshold
            )
            out[inst.first_index : inst.first_index + inst.shell.n_functions] = r_eff
        return out

    def screened_atom_cutoffs(self, threshold: float) -> np.ndarray:
        """Per-atom max of the screened function reaches, ``(n_atoms,)``."""
        out = np.zeros(self.structure.n_atoms)
        np.maximum.at(
            out, self.function_atoms, self.screened_function_cutoffs(threshold)
        )
        return out

    def interaction_pairs(self) -> List[Tuple[int, int]]:
        """Atom pairs (i <= j) whose basis functions overlap somewhere.

        Two atoms interact when their cutoff spheres intersect; this is
        the sparsity pattern of H and S at the atom-block level.
        """
        coords = self.structure.coords
        cut = self.atom_cutoffs
        pairs: List[Tuple[int, int]] = []
        # Cell list with the maximum possible interaction range.
        reach = 2.0 * float(cut.max())
        cell = max(reach, 1e-6)
        keys = np.floor(coords / cell).astype(np.int64)
        buckets: Dict[Tuple[int, int, int], List[int]] = {}
        for idx, key in enumerate(map(tuple, keys)):
            buckets.setdefault(key, []).append(idx)
        offsets = [
            (dx, dy, dz)
            for dx in (-1, 0, 1)
            for dy in (-1, 0, 1)
            for dz in (-1, 0, 1)
        ]
        for i in range(self.structure.n_atoms):
            kx, ky, kz = keys[i]
            for off in offsets:
                for j in buckets.get((kx + off[0], ky + off[1], kz + off[2]), ()):
                    if j < i:
                        continue
                    dist = float(np.linalg.norm(coords[i] - coords[j]))
                    if dist <= cut[i] + cut[j]:
                        pairs.append((i, j))
        return pairs


# Species-level cache: the radial tables depend only on the element.
_SPECIES_CACHE: Dict[str, List[Tuple[RadialShell, CubicSpline, float]]] = {}


def _species_shells(symbol: str, z: int) -> List[Tuple[RadialShell, CubicSpline, float]]:
    if symbol not in _SPECIES_CACHE:
        grid = LogRadialGrid.for_species(z, _RADIAL_KNOTS, r_max=12.0)
        entries = []
        for shell in light_shells(symbol):
            spline, cutoff = radial_function(shell, grid)
            entries.append((shell, spline, cutoff))
        _SPECIES_CACHE[symbol] = entries
    return _SPECIES_CACHE[symbol]


def build_basis(structure: Structure, level: str = "light") -> BasisSet:
    """Construct the NAO basis for a structure.

    Currently only the ``"light"`` level exists; the count per element is
    cross-checked against :attr:`Element.n_basis_light`.
    """
    if level != "light":
        raise BasisError(f"only the 'light' basis level is implemented, got {level!r}")
    shells: List[_ShellInstance] = []
    next_index = 0
    for atom, (sym, elem) in enumerate(zip(structure.symbols, structure.elements)):
        count = 0
        for shell, spline, cutoff in _species_shells(sym, elem.z):
            shells.append(
                _ShellInstance(
                    atom=atom,
                    center=structure.coords[atom],
                    shell=shell,
                    g_spline=spline,
                    cutoff=cutoff,
                    first_index=next_index,
                )
            )
            next_index += shell.n_functions
            count += shell.n_functions
        if count != elem.n_basis_light:
            raise BasisError(
                f"basis count mismatch for {sym}: built {count}, "
                f"element table says {elem.n_basis_light}"
            )
    return BasisSet(structure, shells)

"""Natural cubic splines — the library's own implementation.

Cubic splines are the workhorse of the all-electron machinery: radial
basis functions, multipole densities (``rho_multipole_spl``) and partial
Hartree potentials (``delta_v_hart_part_spl``) are all stored as spline
coefficients, and the paper's locality strategy (Fig. 4/9(c)) and kernel
fusion (Fig. 12) are about who computes and who reuses these
coefficients.  We therefore implement them ourselves rather than hiding
the construction inside scipy, and we expose the coefficient-array
byte size that Fig. 12(a) reports.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _solve_natural_second_derivatives(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Second derivatives at the knots for natural boundary conditions.

    Solves the standard tridiagonal system with the Thomas algorithm,
    vectorized over trailing axes of *y* (shape ``(n, ...)``).
    """
    n = x.shape[0]
    h = np.diff(x)  # (n-1,)
    # Right-hand side: 6 * divided-difference of first derivatives.
    dy = np.diff(y, axis=0) / h.reshape(-1, *([1] * (y.ndim - 1)))
    rhs = 6.0 * np.diff(dy, axis=0)  # (n-2, ...)

    # Tridiagonal system: sub = h[:-1], diag = 2(h[i]+h[i+1]), sup = h[1:]
    diag = 2.0 * (h[:-1] + h[1:]).copy()
    sup = h[1:].copy()
    sub = h[:-1].copy()

    m = np.zeros_like(y)
    if n > 2:
        # Forward elimination.
        c_prime = np.empty(n - 2)
        d_prime = np.empty((n - 2,) + y.shape[1:])
        c_prime[0] = sup[0] / diag[0]
        d_prime[0] = rhs[0] / diag[0]
        for i in range(1, n - 2):
            denom = diag[i] - sub[i] * c_prime[i - 1]
            c_prime[i] = sup[i] / denom
            d_prime[i] = (rhs[i] - sub[i] * d_prime[i - 1]) / denom
        # Back substitution into the interior knots.
        m[n - 2] = d_prime[n - 3]
        for i in range(n - 4, -1, -1):
            m[i + 1] = d_prime[i] - c_prime[i] * m[i + 2]
    return m


class CubicSpline:
    """Natural cubic spline through ``(x, y)`` knots.

    Supports vector-valued data: *y* may be ``(n,)`` or ``(n, k)``, in
    which case evaluation returns the matching trailing shape.  Outside
    the knot range the spline is clamped to the boundary values (the
    physical radial functions it represents vanish beyond their cutoff,
    which the callers encode by ending the knot tables at zero).
    """

    def __init__(self, x: np.ndarray, y: np.ndarray) -> None:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 1 or x.shape[0] < 2:
            raise ValueError("spline needs at least two knots in a 1-D abscissa")
        if y.shape[0] != x.shape[0]:
            raise ValueError(
                f"knot count mismatch: {x.shape[0]} abscissae, {y.shape[0]} ordinates"
            )
        if np.any(np.diff(x) <= 0.0):
            raise ValueError("spline abscissae must be strictly increasing")
        self.x = x
        self.y = y
        self.m = _solve_natural_second_derivatives(x, y)  # second derivatives

    @property
    def n_knots(self) -> int:
        return self.x.shape[0]

    @property
    def coefficient_nbytes(self) -> int:
        """Bytes held by the spline coefficient tables (x, y, y'')."""
        return self.x.nbytes + self.y.nbytes + self.m.nbytes

    def _locate(self, t: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        idx = np.searchsorted(self.x, t, side="right") - 1
        idx = np.clip(idx, 0, self.n_knots - 2)
        return idx, np.clip(t, self.x[0], self.x[-1])

    def __call__(self, t: np.ndarray) -> np.ndarray:
        """Evaluate the spline at points *t* (any shape)."""
        t = np.asarray(t, dtype=float)
        flat = t.ravel()
        idx, tc = self._locate(flat)
        x0 = self.x[idx]
        x1 = self.x[idx + 1]
        h = x1 - x0
        a = (x1 - tc) / h
        b = (tc - x0) / h
        shape_tail = ([1] * (self.y.ndim - 1))
        a_ = a.reshape(-1, *shape_tail)
        b_ = b.reshape(-1, *shape_tail)
        h_ = h.reshape(-1, *shape_tail)
        val = (
            a_ * self.y[idx]
            + b_ * self.y[idx + 1]
            + ((a_**3 - a_) * self.m[idx] + (b_**3 - b_) * self.m[idx + 1])
            * (h_**2)
            / 6.0
        )
        return val.reshape(t.shape + self.y.shape[1:])

    def derivative(self, t: np.ndarray) -> np.ndarray:
        """First derivative of the spline at points *t*."""
        t = np.asarray(t, dtype=float)
        flat = t.ravel()
        idx, tc = self._locate(flat)
        x0 = self.x[idx]
        x1 = self.x[idx + 1]
        h = x1 - x0
        a = (x1 - tc) / h
        b = (tc - x0) / h
        shape_tail = ([1] * (self.y.ndim - 1))
        a_ = a.reshape(-1, *shape_tail)
        b_ = b.reshape(-1, *shape_tail)
        h_ = h.reshape(-1, *shape_tail)
        der = (
            (self.y[idx + 1] - self.y[idx]) / h_
            + (-(3.0 * a_**2 - 1.0) * self.m[idx] + (3.0 * b_**2 - 1.0) * self.m[idx + 1])
            * h_
            / 6.0
        )
        return der.reshape(t.shape + self.y.shape[1:])


def spline_coefficient_nbytes(n_knots: int, n_channels: int) -> int:
    """Predicted coefficient storage for a vector-valued spline.

    Matches :attr:`CubicSpline.coefficient_nbytes`: one shared abscissa
    plus value and second-derivative tables per channel, float64.
    """
    if n_knots < 2 or n_channels < 1:
        raise ValueError("need n_knots >= 2 and n_channels >= 1")
    return 8 * (n_knots + 2 * n_knots * n_channels)

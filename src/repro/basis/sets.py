"""Per-element "light" NAO shell definitions and radial-function builder.

Radial parts are Slater-type functions ``R_nl(r) = N r^(n-1) e^(-zeta r)``
with Slater-rule effective exponents, multiplied by a smooth confinement
window (the NAO trademark: strictly compact support, which is what makes
the Hamiltonian sparse and the locality mapping meaningful), tabulated on
the species' logarithmic mesh and splined.

The shell lists must stay consistent with
:attr:`repro.atoms.element.Element.n_basis_light`; a unit test enforces it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.basis.radial import LogRadialGrid
from repro.basis.spline import CubicSpline
from repro.errors import BasisError


@dataclass(frozen=True)
class RadialShell:
    """One (n, l) shell with a Slater-type exponent."""

    n: int
    l: int
    zeta: float
    label: str

    def __post_init__(self) -> None:
        if self.l >= self.n:
            raise BasisError(f"shell {self.label}: need l < n, got l={self.l}, n={self.n}")
        if self.zeta <= 0.0:
            raise BasisError(f"shell {self.label}: exponent must be positive")

    @property
    def n_functions(self) -> int:
        """Number of m-channels: 2l + 1."""
        return 2 * self.l + 1


#: "Light" shells per element.  Minimal occupied set plus one diffuse s
#: and one d polarization shell (plus valence p for S), sized to match
#: Element.n_basis_light.
_LIGHT_SHELLS: Dict[str, List[RadialShell]] = {
    "H": [
        RadialShell(1, 0, 1.00, "H 1s"),
        RadialShell(2, 0, 0.65, "H 2s"),
        RadialShell(2, 1, 0.80, "H 2p"),
    ],
    "C": [
        RadialShell(1, 0, 5.70, "C 1s"),
        RadialShell(2, 0, 1.625, "C 2s"),
        RadialShell(2, 1, 1.625, "C 2p"),
        RadialShell(3, 0, 0.90, "C 3s"),
        RadialShell(3, 2, 1.80, "C 3d"),
    ],
    "N": [
        RadialShell(1, 0, 6.70, "N 1s"),
        RadialShell(2, 0, 1.95, "N 2s"),
        RadialShell(2, 1, 1.95, "N 2p"),
        RadialShell(3, 0, 1.05, "N 3s"),
        RadialShell(3, 2, 2.10, "N 3d"),
    ],
    "O": [
        RadialShell(1, 0, 7.70, "O 1s"),
        RadialShell(2, 0, 2.275, "O 2s"),
        RadialShell(2, 1, 2.275, "O 2p"),
        RadialShell(3, 0, 1.20, "O 3s"),
        RadialShell(3, 2, 2.40, "O 3d"),
    ],
    "S": [
        RadialShell(1, 0, 15.70, "S 1s"),
        RadialShell(2, 0, 5.925, "S 2s"),
        RadialShell(2, 1, 5.925, "S 2p"),
        RadialShell(3, 0, 1.817, "S 3s"),
        RadialShell(3, 1, 1.817, "S 3p"),
        RadialShell(4, 0, 0.90, "S 4s"),
        RadialShell(3, 2, 1.40, "S 3d"),
    ],
}

#: Confinement window (Bohr): full strength inside ONSET, zero at CUT.
CONFINE_ONSET: float = 7.0
CONFINE_CUT: float = 9.0


def light_shells(symbol: str) -> List[RadialShell]:
    """Shell list for one element's light basis."""
    try:
        return list(_LIGHT_SHELLS[symbol])
    except KeyError:
        raise BasisError(f"no light basis defined for element {symbol!r}") from None


def confinement_window(r: np.ndarray) -> np.ndarray:
    """Smooth cos^2 cutoff: 1 below ONSET, 0 beyond CUT."""
    r = np.asarray(r, dtype=float)
    t = np.clip((r - CONFINE_ONSET) / (CONFINE_CUT - CONFINE_ONSET), 0.0, 1.0)
    return np.cos(0.5 * np.pi * t) ** 2


def radial_function(
    shell: RadialShell, grid: LogRadialGrid
) -> Tuple[CubicSpline, float]:
    """Tabulated, confined, normalized g_l(r) = R_nl(r) / r^l.

    Returns ``(spline_of_g_l, effective_cutoff_radius)``.  The spline is
    over the species' logarithmic mesh extended by a final zero knot at
    CONFINE_CUT so evaluation clamps to exactly zero outside; the
    effective cutoff is the radius beyond which the confined function's
    normalized magnitude stays below 1e-8 (used for neighbour screening).
    """
    r = grid.r
    # R(r) = r^(n-1) e^(-zeta r) * window; g_l = R / r^l = r^(n-1-l) e^..
    power = shell.n - 1 - shell.l
    g = r**power * np.exp(-shell.zeta * r) * confinement_window(r)
    radial = g * r**shell.l  # full R(r) for normalization

    norm2 = grid.integrate(radial**2 * r**2)
    if norm2 <= 0.0:
        raise BasisError(f"shell {shell.label}: zero norm on radial grid")
    g = g / math.sqrt(norm2)
    radial = radial / math.sqrt(norm2)

    # Effective cutoff for screening: last radius with |R| above threshold.
    significant = np.nonzero(np.abs(radial) * r > 1e-8)[0]
    cutoff = float(r[significant[-1]]) if significant.size else float(r[0])
    cutoff = min(cutoff, CONFINE_CUT)

    # Append an exact-zero knot at CONFINE_CUT if the mesh ends before it,
    # so clamped evaluation beyond the mesh returns ~0, and force the
    # tabulated tail to zero beyond the window.
    x = r
    y = g.copy()
    y[r >= CONFINE_CUT] = 0.0
    if x[-1] < CONFINE_CUT:
        x = np.append(x, CONFINE_CUT)
        y = np.append(y, 0.0)
    return CubicSpline(x, y), cutoff

"""Collective-communication schemes of Section 3.2.

Three ways to synthesize the per-rank partial ``rho_multipole`` rows:

* :class:`BaselineRowwiseAllreduce` — one AllReduce per row (the
  artifact's original behaviour),
* :class:`PackedAllreduce` — rows fused into packs bounded by the
  30 MB heuristic (Section 3.2.1),
* :class:`PackedHierarchicalAllreduce` — packs synthesized first inside
  each node through an MPI-SHM window, then across one leader per node
  (Section 3.2.2; requires shared-memory windows, hence HPC #2 only).

Every scheme both *executes* on real per-rank numpy data (results are
asserted equal across schemes in the tests) and *estimates* model time
at arbitrary scale for the Fig. 10 sweeps.
"""

from repro.comm.schemes import (
    ReductionReport,
    ReductionScheme,
    BaselineRowwiseAllreduce,
    PackedAllreduce,
    PackedHierarchicalAllreduce,
    PACK_LIMIT_BYTES,
    rows_per_pack,
)
from repro.comm.resilient import ResilientReduction, default_ladder

__all__ = [
    "ReductionReport",
    "ReductionScheme",
    "BaselineRowwiseAllreduce",
    "PackedAllreduce",
    "PackedHierarchicalAllreduce",
    "ResilientReduction",
    "default_ladder",
    "PACK_LIMIT_BYTES",
    "rows_per_pack",
]

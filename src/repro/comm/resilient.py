"""Graceful degradation of the reduction schemes under faults.

:class:`ResilientReduction` wraps an ordered ladder of
:class:`~repro.comm.schemes.ReductionScheme`\\ s — by default
``packed_hierarchical -> packed -> baseline`` (the hierarchical rung is
skipped on machines without shared-memory windows).  Transient faults
are absorbed inside :class:`~repro.runtime.simmpi.SimComm` by retry +
backoff; only *persistent* failures surface here, as
:class:`~repro.errors.CollectiveTimeoutError` (a collective that never
recovers) or :class:`~repro.errors.ShmCorruptionError` (a damaged
shared window).  The wrapper then falls back one rung and redoes the
reduction, recording the degradation path in the cluster's
:class:`~repro.runtime.simmpi.CommStats` — which is exactly what the
chaos suite asserts on.

Bit-exactness note: the packed and baseline rungs accumulate in the
same rank-ascending order, so degrading between them cannot change a
single bit of the result.  The hierarchical rung reassociates the sum
(node-wise first), so a degradation *from* it reproduces the flat
schemes' bits instead — still deterministic for a fixed fault plan.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.comm.schemes import (
    BaselineRowwiseAllreduce,
    PackedAllreduce,
    PackedHierarchicalAllreduce,
    ReductionReport,
    ReductionScheme,
)
from repro.errors import (
    CollectiveTimeoutError,
    CommunicationError,
    RankFailureError,
    ShmCorruptionError,
)
from repro.obs.tracer import obs_span, trace_context
from repro.runtime.machines import MachineSpec
from repro.runtime.simmpi import SimCluster

#: Failures that justify degrading to a simpler scheme (anything else
#: is a programming error and propagates).
DEGRADABLE_FAULTS = (CollectiveTimeoutError, ShmCorruptionError, RankFailureError)


def default_ladder(machine: MachineSpec) -> List[ReductionScheme]:
    """The paper's schemes, fastest first, capability-filtered."""
    ladder: List[ReductionScheme] = []
    if machine.shm_windows:
        ladder.append(PackedHierarchicalAllreduce())
    ladder.append(PackedAllreduce())
    ladder.append(BaselineRowwiseAllreduce())
    return ladder


class ResilientReduction(ReductionScheme):
    """Run a scheme ladder, degrading one rung per persistent fault."""

    name = "resilient"

    def __init__(self, schemes: Optional[Sequence[ReductionScheme]] = None) -> None:
        self.schemes = list(schemes) if schemes is not None else None

    def _ladder(self, machine: MachineSpec) -> List[ReductionScheme]:
        if self.schemes is not None:
            ladder = [
                s
                for s in self.schemes
                if machine.shm_windows or not isinstance(s, PackedHierarchicalAllreduce)
            ]
        else:
            ladder = default_ladder(machine)
        if not ladder:
            raise CommunicationError(
                f"no reduction scheme is applicable on {machine.name}"
            )
        return ladder

    def reduce(self, cluster: SimCluster, per_rank_rows: Sequence[np.ndarray]):
        ladder = self._ladder(cluster.machine)
        last_error: Optional[Exception] = None
        for position, scheme in enumerate(ladder):
            try:
                with trace_context(scheme=scheme.name), obs_span(
                    f"reduce:{scheme.name}", category="comm", scheme=scheme.name
                ):
                    out, report = scheme.reduce(cluster, per_rank_rows)
            except DEGRADABLE_FAULTS as exc:
                last_error = exc
                if position + 1 < len(ladder):
                    cluster.record_degradation(
                        f"{scheme.name}->{ladder[position + 1].name}: {exc}"
                    )
                continue
            return out, report
        raise CommunicationError(
            f"all {len(ladder)} reduction schemes exhausted under faults "
            f"(last: {last_error})"
        )

    def estimate(
        self, machine: MachineSpec, n_ranks: int, n_rows: int, row_bytes: int
    ) -> ReductionReport:
        """Fault-free cost: the primary (fastest applicable) rung."""
        return self._ladder(machine)[0].estimate(machine, n_ranks, n_rows, row_bytes)

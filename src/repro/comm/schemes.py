"""Executable + estimable reduction schemes for ``rho_multipole``.

The data model mirrors the artifact: the multipole array has ``n_rows``
independent rows (one per atom) of ``row_bytes`` each, every rank holds
a partial contribution to every row, and all copies must be synthesized
(summed) on all ranks after the response-density phase.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import CommunicationError
from repro.runtime.costmodel import CommCostModel
from repro.runtime.machines import MachineSpec
from repro.runtime.shm import SharedWindow
from repro.runtime.simmpi import SimCluster, SimComm

#: Section 3.2.1's heuristic: a pack may not exceed 30 MB.
PACK_LIMIT_BYTES: int = 30 * 1024 * 1024

#: The pack size the paper's experiments use ("packing every 512
#: MPIAllReduce invocations into one").
DEFAULT_ROWS_PER_PACK: int = 512


def rows_per_pack(row_bytes: int, limit: int = PACK_LIMIT_BYTES) -> int:
    """Largest c with c * row_bytes <= limit (at least 1)."""
    if row_bytes <= 0:
        raise CommunicationError(f"row_bytes must be positive, got {row_bytes}")
    return max(1, limit // row_bytes)


@dataclass
class ReductionReport:
    """Cost accounting of one scheme run/estimate (Fig. 10's two bars)."""

    scheme: str
    n_ranks: int
    n_rows: int
    row_bytes: int
    n_collectives: int
    communication_time: float  # "communication among all data copies"
    local_update_time: float  # "update local data copies"
    peak_pack_bytes: int

    @property
    def total_time(self) -> float:
        return self.communication_time + self.local_update_time


class ReductionScheme(ABC):
    """Interface: execute on real data and estimate at scale."""

    name: str = "abstract"

    @abstractmethod
    def reduce(
        self, cluster: SimCluster, per_rank_rows: Sequence[np.ndarray]
    ) -> tuple:
        """Synthesize real data: returns ``(result, report)``.

        ``per_rank_rows[r]`` is rank r's ``(n_rows, row_len)`` partial
        array; the result is the elementwise sum over ranks.
        """

    @abstractmethod
    def estimate(
        self, machine: MachineSpec, n_ranks: int, n_rows: int, row_bytes: int
    ) -> ReductionReport:
        """Model-only cost at arbitrary scale."""


def _check_rows(per_rank_rows: Sequence[np.ndarray], n_ranks: int) -> List[np.ndarray]:
    if len(per_rank_rows) != n_ranks:
        raise CommunicationError(
            f"{len(per_rank_rows)} partial arrays for {n_ranks} ranks"
        )
    arrs = [np.asarray(a, dtype=float) for a in per_rank_rows]
    shape = arrs[0].shape
    if len(shape) != 2:
        raise CommunicationError(f"per-rank rows must be 2-D, got shape {shape}")
    for a in arrs[1:]:
        if a.shape != shape:
            raise CommunicationError("mismatched partial-array shapes")
    return arrs


class BaselineRowwiseAllreduce(ReductionScheme):
    """One AllReduce per row — the pre-optimization behaviour."""

    name = "baseline"

    def reduce(self, cluster: SimCluster, per_rank_rows: Sequence[np.ndarray]):
        arrs = _check_rows(per_rank_rows, cluster.n_ranks)
        comm = cluster.comm()
        n_rows = arrs[0].shape[0]
        out = np.empty_like(arrs[0])
        for row in range(n_rows):
            out[row] = comm.allreduce([a[row] for a in arrs])
        report = ReductionReport(
            scheme=self.name,
            n_ranks=cluster.n_ranks,
            n_rows=n_rows,
            row_bytes=int(arrs[0][0].nbytes),
            n_collectives=n_rows,
            communication_time=comm.stats.model_time,
            local_update_time=0.0,
            peak_pack_bytes=int(arrs[0][0].nbytes),
        )
        return out, report

    def estimate(self, machine, n_ranks, n_rows, row_bytes):
        cost = CommCostModel(machine)
        t = n_rows * cost.allreduce(n_ranks, row_bytes)
        return ReductionReport(
            scheme=self.name,
            n_ranks=n_ranks,
            n_rows=n_rows,
            row_bytes=row_bytes,
            n_collectives=n_rows,
            communication_time=t,
            local_update_time=0.0,
            peak_pack_bytes=row_bytes,
        )


class PackedAllreduce(ReductionScheme):
    """Rows fused into packs bounded by the 30 MB heuristic."""

    name = "packed"

    def __init__(
        self,
        pack_limit_bytes: int = PACK_LIMIT_BYTES,
        rows_cap: Optional[int] = DEFAULT_ROWS_PER_PACK,
    ) -> None:
        if pack_limit_bytes <= 0:
            raise CommunicationError("pack limit must be positive")
        self.pack_limit_bytes = pack_limit_bytes
        self.rows_cap = rows_cap

    def _pack_rows(self, row_bytes: int) -> int:
        c = rows_per_pack(row_bytes, self.pack_limit_bytes)
        if self.rows_cap is not None:
            c = min(c, self.rows_cap)
        return c

    def reduce(self, cluster: SimCluster, per_rank_rows: Sequence[np.ndarray]):
        arrs = _check_rows(per_rank_rows, cluster.n_ranks)
        comm = cluster.comm()
        n_rows = arrs[0].shape[0]
        row_bytes = int(arrs[0][0].nbytes)
        c = self._pack_rows(row_bytes)
        out = np.empty_like(arrs[0])
        n_calls = 0
        for lo in range(0, n_rows, c):
            hi = min(lo + c, n_rows)
            out[lo:hi] = comm.allreduce([a[lo:hi] for a in arrs])
            n_calls += 1
        report = ReductionReport(
            scheme=self.name,
            n_ranks=cluster.n_ranks,
            n_rows=n_rows,
            row_bytes=row_bytes,
            n_collectives=n_calls,
            communication_time=comm.stats.model_time,
            local_update_time=0.0,
            peak_pack_bytes=min(c, n_rows) * row_bytes,
        )
        return out, report

    def estimate(self, machine, n_ranks, n_rows, row_bytes):
        cost = CommCostModel(machine)
        c = self._pack_rows(row_bytes)
        n_calls = math.ceil(n_rows / c)
        last = n_rows - (n_calls - 1) * c
        t = (n_calls - 1) * cost.allreduce(n_ranks, c * row_bytes)
        t += cost.allreduce(n_ranks, last * row_bytes)
        return ReductionReport(
            scheme=self.name,
            n_ranks=n_ranks,
            n_rows=n_rows,
            row_bytes=row_bytes,
            n_collectives=n_calls,
            communication_time=t,
            local_update_time=0.0,
            peak_pack_bytes=min(c, n_rows) * row_bytes,
        )


class PackedHierarchicalAllreduce(PackedAllreduce):
    """Packed + intra-node SHM synthesis + inter-node leader collective."""

    name = "packed_hierarchical"

    def reduce(self, cluster: SimCluster, per_rank_rows: Sequence[np.ndarray]):
        machine = cluster.machine
        if not machine.shm_windows:
            raise CommunicationError(
                f"{machine.name} cannot run the hierarchical scheme "
                "(no MPI shared-memory windows)"
            )
        arrs = _check_rows(per_rank_rows, cluster.n_ranks)
        comm = cluster.comm()
        cost = CommCostModel(machine)
        n_rows, row_len = arrs[0].shape
        row_bytes = int(arrs[0][0].nbytes)
        c = self._pack_rows(row_bytes)

        out = np.empty_like(arrs[0])
        local_time = 0.0
        n_calls = 0
        leader_comm = comm.leader_subcomm()
        for lo in range(0, n_rows, c):
            hi = min(lo + c, n_rows)
            window = SharedWindow(cluster, shape=(hi - lo, row_len))
            node_partials = []
            for node in range(cluster.n_nodes):
                ranks = cluster.ranks_of_node(node)
                contribs = [arrs[r][lo:hi] for r in ranks]
                node_partials.append(
                    window.accumulate_chunked(node, contribs).copy()
                )
                local_time += cost.intra_node_reduce(len(ranks), (hi - lo) * row_bytes)
            out[lo:hi] = leader_comm.allreduce(node_partials)
            local_time += (hi - lo) * row_bytes * machine.intra_beta  # readback
            n_calls += 1

        report = ReductionReport(
            scheme=self.name,
            n_ranks=cluster.n_ranks,
            n_rows=n_rows,
            row_bytes=row_bytes,
            n_collectives=n_calls,
            communication_time=leader_comm.stats.model_time,
            local_update_time=local_time,
            peak_pack_bytes=min(c, n_rows) * row_bytes,
        )
        return out, report

    def estimate(self, machine, n_ranks, n_rows, row_bytes):
        if not machine.shm_windows:
            raise CommunicationError(
                f"{machine.name} cannot run the hierarchical scheme "
                "(no MPI shared-memory windows)"
            )
        cost = CommCostModel(machine)
        m = min(machine.procs_per_node, n_ranks)
        if n_ranks % m != 0:
            m = math.gcd(n_ranks, m)
        c = self._pack_rows(row_bytes)
        n_calls = math.ceil(n_rows / c)

        local_total = 0.0
        inter_total = 0.0
        done = 0
        for _ in range(n_calls):
            rows = min(c, n_rows - done)
            done += rows
            local, inter = cost.hierarchical_allreduce(n_ranks, rows * row_bytes, m)
            local_total += local
            inter_total += inter
        return ReductionReport(
            scheme=self.name,
            n_ranks=n_ranks,
            n_rows=n_rows,
            row_bytes=row_bytes,
            n_collectives=n_calls,
            communication_time=inter_total,
            local_update_time=local_total,
            peak_pack_bytes=min(c, n_rows) * row_bytes,
        )

"""Grid integration of operator matrices (Eq. 5's H and S, dipoles).

A :class:`MatrixBuilder` binds a basis set to an integration grid and
produces the density-independent matrices once (overlap, kinetic,
nuclear attraction, dipole) plus cheap re-integration of potential
matrices every SCF/CPSCF cycle — the computational pattern of the
paper's "H" phase, executed batch by batch.

All grid contractions dispatch through the builder's
:class:`~repro.backends.base.ExecutionBackend` (``numpy`` by default),
so the same driver code runs on the full-table reference path, the
batch-streaming LRU path or the priced device-kernel path — bit-exact
across all three.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, List, Optional, Union

import numpy as np

from repro.basis.basis_set import BasisSet
from repro.grids.atom_grid import IntegrationGrid
from repro.grids.batching import GridBatch, attach_relevant_atoms, build_batches
from repro.utils.linalg import symmetrize

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.backends.base import ExecutionBackend

#: Cache chi(point) tables when n_points * n_basis stays below this.
_CACHE_LIMIT: int = 40_000_000


class MatrixBuilder:
    """Integrates basis-pair matrix elements over the grid.

    Parameters
    ----------
    basis:
        The structure's NAO basis.
    grid:
        Integration grid with partition weights available.
    batches:
        Optional pre-built batch list; built on demand otherwise.
    backend:
        Execution backend for the grid contractions: a registry name
        (``"numpy"``, ``"batched"``, ``"device"``), a configured
        :class:`~repro.backends.base.ExecutionBackend` instance, or
        ``None`` for the default reference backend.
    cache_limit:
        Override of the full-table element budget (``n_points *
        n_basis``); defaults to the module-level ``_CACHE_LIMIT``.
        Tests and benchmarks lower it to exercise the streaming paths.
    screening_threshold:
        Batch-local basis-screening threshold
        (:mod:`repro.grids.sparsity`).  ``0.0`` (the default) disables
        screening entirely — no pattern is built and every contraction
        runs the exact dense code path, bitwise identical to the
        pre-screening pipeline.  ``> 0`` builds a
        :class:`~repro.grids.sparsity.SparsityPattern` once and every
        layer below (backends, kinetic, reference paths) contracts only
        active functions.
    """

    def __init__(
        self,
        basis: BasisSet,
        grid: IntegrationGrid,
        batches: Optional[List[GridBatch]] = None,
        backend: Union[str, "ExecutionBackend", None] = None,
        cache_limit: Optional[int] = None,
        screening_threshold: float = 0.0,
    ) -> None:
        self.basis = basis
        self.grid = grid
        if grid.partition_weights is None:
            grid.compute_partition_weights()
        if batches is None:
            batches = build_batches(grid)
            batches = attach_relevant_atoms(batches, grid.structure, basis.atom_cutoffs)
        elif batches and not batches[0].relevant_atoms:
            batches = attach_relevant_atoms(batches, grid.structure, basis.atom_cutoffs)
        self.batches = batches
        self._values_cache: Optional[np.ndarray] = None
        self._cache_limit = _CACHE_LIMIT if cache_limit is None else int(cache_limit)
        self._use_cache = grid.n_points * basis.n_basis <= self._cache_limit
        self._thrash_warned = False

        # The pattern must exist before the backend binds: device
        # staging and profile fill counters read it at bind time.
        self.screening_threshold = float(screening_threshold)
        if self.screening_threshold > 0.0:
            from repro.grids.sparsity import build_sparsity_pattern

            self.pattern = build_sparsity_pattern(
                basis, self.batches, self.screening_threshold
            )
        else:
            self.pattern = None

        from repro.backends.registry import resolve_backend

        self.backend = resolve_backend(backend, self)

    @property
    def table_cache_enabled(self) -> bool:
        """Whether the full chi table fits the element budget."""
        return self._use_cache

    # ------------------------------------------------------------------
    # Basis tables
    # ------------------------------------------------------------------
    def basis_values(self) -> np.ndarray:
        """chi_mu at every grid point, ``(n_points, n_basis)`` (cached)."""
        if self._values_cache is None:
            if not self._use_cache and not self._thrash_warned:
                self._thrash_warned = True
                warnings.warn(
                    f"basis table ({self.grid.n_points} x {self.basis.n_basis} "
                    f"elements) exceeds the cache limit ({self._cache_limit}); "
                    "every basis_values() call re-evaluates the full grid. "
                    "Use the 'batched' execution backend for bounded-memory "
                    "streaming without re-evaluation.",
                    RuntimeWarning,
                    stacklevel=2,
                )
            values = np.zeros((self.grid.n_points, self.basis.n_basis))
            for b in self.batches:
                idx = b.point_indices
                values[idx] = self.basis.evaluate(
                    self.grid.points[idx], atoms=b.relevant_atoms
                )
            if not self._use_cache:
                return values
            self._values_cache = values
        return self._values_cache

    # ------------------------------------------------------------------
    # Density-independent matrices
    # ------------------------------------------------------------------
    def overlap(self) -> np.ndarray:
        """S_mu_nu = <chi_mu | chi_nu>."""
        return self.potential_matrix(np.ones(self.grid.n_points))

    def kinetic(self) -> np.ndarray:
        """T_mu_nu = (1/2) <grad chi_mu | grad chi_nu> (by parts).

        Under screening, each batch evaluates gradients only for its
        active atoms and scatter-adds the compact block — the same
        locality rule every other grid contraction follows.
        """
        w = self.grid.weights
        t = np.zeros((self.basis.n_basis, self.basis.n_basis))
        # Gradients are only needed here, once; integrate batch-wise to
        # bound memory at (batch points x n_basis x 3).
        for b in self.batches:
            idx = b.point_indices
            wb = w[idx]
            if self.pattern is not None:
                act = self.pattern.active_functions[b.index]
                if act.size == 0:
                    continue
                _, grads = self.basis.evaluate_with_gradients(
                    self.grid.points[idx],
                    atoms=self.pattern.active_atoms[b.index],
                )
                grads = grads[:, act, :]
                sub = np.zeros((act.size, act.size))
                for k in range(3):
                    gk = grads[:, :, k]
                    sub += gk.T @ (gk * wb[:, None])
                t[np.ix_(act, act)] += sub
                continue
            _, grads = self.basis.evaluate_with_gradients(
                self.grid.points[idx], atoms=b.relevant_atoms
            )
            for k in range(3):
                gk = grads[:, :, k]
                t += gk.T @ (gk * wb[:, None])
        return symmetrize(0.5 * t)

    def nuclear_attraction(self) -> np.ndarray:
        """V_mu_nu with v_ext(r) = -sum_a Z_a / |r - R_a|."""
        return self.potential_matrix(self.external_potential())

    def external_potential(self) -> np.ndarray:
        """v_ext sampled at every grid point."""
        v = np.zeros(self.grid.n_points)
        coords = self.grid.structure.coords
        charges = self.grid.structure.nuclear_charges
        for a in range(self.grid.structure.n_atoms):
            r = np.linalg.norm(self.grid.points - coords[a], axis=1)
            v -= charges[a] / np.maximum(r, 1e-12)
        return v

    def dipole_matrices(self) -> np.ndarray:
        """D^J_mu_nu = <chi_mu | r_J | chi_nu>, shape ``(3, n, n)``."""
        out = np.empty((3, self.basis.n_basis, self.basis.n_basis))
        for j in range(3):
            out[j] = self.potential_matrix(self.grid.points[:, j])
        return out

    # ------------------------------------------------------------------
    # Density-dependent matrices (rebuilt every cycle)
    # ------------------------------------------------------------------
    def potential_matrix(self, potential_values: np.ndarray) -> np.ndarray:
        """V_mu_nu = <chi_mu | v | chi_nu> for a pointwise potential."""
        return self.backend.potential_matrix(potential_values)

    # ------------------------------------------------------------------
    # Backend-free reference paths (the verification seam)
    # ------------------------------------------------------------------
    # These bypass the execution backend entirely: every batch's basis
    # block is evaluated fresh, so the invariant registry can compare a
    # backend's answers against an independent derivation.  Honest
    # backends are bit-exact with these (same batch order, same math).
    # When a screening pattern is active the references honor it by
    # default (so invariants stay bit-tight against screened backends);
    # ``screened=False`` forces the fully dense derivation — that is the
    # seam the ``screening_vs_dense`` invariant compares against.
    def reference_density(
        self, density_matrix: np.ndarray, screened: bool = True
    ) -> np.ndarray:
        """Pointwise density via direct per-batch evaluation."""
        from repro.backends.base import density_block

        p = np.asarray(density_matrix, dtype=float)
        out = np.zeros(self.grid.n_points)
        pattern = self.pattern if screened else None
        for b in self.batches:
            idx = b.point_indices
            if pattern is not None:
                act = pattern.active_functions[b.index]
                if act.size == 0:
                    continue
                phi_b = self.basis.evaluate(
                    self.grid.points[idx], atoms=pattern.active_atoms[b.index]
                )[:, act]
                out[idx] = density_block(phi_b, p[np.ix_(act, act)])
                continue
            phi_b = self.basis.evaluate(self.grid.points[idx], atoms=b.relevant_atoms)
            out[idx] = density_block(phi_b, p)
        return out

    def reference_potential_matrix(
        self, potential_values: np.ndarray, screened: bool = True
    ) -> np.ndarray:
        """``<chi_mu | v | chi_nu>`` via direct per-batch evaluation."""
        from repro.backends.base import potential_block

        wv = self.grid.weights * np.asarray(potential_values, dtype=float)
        acc = np.zeros((self.basis.n_basis, self.basis.n_basis))
        pattern = self.pattern if screened else None
        for b in self.batches:
            idx = b.point_indices
            if pattern is not None:
                act = pattern.active_functions[b.index]
                if act.size == 0:
                    continue
                phi_b = self.basis.evaluate(
                    self.grid.points[idx], atoms=pattern.active_atoms[b.index]
                )[:, act]
                acc[np.ix_(act, act)] += potential_block(phi_b, wv[idx])
                continue
            phi_b = self.basis.evaluate(self.grid.points[idx], atoms=b.relevant_atoms)
            acc += potential_block(phi_b, wv[idx])
        return symmetrize(acc)

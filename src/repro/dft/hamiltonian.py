"""Grid integration of operator matrices (Eq. 5's H and S, dipoles).

A :class:`MatrixBuilder` binds a basis set to an integration grid and
produces the density-independent matrices once (overlap, kinetic,
nuclear attraction, dipole) plus cheap re-integration of potential
matrices every SCF/CPSCF cycle — the computational pattern of the
paper's "H" phase, executed batch by batch.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.basis.basis_set import BasisSet
from repro.errors import GridError
from repro.grids.atom_grid import IntegrationGrid
from repro.grids.batching import GridBatch, attach_relevant_atoms, build_batches
from repro.utils.linalg import symmetrize

#: Cache chi(point) tables when n_points * n_basis stays below this.
_CACHE_LIMIT: int = 40_000_000


class MatrixBuilder:
    """Integrates basis-pair matrix elements over the grid.

    Parameters
    ----------
    basis:
        The structure's NAO basis.
    grid:
        Integration grid with partition weights available.
    batches:
        Optional pre-built batch list; built on demand otherwise.
    """

    def __init__(
        self,
        basis: BasisSet,
        grid: IntegrationGrid,
        batches: Optional[List[GridBatch]] = None,
    ) -> None:
        self.basis = basis
        self.grid = grid
        if grid.partition_weights is None:
            grid.compute_partition_weights()
        if batches is None:
            batches = build_batches(grid)
            batches = attach_relevant_atoms(batches, grid.structure, basis.atom_cutoffs)
        elif batches and not batches[0].relevant_atoms:
            batches = attach_relevant_atoms(batches, grid.structure, basis.atom_cutoffs)
        self.batches = batches
        self._values_cache: Optional[np.ndarray] = None
        self._use_cache = grid.n_points * basis.n_basis <= _CACHE_LIMIT

    # ------------------------------------------------------------------
    # Basis tables
    # ------------------------------------------------------------------
    def basis_values(self) -> np.ndarray:
        """chi_mu at every grid point, ``(n_points, n_basis)`` (cached)."""
        if self._values_cache is None:
            values = np.zeros((self.grid.n_points, self.basis.n_basis))
            for b in self.batches:
                idx = b.point_indices
                values[idx] = self.basis.evaluate(
                    self.grid.points[idx], atoms=b.relevant_atoms
                )
            if not self._use_cache:
                return values
            self._values_cache = values
        return self._values_cache

    # ------------------------------------------------------------------
    # Density-independent matrices
    # ------------------------------------------------------------------
    def overlap(self) -> np.ndarray:
        """S_mu_nu = <chi_mu | chi_nu>."""
        phi = self.basis_values()
        w = self.grid.weights
        return symmetrize(phi.T @ (phi * w[:, None]))

    def kinetic(self) -> np.ndarray:
        """T_mu_nu = (1/2) <grad chi_mu | grad chi_nu> (by parts)."""
        w = self.grid.weights
        t = np.zeros((self.basis.n_basis, self.basis.n_basis))
        # Gradients are only needed here, once; integrate batch-wise to
        # bound memory at (batch points x n_basis x 3).
        for b in self.batches:
            idx = b.point_indices
            _, grads = self.basis.evaluate_with_gradients(
                self.grid.points[idx], atoms=b.relevant_atoms
            )
            wb = w[idx]
            for k in range(3):
                gk = grads[:, :, k]
                t += gk.T @ (gk * wb[:, None])
        return symmetrize(0.5 * t)

    def nuclear_attraction(self) -> np.ndarray:
        """V_mu_nu with v_ext(r) = -sum_a Z_a / |r - R_a|."""
        return self.potential_matrix(self.external_potential())

    def external_potential(self) -> np.ndarray:
        """v_ext sampled at every grid point."""
        v = np.zeros(self.grid.n_points)
        coords = self.grid.structure.coords
        charges = self.grid.structure.nuclear_charges
        for a in range(self.grid.structure.n_atoms):
            r = np.linalg.norm(self.grid.points - coords[a], axis=1)
            v -= charges[a] / np.maximum(r, 1e-12)
        return v

    def dipole_matrices(self) -> np.ndarray:
        """D^J_mu_nu = <chi_mu | r_J | chi_nu>, shape ``(3, n, n)``."""
        phi = self.basis_values()
        w = self.grid.weights
        out = np.empty((3, self.basis.n_basis, self.basis.n_basis))
        for j in range(3):
            rj = self.grid.points[:, j]
            out[j] = symmetrize(phi.T @ (phi * (w * rj)[:, None]))
        return out

    # ------------------------------------------------------------------
    # Density-dependent matrices (rebuilt every cycle)
    # ------------------------------------------------------------------
    def potential_matrix(self, potential_values: np.ndarray) -> np.ndarray:
        """V_mu_nu = <chi_mu | v | chi_nu> for a pointwise potential."""
        potential_values = np.asarray(potential_values, dtype=float)
        if potential_values.shape[0] != self.grid.n_points:
            raise GridError(
                f"{potential_values.shape[0]} potential samples for "
                f"{self.grid.n_points} grid points"
            )
        phi = self.basis_values()
        wv = self.grid.weights * potential_values
        return symmetrize(phi.T @ (phi * wv[:, None]))

"""LDA exchange-correlation: Slater exchange + PW92 correlation.

Provides the energy density, the potential ``v_xc`` (Eq. 2) and the
kernel ``f_xc = d v_xc / d n`` required by the response potential of
Eq. (12).  Spin-restricted.

Exchange is analytic; PW92 correlation energy and potential are
analytic, while the kernel is obtained by differentiating ``v_xc``
numerically with a relative central difference — exactly consistent
with the potential by construction, which is what the DFPT/finite-field
agreement tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Density floor below which xc quantities are treated as zero.
DENSITY_FLOOR: float = 1e-14

_CX = (3.0 / 4.0) * (3.0 / np.pi) ** (1.0 / 3.0)  # Slater exchange constant

# PW92 unpolarized parameters.
_PW92_A = 0.031091
_PW92_ALPHA1 = 0.21370
_PW92_BETA = (7.5957, 3.5876, 1.6382, 0.49294)


@dataclass(frozen=True)
class XCResult:
    """Pointwise xc data on a grid.

    Attributes
    ----------
    exc:
        Energy density per electron, so ``E_xc = int n * exc``.
    vxc:
        Potential ``d(n exc)/dn``.
    """

    exc: np.ndarray
    vxc: np.ndarray


def _rs(n: np.ndarray) -> np.ndarray:
    return (3.0 / (4.0 * np.pi * n)) ** (1.0 / 3.0)


def _pw92_ec(rs: np.ndarray) -> np.ndarray:
    """PW92 correlation energy per electron for the unpolarized gas."""
    b1, b2, b3, b4 = _PW92_BETA
    sqrt_rs = np.sqrt(rs)
    q0 = -2.0 * _PW92_A * (1.0 + _PW92_ALPHA1 * rs)
    q1 = 2.0 * _PW92_A * (
        b1 * sqrt_rs + b2 * rs + b3 * rs * sqrt_rs + b4 * rs * rs
    )
    return q0 * np.log1p(1.0 / q1)


def _pw92_ec_drs(rs: np.ndarray) -> np.ndarray:
    """Analytic d ec / d rs."""
    b1, b2, b3, b4 = _PW92_BETA
    sqrt_rs = np.sqrt(rs)
    q0 = -2.0 * _PW92_A * (1.0 + _PW92_ALPHA1 * rs)
    dq0 = -2.0 * _PW92_A * _PW92_ALPHA1
    q1 = 2.0 * _PW92_A * (
        b1 * sqrt_rs + b2 * rs + b3 * rs * sqrt_rs + b4 * rs * rs
    )
    dq1 = _PW92_A * (
        b1 / sqrt_rs + 2.0 * b2 + 3.0 * b3 * sqrt_rs + 4.0 * b4 * rs
    )
    return dq0 * np.log1p(1.0 / q1) - q0 * dq1 / (q1 * q1 + q1)


def lda_exchange_correlation(density: np.ndarray) -> XCResult:
    """Evaluate exc and vxc at the given densities (any shape)."""
    n = np.asarray(density, dtype=float)
    safe = n > DENSITY_FLOOR
    ns = np.where(safe, n, 1.0)

    # Exchange: ex = -Cx n^(1/3); vx = (4/3) ex.
    ex = -_CX * ns ** (1.0 / 3.0)
    vx = (4.0 / 3.0) * ex

    rs = _rs(ns)
    ec = _pw92_ec(rs)
    dec_drs = _pw92_ec_drs(rs)
    # vc = ec - (rs/3) dec/drs (from drs/dn = -rs/(3n)).
    vc = ec - (rs / 3.0) * dec_drs

    exc = np.where(safe, ex + ec, 0.0)
    vxc = np.where(safe, vx + vc, 0.0)
    return XCResult(exc=exc, vxc=vxc)


def lda_xc_kernel(density: np.ndarray, rel_step: float = 1e-6) -> np.ndarray:
    """f_xc(n) = d v_xc / d n, consistent with :func:`lda_exchange_correlation`.

    Computed with a relative central difference on the potential.  The
    exchange part has the closed form ``(4/9) vx / n``; the numerical
    derivative reproduces it to ~1e-9 relative, and keeps correlation
    exactly consistent with the implemented vxc.
    """
    n = np.asarray(density, dtype=float)
    safe = n > DENSITY_FLOOR
    ns = np.where(safe, n, 1.0)
    h = rel_step * ns
    v_plus = lda_exchange_correlation(ns + h).vxc
    v_minus = lda_exchange_correlation(ns - h).vxc
    fxc = (v_plus - v_minus) / (2.0 * h)
    return np.where(safe, fxc, 0.0)

"""Unrestricted (spin-polarized) Kohn-Sham SCF.

Open-shell companion of :class:`repro.dft.scf.SCFDriver`: two sets of
orbitals share the electrostatics but see their own LSDA potential.
Needed for radicals and magnetic systems (the closed-shell driver
refuses odd electron counts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.atoms.structure import Structure
from repro.basis.basis_set import build_basis
from repro.config import RunSettings, get_settings
from repro.dft.density import density_on_grid
from repro.dft.hamiltonian import MatrixBuilder
from repro.dft.hartree import MultipoleSolver
from repro.dft.mixing import PulayMixer
from repro.dft.occupations import aufbau_occupations
from repro.dft.xc_spin import lsda_exchange_correlation
from repro.errors import SCFConvergenceError
from repro.grids.atom_grid import build_grid
from repro.utils.linalg import (
    density_matrix_from_orbitals,
    solve_generalized_eigenproblem,
)


@dataclass
class SpinGroundState:
    """Converged unrestricted ground state."""

    structure: Structure
    total_energy: float
    eigenvalues: Tuple[np.ndarray, np.ndarray]  # (up, dn)
    orbitals: Tuple[np.ndarray, np.ndarray]
    occupations: Tuple[np.ndarray, np.ndarray]
    density_matrices: Tuple[np.ndarray, np.ndarray]
    densities: Tuple[np.ndarray, np.ndarray]  # pointwise n_up, n_dn
    energy_components: Dict[str, float]
    iterations: int

    @property
    def spin_moment(self) -> float:
        """Total magnetization 2 S_z = N_up - N_dn."""
        return float(self.occupations[0].sum() - self.occupations[1].sum())


class UKSDriver:
    """Unrestricted LSDA SCF for a given charge and multiplicity."""

    def __init__(
        self,
        structure: Structure,
        settings: Optional[RunSettings] = None,
        charge: int = 0,
        multiplicity: Optional[int] = None,
    ) -> None:
        self.structure = structure
        self.settings = settings or get_settings("light")

        n_electrons = structure.n_electrons - charge
        if n_electrons <= 0:
            raise SCFConvergenceError(
                "no electrons", iterations=0, residual=0.0
            )
        if multiplicity is None:
            multiplicity = 1 if n_electrons % 2 == 0 else 2
        n_unpaired = multiplicity - 1
        if n_unpaired < 0 or (n_electrons - n_unpaired) % 2 != 0:
            raise SCFConvergenceError(
                f"multiplicity {multiplicity} incompatible with "
                f"{n_electrons} electrons",
                iterations=0,
                residual=0.0,
            )
        self.n_up = (n_electrons + n_unpaired) // 2
        self.n_dn = (n_electrons - n_unpaired) // 2

        self.basis = build_basis(structure)
        self.grid = build_grid(structure, self.settings.grids, with_partition=True)
        self.builder = MatrixBuilder(self.basis, self.grid)
        self.solver = MultipoleSolver(self.grid, self.settings.l_max_hartree)

        self._s = self.builder.overlap()
        self._t = self.builder.kinetic()
        self._v_ext = self.builder.potential_matrix(self.builder.external_potential())

        z = structure.nuclear_charges
        coords = structure.coords
        e_nn = 0.0
        for i in range(len(z)):
            r = np.linalg.norm(coords[i + 1 :] - coords[i], axis=1)
            e_nn += float(np.sum(z[i] * z[i + 1 :] / r))
        self._e_nn = e_nn

    def run(self) -> SpinGroundState:
        """Iterate both spin channels to self-consistency."""
        scf = self.settings.scf
        h_core = self._t + self._v_ext
        eps_u, c_u = solve_generalized_eigenproblem(h_core, self._s)
        eps_d, c_d = eps_u.copy(), c_u.copy()
        f_u = aufbau_occupations(eps_u, self.n_up, max_occ=1.0)
        f_d = aufbau_occupations(eps_d, self.n_dn, max_occ=1.0)
        p_u = density_matrix_from_orbitals(c_u, f_u)
        p_d = density_matrix_from_orbitals(c_d, f_d)

        mixer_u = PulayMixer(history=scf.pulay_history, linear_factor=scf.mixing_factor)
        mixer_d = PulayMixer(history=scf.pulay_history, linear_factor=scf.mixing_factor)
        w = self.grid.weights
        e_old = np.inf

        for iteration in range(1, scf.max_iterations + 1):
            n_u = density_on_grid(self.builder, p_u)
            n_d = density_on_grid(self.builder, p_d)
            n_tot = n_u + n_d
            v_h = self.solver.hartree_potential(n_tot)
            xc = lsda_exchange_correlation(n_u, n_d)

            h_u = self._t + self._v_ext + self.builder.potential_matrix(v_h + xc.vxc_up)
            h_d = self._t + self._v_ext + self.builder.potential_matrix(v_h + xc.vxc_dn)

            comm_u = h_u @ p_u @ self._s - self._s @ p_u @ h_u
            comm_d = h_d @ p_d @ self._s - self._s @ p_d @ h_d
            h_u = mixer_u.push(h_u, comm_u)
            h_d = mixer_d.push(h_d, comm_d)

            eps_u, c_u = solve_generalized_eigenproblem(h_u, self._s)
            eps_d, c_d = solve_generalized_eigenproblem(h_d, self._s)
            f_u = aufbau_occupations(eps_u, self.n_up, max_occ=1.0)
            f_d = aufbau_occupations(eps_d, self.n_dn, max_occ=1.0)
            p_u_new = density_matrix_from_orbitals(c_u, f_u)
            p_d_new = density_matrix_from_orbitals(c_d, f_d)

            e_kin = float(np.sum((p_u + p_d) * self._t))
            e_ext = float(np.sum((p_u + p_d) * self._v_ext))
            e_h = 0.5 * float(np.sum(w * n_tot * v_h))
            e_xc = float(np.sum(w * n_tot * xc.exc))
            e_total = e_kin + e_ext + e_h + e_xc + self._e_nn

            delta_e = abs(e_total - e_old)
            delta_p = max(
                float(np.abs(p_u_new - p_u).max()),
                float(np.abs(p_d_new - p_d).max()),
            )
            e_old = e_total
            p_u, p_d = p_u_new, p_d_new

            if delta_e < scf.energy_tolerance and delta_p < scf.density_tolerance:
                n_u = density_on_grid(self.builder, p_u)
                n_d = density_on_grid(self.builder, p_d)
                return SpinGroundState(
                    structure=self.structure,
                    total_energy=e_total,
                    eigenvalues=(eps_u, eps_d),
                    orbitals=(c_u, c_d),
                    occupations=(f_u, f_d),
                    density_matrices=(p_u, p_d),
                    densities=(n_u, n_d),
                    energy_components={
                        "kinetic": e_kin,
                        "external": e_ext,
                        "hartree": e_h,
                        "xc": e_xc,
                        "nuclear": self._e_nn,
                    },
                    iterations=iteration,
                )

        raise SCFConvergenceError(
            f"UKS SCF did not converge in {scf.max_iterations} iterations",
            iterations=scf.max_iterations,
            residual=delta_p,
        )

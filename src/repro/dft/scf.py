"""The ground-state Kohn-Sham self-consistency cycle (Eqs. 1-6).

:class:`SCFDriver` assembles the whole substrate — basis, grid,
multipole Hartree solver, matrix builder — and iterates density ->
potential -> Hamiltonian -> orbitals to convergence, with DIIS
acceleration.  A homogeneous external electric field can be applied,
which is how the finite-difference polarizability reference for the
DFPT validation is produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Union

import numpy as np

from repro.atoms.structure import Structure

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.backends.base import ExecutionBackend
    from repro.verify.invariants import Verifier
from repro.basis.basis_set import BasisSet, build_basis
from repro.config import RunSettings, get_settings
from repro.dft.hamiltonian import MatrixBuilder
from repro.dft.hartree import MultipoleSolver
from repro.dft.mixing import PulayMixer
from repro.dft.xc import lda_exchange_correlation
from repro.errors import SCFConvergenceError
from repro.grids.atom_grid import IntegrationGrid, build_grid
from repro.obs.tracer import obs_event, obs_span, trace_context
from repro.runtime.faults import CycleFaultInjector
from repro.utils.linalg import (
    density_matrix_from_orbitals,
    solve_generalized_eigenproblem,
)
from repro.utils.timing import PhaseTimer


@dataclass
class GroundState:
    """Converged ground-state data consumed by the DFPT cycle."""

    structure: Structure
    basis: BasisSet
    grid: IntegrationGrid
    builder: MatrixBuilder
    solver: MultipoleSolver
    overlap: np.ndarray
    kinetic: np.ndarray
    dipoles: np.ndarray  # (3, n, n)
    eigenvalues: np.ndarray
    orbitals: np.ndarray
    occupations: np.ndarray
    density_matrix: np.ndarray
    density: np.ndarray  # pointwise n0
    total_energy: float
    energy_components: Dict[str, float] = field(default_factory=dict)
    iterations: int = 0
    restarts: int = 0  # cycles redone after injected faults

    @property
    def n_occupied(self) -> int:
        return int(np.count_nonzero(self.occupations > 0.0))

    def dipole_moment(self) -> np.ndarray:
        """mu_I = -Tr(P D_I) + sum_a Z_a R_a,I (atomic units, e*Bohr)."""
        electronic = -np.array(
            [np.sum(self.density_matrix * self.dipoles[j]) for j in range(3)]
        )
        nuclear = self.structure.nuclear_charges @ self.structure.coords
        return electronic + nuclear


class SCFDriver:
    """Build the substrate once, then run SCF cycles (optionally in a field)."""

    def __init__(
        self,
        structure: Structure,
        settings: Optional[RunSettings] = None,
        charge: int = 0,
        timer: Optional[PhaseTimer] = None,
        backend: Union[str, "ExecutionBackend", None] = None,
        verifier: Optional["Verifier"] = None,
        basis: Optional[BasisSet] = None,
        grid: Optional[IntegrationGrid] = None,
        batches=None,
    ) -> None:
        self.structure = structure
        self.settings = settings or get_settings("light")
        self.charge = charge
        self.timer = timer or PhaseTimer()
        if verifier is None:
            from repro.verify.invariants import Verifier as _Verifier

            verifier = _Verifier.from_level(self.settings.verify)
        self.verifier = verifier

        n_electrons = structure.n_electrons - charge
        if n_electrons <= 0:
            raise SCFConvergenceError(
                f"no electrons left with charge {charge}", iterations=0, residual=0.0
            )
        if n_electrons % 2 != 0:
            raise SCFConvergenceError(
                f"restricted closed-shell SCF needs an even electron count, "
                f"got {n_electrons}; adjust `charge`",
                iterations=0,
                residual=0.0,
            )
        self.n_electrons = n_electrons

        # A fleet driver may inject a shared basis/grid/batch substrate
        # (built once per distinct geometry); construction is identical
        # to building them here, so results are unaffected.
        self.basis = basis if basis is not None else build_basis(structure)
        self.grid = (
            grid
            if grid is not None
            else build_grid(structure, self.settings.grids, with_partition=True)
        )
        self.builder = MatrixBuilder(
            self.basis,
            self.grid,
            batches=batches,
            backend=backend if backend is not None else self.settings.backend,
            cache_limit=self.settings.cache_limit,
            screening_threshold=self.settings.screening_threshold,
        )
        self.backend = self.builder.backend
        self.solver = MultipoleSolver(self.grid, self.settings.l_max_hartree)

        with trace_context(backend=self.backend.name, loop="scf"), \
                self.timer.phase("integrals"):
            self._s = self.builder.overlap()
            self._t = self.builder.kinetic()
            self._v_ext_values = self.builder.external_potential()
            self._v_ext = self.builder.potential_matrix(self._v_ext_values)
            self._dipoles = self.builder.dipole_matrices()

        self._e_nn = self._nuclear_repulsion()

        if self.verifier is not None:
            self.verifier.run_phase(
                "integrals", overlap=self._s, dipoles=self._dipoles
            )

    def _nuclear_repulsion(self) -> float:
        z = self.structure.nuclear_charges
        coords = self.structure.coords
        e = 0.0
        for i in range(len(z)):
            r = np.linalg.norm(coords[i + 1 :] - coords[i], axis=1)
            e += float(np.sum(z[i] * z[i + 1 :] / r))
        return e

    def _occupations(self, n_states: int) -> np.ndarray:
        n_occ = self.n_electrons // 2
        if n_occ > n_states:
            raise SCFConvergenceError(
                f"basis too small: {n_states} states for {n_occ} occupied orbitals",
                iterations=0,
                residual=0.0,
            )
        f = np.zeros(n_states)
        f[:n_occ] = 2.0
        return f

    def run(
        self,
        external_field: Optional[np.ndarray] = None,
        fault_injector: Optional[CycleFaultInjector] = None,
    ) -> GroundState:
        """Iterate to self-consistency; returns the converged state.

        Parameters
        ----------
        external_field:
            Optional homogeneous field xi (3-vector).  Adds the
            perturbation ``-xi . r`` of Eq. (11) to the Hamiltonian —
            used by finite-difference polarizability references.
        fault_injector:
            Optional :class:`~repro.runtime.faults.CycleFaultInjector`.
            A fault fired mid-cycle discards that cycle's work; the
            driver restores the last converged cycle's checkpoint and
            redoes it, so converged results are bit-exact with a
            fault-free run.
        """
        steps = self.iter_cycles(external_field, fault_injector)
        while True:
            try:
                next(steps)
            except StopIteration as stop:
                return stop.value

    def iter_cycles(
        self,
        external_field: Optional[np.ndarray] = None,
        fault_injector: Optional[CycleFaultInjector] = None,
    ):
        """Generator form of :meth:`run`: one SCF cycle per ``next()``.

        The body is exactly :meth:`run`'s loop — same phase order, same
        mixer pushes, same checkpoint/rollback — with a yield at every
        cycle boundary, so a fleet driver can interleave the cycles of
        several molecules (each molecule's floating-point sequence is
        untouched, keeping the interleaved results bit-exact with
        isolated runs).  The converged :class:`GroundState` is the
        generator's return value (``StopIteration.value``).
        """
        scf = self.settings.scf
        h_field = np.zeros_like(self._s)
        if external_field is not None:
            xi = np.asarray(external_field, dtype=float)
            for j in range(3):
                if xi[j] != 0.0:
                    h_field -= xi[j] * self._dipoles[j]

        # Initial guess: core Hamiltonian.
        h_core = self._t + self._v_ext + h_field
        eps, c = solve_generalized_eigenproblem(h_core, self._s)
        f = self._occupations(eps.shape[0])
        p = density_matrix_from_orbitals(c, f)

        mixer = PulayMixer(history=scf.pulay_history, linear_factor=scf.mixing_factor)
        e_old = np.inf
        residual_norm = np.inf
        w = self.grid.weights
        restarts = 0
        attempt = 0

        iteration = 1
        while iteration <= scf.max_iterations:
            # Checkpoint of the last converged cycle; an injected fault
            # below discards this cycle's work and restarts from here.
            checkpoint = p.copy()
            with trace_context(
                backend=self.backend.name, loop="scf", cycle=iteration
            ):
                with self.timer.phase("density"):
                    n_values = self.backend.density_on_grid(p)
                with self.timer.phase("hartree"):
                    v_h_values = self.solver.hartree_potential(n_values)
                with self.timer.phase("xc"):
                    xc = lda_exchange_correlation(n_values)
                with self.timer.phase("hamiltonian"):
                    v_eff = self.backend.potential_matrix(v_h_values + xc.vxc)
                    h = self._t + self._v_ext + v_eff + h_field

                # Fault check sits before the DIIS push so a rolled-back
                # cycle leaves the mixer history untouched (bit-exactness).
                if fault_injector is not None and fault_injector.cycle_fault(
                    "scf", iteration, attempt
                ):
                    obs_event(
                        "cycle_fault", category="fault",
                        site=f"scf[{iteration}]", attempt=attempt,
                    )
                    p = checkpoint
                    restarts += 1
                    attempt += 1
                    yield iteration
                    continue
                attempt = 0

                # DIIS on the Fock matrix with commutator residual.
                commutator = h @ p @ self._s - self._s @ p @ h
                residual_norm = float(np.abs(commutator).max())
                h_mixed = mixer.push(h, commutator)

                with self.timer.phase("eigensolver"):
                    eps, c = solve_generalized_eigenproblem(h_mixed, self._s)
            f = self._occupations(eps.shape[0])
            p_new = density_matrix_from_orbitals(c, f)

            # Energy from the *unmixed* Hamiltonian ingredients.
            e_kin = float(np.sum(p * self._t))
            e_ext = float(np.sum(p * self._v_ext))
            e_h = 0.5 * float(np.sum(w * n_values * v_h_values))
            e_xc = float(np.sum(w * n_values * xc.exc))
            e_total = e_kin + e_ext + e_h + e_xc + self._e_nn
            if external_field is not None:
                e_total -= float(np.sum((p * h_field)))  # note: h_field = -xi.D

            delta_e = abs(e_total - e_old)
            delta_p = float(np.abs(p_new - p).max())
            e_old = e_total
            p = p_new

            if delta_e < scf.energy_tolerance and delta_p < scf.density_tolerance:
                n_values = self.backend.density_on_grid(p)
                gs = GroundState(
                    structure=self.structure,
                    basis=self.basis,
                    grid=self.grid,
                    builder=self.builder,
                    solver=self.solver,
                    overlap=self._s,
                    kinetic=self._t,
                    dipoles=self._dipoles,
                    eigenvalues=eps,
                    orbitals=c,
                    occupations=f,
                    density_matrix=p,
                    density=n_values,
                    total_energy=e_total,
                    energy_components={
                        "kinetic": e_kin,
                        "external": e_ext,
                        "hartree": e_h,
                        "xc": e_xc,
                        "nuclear": self._e_nn,
                    },
                    iterations=iteration,
                    restarts=restarts,
                )
                if self.verifier is not None:
                    self.verifier.run_phase(
                        "scf",
                        gs=gs,
                        hamiltonian=h,
                        h_static=self._t + self._v_ext + h_field,
                        n_electrons=self.n_electrons,
                    )
                return gs
            iteration += 1
            yield iteration

        raise SCFConvergenceError(
            f"SCF did not converge in {scf.max_iterations} iterations "
            f"(last residual {residual_norm:.2e})",
            iterations=scf.max_iterations,
            residual=residual_norm,
        )

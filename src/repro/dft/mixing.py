"""Self-consistency accelerators: linear and Pulay (DIIS) mixing."""

from __future__ import annotations

from typing import List, Optional

import numpy as np


class PulayMixer:
    """Pulay's direct inversion in the iterative subspace (DIIS).

    Operates on flattened trial/residual pairs; the caller decides what
    the residual is (we use the Fock-matrix commutator ``FPS - SPF`` in
    the SCF driver).  Falls back to plain linear mixing while the
    history is shorter than two entries or if the DIIS system is
    singular.
    """

    def __init__(self, history: int = 6, linear_factor: float = 0.35) -> None:
        if history < 2:
            raise ValueError(f"DIIS history must be >= 2, got {history}")
        if not 0.0 < linear_factor <= 1.0:
            raise ValueError(f"linear factor must be in (0, 1], got {linear_factor}")
        self.history = history
        self.linear_factor = linear_factor
        self._trials: List[np.ndarray] = []
        self._residuals: List[np.ndarray] = []

    def reset(self) -> None:
        """Drop all history."""
        self._trials.clear()
        self._residuals.clear()

    def push(self, trial: np.ndarray, residual: np.ndarray) -> np.ndarray:
        """Record one (trial, residual) pair and return the next trial.

        Shapes are preserved; internally everything is flattened.
        """
        shape = trial.shape
        self._trials.append(np.asarray(trial, dtype=float).ravel().copy())
        self._residuals.append(np.asarray(residual, dtype=float).ravel().copy())
        if len(self._trials) > self.history:
            self._trials.pop(0)
            self._residuals.pop(0)

        m = len(self._trials)
        if m < 2:
            return self._trials[-1].reshape(shape)

        coeffs = self._solve_diis(m)
        if coeffs is None:
            # Singular system: damped step along the newest residual.
            mixed = self._trials[-1] + self.linear_factor * self._residuals[-1]
            return mixed.reshape(shape)
        mixed = np.zeros_like(self._trials[0])
        for c, t in zip(coeffs, self._trials):
            mixed += c * t
        return mixed.reshape(shape)

    def _solve_diis(self, m: int) -> Optional[np.ndarray]:
        b = np.empty((m + 1, m + 1))
        for i in range(m):
            for j in range(m):
                b[i, j] = float(self._residuals[i] @ self._residuals[j])
        b[:m, m] = -1.0
        b[m, :m] = -1.0
        b[m, m] = 0.0
        rhs = np.zeros(m + 1)
        rhs[m] = -1.0
        try:
            sol = np.linalg.solve(b, rhs)
        except np.linalg.LinAlgError:
            return None
        if not np.all(np.isfinite(sol)):
            return None
        return sol[:m]


def linear_mix(old: np.ndarray, new: np.ndarray, factor: float) -> np.ndarray:
    """Plain linear mixing ``(1-f) old + f new``."""
    if not 0.0 < factor <= 1.0:
        raise ValueError(f"mixing factor must be in (0, 1], got {factor}")
    return (1.0 - factor) * old + factor * new

"""Spin-polarized LDA (LSDA): Slater exchange + PW92 correlation.

Open-shell extension of :mod:`repro.dft.xc` used by the unrestricted
Kohn-Sham driver.  Exchange is exact per spin channel
(``Ex[n_up, n_dn] = (Ex[2 n_up] + Ex[2 n_dn]) / 2``); correlation uses
the full PW92 spin interpolation between the paramagnetic and
ferromagnetic limits with the spin-stiffness term.  Potentials are
obtained by differentiating the (analytic) energy density numerically,
keeping them exactly consistent with the implemented energies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dft.xc import DENSITY_FLOOR, _CX, _rs

# PW92 parameter sets: (A, alpha1, beta1..beta4) for ec(zeta=0),
# ec(zeta=1) and -alpha_c(rs).
_PW92_SETS = {
    "ec0": (0.031091, 0.21370, 7.5957, 3.5876, 1.6382, 0.49294),
    "ec1": (0.015545, 0.20548, 14.1189, 6.1977, 3.3662, 0.62517),
    "mac": (0.016887, 0.11125, 10.357, 3.6231, 0.88026, 0.49671),
}

_F_DD0 = 1.709921  # f''(0) of the spin interpolation function


def _g(rs: np.ndarray, key: str) -> np.ndarray:
    a, a1, b1, b2, b3, b4 = _PW92_SETS[key]
    s = np.sqrt(rs)
    q0 = -2.0 * a * (1.0 + a1 * rs)
    q1 = 2.0 * a * (b1 * s + b2 * rs + b3 * rs * s + b4 * rs * rs)
    return q0 * np.log1p(1.0 / q1)


def _f_zeta(zeta: np.ndarray) -> np.ndarray:
    """The spin interpolation function f(zeta)."""
    return (
        (1.0 + zeta) ** (4.0 / 3.0) + (1.0 - zeta) ** (4.0 / 3.0) - 2.0
    ) / (2.0 ** (4.0 / 3.0) - 2.0)


@dataclass(frozen=True)
class SpinXCResult:
    """Pointwise LSDA data."""

    exc: np.ndarray  # energy per electron
    vxc_up: np.ndarray
    vxc_dn: np.ndarray


def lsda_energy_density(n_up: np.ndarray, n_dn: np.ndarray) -> np.ndarray:
    """exc(n_up, n_dn) per electron (zero below the density floor)."""
    n_up = np.maximum(np.asarray(n_up, dtype=float), 0.0)
    n_dn = np.maximum(np.asarray(n_dn, dtype=float), 0.0)
    n = n_up + n_dn
    safe = n > DENSITY_FLOOR
    ns = np.where(safe, n, 1.0)
    zeta = np.clip(np.where(safe, (n_up - n_dn) / ns, 0.0), -1.0, 1.0)

    # Exchange: spin-scaling relation.
    ex = (
        -_CX
        * 0.5
        * (
            (2.0 * np.where(safe, n_up, 0.5)) ** (4.0 / 3.0)
            + (2.0 * np.where(safe, n_dn, 0.5)) ** (4.0 / 3.0)
        )
        / ns
    )

    rs = _rs(ns)
    ec0 = _g(rs, "ec0")
    ec1 = _g(rs, "ec1")
    mac = _g(rs, "mac")  # this is -alpha_c
    f = _f_zeta(zeta)
    z4 = zeta**4
    ec = ec0 - mac * f / _F_DD0 * (1.0 - z4) + (ec1 - ec0) * f * z4

    return np.where(safe, ex + ec, 0.0)


def lsda_exchange_correlation(
    n_up: np.ndarray, n_dn: np.ndarray, rel_step: float = 1e-6
) -> SpinXCResult:
    """Energy density and per-spin potentials.

    ``v_sigma = d(n exc)/dn_sigma`` via relative central differences on
    the analytic energy density.
    """
    n_up = np.asarray(n_up, dtype=float)
    n_dn = np.asarray(n_dn, dtype=float)
    n = n_up + n_dn
    safe = n > DENSITY_FLOOR
    exc = lsda_energy_density(n_up, n_dn)

    def e_total(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (a + b) * lsda_energy_density(a, b)

    h_up = rel_step * np.maximum(n_up, 1e-8)
    h_dn = rel_step * np.maximum(n_dn, 1e-8)
    v_up = (e_total(n_up + h_up, n_dn) - e_total(np.maximum(n_up - h_up, 0.0), n_dn)) / (
        n_up + h_up - np.maximum(n_up - h_up, 0.0)
    )
    v_dn = (e_total(n_up, n_dn + h_dn) - e_total(n_up, np.maximum(n_dn - h_dn, 0.0))) / (
        n_dn + h_dn - np.maximum(n_dn - h_dn, 0.0)
    )
    return SpinXCResult(
        exc=np.where(safe, exc, 0.0),
        vxc_up=np.where(safe, v_up, 0.0),
        vxc_dn=np.where(safe, v_dn, 0.0),
    )

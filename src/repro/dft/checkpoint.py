"""Checkpointing of converged ground states.

Long all-electron runs restart from saved orbitals; at minimum, the
DFPT phase can be decoupled from the SCF phase across processes.  The
format is a plain ``.npz`` with a version tag and a geometry hash so a
stale checkpoint cannot be applied to a different structure.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Union

import numpy as np

from repro.atoms.structure import Structure
from repro.errors import ReproError

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


class CheckpointError(ReproError):
    """Checkpoint file unusable (wrong structure, version, corruption)."""


def geometry_fingerprint(structure: Structure) -> str:
    """Stable hash of symbols + coordinates (1e-10 Bohr resolution)."""
    h = hashlib.sha256()
    h.update(",".join(structure.symbols).encode())
    h.update(np.round(structure.coords, 10).tobytes())
    return h.hexdigest()


def save_ground_state(path: PathLike, ground_state) -> None:
    """Persist the converged SCF quantities needed to resume."""
    gs = ground_state
    np.savez_compressed(
        Path(path),
        version=np.array([_FORMAT_VERSION]),
        fingerprint=np.frombuffer(
            geometry_fingerprint(gs.structure).encode(), dtype=np.uint8
        ),
        eigenvalues=gs.eigenvalues,
        orbitals=gs.orbitals,
        occupations=gs.occupations,
        density_matrix=gs.density_matrix,
        total_energy=np.array([gs.total_energy]),
        iterations=np.array([gs.iterations]),
    )


def load_ground_state_arrays(path: PathLike, structure: Structure) -> dict:
    """Load and validate a checkpoint against the given structure.

    Returns the stored arrays as a dict; raises
    :class:`CheckpointError` on any mismatch.
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"no checkpoint at {path}")
    with np.load(path) as data:
        version = int(data["version"][0])
        if version != _FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint version {version}, expected {_FORMAT_VERSION}"
            )
        stored = bytes(data["fingerprint"]).decode()
        if stored != geometry_fingerprint(structure):
            raise CheckpointError(
                "checkpoint belongs to a different geometry"
            )
        return {
            "eigenvalues": data["eigenvalues"],
            "orbitals": data["orbitals"],
            "occupations": data["occupations"],
            "density_matrix": data["density_matrix"],
            "total_energy": float(data["total_energy"][0]),
            "iterations": int(data["iterations"][0]),
        }

"""Delley-style multipole-expansion Hartree solver (Eqs. 8-9).

The electrostatic potential of a density sampled on the atom-centered
grid is obtained in three stages, exactly mirroring the FHI-aims
pipeline the paper optimizes:

1. **Multipole projection** — the Becke-partitioned density of each atom
   is projected on real spherical harmonics shell by shell, producing
   ``rho_multipole[atom][shell, lm]``.  (At scale, each row of this
   array is what the packed AllReduce of Section 3.2 synthesizes.)
2. **Radial Poisson solve** — per (atom, lm) channel, the radial
   potential is two cumulative integrals computed with the
   Adams-Moulton linear multistep quadrature (the loop that Section 4.4
   collapses), then splined: ``delta_v_hart_part_spl``.
3. **Back-interpolation** — the total potential at any point is the sum
   of splined atom-centered partial potentials plus analytic multipole
   far fields (the producer/consumer kernel pair of Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.basis.spline import CubicSpline
from repro.basis.ylm import n_lm, real_spherical_harmonics
from repro.errors import GridError
from repro.grids.atom_grid import IntegrationGrid


def adams_moulton_cumulative(f: np.ndarray, df: np.ndarray) -> np.ndarray:
    """Cumulative integral with the 4th-order Adams-Moulton quadrature.

    Parameters
    ----------
    f:
        Integrand sampled on mesh nodes; shape ``(n, ...)``.
    df:
        ``ds/di`` mesh stretching at each node (same leading length), so
        the integral in the unit-step index variable is ``sum f * df``.

    Returns
    -------
    ``F`` with ``F[k] = int_{node 0}^{node k} f ds``; ``F[0] = 0``.

    The first two steps use 4-point cubic-exact startup formulas, then
    the 4-step Adams-Moulton corrector
    ``F[k] = F[k-1] + (9 g_k + 19 g_{k-1} - 5 g_{k-2} + g_{k-3}) / 24``
    with ``g = f * df`` — every step integrates cubics exactly on
    uniform meshes.
    """
    f = np.asarray(f, dtype=float)
    df = np.asarray(df, dtype=float)
    if f.shape[0] != df.shape[0]:
        raise ValueError("f and df must share their leading length")
    g = f * df.reshape(-1, *([1] * (f.ndim - 1)))
    out = np.zeros_like(g)
    n = g.shape[0]
    if n == 0:
        return out
    if n == 2:
        out[1] = 0.5 * (g[0] + g[1])
        return out
    if n == 3:
        out[1] = (5.0 * g[0] + 8.0 * g[1] - g[2]) / 12.0
        out[2] = out[1] + (5.0 * g[2] + 8.0 * g[1] - g[0]) / 12.0
        return out
    # Cubic-exact startup over the first four nodes.
    out[1] = (9.0 * g[0] + 19.0 * g[1] - 5.0 * g[2] + g[3]) / 24.0
    out[2] = out[1] + (-g[0] + 13.0 * g[1] + 13.0 * g[2] - g[3]) / 24.0
    if n >= 4:
        # Vectorized would hide the recurrence; the dependence chain is
        # genuine (each step needs the previous), matching the paper's
        # description of the integrator.
        for k in range(3, n):
            out[k] = out[k - 1] + (
                9.0 * g[k] + 19.0 * g[k - 1] - 5.0 * g[k - 2] + g[k - 3]
            ) / 24.0
    return out


@dataclass
class MultipoleExpansion:
    """Per-atom multipole data of one density.

    Attributes
    ----------
    moments:
        ``rho_multipole`` — list over atoms of ``(n_shells, n_lm)``.
    potential_splines:
        ``delta_v_hart_part_spl`` — list over atoms of vector-valued
        radial splines of the partial potentials (``None`` until solved).
    far_moments:
        list over atoms of ``(n_lm,)`` multipole moments
        ``q_lm = int s^(l+2) rho_lm ds`` for the analytic far field.
    l_max:
        Highest multipole angular momentum.
    """

    moments: List[np.ndarray]
    l_max: int
    potential_splines: Optional[List[CubicSpline]] = None
    far_moments: Optional[List[np.ndarray]] = None

    @property
    def rho_multipole_nbytes(self) -> int:
        """Total bytes of the rho_multipole arrays."""
        return int(sum(m.nbytes for m in self.moments))

    @property
    def potential_spline_nbytes(self) -> int:
        """Total bytes of the delta_v_hart_part_spl coefficient tables."""
        if self.potential_splines is None:
            return 0
        return int(sum(s.coefficient_nbytes for s in self.potential_splines))


class MultipoleSolver:
    """Poisson solver bound to one structure + integration grid.

    The constructor precomputes everything density-independent (angular
    harmonics on the shared angular rule, per-atom point bookkeeping,
    point->atom distances and harmonics for back-interpolation), so both
    the ground-state cycle and every CPSCF iteration reuse it.
    """

    def __init__(self, grid: IntegrationGrid, l_max: int) -> None:
        if grid.partition_weights is None:
            grid.compute_partition_weights()
        self.grid = grid
        self.structure = grid.structure
        self.l_max = l_max
        self._n_lm = n_lm(l_max)

        # Per-l prefactors 4 pi / (2l+1), expanded over lm channels.
        ls = np.concatenate(
            [np.full(2 * l + 1, l) for l in range(l_max + 1)]
        ).astype(float)
        self._l_of_lm = ls
        self._pref = 4.0 * np.pi / (2.0 * ls + 1.0)

        # The angular rule is shared by all shells of all atoms; recover
        # it from the first atom's first shell block.
        n_atoms = self.structure.n_atoms
        self._atom_slices: List[slice] = []
        start = 0
        for a in range(n_atoms):
            n_pts = int(np.count_nonzero(grid.atom_index == a))
            self._atom_slices.append(slice(start, start + n_pts))
            start += n_pts
        if start != grid.n_points:
            raise GridError("grid points are not atom-major ordered")

        first = self._atom_slices[0]
        n_shells0 = len(grid.shell_radii[0])
        self._n_ang = (first.stop - first.start) // n_shells0
        ang_dirs = (
            grid.points[first][: self._n_ang] - self.structure.coords[0]
        )
        self._y_ang = real_spherical_harmonics(ang_dirs, l_max)  # (n_ang, n_lm)
        self._w_ang = grid.angular_weights[first][: self._n_ang]

        # Per-atom: distances and harmonics of *all* grid points w.r.t.
        # that atom (the consumer-kernel geometry), computed lazily.
        self._eval_cache: List[Optional[tuple]] = [None] * n_atoms

    # ------------------------------------------------------------------
    # Stage 1: multipole projection
    # ------------------------------------------------------------------
    def expand(self, density_values: np.ndarray) -> MultipoleExpansion:
        """Project a grid-sampled density onto ``rho_multipole``."""
        rho = np.asarray(density_values, dtype=float)
        if rho.shape[0] != self.grid.n_points:
            raise GridError(
                f"{rho.shape[0]} density samples for {self.grid.n_points} points"
            )
        part = self.grid.partition_weights
        moments: List[np.ndarray] = []
        for a, sl in enumerate(self._atom_slices):
            n_shells = len(self.grid.shell_radii[a])
            vals = (rho[sl] * part[sl] * np.tile(self._w_ang, n_shells)).reshape(
                n_shells, self._n_ang
            )
            moments.append(vals @ self._y_ang)  # (n_shells, n_lm)
        return MultipoleExpansion(moments=moments, l_max=self.l_max)

    # ------------------------------------------------------------------
    # Stage 2: radial Poisson via Adams-Moulton
    # ------------------------------------------------------------------
    def solve(self, expansion: MultipoleExpansion) -> MultipoleExpansion:
        """Fill the partial-potential splines and far-field moments."""
        splines: List[CubicSpline] = []
        far: List[np.ndarray] = []
        l_arr = self._l_of_lm  # (n_lm,)
        for a, mom in enumerate(expansion.moments):
            r = self.grid.shell_radii[a]  # (n_shells,)
            # Recover ds/di from the stored quadrature construction:
            # radial weight w = r^2 dr/di was used in shells; rebuild
            # dr/di from consecutive ratios of the log-like mesh by
            # finite differences (exact enough for the quadrature).
            dr = np.gradient(r)
            rl = r[:, None] ** (l_arr[None, :] + 2.0)  # s^(l+2)
            inner = adams_moulton_cumulative(mom * rl, dr)
            # Inner boundary: density ~ constant below the first shell.
            inner0 = mom[0] * r[0] ** (l_arr + 3.0) / (l_arr + 3.0)
            inner = inner + inner0[None, :]

            ru = r[:, None] ** (1.0 - l_arr[None, :])  # s^(1-l)
            outer_cum = adams_moulton_cumulative(mom * ru, dr)
            outer_total = outer_cum[-1]
            outer = outer_total[None, :] - outer_cum

            v = self._pref[None, :] * (
                inner / r[:, None] ** (l_arr[None, :] + 1.0)
                + outer * r[:, None] ** l_arr[None, :]
            )
            splines.append(CubicSpline(r, v))
            far.append(inner[-1])
        expansion.potential_splines = splines
        expansion.far_moments = far
        return expansion

    # ------------------------------------------------------------------
    # Stage 3: back-interpolation (the consumer kernel)
    # ------------------------------------------------------------------
    def _eval_geometry(self, atom: int, points: Optional[np.ndarray] = None):
        """(r, Y) of evaluation points w.r.t. one atom (cached for the grid)."""
        if points is None:
            if self._eval_cache[atom] is None:
                d = self.grid.points - self.structure.coords[atom]
                r = np.linalg.norm(d, axis=1)
                y = real_spherical_harmonics(d, self.l_max)
                self._eval_cache[atom] = (r, y)
            return self._eval_cache[atom]
        d = np.atleast_2d(points) - self.structure.coords[atom]
        return np.linalg.norm(d, axis=1), real_spherical_harmonics(d, self.l_max)

    def evaluate(
        self,
        expansion: MultipoleExpansion,
        points: Optional[np.ndarray] = None,
        atoms: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Total Hartree potential at grid points (default) or any points.

        Sums splined partial potentials inside each atom's radial mesh
        and the analytic ``q_lm / r^(l+1)`` far field outside.
        """
        if expansion.potential_splines is None:
            raise GridError("expansion not solved; call solve() first")
        n_pts = self.grid.n_points if points is None else np.atleast_2d(points).shape[0]
        v = np.zeros(n_pts)
        l_arr = self._l_of_lm
        atom_iter = range(self.structure.n_atoms) if atoms is None else atoms
        for a in atom_iter:
            r, y = self._eval_geometry(a, points)
            r_max = self.grid.shell_radii[a][-1]
            near = r <= r_max
            if np.any(near):
                vr = expansion.potential_splines[a](r[near])  # (n_near, n_lm)
                v[near] += np.einsum("ij,ij->i", vr, y[near])
            far = ~near
            if np.any(far):
                q = expansion.far_moments[a]
                rf = r[far]
                vf = (
                    self._pref[None, :]
                    * q[None, :]
                    / rf[:, None] ** (l_arr[None, :] + 1.0)
                )
                v[far] += np.einsum("ij,ij->i", vf, y[far])
        return v

    def hartree_potential(self, density_values: np.ndarray) -> np.ndarray:
        """Convenience: density -> potential at all grid points."""
        return self.evaluate(self.solve(self.expand(density_values)))

"""Ground-state all-electron DFT engine (the substrate of Fig. 1's cycle).

Provides the pieces the perturbation theory builds on: LDA
exchange-correlation (with the fxc kernel DFPT needs), the Delley-style
multipole-expansion Hartree solver (whose ``rho_multipole`` /
``delta_v_hart_part_spl`` arrays star in the paper's optimizations),
grid-integrated H/S matrices, and the self-consistency driver.
"""

from repro.dft.xc import lda_exchange_correlation, lda_xc_kernel, XCResult
from repro.dft.hartree import MultipoleSolver, MultipoleExpansion
from repro.dft.hamiltonian import MatrixBuilder
from repro.dft.density import density_on_grid
from repro.dft.mixing import PulayMixer
from repro.dft.scf import SCFDriver, GroundState
from repro.dft.occupations import (
    aufbau_occupations,
    fermi_occupations,
    smearing_entropy,
)
from repro.dft.xc_spin import lsda_exchange_correlation, SpinXCResult
from repro.dft.uks import UKSDriver, SpinGroundState
from repro.dft.cube import export_density_cube, read_cube, write_cube
from repro.dft.checkpoint import (
    CheckpointError,
    save_ground_state,
    load_ground_state_arrays,
)

__all__ = [
    "lda_exchange_correlation",
    "lda_xc_kernel",
    "XCResult",
    "MultipoleSolver",
    "MultipoleExpansion",
    "MatrixBuilder",
    "density_on_grid",
    "PulayMixer",
    "SCFDriver",
    "GroundState",
    "aufbau_occupations",
    "fermi_occupations",
    "smearing_entropy",
    "lsda_exchange_correlation",
    "SpinXCResult",
    "UKSDriver",
    "SpinGroundState",
    "export_density_cube",
    "read_cube",
    "write_cube",
    "CheckpointError",
    "save_ground_state",
    "load_ground_state_arrays",
]

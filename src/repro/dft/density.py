"""Electron density (and response density) on the grid — Eqs. (3) and (8).

``n(r) = sum_mu_nu P_mu_nu chi_mu(r) chi_nu(r)`` evaluated from a cached
basis-value table; the same routine serves the ground-state density from
P and the response density from P^(1) (the paper's "Sumup" phase).
"""

from __future__ import annotations

import numpy as np

from repro.dft.hamiltonian import MatrixBuilder


def density_on_grid(builder: MatrixBuilder, density_matrix: np.ndarray) -> np.ndarray:
    """Pointwise density for one density matrix.

    Contraction is organised as ``((phi @ P) * phi).sum(axis=1)`` —
    two GEMM-shaped passes instead of an n_basis^2 loop.
    """
    p = np.asarray(density_matrix, dtype=float)
    nb = builder.basis.n_basis
    if p.shape != (nb, nb):
        raise ValueError(f"density matrix shape {p.shape}, basis size {nb}")
    phi = builder.basis_values()
    return np.einsum("pi,pi->p", phi @ p, phi, optimize=True)

"""Electron density (and response density) on the grid — Eqs. (3) and (8).

``n(r) = sum_mu_nu P_mu_nu chi_mu(r) chi_nu(r)``; the same routine
serves the ground-state density from P and the response density from
P^(1) (the paper's "Sumup" phase).  The contraction is executed by the
builder's :class:`~repro.backends.base.ExecutionBackend`, batch by
batch, as ``((phi_b @ P) * phi_b).sum(axis=1)`` — two GEMM-shaped
passes per batch instead of an n_basis^2 loop.
"""

from __future__ import annotations

import numpy as np

from repro.dft.hamiltonian import MatrixBuilder


def density_on_grid(builder: MatrixBuilder, density_matrix: np.ndarray) -> np.ndarray:
    """Pointwise density for one density matrix (backend-dispatched)."""
    return builder.backend.density_on_grid(density_matrix)

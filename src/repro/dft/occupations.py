"""Orbital occupations: aufbau filling and Fermi-Dirac smearing.

Eq. (3)'s f_i.  Zero electronic temperature gives integer aufbau
occupation; a finite ``width`` (Hartree) smears them with the
Fermi-Dirac distribution, with the chemical potential found by
bisection so the electron count is conserved — necessary for metallic
or near-degenerate systems and for fractional-charge studies.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import SCFConvergenceError


def aufbau_occupations(
    eigenvalues: np.ndarray, n_electrons: float, max_occ: float = 2.0
) -> np.ndarray:
    """Integer filling of the lowest states.

    ``n_electrons`` may include one partially filled frontier orbital
    (e.g. 1 electron with max_occ=2 fills half an orbital) — anything
    beyond that needs smearing.
    """
    eigenvalues = np.asarray(eigenvalues, dtype=float)
    if n_electrons < 0:
        raise SCFConvergenceError(
            f"negative electron count {n_electrons}", iterations=0, residual=0.0
        )
    n_full = int(n_electrons // max_occ)
    remainder = n_electrons - n_full * max_occ
    if n_full > eigenvalues.shape[0] or (
        n_full == eigenvalues.shape[0] and remainder > 0
    ):
        raise SCFConvergenceError(
            f"{n_electrons} electrons do not fit in {eigenvalues.shape[0]} states",
            iterations=0,
            residual=0.0,
        )
    order = np.argsort(eigenvalues, kind="stable")
    f = np.zeros_like(eigenvalues)
    f[order[:n_full]] = max_occ
    if remainder > 0:
        f[order[n_full]] = remainder
    return f


def fermi_occupations(
    eigenvalues: np.ndarray,
    n_electrons: float,
    width: float,
    max_occ: float = 2.0,
    tolerance: float = 1e-12,
    max_iterations: int = 200,
) -> Tuple[np.ndarray, float]:
    """Fermi-Dirac occupations and the chemical potential.

    Returns ``(f, mu)`` with ``sum(f) = n_electrons`` to *tolerance*.
    ``width`` is k_B T in Hartree; width -> 0 recovers aufbau filling.
    """
    eigenvalues = np.asarray(eigenvalues, dtype=float)
    if width <= 0.0:
        f = aufbau_occupations(eigenvalues, n_electrons, max_occ)
        homo = eigenvalues[f > 0].max() if np.any(f > 0) else eigenvalues.min()
        return f, float(homo)
    if not 0 <= n_electrons <= max_occ * eigenvalues.shape[0]:
        raise SCFConvergenceError(
            f"{n_electrons} electrons outside [0, {max_occ * len(eigenvalues)}]",
            iterations=0,
            residual=0.0,
        )

    def count(mu: float) -> float:
        x = np.clip((eigenvalues - mu) / width, -500.0, 500.0)
        return float(np.sum(max_occ / (1.0 + np.exp(x))))

    lo = float(eigenvalues.min()) - 50.0 * width
    hi = float(eigenvalues.max()) + 50.0 * width
    for _ in range(max_iterations):
        mu = 0.5 * (lo + hi)
        c = count(mu)
        if abs(c - n_electrons) < tolerance:
            break
        if c < n_electrons:
            lo = mu
        else:
            hi = mu
    else:
        mu = 0.5 * (lo + hi)
        if abs(count(mu) - n_electrons) > 1e-8:
            raise SCFConvergenceError(
                "chemical-potential bisection failed", iterations=max_iterations,
                residual=abs(count(mu) - n_electrons),
            )
    x = np.clip((eigenvalues - mu) / width, -500.0, 500.0)
    return max_occ / (1.0 + np.exp(x)), float(mu)


def smearing_entropy(
    occupations: np.ndarray, width: float, max_occ: float = 2.0
) -> float:
    """Electronic-entropy term ``-T S`` of Fermi smearing (Hartree).

    Added to the total energy so the smeared functional stays
    variational (Mermin).  Zero when width is zero.
    """
    if width <= 0.0:
        return 0.0
    f = np.clip(np.asarray(occupations, dtype=float) / max_occ, 1e-300, 1.0)
    g = np.clip(1.0 - f, 1e-300, 1.0)
    s = -np.sum(max_occ * (f * np.log(f) + g * np.log(g)))
    return float(-width * s)

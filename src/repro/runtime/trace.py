"""Per-rank execution timelines for one modeled CPSCF cycle.

The phase model prices the critical-path (max-loaded) rank; this module
expands a cycle into per-rank intervals — grid-phase times scale with
each rank's actual point share, collectives synchronize everyone — and
reports utilization, imbalance and an ASCII Gantt chart.  The
"straggler" view that motivates load balancing in the first place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ExperimentError
from repro.utils.balance import max_mean_imbalance

#: Phases that scale with a rank's grid-point share.
POINT_SCALED_PHASES = ("Sumup", "Rho", "H")


@dataclass(frozen=True)
class Interval:
    """One rank's occupation of one phase.

    >>> Interval(rank=0, phase="DM", start=0.5, end=2.0).duration
    1.5
    """

    rank: int
    phase: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Elapsed seconds of this occupation."""
        return self.end - self.start


@dataclass
class CycleTrace:
    """All intervals of one cycle across all ranks.

    >>> t = CycleTrace(2, [Interval(0, "DM", 0.0, 1.0),
    ...                    Interval(1, "DM", 0.0, 0.5)])
    >>> t.span
    1.0
    >>> t.utilization()
    0.75
    """

    n_ranks: int
    intervals: List[Interval]

    @property
    def span(self) -> float:
        """Wall-clock length of the cycle (max end time)."""
        return max((iv.end for iv in self.intervals), default=0.0)

    def busy_time(self, rank: int) -> float:
        """Summed interval duration of one rank.

        >>> CycleTrace(1, [Interval(0, "H", 0.0, 2.0)]).busy_time(0)
        2.0
        """
        return sum(iv.duration for iv in self.intervals if iv.rank == rank)

    def utilization(self) -> float:
        """Mean busy fraction across ranks (1.0 = no idle time).

        A zero-span cycle (no intervals, or all zero-duration) has no
        idle time by definition and reports 1.0.
        """
        if self.n_ranks < 1:
            raise ExperimentError("trace needs at least one rank")
        span = self.span
        if span <= 0.0:
            return 1.0
        total_busy = sum(iv.duration for iv in self.intervals)
        return total_busy / (span * self.n_ranks)

    def imbalance(self) -> float:
        """Max/mean busy-time ratio (the shared repo-wide definition).

        Delegates to :func:`repro.utils.balance.max_mean_imbalance` so
        this value is directly comparable with mapping imbalances and
        the analysis layer's attribution tables.

        >>> t = CycleTrace(2, [Interval(0, "H", 0.0, 3.0),
        ...                    Interval(1, "H", 0.0, 1.0)])
        >>> t.imbalance()
        1.5
        """
        if self.n_ranks < 1:
            raise ExperimentError("trace needs at least one rank")
        busy = [self.busy_time(r) for r in range(self.n_ranks)]
        try:
            return max_mean_imbalance(busy)
        except ValueError:
            raise ExperimentError("trace has no work") from None

    def with_fault_events(self, events: Sequence) -> "CycleTrace":
        """Append explicit retry/idle intervals for injected faults.

        Each :class:`~repro.runtime.faults.FaultEvent` with a positive
        ``delay`` extends the cycle: a ``straggler`` keeps every other
        rank idle while the late rank computes (phase ``Idle``), any
        other kind stalls the whole communicator in backoff (phase
        ``Retry``).  Returns a new trace; the original is unchanged.

        >>> from types import SimpleNamespace
        >>> t = CycleTrace(2, [Interval(0, "DM", 0.0, 1.0),
        ...                    Interval(1, "DM", 0.0, 1.0)])
        >>> ev = SimpleNamespace(kind="straggler", rank=0, delay=0.5)
        >>> t.with_fault_events([ev]).span
        1.5
        """
        intervals = list(self.intervals)
        cursor = self.span
        for ev in events:
            delay = getattr(ev, "delay", 0.0)
            if delay <= 0.0:
                continue
            phase = "Idle" if ev.kind == "straggler" else "Retry"
            for r in range(self.n_ranks):
                if phase == "Idle" and r == ev.rank:
                    continue  # the straggler itself is busy, not idle
                intervals.append(Interval(r, phase, cursor, cursor + delay))
            cursor += delay
        return CycleTrace(n_ranks=self.n_ranks, intervals=intervals)

    def phase_spans(self) -> Dict[str, float]:
        """Wall-clock occupied by each phase (across all ranks).

        >>> t = CycleTrace(2, [Interval(0, "DM", 0.0, 1.0),
        ...                    Interval(1, "DM", 0.5, 2.0)])
        >>> t.phase_spans()
        {'DM': 2.0}
        """
        out: Dict[str, float] = {}
        for iv in self.intervals:
            lo, hi = out.get(iv.phase, (np.inf, 0.0)) if iv.phase in out else (iv.start, iv.end)
            out[iv.phase] = (min(lo, iv.start), max(hi, iv.end))  # type: ignore
        return {k: v[1] - v[0] for k, v in out.items()}

    def render_ascii(self, width: int = 72, max_ranks: int = 8) -> str:
        """Gantt chart: one row per rank, one letter per phase.

        Only the first ``max_ranks`` ranks get a row, but nothing about
        the elided ranks is silently dropped: an explicit
        ``... (+N ranks elided)`` marker names how many rows are
        missing, and the legend covers every phase in the trace — even
        one that occurs only on an elided rank.

        >>> t = CycleTrace(2, [Interval(0, "DM", 0.0, 1.0),
        ...                    Interval(1, "DM", 0.0, 1.0)])
        >>> print(t.render_ascii(width=12, max_ranks=1))
        rank    0 |DDDDDDDDDDD |
        ... (+1 ranks elided)
        legend: D=DM  span=1s
        """
        span = self.span
        if span <= 0.0:
            return "(empty trace)"
        # Legend letters come from *all* intervals so phases that occur
        # only on elided ranks still appear (first-seen order).
        letters: Dict[str, str] = {}
        for iv in self.intervals:
            letters.setdefault(iv.phase, iv.phase[0])
        rows = []
        shown = min(self.n_ranks, max_ranks)
        for r in range(shown):
            row = [" "] * width
            for iv in self.intervals:
                if iv.rank != r:
                    continue
                letter = letters[iv.phase]
                lo = int(iv.start / span * (width - 1))
                hi = max(lo + 1, int(np.ceil(iv.end / span * (width - 1))))
                for c in range(lo, min(hi, width)):
                    row[c] = letter
            rows.append(f"rank {r:4d} |{''.join(row)}|")
        if self.n_ranks > shown:
            rows.append(f"... (+{self.n_ranks - shown} ranks elided)")
        legend = "  ".join(f"{v}={k}" for k, v in letters.items())
        return "\n".join(rows + [f"legend: {legend}  span={span:.3g}s"])


def trace_cycle(
    per_cycle_seconds: Dict[str, float],
    points_per_rank: Sequence[int],
) -> CycleTrace:
    """Expand modeled per-cycle phase times into per-rank timelines.

    ``per_cycle_seconds`` holds the critical-path times (max-loaded
    rank); each rank's grid phases shrink proportionally to its point
    share, ``DM`` is uniform, and ``Comm`` is a synchronizing collective
    entered only when every rank finished the compute phases.

    >>> t = trace_cycle({"DM": 1.0, "Comm": 0.5}, points_per_rank=[100, 50])
    >>> t.n_ranks, t.span
    (2, 1.5)
    """
    points = np.asarray(points_per_rank, dtype=float)
    if points.size == 0 or points.max() <= 0:
        raise ExperimentError("need positive per-rank point counts")
    share = points / points.max()
    n_ranks = points.shape[0]

    intervals: List[Interval] = []
    ends = np.zeros(n_ranks)
    for phase in ("DM", "Sumup", "Rho", "H"):
        t_max = per_cycle_seconds.get(phase, 0.0)
        for r in range(n_ranks):
            t = t_max * (share[r] if phase in POINT_SCALED_PHASES else 1.0)
            intervals.append(Interval(r, phase, ends[r], ends[r] + t))
            ends[r] += t
    # Collective: everyone waits for the slowest, then communicates.
    barrier = float(ends.max())
    t_comm = per_cycle_seconds.get("Comm", 0.0)
    for r in range(n_ranks):
        intervals.append(Interval(r, "Comm", barrier, barrier + t_comm))
    return CycleTrace(n_ranks=n_ranks, intervals=intervals)

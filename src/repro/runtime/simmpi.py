"""In-process SPMD simulator: rank-local buffers + bit-exact collectives.

:class:`SimCluster` lays ranks out over a machine's nodes;
:class:`SimComm` executes collectives over *lists of per-rank numpy
arrays* (index = rank).  Numerics are real — reductions are performed
on the actual data so parallel decompositions can be asserted equal to
serial references — while every call also charges the machine's cost
model and updates byte/message counters for the scaling figures.

When the cluster carries a :class:`~repro.runtime.faults.FaultPlan`,
every collective first consults it: injected rank failures are healed
by a modeled checkpoint-restore, corrupted/dropped messages and
transient errors are retried with exponential backoff, stragglers add
idle time — all recorded in :class:`CommStats` and as
:class:`~repro.runtime.faults.FaultEvent` entries on the cluster, so
degradation is observable in traces and reports.  Retries that exhaust
the :class:`~repro.runtime.faults.RetryPolicy` budget raise
:class:`~repro.errors.CollectiveTimeoutError`; callers (the reduction
schemes) respond by degrading to a simpler algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Sequence, Set

import numpy as np

from repro.errors import CollectiveTimeoutError, CommunicationError, RankFailureError
from repro.obs.tracer import obs_counter, obs_event, obs_span
from repro.runtime.costmodel import CommCostModel
from repro.runtime.faults import FaultEvent, FaultPlan, RetryPolicy
from repro.runtime.machines import MachineSpec


@dataclass
class CommStats:
    """Accumulated communication accounting for one communicator."""

    calls: int = 0
    messages: int = 0
    bytes_moved: int = 0
    model_time: float = 0.0
    # -- resilience accounting -----------------------------------------
    retries: int = 0
    rank_failures: int = 0
    corrupted_collectives: int = 0
    dropped_messages: int = 0
    straggler_events: int = 0
    backoff_time: float = 0.0
    recovery_time: float = 0.0
    straggler_time: float = 0.0
    degradations: List[str] = field(default_factory=list)

    def charge(self, messages: int, nbytes: int, seconds: float) -> None:
        self.calls += 1
        self.messages += messages
        self.bytes_moved += nbytes
        self.model_time += seconds

    def merged(self, other: "CommStats") -> "CommStats":
        return CommStats(
            calls=self.calls + other.calls,
            messages=self.messages + other.messages,
            bytes_moved=self.bytes_moved + other.bytes_moved,
            model_time=self.model_time + other.model_time,
            retries=self.retries + other.retries,
            rank_failures=self.rank_failures + other.rank_failures,
            corrupted_collectives=self.corrupted_collectives
            + other.corrupted_collectives,
            dropped_messages=self.dropped_messages + other.dropped_messages,
            straggler_events=self.straggler_events + other.straggler_events,
            backoff_time=self.backoff_time + other.backoff_time,
            recovery_time=self.recovery_time + other.recovery_time,
            straggler_time=self.straggler_time + other.straggler_time,
            degradations=self.degradations + other.degradations,
        )


class SimCluster:
    """N MPI ranks laid out over a machine's nodes (contiguous blocks).

    The cluster owns the run-wide fault state: the plan, the retry
    policy collectives obey, the set of currently failed ranks, an
    aggregate :class:`CommStats` merged over every communicator, and
    the ordered log of injected :class:`FaultEvent`\\ s.
    """

    def __init__(
        self,
        machine: MachineSpec,
        n_ranks: int,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        if n_ranks < 1:
            raise CommunicationError(f"cluster needs >= 1 rank, got {n_ranks}")
        self.machine = machine
        self.n_ranks = n_ranks
        self.n_nodes = machine.nodes_for(n_ranks)
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy or RetryPolicy()
        self.failed_ranks: Set[int] = set()
        self.stats = CommStats()
        self.fault_events: List[FaultEvent] = []
        self._collective_seq = 0
        self._shm_seq = 0

    def node_of(self, rank: int) -> int:
        """Hosting node of one rank."""
        if not 0 <= rank < self.n_ranks:
            raise CommunicationError(f"rank {rank} out of range")
        return rank // self.machine.procs_per_node

    def ranks_of_node(self, node: int) -> range:
        """Ranks hosted on one node (the last node may be partial)."""
        if not 0 <= node < self.n_nodes:
            raise CommunicationError(
                f"node {node} out of range for a {self.n_nodes}-node cluster "
                f"({self.n_ranks} ranks, {self.machine.procs_per_node} per node)"
            )
        lo = node * self.machine.procs_per_node
        hi = min(lo + self.machine.procs_per_node, self.n_ranks)
        return range(lo, hi)

    def accelerator_group_of(self, rank: int) -> int:
        """Which accelerator (globally numbered) this rank shares."""
        return rank // self.machine.ranks_per_accelerator

    def comm(self) -> "SimComm":
        """World communicator over all ranks."""
        return SimComm(self)

    # ------------------------------------------------------------------
    # Fault bookkeeping
    # ------------------------------------------------------------------
    def next_collective_index(self) -> int:
        """Cluster-wide sequence number of the next collective call."""
        i = self._collective_seq
        self._collective_seq += 1
        return i

    def next_shm_index(self) -> int:
        """Cluster-wide sequence number of the next shm-window synthesis."""
        i = self._shm_seq
        self._shm_seq += 1
        return i

    def alive_ranks(self) -> List[int]:
        return [r for r in range(self.n_ranks) if r not in self.failed_ranks]

    def fail_rank(self, rank: int) -> None:
        """Mark one rank dead (fault injection)."""
        if not 0 <= rank < self.n_ranks:
            raise CommunicationError(f"rank {rank} out of range")
        self.failed_ranks.add(rank)

    def recover_rank(self, rank: int, state_bytes: float = 0.0) -> float:
        """Checkpoint-restore a failed rank; returns the modeled seconds.

        The replacement process re-fetches the rank's state (the last
        converged cycle's buffers) from a peer over the inter-node
        fabric, plus a fixed process-restart latency.
        """
        if rank not in self.failed_ranks:
            raise RankFailureError(
                f"rank {rank} is not failed; nothing to recover", rank=rank
            )
        self.failed_ranks.discard(rank)
        return CommCostModel(self.machine).rank_recovery(state_bytes)

    def record_event(self, event: FaultEvent) -> None:
        self.fault_events.append(event)

    def record_degradation(self, description: str) -> None:
        """Note a fallback path taken by a communication scheme."""
        self.stats.degradations.append(description)
        obs_event("degradation", category="fault", detail=description)


class SimComm:
    """Collectives over per-rank buffer lists, with cost accounting."""

    def __init__(self, cluster: SimCluster, ranks: Optional[Sequence[int]] = None):
        self.cluster = cluster
        self.ranks = list(range(cluster.n_ranks)) if ranks is None else list(ranks)
        if not self.ranks:
            raise CommunicationError("communicator must contain at least one rank")
        self.cost = CommCostModel(cluster.machine)
        self.stats = CommStats()

    @property
    def size(self) -> int:
        return len(self.ranks)

    def _check(self, buffers: Sequence[np.ndarray]) -> List[np.ndarray]:
        if len(buffers) != self.size:
            raise CommunicationError(
                f"{len(buffers)} buffers for a {self.size}-rank communicator"
            )
        arrs = [np.asarray(b) for b in buffers]
        shape = arrs[0].shape
        for a in arrs[1:]:
            if a.shape != shape:
                raise CommunicationError(
                    f"mismatched buffer shapes: {a.shape} vs {shape}"
                )
        return arrs

    # ------------------------------------------------------------------
    # Resilience plumbing
    # ------------------------------------------------------------------
    def _charge(self, messages: int, nbytes: int, seconds: float) -> None:
        self.stats.charge(messages, nbytes, seconds)
        self.cluster.stats.charge(messages, nbytes, seconds)
        obs_counter("comm.collectives")
        obs_counter("comm.messages", messages)
        obs_counter("comm.bytes_moved", nbytes)

    def _bump(self, attr: str, amount=1) -> None:
        for stats in (self.stats, self.cluster.stats):
            setattr(stats, attr, getattr(stats, attr) + amount)
        if isinstance(amount, int):
            obs_counter(f"comm.{attr}", amount)

    def _resilient(self, op_name: str, nbytes: int, execute: Callable):
        """Run one collective body under the cluster's fault plan.

        Fault-free clusters pay nothing.  Otherwise each attempt first
        asks the plan for a verdict: stragglers delay but succeed, rank
        failures are healed by checkpoint-restore and retried, damaged
        or lost payloads are retried with exponential backoff, and a
        retry budget/timeout overrun raises
        :class:`~repro.errors.CollectiveTimeoutError` so callers can
        degrade to a simpler scheme.
        """
        plan = self.cluster.fault_plan
        if plan is None:
            return execute()
        policy = self.cluster.retry_policy
        call_index = self.cluster.next_collective_index()
        site = f"{op_name}[{call_index}]"
        backoff_total = 0.0
        attempts = 0
        for attempt in range(policy.max_retries + 1):
            attempts = attempt + 1
            event = plan.collective_fault(site, call_index, attempt, self.ranks)
            if event is None:
                return execute()
            if event.kind == "straggler":
                event = replace(event, delay=max(event.delay, 0.0))
                self._record(event)
                self._bump("straggler_events")
                self._bump("straggler_time", event.delay)
                self._bump("model_time", event.delay)
                return execute()
            if event.kind == "rank_failure":
                self.cluster.fail_rank(event.rank)
                recovery = self.cluster.recover_rank(event.rank, nbytes)
                self._bump("rank_failures")
                self._bump("recovery_time", recovery)
                self._bump("model_time", recovery)
            elif event.kind == "message_corruption":
                self._bump("corrupted_collectives")
            elif event.kind == "message_drop":
                self._bump("dropped_messages")
            backoff = policy.backoff(attempt)
            backoff_total += backoff
            self._record(replace(event, delay=backoff))
            self._bump("retries")
            self._bump("backoff_time", backoff)
            self._bump("model_time", backoff)
            if backoff_total > policy.timeout:
                raise CollectiveTimeoutError(
                    f"{site} exceeded the {policy.timeout:.3g}s retry timeout "
                    f"after {attempts} attempts",
                    site=site,
                    attempts=attempts,
                )
        raise CollectiveTimeoutError(
            f"{site} still failing after {policy.max_retries} retries",
            site=site,
            attempts=attempts,
        )

    def _record(self, event: FaultEvent) -> None:
        self.cluster.record_event(event)
        obs_event(
            event.kind, category="fault",
            site=event.site, rank=event.rank, delay=event.delay,
        )

    # ------------------------------------------------------------------
    # Collectives (bit-exact over the actual data)
    # ------------------------------------------------------------------
    def allreduce(
        self,
        buffers: Sequence[np.ndarray],
        op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
    ) -> np.ndarray:
        """Reduce all per-rank buffers with *op*; every rank gets the result.

        Reduction order is fixed (rank-ascending) so results are
        deterministic.  Returns one array (all ranks' copies are equal
        by definition; callers index it per rank if needed).
        """
        arrs = self._check(buffers)
        nbytes = int(arrs[0].nbytes)

        def execute() -> np.ndarray:
            result = arrs[0].copy()
            for a in arrs[1:]:
                result = op(result, a)
            t = self.cost.allreduce(self.size, int(result.nbytes))
            self._charge(
                messages=2 * (self.size - 1), nbytes=int(result.nbytes), seconds=t
            )
            obs_counter("comm.bytes_reduced", int(result.nbytes))
            return result

        with obs_span("allreduce", category="comm", ranks=self.size, nbytes=nbytes):
            return self._resilient("allreduce", nbytes, execute)

    def bcast(self, buffer: np.ndarray, root_to_all: bool = True) -> List[np.ndarray]:
        """Broadcast one buffer to every rank (returns per-rank copies)."""
        arr = np.asarray(buffer)
        nbytes = int(arr.nbytes)

        def execute() -> List[np.ndarray]:
            t = self.cost.allreduce(self.size, nbytes) * 0.5  # tree bcast ~ half
            self._charge(messages=self.size - 1, nbytes=nbytes, seconds=t)
            return [arr.copy() for _ in self.ranks]

        with obs_span("bcast", category="comm", ranks=self.size, nbytes=nbytes):
            return self._resilient("bcast", nbytes, execute)

    def gather(self, buffers: Sequence[np.ndarray]) -> np.ndarray:
        """Concatenate per-rank buffers on a virtual root."""
        arrs = [np.asarray(b) for b in buffers]
        if len(arrs) != self.size:
            raise CommunicationError(
                f"{len(arrs)} buffers for a {self.size}-rank communicator"
            )
        nbytes = int(sum(a.nbytes for a in arrs))

        def execute() -> np.ndarray:
            t = self.cost.allreduce(self.size, nbytes / max(self.size, 1))
            self._charge(messages=self.size - 1, nbytes=nbytes, seconds=t)
            return np.concatenate([a.ravel() for a in arrs])

        with obs_span("gather", category="comm", ranks=self.size, nbytes=nbytes):
            return self._resilient("gather", nbytes, execute)

    def barrier(self) -> None:
        """Synchronize all ranks (cost only)."""

        def execute() -> None:
            t = self.cost.barrier(self.size)
            self._charge(messages=self.size, nbytes=0, seconds=t)

        with obs_span("barrier", category="comm", ranks=self.size):
            return self._resilient("barrier", 0, execute)

    # ------------------------------------------------------------------
    def node_subcomms(self) -> List["SimComm"]:
        """One sub-communicator per node (for hierarchical schemes)."""
        by_node = {}
        for r in self.ranks:
            by_node.setdefault(self.cluster.node_of(r), []).append(r)
        return [SimComm(self.cluster, ranks) for _, ranks in sorted(by_node.items())]

    def leader_subcomm(self) -> "SimComm":
        """Communicator of each node's first rank."""
        seen = {}
        for r in self.ranks:
            node = self.cluster.node_of(r)
            if node not in seen:
                seen[node] = r
        return SimComm(self.cluster, [seen[n] for n in sorted(seen)])

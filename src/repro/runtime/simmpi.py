"""In-process SPMD simulator: rank-local buffers + bit-exact collectives.

:class:`SimCluster` lays ranks out over a machine's nodes;
:class:`SimComm` executes collectives over *lists of per-rank numpy
arrays* (index = rank).  Numerics are real — reductions are performed
on the actual data so parallel decompositions can be asserted equal to
serial references — while every call also charges the machine's cost
model and updates byte/message counters for the scaling figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.errors import CommunicationError
from repro.runtime.costmodel import CommCostModel
from repro.runtime.machines import MachineSpec


@dataclass
class CommStats:
    """Accumulated communication accounting for one communicator."""

    calls: int = 0
    messages: int = 0
    bytes_moved: int = 0
    model_time: float = 0.0

    def charge(self, messages: int, nbytes: int, seconds: float) -> None:
        self.calls += 1
        self.messages += messages
        self.bytes_moved += nbytes
        self.model_time += seconds

    def merged(self, other: "CommStats") -> "CommStats":
        return CommStats(
            calls=self.calls + other.calls,
            messages=self.messages + other.messages,
            bytes_moved=self.bytes_moved + other.bytes_moved,
            model_time=self.model_time + other.model_time,
        )


class SimCluster:
    """N MPI ranks laid out over a machine's nodes (contiguous blocks)."""

    def __init__(self, machine: MachineSpec, n_ranks: int) -> None:
        if n_ranks < 1:
            raise CommunicationError(f"cluster needs >= 1 rank, got {n_ranks}")
        self.machine = machine
        self.n_ranks = n_ranks
        self.n_nodes = machine.nodes_for(n_ranks)

    def node_of(self, rank: int) -> int:
        """Hosting node of one rank."""
        if not 0 <= rank < self.n_ranks:
            raise CommunicationError(f"rank {rank} out of range")
        return rank // self.machine.procs_per_node

    def ranks_of_node(self, node: int) -> range:
        """Ranks hosted on one node."""
        lo = node * self.machine.procs_per_node
        hi = min(lo + self.machine.procs_per_node, self.n_ranks)
        if lo >= self.n_ranks:
            raise CommunicationError(f"node {node} hosts no ranks")
        return range(lo, hi)

    def accelerator_group_of(self, rank: int) -> int:
        """Which accelerator (globally numbered) this rank shares."""
        return rank // self.machine.ranks_per_accelerator

    def comm(self) -> "SimComm":
        """World communicator over all ranks."""
        return SimComm(self)


class SimComm:
    """Collectives over per-rank buffer lists, with cost accounting."""

    def __init__(self, cluster: SimCluster, ranks: Optional[Sequence[int]] = None):
        self.cluster = cluster
        self.ranks = list(range(cluster.n_ranks)) if ranks is None else list(ranks)
        if not self.ranks:
            raise CommunicationError("communicator must contain at least one rank")
        self.cost = CommCostModel(cluster.machine)
        self.stats = CommStats()

    @property
    def size(self) -> int:
        return len(self.ranks)

    def _check(self, buffers: Sequence[np.ndarray]) -> List[np.ndarray]:
        if len(buffers) != self.size:
            raise CommunicationError(
                f"{len(buffers)} buffers for a {self.size}-rank communicator"
            )
        arrs = [np.asarray(b) for b in buffers]
        shape = arrs[0].shape
        for a in arrs[1:]:
            if a.shape != shape:
                raise CommunicationError(
                    f"mismatched buffer shapes: {a.shape} vs {shape}"
                )
        return arrs

    # ------------------------------------------------------------------
    # Collectives (bit-exact over the actual data)
    # ------------------------------------------------------------------
    def allreduce(
        self,
        buffers: Sequence[np.ndarray],
        op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
    ) -> np.ndarray:
        """Reduce all per-rank buffers with *op*; every rank gets the result.

        Reduction order is fixed (rank-ascending) so results are
        deterministic.  Returns one array (all ranks' copies are equal
        by definition; callers index it per rank if needed).
        """
        arrs = self._check(buffers)
        result = arrs[0].copy()
        for a in arrs[1:]:
            result = op(result, a)
        nbytes = int(result.nbytes)
        t = self.cost.allreduce(self.size, nbytes)
        self.stats.charge(messages=2 * (self.size - 1), nbytes=nbytes, seconds=t)
        return result

    def bcast(self, buffer: np.ndarray, root_to_all: bool = True) -> List[np.ndarray]:
        """Broadcast one buffer to every rank (returns per-rank copies)."""
        arr = np.asarray(buffer)
        nbytes = int(arr.nbytes)
        t = self.cost.allreduce(self.size, nbytes) * 0.5  # tree bcast ~ half
        self.stats.charge(messages=self.size - 1, nbytes=nbytes, seconds=t)
        return [arr.copy() for _ in self.ranks]

    def gather(self, buffers: Sequence[np.ndarray]) -> np.ndarray:
        """Concatenate per-rank buffers on a virtual root."""
        arrs = [np.asarray(b) for b in buffers]
        if len(arrs) != self.size:
            raise CommunicationError(
                f"{len(arrs)} buffers for a {self.size}-rank communicator"
            )
        nbytes = int(sum(a.nbytes for a in arrs))
        t = self.cost.allreduce(self.size, nbytes / max(self.size, 1))
        self.stats.charge(messages=self.size - 1, nbytes=nbytes, seconds=t)
        return np.concatenate([a.ravel() for a in arrs])

    def barrier(self) -> None:
        """Synchronize all ranks (cost only)."""
        t = self.cost.barrier(self.size)
        self.stats.charge(messages=self.size, nbytes=0, seconds=t)

    # ------------------------------------------------------------------
    def node_subcomms(self) -> List["SimComm"]:
        """One sub-communicator per node (for hierarchical schemes)."""
        by_node = {}
        for r in self.ranks:
            by_node.setdefault(self.cluster.node_of(r), []).append(r)
        return [SimComm(self.cluster, ranks) for _, ranks in sorted(by_node.items())]

    def leader_subcomm(self) -> "SimComm":
        """Communicator of each node's first rank."""
        seen = {}
        for r in self.ranks:
            node = self.cluster.node_of(r)
            if node not in seen:
                seen[node] = r
        return SimComm(self.cluster, [seen[n] for n in sorted(seen)])

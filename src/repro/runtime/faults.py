"""Deterministic fault injection for the simulated SPMD runtime.

The paper's communication schemes are exercised here on a perfect
machine; at the 40k-rank regimes it targets, ranks die, messages are
dropped or corrupted, and collectives stall.  This module supplies a
*seedable* fault model so every such failure is reproducible:

* :class:`FaultPlan` — the decision oracle.  Given a fault *site* (one
  collective call, one shared-window synthesis, one CPSCF cycle) and a
  retry attempt number, it deterministically decides whether a fault
  fires and of which kind.  Decisions come from per-site RNG streams
  seeded by ``(seed, crc32(site), attempt)``, so they do not depend on
  global call order, plus an explicit :class:`ScheduledFault` list for
  tests that need a guaranteed failure at a known call.
* :class:`RetryPolicy` — exponential backoff + timeout governing how
  :class:`~repro.runtime.simmpi.SimComm` reacts to injected faults.
* :class:`CycleFaultInjector` — the hook iterative drivers (SCF/CPSCF)
  poll once per cycle to model node loss mid-iteration; the drivers
  recover by checkpoint-restart of the last converged cycle.

Fault kinds (``FaultEvent.kind``):

========================  ====================================================
``rank_failure``          a rank dies mid-collective; recovered by restoring
                          its state from the last checkpoint (modeled cost)
``message_drop``          a message is lost; detected by timeout, retried
``message_corruption``    payload damaged; detected by checksum, retried
``straggler``             one rank is late; everyone else idles (no retry)
``collective_error``      transient MPI-stack error; retried
``shm_corruption``        a shared-memory window synthesis is damaged; the
                          hierarchical scheme degrades to a flat collective
``cycle_fault``           a whole SCF/CPSCF cycle is lost; the driver
                          restores the previous cycle's checkpoint
``worker_crash``          a service compute worker dies after claiming a
                          task; the statestore's lease expiry requeues it
========================  ====================================================
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import FaultInjectionError

#: Fault kinds that can strike one collective call.
COLLECTIVE_KINDS = (
    "rank_failure",
    "message_corruption",
    "message_drop",
    "collective_error",
    "straggler",
)

#: Every kind a plan may carry (collective + shm + driver-cycle +
#: service-worker faults).
ALL_KINDS = COLLECTIVE_KINDS + ("shm_corruption", "cycle_fault", "worker_crash")


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as observed by the runtime."""

    kind: str
    site: str
    rank: int = -1
    delay: float = 0.0  # modeled seconds of backoff/idle this event cost
    detail: str = ""


@dataclass(frozen=True)
class ScheduledFault:
    """An explicit fault pinned to one call index.

    ``call_index`` counts cluster-wide collective calls for collective
    kinds, shared-window syntheses for ``shm_corruption``, and driver
    cycles for ``cycle_fault``.  A ``persistent`` fault fires on every
    retry attempt, exhausting the retry budget — the way tests force a
    degradation (hierarchical -> flat, packed -> row-wise).  ``site``
    optionally restricts the match to sites starting with that prefix.
    """

    kind: str
    call_index: int
    rank: Optional[int] = None
    persistent: bool = False
    site: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise FaultInjectionError(
                f"unknown fault kind {self.kind!r}; expected one of {ALL_KINDS}"
            )
        if self.call_index < 0:
            raise FaultInjectionError(
                f"call_index must be >= 0, got {self.call_index}"
            )

    def matches(self, site: str, call_index: int, attempt: int) -> bool:
        if self.call_index != call_index:
            return False
        if self.site is not None and not site.startswith(self.site):
            return False
        return attempt == 0 or self.persistent


@dataclass(frozen=True)
class FaultRates:
    """Per-site fault probabilities for the randomized mode.

    Each collective call (and each retry attempt) draws once; the rates
    partition the unit interval, so their sum must stay <= 1.
    """

    rank_failure: float = 0.0
    message_drop: float = 0.0
    message_corruption: float = 0.0
    straggler: float = 0.0
    collective_error: float = 0.0
    shm_corruption: float = 0.0
    cycle_fault: float = 0.0
    worker_crash: float = 0.0
    #: Modeled seconds one straggler keeps the collective waiting.
    straggler_delay: float = 5.0e-4

    def __post_init__(self) -> None:
        ladder = self._ladder()
        for kind, rate in ladder + [("cycle_fault", self.cycle_fault),
                                    ("shm_corruption", self.shm_corruption),
                                    ("worker_crash", self.worker_crash)]:
            if not 0.0 <= rate <= 1.0:
                raise FaultInjectionError(
                    f"{kind} rate must be in [0, 1], got {rate}"
                )
        total = sum(rate for _, rate in ladder)
        if total > 1.0:
            raise FaultInjectionError(
                f"collective fault rates sum to {total:.3f} > 1"
            )
        if self.straggler_delay < 0.0:
            raise FaultInjectionError("straggler_delay must be >= 0")

    def _ladder(self) -> List[Tuple[str, float]]:
        """Collective kinds and their slice of the unit interval."""
        return [
            ("rank_failure", self.rank_failure),
            ("message_corruption", self.message_corruption),
            ("message_drop", self.message_drop),
            ("collective_error", self.collective_error),
            ("straggler", self.straggler),
        ]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff + timeout for faulted collectives."""

    max_retries: int = 4
    base_backoff: float = 1.0e-4  # modeled seconds
    backoff_factor: float = 2.0
    timeout: float = 0.05  # cumulative modeled backoff before giving up

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise FaultInjectionError("max_retries must be >= 0")
        if self.base_backoff < 0 or self.timeout < 0:
            raise FaultInjectionError("backoff/timeout must be >= 0")
        if self.backoff_factor < 1.0:
            raise FaultInjectionError("backoff_factor must be >= 1")

    def backoff(self, attempt: int) -> float:
        """Modeled wait before retry number ``attempt + 1``."""
        return self.base_backoff * self.backoff_factor**attempt


class FaultPlan:
    """Seeded, deterministic fault decisions for one run.

    A plan combines randomized rates with an explicit schedule.  The
    same ``(seed, rates, schedule)`` triple always produces the same
    faults at the same sites, independent of unrelated call ordering —
    the property the chaos suite's bit-exact recovery assertions rely
    on.
    """

    def __init__(
        self,
        seed: int = 0,
        rates: Optional[FaultRates] = None,
        schedule: Sequence[ScheduledFault] = (),
        max_rank_failures: int = 1,
    ) -> None:
        if max_rank_failures < 0:
            raise FaultInjectionError("max_rank_failures must be >= 0")
        self.seed = int(seed)
        self.rates = rates or FaultRates()
        self.schedule = list(schedule)
        self.max_rank_failures = max_rank_failures
        self.rank_failures_injected = 0

    # ------------------------------------------------------------------
    def _rng(self, site: str, attempt: int) -> np.random.Generator:
        return np.random.default_rng(
            [self.seed, zlib.crc32(site.encode()), attempt]
        )

    def _scheduled(
        self, kinds: Sequence[str], site: str, call_index: int, attempt: int
    ) -> Optional[ScheduledFault]:
        for sf in self.schedule:
            if sf.kind in kinds and sf.matches(site, call_index, attempt):
                return sf
        return None

    # ------------------------------------------------------------------
    def collective_fault(
        self, site: str, call_index: int, attempt: int, ranks: Sequence[int]
    ) -> Optional[FaultEvent]:
        """Decide the fate of one collective call attempt.

        Returns ``None`` (no fault) or a :class:`FaultEvent`; at most
        one fault strikes per attempt.
        """
        sf = self._scheduled(COLLECTIVE_KINDS, site, call_index, attempt)
        if sf is not None:
            rank = sf.rank if sf.rank is not None else ranks[call_index % len(ranks)]
            if sf.kind == "rank_failure":
                self.rank_failures_injected += 1
            return FaultEvent(
                kind=sf.kind,
                site=site,
                rank=int(rank),
                delay=self.rates.straggler_delay if sf.kind == "straggler" else 0.0,
                detail="scheduled" + (" persistent" if sf.persistent else ""),
            )
        rng = self._rng(site, attempt)
        draw = float(rng.random())
        acc = 0.0
        for kind, rate in self.rates._ladder():
            acc += rate
            if draw < acc:
                if (
                    kind == "rank_failure"
                    and self.rank_failures_injected >= self.max_rank_failures
                ):
                    break  # failure budget spent; let this call succeed
                if kind == "rank_failure":
                    self.rank_failures_injected += 1
                return FaultEvent(
                    kind=kind,
                    site=site,
                    rank=int(rng.integers(len(ranks))) if ranks else -1,
                    delay=self.rates.straggler_delay if kind == "straggler" else 0.0,
                    detail="random",
                )
        return None

    def shm_fault(self, site: str, call_index: int, attempt: int = 0) -> Optional[FaultEvent]:
        """Decide whether one shared-window synthesis is corrupted."""
        sf = self._scheduled(("shm_corruption",), site, call_index, attempt)
        if sf is not None:
            return FaultEvent(kind="shm_corruption", site=site, detail="scheduled")
        rng = self._rng(site, attempt)
        if float(rng.random()) < self.rates.shm_corruption:
            return FaultEvent(kind="shm_corruption", site=site, detail="random")
        return None

    def worker_fault(
        self, site: str, call_index: int, attempt: int = 0
    ) -> Optional[FaultEvent]:
        """Decide whether one service worker crashes on one claimed task.

        ``site`` is the worker's identity (e.g. ``"worker:w0"``),
        ``call_index`` counts the tasks that worker has claimed and
        ``attempt`` is the task's retry attempt (``task.attempts - 1``),
        so a rescheduled task draws a fresh decision — the property the
        service chaos suite's convergence assertions rely on.
        """
        full_site = f"{site}[{call_index}]"
        sf = self._scheduled(("worker_crash",), full_site, call_index, attempt)
        if sf is not None:
            return FaultEvent(
                kind="worker_crash", site=full_site,
                detail="scheduled" + (" persistent" if sf.persistent else ""),
            )
        rng = self._rng(full_site, attempt)
        if float(rng.random()) < self.rates.worker_crash:
            return FaultEvent(kind="worker_crash", site=full_site, detail="random")
        return None

    def cycle_fault(self, site: str, cycle: int, attempt: int) -> Optional[FaultEvent]:
        """Decide whether one driver cycle (SCF/CPSCF iteration) is lost."""
        full_site = f"{site}[{cycle}]"
        sf = self._scheduled(("cycle_fault",), full_site, cycle, attempt)
        if sf is not None:
            return FaultEvent(kind="cycle_fault", site=full_site, detail="scheduled")
        rng = self._rng(full_site, attempt)
        if float(rng.random()) < self.rates.cycle_fault:
            return FaultEvent(kind="cycle_fault", site=full_site, detail="random")
        return None


class CycleFaultInjector:
    """Per-cycle fault hook for the iterative drivers.

    ``SCFDriver``/``DFPTSolver`` poll :meth:`cycle_fault` once per
    cycle; a hit means the cycle's work is lost and the driver restores
    the last converged cycle's checkpoint and redoes it.  More than
    ``max_restarts`` consecutive hits on the same cycle raise
    :class:`~repro.errors.FaultInjectionError` (an unsurvivable node).
    """

    def __init__(self, plan: FaultPlan, max_restarts: int = 3) -> None:
        self.plan = plan
        self.max_restarts = max_restarts
        self.events: List[FaultEvent] = []
        self.restarts = 0

    def cycle_fault(self, site: str, cycle: int, attempt: int) -> Optional[FaultEvent]:
        if attempt > self.max_restarts:
            raise FaultInjectionError(
                f"{site} cycle {cycle} failed {attempt} consecutive times "
                f"(max_restarts={self.max_restarts})"
            )
        ev = self.plan.cycle_fault(site, cycle, attempt)
        if ev is not None:
            self.events.append(ev)
            self.restarts += 1
        return ev

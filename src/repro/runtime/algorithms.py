"""Explicit collective algorithms over point-to-point messages.

The cost model prices collectives analytically; this module *executes*
the classic algorithms — ring all-reduce, recursive doubling, and
reduce-scatter + all-gather (Rabenseifner) — as explicit message
schedules over per-rank buffers.  Results are bit-comparable to a
direct sum (up to floating-point reassociation, which the tests bound),
and the message/byte counts let the analytic model be validated against
an executable reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence

import numpy as np

from repro.errors import CommunicationError


@dataclass
class MessageLog:
    """Per-algorithm message accounting."""

    rounds: int = 0
    messages: int = 0
    bytes_sent: int = 0
    per_rank_bytes: List[int] = field(default_factory=list)

    def record(self, nbytes: int) -> None:
        self.messages += 1
        self.bytes_sent += nbytes


def _check(buffers: Sequence[np.ndarray]) -> List[np.ndarray]:
    if not buffers:
        raise CommunicationError("need at least one rank buffer")
    arrs = [np.array(b, dtype=float) for b in buffers]
    shape = arrs[0].shape
    for a in arrs[1:]:
        if a.shape != shape:
            raise CommunicationError("mismatched buffer shapes")
    return arrs


def ring_allreduce(
    buffers: Sequence[np.ndarray],
    op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
) -> tuple:
    """Bandwidth-optimal ring all-reduce.

    2(p-1) rounds of chunk exchange: p-1 reduce-scatter rounds followed
    by p-1 all-gather rounds, each rank sending one 1/p-sized chunk per
    round.  Returns ``(per_rank_results, log)``.
    """
    arrs = _check(buffers)
    p = len(arrs)
    log = MessageLog()
    if p == 1:
        return [arrs[0].copy()], log

    flats = [a.ravel().copy() for a in arrs]
    n = flats[0].shape[0]
    bounds = np.linspace(0, n, p + 1, dtype=np.int64)

    def chunk(r: int, c: int) -> slice:
        return slice(bounds[c % p], bounds[(c % p) + 1])

    # Reduce-scatter: in round k, rank r sends chunk (r - k) to r+1.
    for k in range(p - 1):
        sends = []
        for r in range(p):
            c = (r - k) % p
            sends.append((r, c, flats[r][chunk(r, c)].copy()))
        for r, c, data in sends:
            dst = (r + 1) % p
            flats[dst][chunk(dst, c)] = op(flats[dst][chunk(dst, c)], data)
            log.record(int(data.nbytes))
        log.rounds += 1

    # All-gather: in round k, rank r sends its completed chunk onward.
    for k in range(p - 1):
        sends = []
        for r in range(p):
            c = (r + 1 - k) % p
            sends.append((r, c, flats[r][chunk(r, c)].copy()))
        for r, c, data in sends:
            dst = (r + 1) % p
            flats[dst][chunk(dst, c)] = data
            log.record(int(data.nbytes))
        log.rounds += 1

    shape = arrs[0].shape
    return [f.reshape(shape) for f in flats], log


def recursive_doubling_allreduce(
    buffers: Sequence[np.ndarray],
    op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
) -> tuple:
    """Latency-optimal recursive doubling (power-of-two rank counts).

    log2(p) rounds; in round k, ranks separated by 2^k exchange and
    combine full buffers.  Returns ``(per_rank_results, log)``.
    """
    arrs = _check(buffers)
    p = len(arrs)
    if p & (p - 1):
        raise CommunicationError(
            f"recursive doubling needs a power-of-two rank count, got {p}"
        )
    log = MessageLog()
    state = [a.copy() for a in arrs]
    distance = 1
    while distance < p:
        new_state = [s.copy() for s in state]
        for r in range(p):
            partner = r ^ distance
            new_state[r] = op(state[r], state[partner])
            log.record(int(state[partner].nbytes))
        state = new_state
        log.rounds += 1
        distance *= 2
    return state, log


def rabenseifner_allreduce(
    buffers: Sequence[np.ndarray],
    op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
) -> tuple:
    """Reduce-scatter (recursive halving) + all-gather (recursive doubling).

    The algorithm behind the cost model's ``2 (p-1)/p * n * beta``
    bandwidth term.  Power-of-two rank counts.
    """
    arrs = _check(buffers)
    p = len(arrs)
    if p & (p - 1):
        raise CommunicationError(
            f"Rabenseifner all-reduce needs a power-of-two rank count, got {p}"
        )
    log = MessageLog()
    if p == 1:
        return [arrs[0].copy()], log

    flats = [a.ravel().copy() for a in arrs]
    n = flats[0].shape[0]

    # Recursive halving reduce-scatter: each rank ends owning a reduced
    # 1/p slice.  Track each rank's owned interval.
    own = [(0, n)] * p
    distance = p // 2
    while distance >= 1:
        new_flats = [f.copy() for f in flats]
        new_own = list(own)
        for r in range(p):
            partner = r ^ distance
            lo, hi = own[r]
            mid = (lo + hi) // 2
            # The lower-rank half keeps [lo, mid), sends [mid, hi).
            if r < partner:
                keep = (lo, mid)
                send = slice(mid, hi)
            else:
                keep = (mid, hi)
                send = slice(lo, mid)
            klo, khi = keep
            new_flats[r][klo:khi] = op(
                flats[r][klo:khi], flats[partner][klo:khi]
            )
            log.record(int(flats[r][send].nbytes))
            new_own[r] = keep
        flats, own = new_flats, new_own
        log.rounds += 1
        distance //= 2

    # All-gather by recursive doubling over the owned slices.
    distance = 1
    while distance < p:
        new_flats = [f.copy() for f in flats]
        new_own = list(own)
        for r in range(p):
            partner = r ^ distance
            plo, phi = own[partner]
            new_flats[r][plo:phi] = flats[partner][plo:phi]
            log.record(int(flats[partner][plo:phi].nbytes))
            new_own[r] = (min(own[r][0], plo), max(own[r][1], phi))
        flats, own = new_flats, new_own
        log.rounds += 1
        distance *= 2

    shape = arrs[0].shape
    return [f.reshape(shape) for f in flats], log

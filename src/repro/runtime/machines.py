"""Hardware presets for the paper's two evaluation machines.

*HPC #1* — the new-generation Sunway: one SW39010 heterogeneous CPU per
node (6 core groups of 1 managing + 64 accelerating cores; one MPI rank
per core group), a customized network, on-chip RMA among the 64 CPEs of
a core group limited to 64 KB transfers, and **no** MPI shared-memory
windows across core groups ("memories physically dis-connected").

*HPC #2* — an AMD-GPU cluster: 32-core x86 CPU + 4 MI50-class GPUs per
node (64 CUs x 64 lanes each; 8 MPI ranks share one GPU), InfiniBand,
MPI-3 SHM available, ~4 GB memory per MPI process.

The latency/bandwidth and device constants are calibrated so the
reproduced figures land in the paper's speedup ranges (DESIGN.md §6);
they are models, not measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CommunicationError


@dataclass(frozen=True)
class AcceleratorSpec:
    """Performance-model description of one accelerator (or core group).

    Attributes
    ----------
    name:
        Marketing-ish name for reports.
    compute_units:
        Independent compute units (CUs on AMD, CPE cluster = 1 group).
    lanes_per_unit:
        SIMT lanes (threads executing in lockstep) per compute unit.
    flop_rate:
        Sustained scalar FLOP/s per lane.
    kernel_launch_overhead:
        Host-side cost of one kernel launch (s).
    offchip_latency:
        Latency of an off-chip (device global) memory transaction (s).
    offchip_bandwidth:
        Off-chip streaming bandwidth (B/s) for the whole device.
    host_bandwidth:
        Host <-> device transfer bandwidth (PCIe on GPUs; the shared
        DDR path on Sunway core groups).
    onchip_bytes:
        On-chip scratch (LDS / CPE SPM) per compute unit (B).
    rma_max_bytes:
        Largest on-chip RMA transfer among compute units; 0 when the
        device has no such mechanism (then vertical fusion cannot keep
        producer data on chip).
    persistent_buffers:
        Whether device buffers survive across kernel launches (GPUs:
        yes; Sunway CPE scratch: no) — the enabler of horizontal fusion.
    """

    name: str
    compute_units: int
    lanes_per_unit: int
    flop_rate: float
    kernel_launch_overhead: float
    offchip_latency: float
    offchip_bandwidth: float
    onchip_bytes: int
    rma_max_bytes: int
    persistent_buffers: bool
    host_bandwidth: float = 1.6e10
    #: Memory-level parallelism: outstanding gathers each lane sustains.
    #: GPUs hide gather latency behind many wavefronts; the in-order
    #: CPEs of SW39010 cannot — which is why indirect-access elimination
    #: pays off more on HPC #1 (Fig. 11).
    memory_level_parallelism: int = 1


@dataclass(frozen=True)
class MachineSpec:
    """One supercomputer for the cost model.

    Attributes
    ----------
    procs_per_node:
        MPI ranks per node.
    ranks_per_accelerator:
        How many ranks share one accelerator (8 on HPC #2; 1 on HPC #1
        where each rank owns its core group).
    inter_alpha / inter_beta:
        Inter-node message latency (s) and inverse bandwidth (s/B).
    intra_alpha / intra_beta:
        Intra-node (shared-memory) latency and inverse bandwidth.
    shm_windows:
        MPI-3 shared-memory windows available across ranks of a node.
    per_proc_memory:
        Usable memory per MPI rank (B).
    collective_overhead_per_round:
        Software cost per tree round of a collective call (s) —
        models MPI-stack bookkeeping that grows with log2(P).
    collective_overhead_per_rank:
        Software cost per participating rank (s) — models the
        synchronization-skew component that grows linearly with P on
        some stacks (pronounced on HPC #2, where the paper's baseline
        AllReduce degrades hardest).
    nic_contention_cap:
        In a *flat* collective, up to this many same-node ranks compete
        for the node's NIC, inflating the bandwidth term; hierarchical
        schemes send one rank per node and escape it.
    """

    name: str
    procs_per_node: int
    ranks_per_accelerator: int
    inter_alpha: float
    inter_beta: float
    intra_alpha: float
    intra_beta: float
    shm_windows: bool
    per_proc_memory: int
    accelerator: AcceleratorSpec
    collective_overhead_per_round: float = 0.0
    collective_overhead_per_rank: float = 0.0
    nic_contention_cap: int = 4

    def nodes_for(self, n_ranks: int) -> int:
        """Nodes needed to host *n_ranks* (ceil division)."""
        if n_ranks < 1:
            raise CommunicationError(f"need at least one rank, got {n_ranks}")
        return -(-n_ranks // self.procs_per_node)


#: HPC #1 — new-generation Sunway, SW39010.
HPC1_SUNWAY = MachineSpec(
    name="HPC#1 (Sunway SW39010)",
    procs_per_node=6,
    ranks_per_accelerator=1,
    inter_alpha=6.0e-6,
    inter_beta=1.0 / 5.0e9,  # 5 GB/s injection per rank
    intra_alpha=1.2e-6,
    intra_beta=1.0 / 20.0e9,
    shm_windows=False,  # core-group memories are disjoint
    per_proc_memory=16 * 1024**3 // 6,
    accelerator=AcceleratorSpec(
        name="SW39010 core group (64 CPEs)",
        compute_units=64,
        lanes_per_unit=1,
        flop_rate=1.4e10,
        kernel_launch_overhead=8.0e-6,
        # CPEs have no data cache: a gather is a full DMA round trip.
        offchip_latency=1.0e-6,
        offchip_bandwidth=3.0e10,
        onchip_bytes=256 * 1024,
        rma_max_bytes=64 * 1024,
        persistent_buffers=False,
        host_bandwidth=3.0e10,  # CPEs address the same DDR as the MPE
        memory_level_parallelism=1,
    ),
    collective_overhead_per_round=5.0e-6,
    collective_overhead_per_rank=4.5e-8,
    nic_contention_cap=2,
)

#: HPC #2 — AMD MI50-class GPU cluster.
HPC2_AMD = MachineSpec(
    name="HPC#2 (AMD MI50 GPUs)",
    procs_per_node=32,
    ranks_per_accelerator=8,
    inter_alpha=2.5e-6,
    inter_beta=1.0 / 1.2e10,  # InfiniBand
    intra_alpha=4.0e-7,
    intra_beta=1.0 / 1.0e11,  # aggregate node memory bandwidth
    shm_windows=True,
    per_proc_memory=4 * 1024**3,
    accelerator=AcceleratorSpec(
        name="AMD MI50 (64 CU)",
        compute_units=64,
        lanes_per_unit=64,
        flop_rate=1.6e9,
        kernel_launch_overhead=1.2e-5,
        offchip_latency=4.0e-8,  # effective, after wavefront latency hiding
        offchip_bandwidth=1.0e12,  # HBM2
        onchip_bytes=64 * 1024,
        rma_max_bytes=0,
        persistent_buffers=True,
        host_bandwidth=1.6e10,  # PCIe 3 x16
        memory_level_parallelism=1,  # hiding folded into offchip_latency
    ),
    collective_overhead_per_round=4.0e-6,
    collective_overhead_per_rank=4.0e-7,
    nic_contention_cap=8,
)

#: One x86 core, as seen by one MPI rank in HPC #2's CPU-only mode
#: (Figs. 15-16 include "HPC #2 (CPU only)" curves).
HPC2_CPU_CORE = AcceleratorSpec(
    name="x86 core (CPU-only mode)",
    compute_units=1,
    lanes_per_unit=1,
    flop_rate=8.0e9,
    kernel_launch_overhead=0.0,
    offchip_latency=9.0e-8,
    offchip_bandwidth=4.0e9,  # per-core share of the socket
    onchip_bytes=512 * 1024,
    rma_max_bytes=0,
    persistent_buffers=True,
    host_bandwidth=4.0e9,
    memory_level_parallelism=4,
)

_MACHINES = {"hpc1": HPC1_SUNWAY, "hpc2": HPC2_AMD}


def machine_by_name(name: str) -> MachineSpec:
    """Look up a preset by short name (``"hpc1"`` / ``"hpc2"``)."""
    try:
        return _MACHINES[name.lower()]
    except KeyError:
        raise CommunicationError(
            f"unknown machine {name!r}; expected one of {sorted(_MACHINES)}"
        ) from None

"""Alpha-beta communication cost model.

Standard LogP-flavoured estimates: a message of ``n`` bytes between two
ranks costs ``alpha + n * beta``; tree/ring collectives compose these.
The model distinguishes inter-node and intra-node legs using a
:class:`~repro.runtime.machines.MachineSpec`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import CommunicationError
from repro.runtime.machines import MachineSpec


def point_to_point_time(nbytes: float, alpha: float, beta: float) -> float:
    """One message: ``alpha + nbytes * beta``."""
    if nbytes < 0:
        raise CommunicationError(f"negative message size: {nbytes}")
    return alpha + nbytes * beta


def barrier_time(p: int, alpha: float) -> float:
    """Dissemination barrier: ``ceil(log2 p)`` rounds of latency."""
    if p < 1:
        raise CommunicationError(f"barrier needs p >= 1, got {p}")
    if p == 1:
        return 0.0
    return math.ceil(math.log2(p)) * alpha


#: Fixed modeled cost of restarting one MPI process after a failure
#: (process launch + rejoin of the communicator), before its state is
#: re-fetched from a peer's checkpoint.
RANK_RESTART_SECONDS = 5.0e-3


def allreduce_time(p: int, nbytes: float, alpha: float, beta: float) -> float:
    """Rabenseifner-style allreduce estimate.

    ``log2(p)`` latency rounds plus reduce-scatter + allgather moving
    ``2 (p-1)/p * nbytes`` per rank.
    """
    if p < 1:
        raise CommunicationError(f"allreduce needs p >= 1, got {p}")
    if nbytes < 0:
        raise CommunicationError(f"negative buffer size: {nbytes}")
    if p == 1:
        return 0.0
    rounds = math.ceil(math.log2(p))
    return rounds * alpha + 2.0 * (p - 1) / p * nbytes * beta


@dataclass(frozen=True)
class CommCostModel:
    """Machine-bound collective cost estimates.

    Methods return seconds for collectives over *p* ranks laid out
    contiguously on the machine's nodes.
    """

    machine: MachineSpec

    def _effective_alpha_beta(self, p: int) -> tuple:
        """Blend inter/intra constants by the rank layout.

        When all *p* ranks fit in one node only the intra-node fabric is
        used; otherwise the inter-node constants dominate the critical
        path of a tree collective.
        """
        if p <= self.machine.procs_per_node:
            return self.machine.intra_alpha, self.machine.intra_beta
        return self.machine.inter_alpha, self.machine.inter_beta

    def software_overhead(self, p: int) -> float:
        """Per-collective-call software cost (MPI-stack bookkeeping)."""
        if p <= 1:
            return 0.0
        rounds = math.ceil(math.log2(p))
        m = self.machine
        return (
            m.collective_overhead_per_round * rounds
            + m.collective_overhead_per_rank * p
        )

    def _contention(self, p: int) -> float:
        """NIC sharing factor of a flat inter-node collective."""
        ranks_per_node = min(p, self.machine.procs_per_node)
        return float(min(ranks_per_node, self.machine.nic_contention_cap))

    def allreduce(self, p: int, nbytes: float) -> float:
        """Flat (non-hierarchical) allreduce over p ranks.

        Includes per-call software overhead and NIC contention from all
        same-node ranks participating individually.
        """
        alpha, beta = self._effective_alpha_beta(p)
        if p > self.machine.procs_per_node:
            beta = beta * self._contention(p)
        return self.software_overhead(p) + allreduce_time(p, nbytes, alpha, beta)

    def barrier(self, p: int) -> float:
        """Barrier over p ranks."""
        alpha, _ = self._effective_alpha_beta(p)
        return barrier_time(p, alpha)

    def intra_node_reduce(self, m: int, nbytes: float) -> float:
        """Shared-memory reduction among m ranks of one node.

        Models the paper's chunked in-turn update: the window is sliced
        into m chunks, each synthesized by one rank per round, with m
        local barriers sequencing the rounds.  Every rank streams the
        full buffer once and all m ranks contend for the node's memory
        bandwidth, so the wall time carries the factor m — the visible
        "update local data copies" bars of Fig. 10(b).
        """
        if not self.machine.shm_windows:
            raise CommunicationError(
                f"{self.machine.name} has no MPI shared-memory windows"
            )
        if m < 1:
            raise CommunicationError(f"need m >= 1, got {m}")
        if m == 1:
            return 0.0
        stream = m * nbytes * self.machine.intra_beta
        barriers = m * barrier_time(m, self.machine.intra_alpha)
        return stream + barriers

    def rank_recovery(self, nbytes: float) -> float:
        """Checkpoint-restore of one failed rank.

        Process restart latency plus re-fetching ``nbytes`` of state
        from a peer over the inter-node fabric.
        """
        if nbytes < 0:
            raise CommunicationError(f"negative state size: {nbytes}")
        return RANK_RESTART_SECONDS + point_to_point_time(
            nbytes, self.machine.inter_alpha, self.machine.inter_beta
        )

    def hierarchical_allreduce(self, p: int, nbytes: float, m: int) -> tuple:
        """(local_update_time, inter_node_time) of the hierarchical scheme.

        m ranks per node share one copy; the global collective then runs
        over p/m participants, and results are read back through the
        shared window (charged as one more local stream).
        """
        if p % m != 0:
            raise CommunicationError(f"p={p} not divisible by node group m={m}")
        local = self.intra_node_reduce(m, nbytes)
        leaders = p // m
        # One rank per node: no NIC contention, and far fewer
        # participants paying software overhead.
        inter = self.software_overhead(leaders) + allreduce_time(
            leaders, nbytes, self.machine.inter_alpha, self.machine.inter_beta
        )
        readback = nbytes * self.machine.intra_beta
        return local + readback, inter

"""MPI-3 shared-memory window emulation (Section 3.2.2's enabler).

On machines with :attr:`MachineSpec.shm_windows`, the m ranks of a node
can map one array: the hierarchical reduction updates it chunk by chunk,
each rank owning one chunk per round, rounds sequenced by local
barriers — no write conflicts, one physical copy per node instead of m.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import CommunicationError, ShmCorruptionError
from repro.runtime.simmpi import SimCluster


class SharedTableRegistry:
    """Register-once store of read-only arrays shared across molecules.

    The shared-window idea of :class:`SharedWindow` applied to the fleet
    driver's host side: density-independent tables (the per-species
    radial spline knots/values/curvatures of a basis set) are physically
    identical for every molecule using the same basis, so the fleet
    registers them **once per distinct key** and every later molecule
    reuses the same arrays.  Registered ndarrays are marked read-only,
    so any accidental write raises instead of corrupting a neighbour
    molecule.

    >>> registry = SharedTableRegistry()
    >>> a = registry.register("H", lambda: [np.arange(3.0)])
    >>> b = registry.register("H", lambda: [np.zeros(99)])  # not rebuilt
    >>> a[0] is b[0], registry.registered, registry.reused
    (True, 1, 1)
    """

    def __init__(self) -> None:
        self._tables: Dict[str, Tuple] = {}
        self.registered = 0
        self.reused = 0
        self.reuse_counts: Dict[str, int] = {}

    def __contains__(self, key: str) -> bool:
        return key in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    def register(
        self, key: str, build: Callable[[], Sequence[np.ndarray]]
    ) -> Tuple:
        """The arrays for *key*, built by *build* only on first request.

        The first registration calls *build* and marks every returned
        ndarray read-only; later registrations under the same key count
        as reuses and return the very same objects without calling
        *build*.
        """
        if key in self._tables:
            self.reused += 1
            self.reuse_counts[key] += 1
            return self._tables[key]
        arrays = tuple(build())
        for arr in arrays:
            if isinstance(arr, np.ndarray):
                arr.setflags(write=False)
        self._tables[key] = arrays
        self.registered += 1
        self.reuse_counts[key] = 0
        return arrays

    @property
    def nbytes(self) -> int:
        """Bytes held once instead of once per molecule."""
        return sum(
            int(arr.nbytes)
            for arrays in self._tables.values()
            for arr in arrays
            if isinstance(arr, np.ndarray)
        )

    def stats(self) -> Dict[str, int]:
        """Deterministic counters for fleet reports and benchmarks."""
        return {
            "registered": self.registered,
            "reused": self.reused,
            "bytes_shared": self.nbytes,
        }


class SharedWindow:
    """One shared array per node of a cluster.

    The window stores real data: :meth:`accumulate_chunked` performs the
    paper's in-turn chunk synthesis and is verified bit-exact against a
    plain sum in the tests.
    """

    def __init__(self, cluster: SimCluster, shape, dtype=np.float64) -> None:
        if not cluster.machine.shm_windows:
            raise CommunicationError(
                f"{cluster.machine.name} does not support MPI shared-memory windows"
            )
        self.cluster = cluster
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self._node_copies: List[np.ndarray] = [
            np.zeros(self.shape, dtype=self.dtype) for _ in range(cluster.n_nodes)
        ]

    def node_copy(self, node: int) -> np.ndarray:
        """The shared array of one node."""
        return self._node_copies[node]

    def zero(self) -> None:
        """Reset every node's copy."""
        for arr in self._node_copies:
            arr[...] = 0

    def accumulate_chunked(
        self, node: int, contributions: Sequence[np.ndarray]
    ) -> np.ndarray:
        """Synthesize m rank contributions into the node copy.

        The flat window is cut into m chunks; in round k, rank r adds its
        contribution's chunk ``(r + k) % m`` — every chunk is touched by
        exactly one rank per round, so no write conflicts occur, matching
        Fig. 6's scheme.  Returns the node copy (flattened view reshaped).

        Under a fault plan, the synthesis may be corrupted (a torn
        write in the shared window); that raises
        :class:`~repro.errors.ShmCorruptionError`, which the resilient
        hierarchical scheme treats as a signal to degrade to a flat
        collective.
        """
        m = len(contributions)
        if m == 0:
            raise CommunicationError("no contributions to accumulate")
        plan = self.cluster.fault_plan
        if plan is not None:
            index = self.cluster.next_shm_index()
            event = plan.shm_fault(f"shm[{index}]", index)
            if event is not None:
                self.cluster.record_event(event)
                raise ShmCorruptionError(
                    f"shared window synthesis {index} on node {node} was "
                    f"corrupted ({event.detail})"
                )
        target = self._node_copies[node].reshape(-1)
        flats = []
        for c in contributions:
            c = np.asarray(c, dtype=self.dtype).reshape(-1)
            if c.shape != target.shape:
                raise CommunicationError(
                    f"contribution shape {c.shape} != window shape {target.shape}"
                )
            flats.append(c)
        bounds = np.linspace(0, target.shape[0], m + 1, dtype=np.int64)
        for round_idx in range(m):  # rounds, separated by local barriers
            for rank_slot in range(m):
                chunk = (rank_slot + round_idx) % m
                lo, hi = bounds[chunk], bounds[chunk + 1]
                target[lo:hi] += flats[rank_slot][lo:hi]
        return self._node_copies[node]

"""Simulated HPC runtime: cluster topology, MPI collectives, cost model.

The paper's experiments ran on two supercomputers we cannot access;
this package substitutes an in-process SPMD simulator whose collectives
operate on real numpy buffers (bit-exact numerics) while an alpha-beta
latency/bandwidth model and hardware presets for the two machines
produce the time/byte/message accounting the figures report.
"""

from repro.runtime.machines import (
    AcceleratorSpec,
    MachineSpec,
    HPC1_SUNWAY,
    HPC2_AMD,
    machine_by_name,
)
from repro.runtime.costmodel import (
    CommCostModel,
    allreduce_time,
    barrier_time,
    point_to_point_time,
)
from repro.runtime.faults import (
    CycleFaultInjector,
    FaultEvent,
    FaultPlan,
    FaultRates,
    RetryPolicy,
    ScheduledFault,
)
from repro.runtime.simmpi import SimCluster, SimComm, CommStats
from repro.runtime.shm import SharedWindow
from repro.runtime.algorithms import (
    ring_allreduce,
    recursive_doubling_allreduce,
    rabenseifner_allreduce,
)
from repro.runtime.trace import CycleTrace, Interval, trace_cycle

__all__ = [
    "AcceleratorSpec",
    "MachineSpec",
    "HPC1_SUNWAY",
    "HPC2_AMD",
    "machine_by_name",
    "CommCostModel",
    "allreduce_time",
    "barrier_time",
    "point_to_point_time",
    "CycleFaultInjector",
    "FaultEvent",
    "FaultPlan",
    "FaultRates",
    "RetryPolicy",
    "ScheduledFault",
    "SimCluster",
    "SimComm",
    "CommStats",
    "SharedWindow",
    "ring_allreduce",
    "recursive_doubling_allreduce",
    "rabenseifner_allreduce",
    "CycleTrace",
    "Interval",
    "trace_cycle",
]

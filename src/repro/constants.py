"""Physical constants and unit conversions (Hartree atomic units internally).

All quantum-mechanical quantities inside :mod:`repro` are expressed in
Hartree atomic units: lengths in Bohr, energies in Hartree, electric
fields in Hartree/(e*Bohr).  Geometry files (FHI-aims ``geometry.in``
convention) use Angstrom; the converters below are the single source of
truth for crossing that boundary.
"""

from __future__ import annotations

#: Bohr radius in Angstrom (CODATA 2018).
BOHR_IN_ANGSTROM: float = 0.529177210903

#: Angstrom expressed in Bohr.
ANGSTROM_IN_BOHR: float = 1.0 / BOHR_IN_ANGSTROM

#: Hartree energy in electronvolt (CODATA 2018).
HARTREE_IN_EV: float = 27.211386245988

#: Boltzmann constant in Hartree / Kelvin.
KB_HARTREE_PER_K: float = 3.166811563e-6

#: Polarizability conversion: atomic units (Bohr^3) to Angstrom^3.
POLARIZABILITY_AU_IN_A3: float = BOHR_IN_ANGSTROM**3

#: Machine epsilon guard used when dividing by eigenvalue gaps.
EIGENVALUE_GAP_FLOOR: float = 1e-10


def angstrom_to_bohr(value: float) -> float:
    """Convert a length from Angstrom to Bohr."""
    return value * ANGSTROM_IN_BOHR


def bohr_to_angstrom(value: float) -> float:
    """Convert a length from Bohr to Angstrom."""
    return value * BOHR_IN_ANGSTROM


def hartree_to_ev(value: float) -> float:
    """Convert an energy from Hartree to electronvolt."""
    return value * HARTREE_IN_EV

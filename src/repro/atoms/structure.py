"""The :class:`Structure` container — an immutable molecular geometry.

Coordinates are stored in Bohr.  A structure knows how to answer the
geometric queries the rest of the pipeline needs: neighbour lists,
bounding boxes, per-atom element data and electron counts.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.atoms.element import Element, element
from repro.errors import GeometryError


class Structure:
    """A finite (non-periodic) molecular system.

    Parameters
    ----------
    symbols:
        Chemical symbols, one per atom.
    coords:
        ``(n_atoms, 3)`` Cartesian coordinates in Bohr.
    name:
        Optional human-readable label used in reports.
    """

    def __init__(
        self,
        symbols: Sequence[str],
        coords: np.ndarray,
        name: str = "",
    ) -> None:
        coords = np.asarray(coords, dtype=float)
        if coords.ndim != 2 or coords.shape[1] != 3:
            raise GeometryError(f"coords must be (n, 3), got {coords.shape}")
        if len(symbols) != coords.shape[0]:
            raise GeometryError(
                f"{len(symbols)} symbols but {coords.shape[0]} coordinate rows"
            )
        if coords.shape[0] == 0:
            raise GeometryError("structure must contain at least one atom")
        self._symbols: Tuple[str, ...] = tuple(symbols)
        self._elements: Tuple[Element, ...] = tuple(element(s) for s in symbols)
        self._coords = coords.copy()
        self._coords.setflags(write=False)
        self.name = name or f"{coords.shape[0]}-atom system"

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._symbols)

    @property
    def n_atoms(self) -> int:
        """Number of atoms."""
        return len(self._symbols)

    @property
    def symbols(self) -> Tuple[str, ...]:
        """Chemical symbols in atom order."""
        return self._symbols

    @property
    def elements(self) -> Tuple[Element, ...]:
        """Resolved :class:`Element` records in atom order."""
        return self._elements

    @property
    def coords(self) -> np.ndarray:
        """Read-only ``(n_atoms, 3)`` coordinates in Bohr."""
        return self._coords

    @property
    def nuclear_charges(self) -> np.ndarray:
        """Vector of nuclear charges Z."""
        return np.array([e.z for e in self._elements], dtype=float)

    @property
    def n_electrons(self) -> int:
        """Total electron count of the neutral system."""
        return int(sum(e.z for e in self._elements))

    def n_basis_functions(self, level: str = "light") -> int:
        """Total NAO basis size at the given settings level."""
        if level != "light":
            raise GeometryError(f"only 'light' basis counting supported, got {level!r}")
        return int(sum(e.n_basis_light for e in self._elements))

    # ------------------------------------------------------------------
    # Geometry queries
    # ------------------------------------------------------------------
    def bounding_box(self, padding: float = 0.0) -> Tuple[np.ndarray, np.ndarray]:
        """Axis-aligned bounding box ``(lo, hi)`` with optional padding (Bohr)."""
        lo = self._coords.min(axis=0) - padding
        hi = self._coords.max(axis=0) + padding
        return lo, hi

    def centroid(self) -> np.ndarray:
        """Unweighted geometric centre."""
        return self._coords.mean(axis=0)

    def distance(self, i: int, j: int) -> float:
        """Euclidean distance between atoms *i* and *j* (Bohr)."""
        return float(np.linalg.norm(self._coords[i] - self._coords[j]))

    def distance_matrix(self) -> np.ndarray:
        """Full ``(n, n)`` pairwise distance matrix (Bohr).

        Quadratic in atom count — intended for small systems; large
        systems should use :meth:`neighbors_within`.
        """
        diff = self._coords[:, None, :] - self._coords[None, :, :]
        return np.linalg.norm(diff, axis=2)

    def neighbors_within(self, i: int, cutoff: float) -> np.ndarray:
        """Indices of atoms within *cutoff* Bohr of atom *i* (excluding *i*)."""
        d = np.linalg.norm(self._coords - self._coords[i], axis=1)
        mask = (d <= cutoff) & (np.arange(self.n_atoms) != i)
        return np.nonzero(mask)[0]

    def bonded_pairs(self, tolerance: float = 1.3) -> List[Tuple[int, int]]:
        """Covalent bond list: pairs closer than tolerance * sum of radii.

        Uses a uniform spatial hash so cost is near-linear in atom count.
        """
        max_radius = max(e.covalent_radius for e in self._elements)
        cutoff = 2.0 * max_radius * tolerance
        cell = max(cutoff, 1e-6)
        keys = np.floor(self._coords / cell).astype(np.int64)
        buckets: dict = {}
        for idx, key in enumerate(map(tuple, keys)):
            buckets.setdefault(key, []).append(idx)
        pairs: List[Tuple[int, int]] = []
        offsets = [
            (dx, dy, dz)
            for dx in (-1, 0, 1)
            for dy in (-1, 0, 1)
            for dz in (-1, 0, 1)
        ]
        for idx in range(self.n_atoms):
            kx, ky, kz = keys[idx]
            ri = self._elements[idx].covalent_radius
            for dx, dy, dz in offsets:
                for jdx in buckets.get((kx + dx, ky + dy, kz + dz), ()):
                    if jdx <= idx:
                        continue
                    rj = self._elements[jdx].covalent_radius
                    if self.distance(idx, jdx) <= tolerance * (ri + rj):
                        pairs.append((idx, jdx))
        return pairs

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def translated(self, shift: Iterable[float]) -> "Structure":
        """Return a copy translated by *shift* (Bohr)."""
        shift = np.asarray(list(shift), dtype=float)
        return Structure(self._symbols, self._coords + shift, name=self.name)

    def centered(self) -> "Structure":
        """Return a copy with the centroid at the origin."""
        return self.translated(-self.centroid())

    def subset(self, indices: Sequence[int], name: Optional[str] = None) -> "Structure":
        """Return a new structure containing only the selected atoms."""
        indices = list(indices)
        if not indices:
            raise GeometryError("subset must keep at least one atom")
        symbols = [self._symbols[i] for i in indices]
        return Structure(symbols, self._coords[indices], name=name or self.name)

    def __repr__(self) -> str:
        from collections import Counter

        counts = Counter(self._symbols)
        formula = "".join(f"{s}{counts[s]}" for s in sorted(counts))
        return f"Structure({self.name!r}, {formula}, n_atoms={self.n_atoms})"

"""Chemical element data for the species appearing in the paper's systems.

The paper simulates biomolecules (H, C, N, O, S) with all-electron NAO
basis sets.  Each element carries the data the basis/grid machinery
needs: nuclear charge, covalent radius (for neighbour detection and
Becke weights) and the size of its "light" NAO basis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import GeometryError


@dataclass(frozen=True)
class Element:
    """Immutable per-species data.

    Attributes
    ----------
    symbol:
        Chemical symbol, e.g. ``"C"``.
    z:
        Nuclear charge (= number of electrons in the neutral atom).
    covalent_radius:
        Covalent radius in Bohr, used for bond detection and the
        Becke partition size-adjustment.
    n_basis_light:
        Number of NAO basis functions in the "light" set built by
        :mod:`repro.basis.sets` (kept here for fast counting at scale,
        must agree with the actual basis construction; tested).
    """

    symbol: str
    z: int
    covalent_radius: float
    n_basis_light: int

    @property
    def n_valence(self) -> int:
        """Number of valence electrons (main-group count)."""
        core = 0
        for shell in (2, 10, 18, 36, 54):
            if self.z > shell:
                core = shell
        return self.z - core


def _bohr(angstrom: float) -> float:
    from repro.constants import ANGSTROM_IN_BOHR

    return angstrom * ANGSTROM_IN_BOHR


#: Supported species.  ``n_basis_light`` mirrors the construction in
#: :func:`repro.basis.sets.light_basis_functions`: a minimal-plus-polarization
#: hydrogenic set — H: 1s+2s+2p (5), C/N/O: 1s..2p + 3s+3d (11),
#: S: 1s..3p + 4s+3d (15).
ELEMENTS: Dict[str, Element] = {
    "H": Element("H", 1, _bohr(0.31), 5),
    "C": Element("C", 6, _bohr(0.76), 11),
    "N": Element("N", 7, _bohr(0.71), 11),
    "O": Element("O", 8, _bohr(0.66), 11),
    "S": Element("S", 16, _bohr(1.05), 15),
}


def element(symbol: str) -> Element:
    """Look up one element by symbol.

    Raises
    ------
    GeometryError
        For species outside the supported biomolecular set.
    """
    try:
        return ELEMENTS[symbol]
    except KeyError:
        raise GeometryError(
            f"unsupported element {symbol!r}; supported: {sorted(ELEMENTS)}"
        ) from None

"""Molecular structures: element data, geometries, builders and I/O."""

from repro.atoms.element import Element, element, ELEMENTS
from repro.atoms.structure import Structure
from repro.atoms.builders import (
    hydrogen_molecule,
    water,
    methane,
    polyethylene,
    hiv_ligand,
    rbd_like_protein,
    polyethylene_atom_count,
    polyethylene_units_for_atoms,
)
from repro.atoms.io import read_geometry_in, write_geometry_in

__all__ = [
    "Element",
    "element",
    "ELEMENTS",
    "Structure",
    "hydrogen_molecule",
    "water",
    "methane",
    "polyethylene",
    "hiv_ligand",
    "rbd_like_protein",
    "polyethylene_atom_count",
    "polyethylene_units_for_atoms",
    "read_geometry_in",
    "write_geometry_in",
]

"""FHI-aims ``geometry.in`` reading and writing.

The artifact's datasets are ``geometry.in`` files ("a series of atomic
types and coordinates").  The format is line-oriented::

    atom  <x> <y> <z>  <species>

with coordinates in Angstrom and ``#`` comments.  Only the ``atom``
keyword is supported (finite systems; no ``lattice_vector``).
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, Union

import numpy as np

from repro.atoms.structure import Structure
from repro.constants import ANGSTROM_IN_BOHR, BOHR_IN_ANGSTROM
from repro.errors import GeometryError

PathLike = Union[str, Path]


def read_geometry_in(source: Union[PathLike, io.TextIOBase], name: str = "") -> Structure:
    """Parse a ``geometry.in`` file (or open text stream) into a Structure."""
    if isinstance(source, (str, Path)):
        text = Path(source).read_text()
        name = name or Path(source).stem
    else:
        text = source.read()

    symbols: List[str] = []
    rows: List[List[float]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        keyword = parts[0]
        if keyword == "lattice_vector":
            raise GeometryError(
                f"line {lineno}: periodic systems are not supported"
            )
        if keyword != "atom":
            raise GeometryError(f"line {lineno}: unknown keyword {keyword!r}")
        if len(parts) != 5:
            raise GeometryError(
                f"line {lineno}: expected 'atom x y z species', got {raw!r}"
            )
        try:
            xyz = [float(v) for v in parts[1:4]]
        except ValueError:
            raise GeometryError(f"line {lineno}: non-numeric coordinate in {raw!r}")
        rows.append(xyz)
        symbols.append(parts[4])

    if not rows:
        raise GeometryError("geometry.in contained no atoms")
    coords = np.asarray(rows) * ANGSTROM_IN_BOHR
    return Structure(symbols, coords, name=name or "geometry.in")


def write_geometry_in(structure: Structure, target: Union[PathLike, io.TextIOBase]) -> None:
    """Write a Structure in ``geometry.in`` format (coordinates in Angstrom)."""
    lines = [f"# {structure.name}", f"# {structure.n_atoms} atoms"]
    coords_ang = structure.coords * BOHR_IN_ANGSTROM
    for sym, (x, y, z) in zip(structure.symbols, coords_ang):
        lines.append(f"atom {x: .10f} {y: .10f} {z: .10f} {sym}")
    text = "\n".join(lines) + "\n"
    if isinstance(target, (str, Path)):
        Path(target).write_text(text)
    else:
        target.write(text)

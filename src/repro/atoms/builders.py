"""Builders for the molecular systems used throughout the paper.

* small validation molecules (H2, H2O, CH4),
* the H(C2H4)nH polyethylene family used for all scaling studies
  (Figs. 10, 11, 13, 14, 15, 16),
* a 49-atom HIV-1 protease ligand stand-in (Fig. 9(b)),
* a 3 006-atom globular "RBD-like" protein stand-in (Figs. 9(a), 9(c), 14).

The two biomolecules substitute for proprietary PDB-derived inputs: the
experiments that consume them depend only on atom count, element
composition and spatial distribution, all of which are preserved (see
DESIGN.md section 2).
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.atoms.structure import Structure
from repro.constants import ANGSTROM_IN_BOHR
from repro.errors import GeometryError

_CC_BOND = 1.54 * ANGSTROM_IN_BOHR  # single C-C bond
_CH_BOND = 1.09 * ANGSTROM_IN_BOHR
_OH_BOND = 0.9572 * ANGSTROM_IN_BOHR
_HH_BOND = 0.7414 * ANGSTROM_IN_BOHR
_TETRAHEDRAL = math.acos(-1.0 / 3.0)  # 109.47 deg


def hydrogen_molecule(bond_length: float = _HH_BOND) -> Structure:
    """H2 aligned with the z axis, centred at the origin."""
    half = 0.5 * bond_length
    return Structure(
        ["H", "H"], np.array([[0.0, 0.0, -half], [0.0, 0.0, half]]), name="H2"
    )


def water() -> Structure:
    """A single water molecule (experimental gas-phase geometry)."""
    angle = math.radians(104.52)
    x = _OH_BOND * math.sin(angle / 2.0)
    z = _OH_BOND * math.cos(angle / 2.0)
    coords = np.array(
        [
            [0.0, 0.0, 0.0],
            [x, 0.0, z],
            [-x, 0.0, z],
        ]
    )
    return Structure(["O", "H", "H"], coords, name="H2O")


def methane() -> Structure:
    """CH4 in perfect tetrahedral geometry."""
    d = _CH_BOND / math.sqrt(3.0)
    coords = np.array(
        [
            [0.0, 0.0, 0.0],
            [d, d, d],
            [d, -d, -d],
            [-d, d, -d],
            [-d, -d, d],
        ]
    )
    return Structure(["C", "H", "H", "H", "H"], coords, name="CH4")


def polyethylene_atom_count(n_units: int) -> int:
    """Atom count of H(C2H4)nH: 6n + 2."""
    if n_units < 1:
        raise GeometryError(f"need at least one C2H4 unit, got {n_units}")
    return 6 * n_units + 2


def polyethylene_units_for_atoms(n_atoms: int) -> int:
    """Inverse of :func:`polyethylene_atom_count` (must divide exactly)."""
    if (n_atoms - 2) % 6 != 0:
        raise GeometryError(f"{n_atoms} is not of the form 6n+2")
    return (n_atoms - 2) // 6


def polyethylene(n_units: int) -> Structure:
    """All-trans zigzag H(C2H4)nH chain along the x axis.

    Fully vectorized so the 200 012-atom chain (n = 33 335) builds in
    milliseconds.  Carbons alternate +y/-y in the standard zigzag; each
    carbon carries two hydrogens in the perpendicular plane; the two
    chain ends are capped with one extra hydrogen each.
    """
    n_carbons = 2 * n_units
    half_angle = _TETRAHEDRAL / 2.0
    dx = _CC_BOND * math.sin(half_angle)  # advance along the chain
    dy = _CC_BOND * math.cos(half_angle)  # zigzag amplitude

    ic = np.arange(n_carbons)
    c_coords = np.zeros((n_carbons, 3))
    c_coords[:, 0] = ic * dx
    c_coords[:, 1] = np.where(ic % 2 == 0, 0.0, dy)

    # Two hydrogens per carbon, displaced out of the zigzag plane and
    # away from the chain in y.
    h_off_z = _CH_BOND * math.sin(half_angle)
    h_off_y = _CH_BOND * math.cos(half_angle)
    sign_y = np.where(ic % 2 == 0, -1.0, 1.0)
    h1 = c_coords.copy()
    h1[:, 1] += sign_y * h_off_y
    h1[:, 2] += h_off_z
    h2 = c_coords.copy()
    h2[:, 1] += sign_y * h_off_y
    h2[:, 2] -= h_off_z

    # Terminal caps extend the chain pattern with C-H bonds.
    cap0 = c_coords[0] + np.array([-dx, dy, 0.0]) * (_CH_BOND / _CC_BOND)
    sign_last = 1.0 if (n_carbons - 1) % 2 == 0 else -1.0
    cap1 = c_coords[-1] + np.array([dx, sign_last * dy, 0.0]) * (_CH_BOND / _CC_BOND)

    coords = np.vstack([c_coords, h1, h2, cap0[None, :], cap1[None, :]])
    symbols = ["C"] * n_carbons + ["H"] * (2 * n_carbons + 2)
    s = Structure(symbols, coords, name=f"H(C2H4){n_units}H")
    assert s.n_atoms == polyethylene_atom_count(n_units)
    return s


def _chain_molecule(
    composition: List[Tuple[str, int]],
    seed: int,
    bond: float,
    name: str,
) -> Structure:
    """Deterministic self-avoiding-walk molecule with given composition.

    Heavy atoms form a random-walk backbone with realistic bond lengths;
    hydrogens decorate the backbone.  Used to stand in for PDB-derived
    geometries whose exact coordinates are immaterial to the experiments.
    """
    rng = np.random.default_rng(seed)
    heavy = [s for s, cnt in composition if s != "H" for _ in range(cnt)]
    n_h = sum(cnt for s, cnt in composition if s == "H")
    rng.shuffle(heavy)

    positions = [np.zeros(3)]
    direction = np.array([1.0, 0.0, 0.0])
    min_sep = 0.8 * bond
    for _ in range(1, len(heavy)):
        for _attempt in range(200):
            # Bias the walk forward so the chain stays extended but kinked.
            step = direction + 0.9 * rng.standard_normal(3)
            step /= np.linalg.norm(step)
            candidate = positions[-1] + bond * step
            d = np.linalg.norm(np.array(positions) - candidate, axis=1)
            if np.all(d >= min_sep):
                positions.append(candidate)
                direction = step
                break
        else:
            raise GeometryError(f"self-avoiding walk failed while building {name}")

    heavy_pos = np.array(positions)
    # Attach hydrogens round-robin to backbone atoms, pushed outward.
    h_pos = []
    centroid = heavy_pos.mean(axis=0)
    for k in range(n_h):
        anchor = heavy_pos[k % len(heavy)]
        outward = anchor - centroid
        norm = np.linalg.norm(outward)
        outward = outward / norm if norm > 1e-9 else np.array([0.0, 0.0, 1.0])
        jitter = 0.4 * rng.standard_normal(3)
        direction_h = outward + jitter
        direction_h /= np.linalg.norm(direction_h)
        h_pos.append(anchor + _CH_BOND * direction_h)

    symbols = heavy + ["H"] * n_h
    coords = np.vstack([heavy_pos, np.array(h_pos)]) if n_h else heavy_pos
    return Structure(symbols, coords, name=name)


def hiv_ligand() -> Structure:
    """49-atom stand-in for the HIV-1 protease ligand of PDB 1a30.

    The 1a30 ligand is a Glu-Asp-Leu tripeptide; we reproduce its atom
    count and a matching C/N/O/H composition (C16 N3 O8 H22 = 49 atoms)
    with a deterministic self-avoiding-walk geometry.
    """
    s = _chain_molecule(
        [("C", 16), ("N", 3), ("O", 8), ("H", 22)],
        seed=1030,
        bond=1.5 * ANGSTROM_IN_BOHR,
        name="HIV-1 ligand (1a30-like)",
    )
    assert s.n_atoms == 49
    return s


def rbd_like_protein(n_atoms: int = 3006, seed: int = 2019) -> Structure:
    """Globular protein stand-in for the SARS-CoV-2 Spike RBD (3 006 atoms).

    Atoms are placed on a jittered cubic lattice carved to a ball, giving
    protein-like packing density (~0.094 atoms/A^3 => one atom per
    ~10.6 A^3) with a typical protein element composition.  The grid
    placement guarantees a minimum interatomic separation, so downstream
    grid partitioning and neighbour queries behave like a real protein's.
    """
    if n_atoms < 10:
        raise GeometryError(f"protein stand-in needs >= 10 atoms, got {n_atoms}")
    rng = np.random.default_rng(seed)

    volume_per_atom = 10.6 * ANGSTROM_IN_BOHR**3  # Bohr^3
    spacing = volume_per_atom ** (1.0 / 3.0)
    radius = (3.0 * n_atoms * volume_per_atom / (4.0 * math.pi)) ** (1.0 / 3.0)

    half_cells = int(math.ceil(radius / spacing)) + 1
    axis = np.arange(-half_cells, half_cells + 1) * spacing
    gx, gy, gz = np.meshgrid(axis, axis, axis, indexing="ij")
    lattice = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1)
    dist = np.linalg.norm(lattice, axis=1)
    inside = lattice[dist <= radius + spacing]
    order = np.argsort(np.linalg.norm(inside, axis=1), kind="stable")
    inside = inside[order]
    if inside.shape[0] < n_atoms:
        raise GeometryError("lattice too small for requested protein size")
    coords = inside[:n_atoms] + rng.uniform(-0.25, 0.25, size=(n_atoms, 3)) * spacing

    # Average protein composition (atom fraction).
    fractions = [("H", 0.495), ("C", 0.32), ("N", 0.085), ("O", 0.095), ("S", 0.005)]
    symbols: List[str] = []
    for sym, frac in fractions:
        symbols.extend([sym] * int(round(frac * n_atoms)))
    while len(symbols) < n_atoms:
        symbols.append("H")
    del symbols[n_atoms:]
    rng.shuffle(symbols)

    return Structure(symbols, coords, name=f"RBD-like protein ({n_atoms} atoms)")

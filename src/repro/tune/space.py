"""The auto-tuner's configuration space (DESIGN §15.1).

One :class:`TunedConfig` bundles every performance knob the paper's
authors hand-picked per machine — execution backend, rank→atom mapping
strategy, reduction scheme, kernel batching granularity, basis-table
cache budget, screening threshold and fleet wave size — into a single
hashable value the tuner can enumerate, price, trial and record.

The space is *deterministic by construction*: :func:`search_space`
returns candidates in one canonical sorted order regardless of how the
axes were supplied, so two tuner runs over the same workload walk the
same list and (given the same history) reach byte-identical decisions.

>>> cfg = TunedConfig(backend="batched", batch_target_points=100)
>>> TunedConfig.from_dict(cfg.as_dict()) == cfg
True
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import RunSettings, TuningSettings
from repro.errors import ReproError


class TuningError(ReproError):
    """Raised when the tuner is asked for something it cannot deliver."""


#: Mapping strategies the tuner may choose between (paper Fig. 9).
MAPPING_STRATEGIES = ("load_balancing", "locality")

#: Reduction schemes the tuner may choose between (paper Fig. 10);
#: names match :func:`repro.obs.analyze.comms.scheme_cost_seconds` keys.
COMM_SCHEMES = ("baseline", "packed", "packed_hierarchical")

#: Kernel batching granularities considered (paper: 100-300 points).
BATCH_TARGET_CHOICES = (100, 200, 300)

#: Basis-table cache budgets considered: the builder default (``None``)
#: and the forced-streaming budget (``0``).
CACHE_LIMIT_CHOICES = (None, 0)

#: Fleet wave sizes considered when tuning for fleet execution.
FLEET_WAVE_CHOICES = (1, 2, 4, 8)


@dataclass(frozen=True)
class TunedConfig:
    """One point of the tuner's search space.

    ``backend``, ``batch_target_points``, ``cache_limit`` and
    ``screening_threshold`` are :class:`~repro.config.RunSettings`
    knobs (applied by :meth:`apply`); ``mapping``, ``comm_scheme`` and
    ``fleet_wave`` are driver-level knobs consumed by the scale models,
    the conformance matrix and the service worker pool.
    """

    backend: str = "numpy"
    mapping: str = "load_balancing"
    comm_scheme: str = "baseline"
    batch_target_points: int = 200
    cache_limit: Optional[int] = None
    screening_threshold: float = 0.0
    fleet_wave: int = 1

    def sort_key(self) -> Tuple:
        """Canonical ordering key (ties in cost break on this)."""
        return (
            self.backend,
            self.mapping,
            self.comm_scheme,
            self.batch_target_points,
            -1 if self.cache_limit is None else self.cache_limit,
            self.screening_threshold,
            self.fleet_wave,
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly snapshot (stable key order via sorted dumps)."""
        return {
            "backend": self.backend,
            "mapping": self.mapping,
            "comm_scheme": self.comm_scheme,
            "batch_target_points": int(self.batch_target_points),
            "cache_limit": self.cache_limit,
            "screening_threshold": float(self.screening_threshold),
            "fleet_wave": int(self.fleet_wave),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TunedConfig":
        """Rebuild a config from :meth:`as_dict` output (exact round trip)."""
        d = dict(data)
        cache = d.get("cache_limit")
        return cls(
            backend=str(d["backend"]),
            mapping=str(d["mapping"]),
            comm_scheme=str(d["comm_scheme"]),
            batch_target_points=int(d["batch_target_points"]),
            cache_limit=None if cache is None else int(cache),
            screening_threshold=float(d["screening_threshold"]),
            fleet_wave=int(d.get("fleet_wave", 1)),
        )

    def describe(self) -> str:
        """One-line human-readable form for decision tables."""
        cache = "default" if self.cache_limit is None else str(self.cache_limit)
        parts = [
            self.backend,
            self.mapping,
            self.comm_scheme,
            f"batch={self.batch_target_points}",
            f"cache={cache}",
            f"screen={self.screening_threshold:g}",
        ]
        if self.fleet_wave != 1:
            parts.append(f"wave={self.fleet_wave}")
        return " ".join(parts)

    def apply(self, settings: RunSettings) -> RunSettings:
        """The *effective* :class:`~repro.config.RunSettings` of this config.

        Rewrites exactly the knobs the tuner owns and resets the
        ``tuning`` block to its default (mode ``"off"``) — the applied
        settings describe a concrete configuration, so a tuned run's
        service cache key equals the identical hand-picked
        configuration's key and tuned runs dedup correctly
        (DESIGN §15.4).  How the tuner was *invoked* (budget, ranks,
        warm start) must not change what the run computes.
        """
        return replace(
            settings.with_grids(batch_target_points=self.batch_target_points),
            backend=self.backend,
            cache_limit=self.cache_limit,
            screening_threshold=self.screening_threshold,
            tuning=TuningSettings(),
        )


def default_config(settings: RunSettings) -> TunedConfig:
    """The hand-picked configuration the tuner must never lose to.

    Mirrors the knobs already present in *settings*; the driver-level
    knobs default to the paper's safe choices (load-balancing mapping,
    baseline reduction, no fleet batching).
    """
    return TunedConfig(
        backend=settings.backend,
        batch_target_points=settings.grids.batch_target_points,
        cache_limit=settings.cache_limit,
        screening_threshold=settings.screening_threshold,
    )


def search_space(
    settings: RunSettings,
    *,
    fleet: bool = False,
    backends: Optional[Sequence[str]] = None,
) -> List[TunedConfig]:
    """Enumerate the candidate configurations for one workload.

    The cross product of every axis, in canonical sorted order; the
    current settings' own knob values are always included so the
    default configuration is a member of the space.  ``fleet=False``
    pins ``fleet_wave=1`` (single-run tuning); ``fleet=True`` adds the
    wave-size axis.
    """
    from repro.backends import available_backends
    from repro.grids.sparsity import DEFAULT_SCREENING_THRESHOLD

    backend_axis = tuple(backends) if backends else available_backends()
    batch_axis = sorted(
        set(BATCH_TARGET_CHOICES) | {settings.grids.batch_target_points}
    )
    cache_axis: List[Optional[int]] = list(CACHE_LIMIT_CHOICES)
    if settings.cache_limit not in cache_axis:
        cache_axis.append(settings.cache_limit)
    screen_axis = sorted(
        {0.0, DEFAULT_SCREENING_THRESHOLD, settings.screening_threshold}
    )
    wave_axis: Sequence[int] = FLEET_WAVE_CHOICES if fleet else (1,)

    out = [
        TunedConfig(
            backend=b,
            mapping=m,
            comm_scheme=c,
            batch_target_points=bt,
            cache_limit=cl,
            screening_threshold=st,
            fleet_wave=w,
        )
        for b in backend_axis
        for m in MAPPING_STRATEGIES
        for c in COMM_SCHEMES
        for bt in batch_axis
        for cl in cache_axis
        for st in screen_axis
        for w in wave_axis
    ]
    if not out:
        raise TuningError("empty tuner search space")
    return sorted(out, key=TunedConfig.sort_key)

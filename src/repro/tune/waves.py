"""Per-wave fleet tuning for the service worker pool (DESIGN §15.5).

``repro serve --fleet auto`` replaces the hand-picked wave size with a
:class:`WavePlanner`: before each scheduling step the pool asks the
planner how many tasks the next wave should claim.  The planner runs
the *model-only* closed loop (:func:`repro.tune.tuner.tune` with
``budget=0`` — no trial runs on the scheduling hot path) over the first
waiting physics payload, caches the decision per workload fingerprint,
and clamps the chosen wave to what is actually waiting.

Non-physics queues (test runners, noop payloads) fall back to waves of
one — the planner never guesses about work it cannot price.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Union

from repro.tune.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.tune.decision import TunerDecision
from repro.tune.tuner import tune, workload_fingerprint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.machines import MachineSpec
    from repro.service.statestore import StateStore

#: Wave size when the queue holds nothing the planner can price.
DEFAULT_WAVE = 1


class WavePlanner:
    """Chooses fleet wave sizes from model-only tuner decisions.

    One planner instance lives as long as its worker pool; decisions
    are cached per workload fingerprint, so a steady-state queue of
    near-duplicate molecules (the screening-service shape) prices its
    workload exactly once.
    """

    def __init__(
        self,
        *,
        machine: Union[str, "MachineSpec", None] = None,
        n_ranks: Optional[int] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        self.machine = machine
        self.n_ranks = n_ranks
        self.cost_model = cost_model
        self._decisions: Dict[str, TunerDecision] = {}

    # ------------------------------------------------------------------
    def decision_for_payload(
        self, payload: Dict[str, object]
    ) -> Optional[TunerDecision]:
        """The (cached) fleet-axis decision for one physics payload.

        Returns ``None`` for payloads the planner cannot price (wrong
        kind, malformed structure/settings) — callers fall back to
        :data:`DEFAULT_WAVE`.
        """
        if payload.get("kind") != "physics":
            return None
        try:
            from repro.config import RunSettings
            from repro.service.jobs import structure_from_dict

            structure = structure_from_dict(payload["structure"])  # type: ignore[arg-type]
            settings = RunSettings.from_canonical_dict(payload["settings"])  # type: ignore[arg-type]
            charge = int(payload.get("charge", 0))  # type: ignore[arg-type]
        except Exception:  # noqa: BLE001 — unpriceable payload, wave of one
            return None
        fingerprint = workload_fingerprint(structure, settings, charge=charge)
        if fingerprint not in self._decisions:
            self._decisions[fingerprint] = tune(
                structure,
                settings,
                machine=self.machine,
                n_ranks=self.n_ranks,
                budget=0,  # model-only: no trials on the scheduling path
                fleet=True,
                cost_model=self.cost_model,
                charge=charge,
            )
        return self._decisions[fingerprint]

    # ------------------------------------------------------------------
    def plan(self, store: "StateStore") -> int:
        """Wave size for the next scheduling step over *store*.

        The tuned wave of the oldest waiting payload, clamped to the
        number of waiting tasks (claiming more than exists only wastes
        lease churn).
        """
        from repro.service.statestore import WAITING

        waiting = store.tasks(status=WAITING)
        if not waiting:
            return DEFAULT_WAVE
        decision = self.decision_for_payload(waiting[0].payload)
        if decision is None:
            return DEFAULT_WAVE
        return max(1, min(decision.chosen.fleet_wave, len(waiting)))

    @property
    def n_decisions(self) -> int:
        """Distinct workload fingerprints priced so far."""
        return len(self._decisions)

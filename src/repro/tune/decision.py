"""The tuner's durable artifact: :class:`TunerDecision` (DESIGN §15.3).

One JSON document per tuning run recording the searched space, the
predicted and measured cost of every short-listed candidate, the chosen
configuration and its provenance — the same
measure-then-record discipline every other perf artifact in this repo
follows.  Wall-clock seconds of the tuning itself are quarantined under
``timings`` (exactly like ``repro.obs.bench.stable_view``), so
:meth:`TunerDecision.stable_bytes` is byte-identical across reruns of
the same workload + history — the determinism contract the hypothesis
suite pins.

>>> from repro.tune.space import TunedConfig
>>> cfg = TunedConfig()
>>> d = TunerDecision(
...     fingerprint="wf-x", space_size=2,
...     candidates=[CandidateOutcome(config=cfg, predicted_seconds=1.0)],
...     chosen=cfg, default=cfg,
... )
>>> clone = TunerDecision.from_dict(d.as_dict())
>>> clone.fingerprint, clone.stable_bytes() == d.stable_bytes()
('wf-x', True)
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.config import RunSettings
from repro.tune.space import TunedConfig, TuningError


@dataclass
class CandidateOutcome:
    """One short-listed candidate: predicted and (maybe) measured cost."""

    config: TunedConfig
    predicted_seconds: float
    measured_seconds: Optional[float] = None
    source: str = "model"  # "model" | "trial" | "warm-start"

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly snapshot; deterministic floats only."""
        return {
            "config": self.config.as_dict(),
            "predicted": {"modeled_seconds": self.predicted_seconds},
            "measured": (
                None
                if self.measured_seconds is None
                else {"modeled_seconds": self.measured_seconds}
            ),
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CandidateOutcome":
        """Rebuild one outcome from :meth:`as_dict` output."""
        measured = data.get("measured")
        return cls(
            config=TunedConfig.from_dict(data["config"]),
            predicted_seconds=float(data["predicted"]["modeled_seconds"]),
            measured_seconds=(
                None if measured is None else float(measured["modeled_seconds"])
            ),
            source=str(data.get("source", "model")),
        )


@dataclass
class TunerDecision:
    """Everything one closed-loop tuning run decided, and why."""

    fingerprint: str = ""
    workload: Dict[str, Any] = field(default_factory=dict)
    space_size: int = 0
    candidates: List[CandidateOutcome] = field(default_factory=list)
    chosen: TunedConfig = field(default_factory=TunedConfig)
    default: TunedConfig = field(default_factory=TunedConfig)
    warm_started: bool = False
    machine: str = ""
    n_ranks: int = 0
    provenance: Dict[str, Any] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def _outcome_for(self, config: TunedConfig) -> Optional[CandidateOutcome]:
        for cand in self.candidates:
            if cand.config == config:
                return cand
        return None

    @property
    def chosen_outcome(self) -> CandidateOutcome:
        """The chosen candidate's cost record."""
        out = self._outcome_for(self.chosen)
        if out is None:
            raise TuningError("decision does not record its chosen candidate")
        return out

    @property
    def default_outcome(self) -> CandidateOutcome:
        """The default (hand-picked) candidate's cost record."""
        out = self._outcome_for(self.default)
        if out is None:
            raise TuningError("decision does not record the default candidate")
        return out

    @property
    def predicted_speedup(self) -> float:
        """Predicted default/chosen cost ratio (>= 1 by construction)."""
        chosen = self.chosen_outcome.predicted_seconds
        return self.default_outcome.predicted_seconds / chosen if chosen else 1.0

    @property
    def measured_speedup(self) -> float:
        """Measured default/chosen cost ratio (>= 1 by construction).

        Falls back to the predicted ratio when the measured stage was
        skipped (budget 0 or model-only workloads).
        """
        chosen = self.chosen_outcome.measured_seconds
        default = self.default_outcome.measured_seconds
        if chosen is None or default is None or chosen == 0.0:
            return self.predicted_speedup
        return default / chosen

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly snapshot of the whole decision."""
        return {
            "fingerprint": self.fingerprint,
            "workload": dict(self.workload),
            "space_size": int(self.space_size),
            "candidates": [c.as_dict() for c in self.candidates],
            "chosen": self.chosen.as_dict(),
            "default": self.default.as_dict(),
            "predicted_speedup_vs_default": self.predicted_speedup,
            "measured_speedup_vs_default": self.measured_speedup,
            "warm_started": self.warm_started,
            "machine": self.machine,
            "n_ranks": int(self.n_ranks),
            "provenance": dict(self.provenance),
            "timings": dict(self.timings),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TunerDecision":
        """Rebuild a decision from :meth:`as_dict` output."""
        return cls(
            fingerprint=str(data.get("fingerprint", "")),
            workload=dict(data.get("workload", {})),
            space_size=int(data.get("space_size", 0)),
            candidates=[
                CandidateOutcome.from_dict(c)
                for c in data.get("candidates", [])
            ],
            chosen=TunedConfig.from_dict(data["chosen"]),
            default=TunedConfig.from_dict(data["default"]),
            warm_started=bool(data.get("warm_started", False)),
            machine=str(data.get("machine", "")),
            n_ranks=int(data.get("n_ranks", 0)),
            provenance=dict(data.get("provenance", {})),
            timings=dict(data.get("timings", {})),
        )

    def stable_bytes(self) -> bytes:
        """Canonical bytes with every ``timings`` subtree removed.

        Two tuning runs over the same workload fingerprint and the same
        history produce identical stable bytes — the determinism
        contract ``tests/test_tune.py`` pins with hypothesis.
        """
        from repro.obs.bench import stable_view

        return json.dumps(stable_view(self.as_dict()), sort_keys=True).encode()

    def to_json(self) -> str:
        """Full serialized decision (timings included), sorted keys."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    def write(self, path: Union[str, Path]) -> Path:
        """Write the JSON artifact; returns the path written."""
        path = Path(path)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TunerDecision":
        """Read a decision artifact back (for ``repro tune --replay``)."""
        p = Path(path)
        if not p.exists():
            raise TuningError(f"no decision artifact at {p}")
        try:
            return cls.from_dict(json.loads(p.read_text()))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            raise TuningError(
                f"{p} is not a TunerDecision artifact"
            ) from None

    # ------------------------------------------------------------------
    def apply(self, settings: RunSettings) -> RunSettings:
        """The effective settings of the chosen configuration."""
        return self.chosen.apply(settings)

    def render_ascii(self) -> str:
        """Human-readable decision table (candidates, costs, winner)."""
        from repro.utils.reports import TableFormatter

        lines = [
            f"tuner decision [{self.fingerprint}]",
            f"space: {self.space_size} candidate configuration(s), "
            f"{len(self.candidates)} short-listed "
            f"({'warm-started, ' if self.warm_started else ''}"
            f"machine {self.machine or '?'}, {self.n_ranks} ranks)",
        ]
        table = TableFormatter(
            ["configuration", "predicted", "measured", "source", ""],
            title="short-listed candidates (modeled seconds, lower is better)",
        )
        for cand in self.candidates:
            measured = (
                "-" if cand.measured_seconds is None
                else f"{cand.measured_seconds:.3e}"
            )
            marker = ""
            if cand.config == self.chosen:
                marker = "<= chosen"
            elif cand.config == self.default:
                marker = "(default)"
            table.add_row(
                [
                    cand.config.describe(),
                    f"{cand.predicted_seconds:.3e}",
                    measured,
                    cand.source,
                    marker,
                ]
            )
        lines += ["", table.render()]
        lines += [
            "",
            f"chosen: {self.chosen.describe()}",
            f"predicted speedup vs default: {self.predicted_speedup:.2f}x; "
            f"measured {self.measured_speedup:.2f}x",
        ]
        return "\n".join(lines)

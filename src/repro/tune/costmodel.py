"""The tuner's cost-model stage: price candidate configs a priori (DESIGN §15.2).

Every term reuses a measurement seam the analytics tier already owns —
nothing here invents new physics:

* **kernel work** — block/element counts from
  :func:`repro.grids.sparsity.modeled_block_counts` (dense or screened,
  at the candidate's batching granularity), priced with per-backend
  unit costs;
* **mapping** — point imbalance and atom locality from
  :func:`repro.obs.analyze.imbalance.strategy_imbalance_factors` over
  the workload's summary batches;
* **communication** — per-scheme reduction estimates from
  :func:`repro.obs.analyze.comms.scheme_cost_seconds` on the machine
  models;
* **fleet** — substrate setup and device-launch overhead amortized
  over the candidate wave size (the PR-8 horizontal-fusion account).

Everything is pure float arithmetic over deterministic counts, so two
pricings of the same workload are bit-identical — the property the
decision byte-stability tests pin.  The unit costs live in one frozen
:class:`CostModel` whose :meth:`CostModel.perturbed` copy exists so the
regression gate can prove it *notices* a cost-model change.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.config import RunSettings
from repro.tune.space import TunedConfig, TuningError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.atoms.structure import Structure
    from repro.obs.analyze.imbalance import MappingAttribution
    from repro.runtime.machines import MachineSpec


@dataclass(frozen=True)
class CostModel:
    """Unit costs (seconds) the pricing stage multiplies counts by.

    Calibrated once against the PR-2 backend benchmark's relative
    speedups (batched ~10x, device ~35x over the re-evaluating path on
    the benchmark system); their absolute scale cancels in every
    tuned-vs-default comparison, only the ratios steer decisions.
    """

    #: Per-element contraction cost of the numpy reference backend.
    numpy_element_seconds: float = 1.0e-8
    #: Per-element contraction cost of the batched streaming backend.
    batched_element_seconds: float = 4.0e-9
    #: Per-element contraction cost of the priced device backend.
    device_element_seconds: float = 1.0e-9
    #: Per-batch dispatch overhead of the numpy backend.
    numpy_call_seconds: float = 2.0e-6
    #: Per-batch dispatch overhead of the batched backend (LRU lookup).
    batched_call_seconds: float = 5.0e-6
    #: Per-batch launch overhead of the device backend.
    device_call_seconds: float = 2.0e-5
    #: Basis-table (re)evaluation cost per element.
    eval_element_seconds: float = 2.0e-8
    #: Screening-pattern build cost per candidate (batch, atom) block.
    screen_block_seconds: float = 1.0e-7
    #: One-time per-molecule substrate setup a fleet wave amortizes.
    fleet_setup_seconds: float = 5.0e-2

    def perturbed(self, factor: float) -> "CostModel":
        """Every unit cost scaled by *factor* (gate-liveness testing)."""
        return replace(
            self,
            **{
                f.name: getattr(self, f.name) * factor
                for f in fields(self)
            },
        )

    def element_seconds(self, backend: str) -> float:
        """Per-element contraction cost for one backend name."""
        return self._per_backend(backend, "element")

    def call_seconds(self, backend: str) -> float:
        """Per-batch dispatch/launch overhead for one backend name."""
        return self._per_backend(backend, "call")

    def _per_backend(self, backend: str, kind: str) -> float:
        try:
            return getattr(self, f"{backend}_{kind}_seconds")
        except AttributeError:
            raise TuningError(
                f"cost model has no {kind} cost for backend {backend!r}"
            ) from None


#: The calibrated default model every tuner entry point shares.
DEFAULT_COST_MODEL = CostModel()


class WorkloadInputs:
    """Deterministic per-workload counts the pricing stage consumes.

    Built once per tuner invocation and shared across every candidate:
    block/element counts are cached per (batching granularity,
    screening threshold) pair and mapping attributions per (granularity,
    ranks) pair, so pricing a few hundred candidates costs a handful of
    count evaluations, not a grid build each.
    """

    def __init__(
        self, structure: "Structure", settings: RunSettings
    ) -> None:
        from repro.core.workload import build_workload

        self.structure = structure
        self.settings = settings
        self.workload = build_workload(structure, settings)
        self._counts: Dict[Tuple[int, float], Dict[str, float]] = {}
        self._mappings: Dict[Tuple[int, int], Dict[str, "MappingAttribution"]] = {}

    # ------------------------------------------------------------------
    def counts(self, batch_target: int, threshold: float) -> Dict[str, float]:
        """Block/element totals at one (granularity, threshold) point."""
        key = (int(batch_target), float(threshold))
        if key not in self._counts:
            self._counts[key] = self._build_counts(*key)
        return self._counts[key]

    def _build_counts(
        self, batch_target: int, threshold: float
    ) -> Dict[str, float]:
        import numpy as np

        from repro.core.workload import _points_per_atom

        ppa = _points_per_atom(
            self.structure, self.settings.grids
        ).astype("int64")
        n_batches = int(np.maximum(1, -(-ppa // int(batch_target))).sum())
        n_points = self.workload.n_grid_points
        n_basis = self.workload.n_basis
        dense = {
            "n_batches": n_batches,
            "blocks": n_batches * self.workload.n_atoms,
            "elements": n_points * n_basis,
        }
        if threshold <= 0.0:
            return dense
        from repro.grids.sparsity import modeled_block_counts

        modeled = modeled_block_counts(
            self.structure,
            self.settings,
            threshold=threshold,
            target_points=batch_target,
        )
        return {
            "n_batches": int(modeled["n_batches"]),
            "blocks": int(modeled["blocks_active"]),
            "elements": int(modeled["elements_active"]),
        }

    # ------------------------------------------------------------------
    def mapping(
        self, batch_target: int, n_ranks: int
    ) -> Dict[str, "MappingAttribution"]:
        """Both strategies' attribution at one granularity/rank count."""
        from repro.core.workload import synthetic_batches
        from repro.obs.analyze.imbalance import strategy_imbalance_factors

        key = (int(batch_target), int(n_ranks))
        if key not in self._mappings:
            batches = synthetic_batches(
                self.workload, target_points=batch_target
            )
            ranks = max(1, min(n_ranks, len(batches)))
            self._mappings[key] = strategy_imbalance_factors(batches, ranks)
        return self._mappings[key]


@dataclass(frozen=True)
class CostPrediction:
    """One candidate's priced breakdown (all seconds, deterministic)."""

    config: TunedConfig
    kernel_seconds: float
    eval_seconds: float
    screen_seconds: float
    comm_seconds: float
    fleet_seconds: float
    imbalance: float
    locality_fraction: float
    feasible: bool = True

    @property
    def total_seconds(self) -> float:
        """The single number candidates are ranked by."""
        if not self.feasible:
            return math.inf
        return (
            self.kernel_seconds
            + self.eval_seconds
            + self.screen_seconds
            + self.comm_seconds
            + self.fleet_seconds
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly snapshot (used in the TunerDecision record)."""
        return {
            "config": self.config.as_dict(),
            "kernel_seconds": self.kernel_seconds,
            "eval_seconds": self.eval_seconds,
            "screen_seconds": self.screen_seconds,
            "comm_seconds": self.comm_seconds,
            "fleet_seconds": self.fleet_seconds,
            "imbalance": self.imbalance,
            "locality_fraction": self.locality_fraction,
            "feasible": self.feasible,
            "modeled_seconds": (
                None if not self.feasible else self.total_seconds
            ),
        }


def predict_cost(
    inputs: WorkloadInputs,
    config: TunedConfig,
    machine: "MachineSpec",
    n_ranks: int,
    model: CostModel = DEFAULT_COST_MODEL,
) -> CostPrediction:
    """Price one candidate configuration on one machine model.

    Infeasible candidates (a comm scheme the machine cannot run) come
    back with ``feasible=False`` and an infinite total rather than
    raising, so the search can simply rank them last.
    """
    from repro.obs.analyze.comms import scheme_cost_seconds

    counts = inputs.counts(config.batch_target_points, config.screening_threshold)
    attribution = inputs.mapping(config.batch_target_points, n_ranks)
    strategy = attribution[config.mapping]
    imbalance = float(strategy.imbalance)
    n_atoms = max(1, inputs.workload.n_atoms)
    locality_fraction = min(1.0, strategy.mean_atoms / n_atoms) or 1.0

    elements = float(counts["elements"])
    n_batches = float(counts["n_batches"])
    ranks = float(max(1, n_ranks))

    # Contraction work, parallel over ranks, stretched by the mapping's
    # point imbalance (the paper's Fig.-9 penalty).
    kernel = (
        elements * model.element_seconds(config.backend)
        + n_batches * model.call_seconds(config.backend)
    ) / ranks * imbalance

    # Basis-table evaluation: each rank evaluates only the functions of
    # atoms its batches touch (the locality mapping's payoff).  A numpy
    # builder without its full-table cache re-evaluates per sweep; the
    # streaming/device paths evaluate each block once.
    table_elements = elements * locality_fraction
    cache_disabled = config.cache_limit is not None and (
        elements > config.cache_limit
    )
    eval_passes = 2.0 if (config.backend == "numpy" and cache_disabled) else 1.0
    eval_cost = table_elements * model.eval_element_seconds * eval_passes / ranks

    # Screening pattern build: every candidate (batch, atom) block is
    # tested once, dense or not.
    screen_cost = 0.0
    if config.screening_threshold > 0.0:
        dense_blocks = inputs.counts(config.batch_target_points, 0.0)["blocks"]
        screen_cost = dense_blocks * model.screen_block_seconds / ranks

    # Reduction-scheme estimate on the machine model (Fig. 10).
    n_basis = inputs.workload.n_basis
    schemes = scheme_cost_seconds(
        machine, max(2, n_ranks), n_rows=n_basis, row_bytes=8 * n_basis
    )
    if config.comm_scheme not in schemes:
        return CostPrediction(
            config=config,
            kernel_seconds=kernel,
            eval_seconds=eval_cost,
            screen_seconds=screen_cost,
            comm_seconds=math.inf,
            fleet_seconds=0.0,
            imbalance=imbalance,
            locality_fraction=locality_fraction,
            feasible=False,
        )
    comm = float(schemes[config.comm_scheme])

    # Fleet wave: substrate setup amortizes across the wave, and the
    # device model fuses same-name launches across molecules (one
    # overhead per kernel group per round instead of one per molecule).
    wave = float(max(1, config.fleet_wave))
    fleet_cost = model.fleet_setup_seconds / wave
    if config.backend == "device" and wave > 1.0:
        launch_overhead = n_batches * model.call_seconds("device") / ranks
        fleet_cost -= launch_overhead * (wave - 1.0) / wave

    return CostPrediction(
        config=config,
        kernel_seconds=kernel,
        eval_seconds=eval_cost,
        screen_seconds=screen_cost,
        comm_seconds=comm,
        fleet_seconds=fleet_cost,
        imbalance=imbalance,
        locality_fraction=locality_fraction,
    )


def price_profile(
    profile: Dict[str, object],
    config: TunedConfig,
    prediction: CostPrediction,
    n_ranks: int,
    model: CostModel = DEFAULT_COST_MODEL,
) -> float:
    """Deterministic measured cost of one trial run's backend profile.

    The measured stage replaces the *kernel and evaluation* terms of a
    prediction with costs priced from the trial's actual deterministic
    counters (elements contracted, batch calls, cache misses, device
    modeled seconds); the mapping, communication and fleet terms —
    which a single-process trial cannot observe — stay model-priced, so
    measured totals remain comparable across the whole candidate set.
    Wall-clock seconds are deliberately not used: decisions must be
    byte-reproducible.
    """
    phases = profile.get("phases", {})
    elements = float(sum(p["elements"] for p in phases.values()))
    calls = float(sum(p["calls"] for p in phases.values()))
    device = profile.get("device", {})
    cache = profile.get("cache", {})
    ranks = float(max(1, n_ranks))

    if config.backend == "device" and device.get("modeled_seconds"):
        kernel = float(device["modeled_seconds"]) / ranks * prediction.imbalance
    else:
        kernel = (
            elements * model.element_seconds(config.backend)
            + calls * model.call_seconds(config.backend)
        ) / ranks * prediction.imbalance

    evaluated = float(cache.get("misses", 0.0))
    if evaluated > 0.0 and elements > 0.0:
        # The batched backend counts block evaluations as cache misses;
        # charge table evaluation for exactly the evaluated fraction.
        miss_fraction = min(1.0, evaluated / max(calls, 1.0))
        eval_cost = (
            elements * miss_fraction * model.eval_element_seconds / ranks
        )
    else:
        eval_cost = prediction.eval_seconds

    return (
        kernel
        + eval_cost
        + prediction.screen_seconds
        + prediction.comm_seconds
        + prediction.fleet_seconds
    )

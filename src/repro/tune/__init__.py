"""Closed-loop auto-tuning over the repo's performance knobs (DESIGN §15).

The paper's authors hand-pick a configuration per machine — execution
backend, rank→atom mapping, reduction scheme, kernel batching
granularity, cache budget, screening threshold, fleet wave size.  This
package closes that loop: an analytic **cost-model stage** prices every
candidate on the machine models, prior decisions in the benchmark
history **warm-start** the short list, a bounded **measured stage**
re-prices the short list from seeded trial runs through the real
builder seam, and the winner — never predicted or measured slower than
the hand-picked default — ships as a :class:`TunerDecision` recorded in
the RunReport and appended to ``BENCH_history.jsonl``, where the next
run finds it.

Entry points: ``repro tune`` (inspect a decision), ``repro submit
--tune`` (tune then run), ``repro serve --fleet auto``
(:class:`WavePlanner`), ``benchmarks/bench_tuner.py`` + ``make
tune-check`` (the regression gate).
"""

from repro.tune.costmodel import (
    DEFAULT_COST_MODEL,
    CostModel,
    CostPrediction,
    WorkloadInputs,
    predict_cost,
    price_profile,
)
from repro.tune.decision import CandidateOutcome, TunerDecision
from repro.tune.space import (
    TunedConfig,
    TuningError,
    default_config,
    search_space,
)
from repro.tune.tuner import (
    append_decision,
    tune,
    tuned_settings,
    warm_start_configs,
    workload_fingerprint,
)
from repro.tune.waves import WavePlanner

__all__ = [
    "CandidateOutcome",
    "CostModel",
    "CostPrediction",
    "DEFAULT_COST_MODEL",
    "TunedConfig",
    "TunerDecision",
    "TuningError",
    "WavePlanner",
    "WorkloadInputs",
    "append_decision",
    "default_config",
    "predict_cost",
    "price_profile",
    "search_space",
    "tune",
    "tuned_settings",
    "warm_start_configs",
    "workload_fingerprint",
]

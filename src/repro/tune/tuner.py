"""The closed tuning loop: model → trial → decide → record (DESIGN §15).

:func:`tune` is the single entry point every consumer shares (``repro
tune``, ``repro submit --tune``, the fleet wave planner, the tuner
benchmark).  One invocation:

1. **prices** every candidate in :func:`repro.tune.space.search_space`
   with the analytic cost model (:mod:`repro.tune.costmodel`),
2. **warm-starts** the short list from prior decisions in
   ``BENCH_history.jsonl`` whose workload fingerprint matches,
3. **trials** the short list — seeded single-sweep runs through the
   real :class:`~repro.dft.hamiltonian.MatrixBuilder` seam, re-priced
   from their deterministic backend-profile counters,
4. **decides**, with the hand-picked default always in the running and
   always the fallback: the chosen config is never predicted *or*
   measured slower than the default, and
5. **records** everything as a :class:`~repro.tune.decision.TunerDecision`
   (append it to history with :func:`append_decision`).

Every stage is deterministic — same workload fingerprint + same
history ⇒ byte-identical decision (the hypothesis-pinned contract).
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

from repro.config import RunSettings
from repro.tune.costmodel import (
    DEFAULT_COST_MODEL,
    CostModel,
    WorkloadInputs,
    predict_cost,
    price_profile,
)
from repro.tune.decision import CandidateOutcome, TunerDecision
from repro.tune.space import (
    TunedConfig,
    TuningError,
    default_config,
    search_space,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.atoms.structure import Structure
    from repro.runtime.machines import MachineSpec

#: History label under which tuner decisions and emissions are filed.
HISTORY_LABEL = "tuner"

#: Knobs the tuner owns; excluded from the workload fingerprint so one
#: workload keeps one fingerprint no matter which knob values it
#: currently carries (that is what makes warm starts find it again).
TUNED_SETTINGS_KEYS = ("backend", "screening_threshold", "cache_limit", "tuning")


def workload_fingerprint(
    structure: "Structure",
    settings: RunSettings,
    charge: int = 0,
) -> str:
    """Content hash identifying one tunable workload.

    Covers the structure, the charge and every *non-tuned* settings
    field; the tuner-owned knobs (backend, screening, cache budget,
    batching granularity, the tuning block itself) are stripped first.
    Two runs of the same physics with different hand-picked performance
    knobs therefore share a fingerprint — and share warm starts.
    """
    from repro.service.jobs import structure_fingerprint

    canonical = settings.as_canonical_dict()
    for key in TUNED_SETTINGS_KEYS:
        canonical.pop(key, None)
    grids = canonical.get("grids")
    if isinstance(grids, dict):
        grids.pop("batch_target_points", None)
    doc = {
        "charge": int(charge),
        "settings": canonical,
        "structure": structure_fingerprint(structure),
    }
    digest = hashlib.sha256(
        json.dumps(doc, sort_keys=True).encode()
    ).hexdigest()
    return f"wf-{digest[:16]}"


# ----------------------------------------------------------------------
# Warm start: mine prior decisions out of the benchmark history.
# ----------------------------------------------------------------------

def _decision_dicts(node: object) -> List[Dict[str, object]]:
    """Every sub-dict of *node* that looks like a TunerDecision record."""
    found: List[Dict[str, object]] = []
    if isinstance(node, dict):
        if "fingerprint" in node and "chosen" in node:
            found.append(node)
        for value in node.values():
            found.extend(_decision_dicts(value))
    elif isinstance(node, list):
        for value in node:
            found.extend(_decision_dicts(value))
    return found


def warm_start_configs(
    history_path: Optional[Union[str, Path]],
    fingerprint: str,
) -> List[TunedConfig]:
    """Chosen configs of prior decisions matching *fingerprint*.

    Scans every history entry filed under the tuner label — both direct
    ``repro tune`` appends and the per-workload decisions embedded in
    ``bench-check`` tuner emissions — newest first, deduplicated.
    """
    if history_path is None:
        return []
    from repro.obs.analyze.history import load_history

    out: List[TunedConfig] = []
    for entry in reversed(load_history(history_path, label=HISTORY_LABEL)):
        for record in _decision_dicts(entry.get("emission")):
            if record.get("fingerprint") != fingerprint:
                continue
            try:
                cfg = TunedConfig.from_dict(record["chosen"])  # type: ignore[arg-type]
            except (KeyError, TypeError, ValueError):
                continue
            if cfg not in out:
                out.append(cfg)
    return out


def append_decision(
    history_path: Union[str, Path],
    decision: TunerDecision,
    gate_ok: Optional[bool] = None,
) -> Dict[str, object]:
    """File one decision in the benchmark history (the feedback edge).

    The next :func:`tune` over the same workload fingerprint reads it
    back as a warm start — this append is what closes the loop.
    """
    from repro.obs.analyze.history import append_entry

    return append_entry(
        history_path,
        decision.as_dict(),
        label=HISTORY_LABEL,
        gate_ok=gate_ok,
        provenance=decision.provenance or None,
    )


# ----------------------------------------------------------------------
# Measured stage: seeded trial runs through the real builder seam.
# ----------------------------------------------------------------------

class _TrialRunner:
    """Runs and caches seeded trial sweeps for the measured stage.

    One basis/grid build is shared across all trials; profiles are
    cached per *trial key* — the subset of knobs a single-process trial
    can actually exercise (backend, batching, cache budget, screening).
    Mapping/comm/fleet knobs do not change the trial, so candidates
    differing only there share one profile.
    """

    def __init__(self, structure: "Structure", settings: RunSettings) -> None:
        self.structure = structure
        self.settings = settings
        self._prepared = False
        self._profiles: Dict[tuple, Dict[str, object]] = {}
        self._batches: Dict[int, object] = {}
        self.trial_wall_seconds = 0.0

    def _prepare(self) -> None:
        from repro.basis import build_basis
        from repro.grids import build_grid

        self.basis = build_basis(self.structure)
        self.grid = build_grid(
            self.structure, self.settings.grids, with_partition=True
        )
        self._prepared = True

    @staticmethod
    def trial_key(config: TunedConfig) -> tuple:
        """The knob subset one single-process trial distinguishes."""
        return (
            config.backend,
            config.batch_target_points,
            config.cache_limit,
            config.screening_threshold,
        )

    def profile(self, config: TunedConfig) -> Dict[str, object]:
        """The backend-profile snapshot of one (cached) trial run."""
        from repro.dft.hamiltonian import MatrixBuilder
        from repro.grids.batching import build_batches
        from repro.obs.bench import BENCH_SEED, sweep

        key = self.trial_key(config)
        if key in self._profiles:
            return self._profiles[key]
        if not self._prepared:
            self._prepare()
        bt = config.batch_target_points
        if bt not in self._batches:
            self._batches[bt] = build_batches(self.grid, target_points=bt)
        start = time.perf_counter()
        builder = MatrixBuilder(
            self.basis,
            self.grid,
            batches=self._batches[bt],
            backend=config.backend,
            cache_limit=config.cache_limit,
            screening_threshold=config.screening_threshold,
        )
        sweep(builder, 1, seed=BENCH_SEED)
        self.trial_wall_seconds += time.perf_counter() - start
        profile = builder.backend.profile.as_dict()
        self._profiles[key] = profile
        return profile

    @property
    def n_trials(self) -> int:
        """Distinct trial runs executed so far."""
        return len(self._profiles)


# ----------------------------------------------------------------------
# The loop.
# ----------------------------------------------------------------------

def _resolve_machine(machine: Union[str, "MachineSpec", None]) -> "MachineSpec":
    from repro.runtime import HPC2_AMD, machine_by_name

    if machine is None:
        return HPC2_AMD
    if isinstance(machine, str):
        return machine_by_name(machine)
    return machine


def tune(
    structure: "Structure",
    settings: RunSettings,
    *,
    machine: Union[str, "MachineSpec", None] = None,
    n_ranks: Optional[int] = None,
    budget: Optional[int] = None,
    fleet: bool = False,
    history_path: Optional[Union[str, Path]] = None,
    backends: Optional[Sequence[str]] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    charge: int = 0,
) -> TunerDecision:
    """Run the closed loop once; return the decision (not yet applied).

    ``budget`` bounds the measured stage: the default configuration is
    always trialed (when the budget is positive), then the top model
    picks and any warm starts fill the remaining ``budget`` distinct
    trial slots.  ``budget=0`` skips trials entirely (model-only
    decision — what the fleet wave planner uses on its hot path).
    Unspecified knobs default to ``settings.tuning``.
    """
    tuning = settings.tuning
    ranks = int(n_ranks if n_ranks is not None else tuning.n_ranks)
    trials_budget = int(budget if budget is not None else tuning.budget)
    if ranks < 1:
        raise TuningError(f"need >= 1 rank to tune for, got {ranks}")
    if trials_budget < 0:
        raise TuningError(f"trial budget must be >= 0, got {trials_budget}")
    spec = _resolve_machine(machine)

    fingerprint = workload_fingerprint(structure, settings, charge=charge)
    default = default_config(settings)

    # Stage 1: price the whole space analytically.
    model_start = time.perf_counter()
    inputs = WorkloadInputs(structure, settings)
    space = search_space(settings, fleet=fleet, backends=backends)
    if default not in space:
        space = sorted(space + [default], key=TunedConfig.sort_key)
    predictions = {
        cfg: predict_cost(inputs, cfg, spec, ranks, cost_model)
        for cfg in space
    }
    ranked = sorted(
        (p for p in predictions.values() if p.feasible),
        key=lambda p: (p.total_seconds, p.config.sort_key()),
    )
    if not ranked:
        raise TuningError(
            f"no feasible candidate configuration on machine {spec.name}"
        )
    model_seconds = time.perf_counter() - model_start

    # Stage 2: warm starts + short list, then budgeted trials.
    warm: List[TunedConfig] = []
    for cfg in warm_start_configs(
        history_path if tuning.warm_start else None, fingerprint
    ):
        if cfg not in predictions:
            # A prior decision from an older/larger space: price it too.
            predictions[cfg] = predict_cost(inputs, cfg, spec, ranks, cost_model)
        if predictions[cfg].feasible and cfg not in warm:
            warm.append(cfg)
    shortlist: List[TunedConfig] = []
    sources: Dict[TunedConfig, str] = {}

    def _shortlist(cfg: TunedConfig, source: str) -> None:
        if cfg not in shortlist:
            shortlist.append(cfg)
            sources[cfg] = source

    if predictions[default].feasible:
        _shortlist(default, "trial")
    for cfg in warm:
        _shortlist(cfg, "warm-start")
    for pred in ranked:
        _shortlist(pred.config, "trial")

    runner = _TrialRunner(structure, settings)
    outcomes: List[CandidateOutcome] = []
    for cfg in shortlist:
        pred = predictions[cfg]
        measured: Optional[float] = None
        key = _TrialRunner.trial_key(cfg)
        if trials_budget > 0 and (
            key in runner._profiles or runner.n_trials < trials_budget
        ):
            profile = runner.profile(cfg)
            measured = price_profile(profile, cfg, pred, ranks, cost_model)
        outcomes.append(
            CandidateOutcome(
                config=cfg,
                predicted_seconds=pred.total_seconds,
                measured_seconds=measured,
                source=sources[cfg],
            )
        )
    # Keep the record compact: measured candidates plus the best
    # model-only ones up to a small tail.
    recorded = [o for o in outcomes if o.measured_seconds is not None]
    tail = [o for o in outcomes if o.measured_seconds is None]
    recorded += tail[: max(0, 8 - len(recorded))]
    default_outcome = next(
        (o for o in recorded if o.config == default), None
    )
    if default_outcome is None:
        default_outcome = CandidateOutcome(
            config=default,
            predicted_seconds=predictions[default].total_seconds,
            source="model",
        )
        recorded.append(default_outcome)

    # Stage 3: decide — measured-first ranking, default as the floor.
    def _rank_key(out: CandidateOutcome) -> tuple:
        deciding = (
            out.measured_seconds
            if out.measured_seconds is not None
            else out.predicted_seconds
        )
        return (deciding, out.predicted_seconds, out.config.sort_key())

    winner = min(recorded, key=_rank_key)
    slower_predicted = (
        winner.predicted_seconds > default_outcome.predicted_seconds
    )
    slower_measured = (
        winner.measured_seconds is not None
        and default_outcome.measured_seconds is not None
        and winner.measured_seconds > default_outcome.measured_seconds
    )
    if slower_predicted or slower_measured:
        winner = default_outcome

    workload = inputs.workload
    return TunerDecision(
        fingerprint=fingerprint,
        workload={
            "n_atoms": workload.n_atoms,
            "n_basis": workload.n_basis,
            "n_grid_points": workload.n_grid_points,
        },
        space_size=len(space),
        candidates=sorted(recorded, key=_rank_key),
        chosen=winner.config,
        default=default,
        warm_started=bool(warm),
        machine=spec.name,
        n_ranks=ranks,
        provenance=_provenance(),
        timings={
            "model_stage_seconds": model_seconds,
            "measured_stage_seconds": runner.trial_wall_seconds,
        },
    )


def _provenance() -> Dict[str, object]:
    from repro.obs.bench import BENCH_SEED
    from repro.obs.report import collect_provenance

    return collect_provenance(seed=BENCH_SEED).as_dict()


def tuned_settings(
    structure: "Structure",
    settings: RunSettings,
    **kwargs,
) -> tuple:
    """Convenience: run :func:`tune` and apply the winner.

    Returns ``(effective_settings, decision)``; the effective settings
    carry ``tuning.mode == "off"`` (see
    :meth:`repro.tune.space.TunedConfig.apply`), so downstream cache
    keys match the equivalent hand-picked configuration.
    """
    decision = tune(structure, settings, **kwargs)
    return decision.apply(settings), decision

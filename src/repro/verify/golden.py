"""Golden snapshot store (DESIGN §9.3).

Tolerance-aware ``.npz`` records of the reference molecules' energies,
matrices and polarizabilities, committed under
``src/repro/verify/golden_data/``.  A regression against a golden names
the exact field that broke, with its residual and tolerance class —
rendered through the same :class:`~repro.verify.invariants.VerifyReport`
machinery as the invariant registry.

Updates are guarded: :func:`save_golden` refuses to write unless called
with ``allow_update=True``, and the pytest suite only exercises the
update path under the explicit ``--run-golden-update`` flag, so CI can
never silently re-baseline itself.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.atoms.structure import Structure
from repro.config import get_settings
from repro.errors import GoldenUpdateError, VerificationError
from repro.verify.invariants import ALLCLOSE, PHYSICS, InvariantResult, VerifyReport

#: Where committed goldens live (package data, versioned with the code).
GOLDEN_DIR = Path(__file__).resolve().parent / "golden_data"

#: The reference molecules ``python -m repro verify`` covers.
GOLDEN_MOLECULES: Dict[str, Callable[[], Structure]] = {}


def _register_molecules() -> None:
    from repro.atoms import hydrogen_molecule, water

    GOLDEN_MOLECULES.update({"h2": hydrogen_molecule, "water": water})


_register_molecules()

#: Per-field tolerance classes.  Matrices and energies are converged to
#: tight SCF tolerances and reproducible across BLAS builds to well
#: below these; the polarizability inherits the looser CPSCF iteration
#: tolerance, so it carries a physics-class bound.
FIELD_TOLERANCES: Dict[str, Tuple[str, float]] = {
    "total_energy": (ALLCLOSE, 1e-7),
    "energy_components": (ALLCLOSE, 1e-7),
    "eigenvalues": (ALLCLOSE, 1e-6),
    "overlap": (ALLCLOSE, 1e-9),
    "kinetic": (ALLCLOSE, 1e-9),
    "density_matrix": (ALLCLOSE, 1e-5),
    "charge": (ALLCLOSE, 1e-8),
    "polarizability": (PHYSICS, 1e-4),
}

#: Keys stored in every golden beyond the compared fields.
_META_KEYS = ("level", "molecule")


def golden_path(name: str, directory: Optional[Path] = None) -> Path:
    """Filesystem location of one golden record."""
    return Path(directory or GOLDEN_DIR) / f"{name}.npz"


def record_from_run(gs, polarizability: np.ndarray, n_electrons: int) -> Dict[str, np.ndarray]:
    """Build a golden record from an already-converged run.

    ``gs`` is a :class:`~repro.dft.scf.GroundState`; orbitals are
    deliberately excluded (eigenvector signs are not reproducible), the
    density matrix carries the same information sign-free.
    """
    components = sorted(gs.energy_components)
    return {
        "total_energy": np.array(gs.total_energy),
        "energy_component_names": np.array(components),
        "energy_components": np.array(
            [gs.energy_components[k] for k in components]
        ),
        "eigenvalues": np.asarray(gs.eigenvalues),
        "overlap": np.asarray(gs.overlap),
        "kinetic": np.asarray(gs.kinetic),
        "density_matrix": np.asarray(gs.density_matrix),
        "charge": np.array(float(np.sum(gs.grid.weights * gs.density))),
        "polarizability": np.asarray(polarizability),
        "n_electrons": np.array(n_electrons),
    }


def compute_golden_record(
    structure: Structure, level: str = "minimal"
) -> Dict[str, np.ndarray]:
    """Run the reference pipeline and snapshot it."""
    from repro.dfpt.response import DFPTSolver
    from repro.dft.scf import SCFDriver

    settings = get_settings(level)
    driver = SCFDriver(structure, settings)
    gs = driver.run()
    solver = DFPTSolver(gs, settings.cpscf)
    alpha = np.empty((3, 3))
    for j in range(3):
        alpha[:, j] = solver.solve_direction(j).polarizability_column(gs.dipoles)
    return record_from_run(gs, alpha, driver.n_electrons)


def save_golden(
    name: str,
    record: Dict[str, np.ndarray],
    level: str = "minimal",
    directory: Optional[Path] = None,
    allow_update: bool = False,
) -> Path:
    """Write one golden record — only with explicit opt-in.

    Raises :class:`~repro.errors.GoldenUpdateError` unless
    ``allow_update=True`` (the CLI's ``--update-golden``, pytest's
    ``--run-golden-update``), whether or not the file already exists.
    """
    path = golden_path(name, directory)
    if not allow_update:
        raise GoldenUpdateError(
            f"refusing to write golden {path}; goldens are only regenerated "
            "with an explicit opt-in (`repro verify --update-golden` or "
            "`pytest --run-golden-update`)"
        )
    missing = sorted(set(FIELD_TOLERANCES) - set(record))
    if missing:
        raise VerificationError(f"golden record for {name!r} lacks fields {missing}")
    path.parent.mkdir(parents=True, exist_ok=True)
    # A loaded golden carries the meta keys too — strip them so a
    # load -> save round trip does not collide with the explicit ones.
    payload = {k: v for k, v in record.items() if k not in _META_KEYS}
    np.savez(path, level=np.array(level), molecule=np.array(name), **payload)
    return path


def load_golden(name: str, directory: Optional[Path] = None) -> Dict[str, np.ndarray]:
    """Read one golden record back as a plain dict."""
    path = golden_path(name, directory)
    if not path.exists():
        raise VerificationError(
            f"no golden record {path}; generate one with "
            "`python -m repro verify --update-golden`"
        )
    with np.load(path, allow_pickle=False) as data:
        return {key: np.array(data[key]) for key in data.files}


def compare_to_golden(
    name: str,
    record: Dict[str, np.ndarray],
    directory: Optional[Path] = None,
) -> VerifyReport:
    """Field-by-field comparison of *record* against the stored golden."""
    golden = load_golden(name, directory)
    report = VerifyReport(level="golden")
    for fname, (tol_class, tolerance) in FIELD_TOLERANCES.items():
        detail = ""
        a = np.asarray(record.get(fname))
        b = np.asarray(golden.get(fname))
        if a is None or b is None or a.dtype == object or b.dtype == object:
            residual = float("inf")
            detail = "field missing from record or golden"
        elif a.shape != b.shape:
            residual = float("inf")
            detail = f"shape {a.shape} vs golden {b.shape}"
        else:
            residual = float(np.abs(a - b).max()) if a.size else 0.0
        report.add(
            InvariantResult(
                name=f"golden:{name}/{fname}",
                phase="golden",
                tol_class=tol_class,
                residual=residual,
                tolerance=tolerance,
                passed=residual <= tolerance,
                detail=detail,
            )
        )
    return report


def verify_golden(
    name: str,
    structure: Optional[Structure] = None,
    level: str = "minimal",
    directory: Optional[Path] = None,
) -> VerifyReport:
    """Recompute one molecule's record and compare it to its golden."""
    if structure is None:
        try:
            structure = GOLDEN_MOLECULES[name]()
        except KeyError:
            raise VerificationError(
                f"unknown golden molecule {name!r}; "
                f"expected one of {sorted(GOLDEN_MOLECULES)}"
            ) from None
    record = compute_golden_record(structure, level)
    return compare_to_golden(name, record, directory)

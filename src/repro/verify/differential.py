"""Differential-conformance harness (DESIGN §9.2).

Runs one workload across the full configuration matrix —
{execution backend} x {mapping strategy} x {comm scheme} — and
classifies every configuration's agreement with the reference:

* **bit-exact** — not one differing bit (the backends' shared
  batch-ordered math, flat reductions in rank order);
* **allclose** — floating-point summation-order noise only (different
  mapping partitions, hierarchical node-local reductions);
* **physics** — within grid-quadrature / convergence tolerance;
* **DIVERGENT** — beyond every class: a real conformance bug.

Two instruments:

1. :func:`backend_conformance` captures an ordered *phase trace* of the
   full SCF + CPSCF pipeline per backend (the same phase boundaries the
   :class:`~repro.backends.base.BackendProfile` counts) and compares
   traces pairwise.  On divergence, :func:`first_divergent_phase`
   bisects to the earliest phase whose artifacts disagree — a wrong
   polarizability is attributed to, say, ``scf/density`` rather than
   just "the end differs".
2. :func:`screening_conformance` runs the same phase-trace instrument
   along the block-sparse *screening* axis: a dense reference trace
   (threshold ``0.0``) against screened traces at requested thresholds.
   Threshold ``0.0`` must classify bit-exact (disabled screening is the
   dense code path); positive thresholds must stay within tolerance.
3. :func:`combo_conformance` composes all three axes on one physical
   quantity: per-rank partial overlap matrices built through a given
   *backend*'s basis blocks, partitioned by a given *mapping* strategy,
   synthesized by a given *comm scheme* on a fault-free simulated
   cluster, compared against the serially integrated matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.atoms.structure import Structure
from repro.config import RunSettings, get_settings
from repro.errors import VerificationError

#: Classification thresholds on the max absolute difference, tried in
#: order.  ``bit-exact`` means exactly zero.
CLASS_THRESHOLDS: Tuple[Tuple[str, float], ...] = (
    ("bit-exact", 0.0),
    ("allclose", 1e-9),
    ("physics", 1e-4),
)

DIVERGENT = "DIVERGENT"

#: Mapping strategies under test (names -> factory resolved lazily).
MAPPING_STRATEGIES = ("load_balancing", "locality")

#: Comm schemes under test.
COMM_SCHEMES = ("baseline", "packed", "packed_hierarchical")


def classify(max_abs_diff: float) -> str:
    """Tolerance class of a difference (or ``DIVERGENT``)."""
    if not np.isfinite(max_abs_diff):
        return DIVERGENT
    for name, threshold in CLASS_THRESHOLDS:
        if max_abs_diff <= threshold:
            return name
    return DIVERGENT


@dataclass
class PairResult:
    """Agreement between two configurations (or one vs the reference)."""

    axis: str  # "backend" | "backend x mapping x comm"
    a: str
    b: str
    max_abs_diff: float
    classification: str
    first_divergent_phase: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.classification != DIVERGENT


@dataclass
class ConformanceReport:
    """Everything one conformance run asserted, renderable as a table."""

    molecule: str
    level: str
    pairs: List[PairResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(p.ok for p in self.pairs)

    @property
    def failures(self) -> List[PairResult]:
        return [p for p in self.pairs if not p.ok]

    def render(self) -> str:
        from repro.utils.reports import TableFormatter

        table = TableFormatter(
            ["axis", "a", "b", "max |diff|", "class", "first divergent phase"],
            title=f"conformance matrix [{self.molecule}, level={self.level}]",
        )
        for p in self.pairs:
            table.add_row(
                [
                    p.axis,
                    p.a,
                    p.b,
                    f"{p.max_abs_diff:.3e}",
                    p.classification,
                    p.first_divergent_phase or "-",
                ]
            )
        verdict = (
            "all configurations conform"
            if self.ok
            else f"{len(self.failures)} DIVERGENT configuration(s)"
        )
        return table.render() + f"\n{verdict}"


# ----------------------------------------------------------------------
# Phase traces (backend axis)
# ----------------------------------------------------------------------
def capture_physics_trace(
    structure: Structure,
    settings: Optional[RunSettings] = None,
    backend=None,
) -> "Dict[str, np.ndarray]":
    """Ordered phase -> artifact map of one full SCF + CPSCF run.

    Keys follow the drivers' phase boundaries in execution order
    (``integrals/*``, ``scf/*``, ``cpscf{j}/*``, ``polarizability``), so
    comparing two traces in key order *is* a bisection over phases.
    """
    from repro.dft.scf import SCFDriver
    from repro.dfpt.response import DFPTSolver

    settings = settings or get_settings("minimal")
    driver = SCFDriver(structure, settings, backend=backend)
    trace: Dict[str, np.ndarray] = {}
    trace["integrals/overlap"] = driver._s
    trace["integrals/kinetic"] = driver._t
    trace["integrals/dipoles"] = driver._dipoles
    gs = driver.run()
    trace["scf/density_matrix"] = gs.density_matrix
    trace["scf/density"] = gs.density
    trace["scf/eigenvalues"] = gs.eigenvalues
    trace["scf/total_energy"] = np.array(gs.total_energy)
    solver = DFPTSolver(gs, settings.cpscf)
    alpha = np.empty((3, 3))
    for j in range(3):
        result = solver.solve_direction(j)
        trace[f"cpscf{j}/response_density_matrix"] = result.response_density_matrix
        trace[f"cpscf{j}/response_density"] = result.response_density
        alpha[:, j] = result.polarizability_column(gs.dipoles)
    trace["polarizability"] = alpha
    return trace


def first_divergent_phase(
    trace_a: "Dict[str, np.ndarray]",
    trace_b: "Dict[str, np.ndarray]",
    threshold: float = CLASS_THRESHOLDS[-1][1],
) -> Optional[Tuple[str, float]]:
    """Earliest phase whose artifacts differ beyond *threshold*.

    Returns ``(phase, max_abs_diff)`` or ``None`` if every phase is
    within the threshold.  Traces must share their key sequence (they do
    when captured by :func:`capture_physics_trace` on one workload).
    """
    if list(trace_a) != list(trace_b):
        raise VerificationError(
            "phase traces do not cover the same phases; "
            f"{sorted(set(trace_a) ^ set(trace_b))} differ"
        )
    for name in trace_a:
        a, b = trace_a[name], trace_b[name]
        if a.shape != b.shape:
            return name, float("inf")
        diff = float(np.abs(a - b).max()) if a.size else 0.0
        if diff > threshold:
            return name, diff
    return None


def backend_conformance(
    structure: Structure,
    settings: Optional[RunSettings] = None,
    backends: Optional[Sequence[str]] = None,
) -> List[PairResult]:
    """Pairwise end-to-end agreement of the execution backends."""
    from repro.backends import available_backends

    settings = settings or get_settings("minimal")
    names = list(backends) if backends is not None else list(available_backends())
    traces = {
        name: capture_physics_trace(structure, settings, backend=name)
        for name in names
    }
    pairs: List[PairResult] = []
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            diff = max(
                float(np.abs(traces[a][k] - traces[b][k]).max())
                for k in traces[a]
            )
            cls = classify(diff)
            divergence = None
            if cls == DIVERGENT:
                hit = first_divergent_phase(traces[a], traces[b])
                divergence = hit[0] if hit else None
            pairs.append(
                PairResult(
                    axis="backend",
                    a=a,
                    b=b,
                    max_abs_diff=diff,
                    classification=cls,
                    first_divergent_phase=divergence,
                )
            )
    return pairs


# ----------------------------------------------------------------------
# The screening axis (dense vs block-sparse traces)
# ----------------------------------------------------------------------
def screening_conformance(
    structure: Structure,
    settings: Optional[RunSettings] = None,
    thresholds: Optional[Sequence[float]] = None,
    backend: Optional[str] = None,
) -> List[PairResult]:
    """Dense-vs-screened phase traces, one row per threshold.

    The dense reference trace runs with ``screening_threshold = 0.0``
    (no pattern, the exact pre-screening code path).  Each requested
    threshold reruns the full pipeline with screening enabled and
    classifies its agreement with the dense trace:

    * threshold ``0.0`` must classify **bit-exact** — disabled
      screening *is* the dense code path, so any difference is a
      determinism bug, not a screening bug;
    * positive thresholds land in ``allclose``/``physics`` (dropped
      sub-threshold tails plus BLAS summation-grouping noise on the
      compact blocks);
    * ``DIVERGENT`` rows are bisected to the first broken phase, so an
      overscreened pattern is attributed to e.g. ``scf/density`` rather
      than "the polarizability differs".
    """
    from dataclasses import replace

    from repro.grids.sparsity import DEFAULT_SCREENING_THRESHOLD

    settings = settings or get_settings("minimal")
    if thresholds is None:
        thresholds = (0.0, DEFAULT_SCREENING_THRESHOLD)
    dense = capture_physics_trace(
        structure, replace(settings, screening_threshold=0.0), backend=backend
    )
    pairs: List[PairResult] = []
    for t in thresholds:
        t = float(t)
        trace = capture_physics_trace(
            structure, replace(settings, screening_threshold=t), backend=backend
        )
        diff = max(float(np.abs(dense[k] - trace[k]).max()) for k in dense)
        cls = classify(diff)
        divergence = None
        if cls == DIVERGENT:
            hit = first_divergent_phase(dense, trace)
            divergence = hit[0] if hit else None
        pairs.append(
            PairResult(
                axis="screening",
                a="dense",
                b=f"screened @ {t:g}",
                max_abs_diff=diff,
                classification=cls,
                first_divergent_phase=divergence,
            )
        )
    return pairs


# ----------------------------------------------------------------------
# The backend x mapping x comm matrix
# ----------------------------------------------------------------------
def _mapping_fn(name: str):
    from repro.mapping.strategies import (
        load_balancing_mapping,
        locality_enhancing_mapping,
    )

    table = {
        "load_balancing": load_balancing_mapping,
        "locality": locality_enhancing_mapping,
    }
    try:
        return table[name]
    except KeyError:
        raise VerificationError(
            f"unknown mapping strategy {name!r}; expected {sorted(table)}"
        ) from None


def _comm_scheme(name: str):
    from repro.comm.schemes import (
        BaselineRowwiseAllreduce,
        PackedAllreduce,
        PackedHierarchicalAllreduce,
    )

    table = {
        "baseline": BaselineRowwiseAllreduce,
        "packed": PackedAllreduce,
        "packed_hierarchical": PackedHierarchicalAllreduce,
    }
    try:
        return table[name]()
    except KeyError:
        raise VerificationError(
            f"unknown comm scheme {name!r}; expected {sorted(table)}"
        ) from None


def _validate_partition(assignment, n_batches: int) -> None:
    """Every batch on exactly one rank — a mapping correctness gate."""
    seen = sorted(
        b for owned in assignment.batches_of_rank for b in owned
    )
    if seen != list(range(n_batches)):
        raise VerificationError(
            f"mapping {assignment.strategy!r} is not a partition: "
            f"{len(seen)} assignments for {n_batches} batches"
        )


def combo_conformance(
    structure: Structure,
    settings: Optional[RunSettings] = None,
    backends: Optional[Sequence[str]] = None,
    mappings: Sequence[str] = MAPPING_STRATEGIES,
    comms: Sequence[str] = COMM_SCHEMES,
    n_ranks: int = 4,
) -> List[PairResult]:
    """One row per (backend, mapping, comm) configuration.

    The probe quantity is the overlap matrix: each rank integrates the
    partial S over the batches its mapping assigned to it (basis blocks
    served by the backend under test), the comm scheme synthesizes the
    per-rank partials on a fault-free cluster, and the result is
    compared to the serially batch-ordered reference integration.
    """
    from repro.backends import available_backends
    from repro.backends.base import potential_block
    from repro.basis.basis_set import build_basis
    from repro.dft.hamiltonian import MatrixBuilder
    from repro.grids.atom_grid import build_grid
    from repro.testing.fixtures import make_cluster

    settings = settings or get_settings("minimal")
    backend_names = (
        list(backends) if backends is not None else list(available_backends())
    )
    basis = build_basis(structure)
    grid = build_grid(structure, settings.grids, with_partition=True)
    weights = grid.weights

    pairs: List[PairResult] = []
    reference: Optional[np.ndarray] = None
    for backend_name in backend_names:
        builder = MatrixBuilder(basis, grid, backend=backend_name)
        if reference is None:
            reference = builder.reference_potential_matrix(
                np.ones(grid.n_points)
            )
        n_batches = len(builder.batches)
        if n_batches < n_ranks:
            raise VerificationError(
                f"{n_batches} batches cannot feed {n_ranks} ranks; "
                "lower n_ranks for this workload"
            )
        for mapping_name in mappings:
            assignment = _mapping_fn(mapping_name)(builder.batches, n_ranks)
            _validate_partition(assignment, n_batches)
            per_rank = []
            for owned in assignment.batches_of_rank:
                partial = np.zeros((basis.n_basis, basis.n_basis))
                for b in owned:
                    batch = builder.batches[b]
                    partial += potential_block(
                        builder.backend.basis_block(batch),
                        weights[batch.point_indices],
                    )
                per_rank.append(partial)
            for comm_name in comms:
                cluster = make_cluster(n_ranks)
                reduced, _ = _comm_scheme(comm_name).reduce(cluster, per_rank)
                diff = float(np.abs(reduced - reference).max())
                pairs.append(
                    PairResult(
                        axis="backend x mapping x comm",
                        a=f"{backend_name} x {mapping_name} x {comm_name}",
                        b="serial reference",
                        max_abs_diff=diff,
                        classification=classify(diff),
                    )
                )
    return pairs


def run_conformance(
    structure: Structure,
    level: str = "minimal",
    backends: Optional[Sequence[str]] = None,
    mappings: Sequence[str] = MAPPING_STRATEGIES,
    comms: Sequence[str] = COMM_SCHEMES,
    n_ranks: int = 4,
    name: Optional[str] = None,
    screenings: Optional[Sequence[float]] = None,
) -> ConformanceReport:
    """The full conformance matrix for one workload.

    ``screenings`` selects the thresholds for the screening axis
    (default: ``0.0`` plus the default screening threshold); pass an
    empty sequence to skip the axis.
    """
    settings = get_settings(level)
    report = ConformanceReport(molecule=name or structure.name, level=level)
    report.pairs.extend(backend_conformance(structure, settings, backends))
    if screenings is None or len(screenings) > 0:
        report.pairs.extend(
            screening_conformance(structure, settings, thresholds=screenings)
        )
    report.pairs.extend(
        combo_conformance(
            structure, settings, backends, mappings, comms, n_ranks
        )
    )
    return report

"""Deliberately seeded bugs — the mutation smoke tests' test-only hook.

Each named mutation reproduces a class of real porting bug the paper's
validation methodology (and this repo's invariant registry) must catch:

======================== ==============================================
``transposed_gather_map`` the batch's point rows arrive in reversed
                          (gather-transposed) order, misaligning basis
                          values with quadrature weights
``dropped_batch``         one batch's contribution silently vanishes
                          from every contraction
``stale_dm_snapshot``     the Sumup phase keeps using the first density
                          matrix it ever saw
``wrong_xc_sign``         the CPSCF response potential carries
                          ``-f_xc n^(1)`` instead of ``+f_xc n^(1)``
``off_by_one_batch_slice`` the batch's basis block is shifted by one
                          point row (first row lost, last duplicated)
``overscreened_block``    the screening pattern wrongly drops every
                          function of one batch's first owner atom
======================== ==============================================

The first four backend-level mutations are applied by running a driver
with a :class:`MutantBackend`; ``wrong_xc_sign`` lives in the CPSCF
solver's cached kernel and is applied to a live solver with
:func:`flip_xc_kernel_sign`.  Nothing here is imported by production
code paths — it exists so tests can prove the checks have teeth.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backends.numpy_backend import NumpyBackend
from repro.errors import VerificationError
from repro.grids.batching import GridBatch

#: Every seeded mutation and the bug class it models.
MUTATIONS = {
    "transposed_gather_map": "batch basis rows in reversed gather order",
    "dropped_batch": "the last grid batch contributes nothing",
    "stale_dm_snapshot": "Sumup reuses the first density matrix forever",
    "wrong_xc_sign": "CPSCF response potential uses -f_xc * n1",
    "off_by_one_batch_slice": "basis block shifted one point row",
    "overscreened_block": "screening drops one batch's first atom's functions",
}

#: Mutations implemented as a broken execution backend.
BACKEND_MUTATIONS = (
    "transposed_gather_map",
    "dropped_batch",
    "stale_dm_snapshot",
    "off_by_one_batch_slice",
    "overscreened_block",
)

#: Backend mutations that only bite when block-sparse screening is on
#: (they corrupt the *active* block path; a dense run never calls it).
SCREENING_MUTATIONS = ("overscreened_block",)


class MutantBackend(NumpyBackend):
    """A reference backend with exactly one seeded bug.

    Not registered in the backend registry — pass an instance directly
    as the ``backend=`` argument of a driver under test.
    """

    name = "mutant"

    def __init__(self, mutation: str) -> None:
        if mutation not in BACKEND_MUTATIONS:
            raise VerificationError(
                f"unknown backend mutation {mutation!r}; "
                f"expected one of {BACKEND_MUTATIONS}"
            )
        super().__init__()
        self.mutation = mutation
        self._stale_dm: Optional[np.ndarray] = None

    def basis_block(self, batch: GridBatch) -> np.ndarray:
        block = super().basis_block(batch)
        if self.mutation == "transposed_gather_map":
            return block[::-1]
        if self.mutation == "off_by_one_batch_slice" and block.shape[0] > 1:
            return np.vstack([block[1:], block[-1:]])
        if (
            self.mutation == "dropped_batch"
            and batch.index == len(self._require_bound().batches) - 1
        ):
            return np.zeros_like(block)
        return block

    def basis_block_active(self, batch: GridBatch) -> np.ndarray:
        block = super().basis_block_active(batch)
        if self.mutation == "overscreened_block" and batch.index == 0:
            builder = self._require_bound()
            act = builder.pattern.active_functions[0]
            if act.size:
                owner = int(builder.basis.function_atoms[act[0]])
                block = block.copy()
                block[:, builder.basis.function_atoms[act] == owner] = 0.0
        return block

    def density_on_grid(self, density_matrix: np.ndarray) -> np.ndarray:
        if self.mutation == "stale_dm_snapshot":
            if self._stale_dm is None:
                self._stale_dm = np.array(density_matrix, dtype=float, copy=True)
            density_matrix = self._stale_dm
        return super().density_on_grid(density_matrix)


def mutant_backend(mutation: str) -> MutantBackend:
    """Instantiate the broken backend for one backend-level mutation."""
    return MutantBackend(mutation)


def flip_xc_kernel_sign(solver) -> None:
    """Apply ``wrong_xc_sign`` to a live :class:`~repro.dfpt.response.DFPTSolver`."""
    solver._fxc = -solver._fxc

"""The physics-invariant registry (DESIGN §9.1).

Every check is a named :class:`Invariant` attached to one *phase
boundary* (``integrals``, ``scf``, ``cpscf``, ``polarizability``) with a
cost tier and a tolerance class:

========== ===========================================================
cost       when it runs
========== ===========================================================
``cheap``  at ``RunSettings.verify = "cheap"`` and above — O(n_basis^2)
           algebra on matrices the driver already holds
``full``   only at ``"full"`` — re-derives quantities through an
           independent path (fresh basis evaluation, Hartree rebuild,
           far-field Gauss law), the checks that catch a *consistently
           wrong* backend
========== ===========================================================

========== ===========================================================
class      meaning of the tolerance
========== ===========================================================
bit-exact  the residual must be exactly zero (the quantity is built so
           floating point cannot break it, e.g. symmetrized matrices)
allclose   numerical noise only (eigensolver orthonormality, summation
           order): tolerances ~1e-6..1e-12
physics    limited by grid quadrature / iterative convergence, not by
           arithmetic: tolerances ~1e-4..1e-2
========== ===========================================================

A check is a function ``fn(ctx) -> residual`` (optionally
``(residual, detail)``); it *passes* when ``residual <= tolerance``.
Checks that raise are recorded as failures with an infinite residual —
a verification layer must never turn a wrong answer into a crash it
cannot attribute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import VerificationError

#: Verification levels, in increasing strictness.
VERIFY_LEVELS = ("off", "cheap", "full")

#: Tolerance classes (see module docstring).
BIT_EXACT = "bit-exact"
ALLCLOSE = "allclose"
PHYSICS = "physics"
TOLERANCE_CLASSES = (BIT_EXACT, ALLCLOSE, PHYSICS)

#: Phase boundaries invariants may attach to.
PHASES = ("integrals", "scf", "cpscf", "polarizability")


class CheckContext:
    """Loose bag of per-phase quantities handed to invariant functions.

    Attribute access raises a clear :class:`VerificationError` for
    anything the calling driver did not supply, so a misattached check
    fails with its own name in the message instead of an AttributeError.
    """

    def __init__(self, **kwargs) -> None:
        self._fields = dict(kwargs)

    def __getattr__(self, name: str):
        try:
            return self._fields[name]
        except KeyError:
            raise VerificationError(
                f"invariant context is missing {name!r}; "
                f"available: {sorted(self._fields)}"
            ) from None


@dataclass(frozen=True)
class Invariant:
    """One named, tolerance-tagged physics check."""

    name: str
    phase: str
    cost: str  # "cheap" | "full"
    tol_class: str
    tolerance: float
    description: str
    fn: Callable[[CheckContext], Union[float, Tuple[float, str]]]


@dataclass
class InvariantResult:
    """Outcome of one invariant evaluation (or one golden-field compare)."""

    name: str
    phase: str
    tol_class: str
    residual: float
    tolerance: float
    passed: bool
    detail: str = ""

    @property
    def status(self) -> str:
        return "ok" if self.passed else "FAIL"


@dataclass
class VerifyReport:
    """Accumulated pass/fail/residual record of one verified run."""

    level: str
    results: List[InvariantResult] = field(default_factory=list)

    def add(self, result: InvariantResult) -> None:
        self.results.append(result)

    def extend(self, other: "VerifyReport") -> None:
        self.results.extend(other.results)

    @property
    def failures(self) -> List[InvariantResult]:
        return [r for r in self.results if not r.passed]

    @property
    def failed_names(self) -> List[str]:
        return [r.name for r in self.failures]

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        from repro.utils.reports import format_verify_report

        return format_verify_report(self)

    def raise_on_failure(self) -> None:
        """Raise :class:`VerificationError` naming every failed check."""
        if self.failures:
            names = ", ".join(
                f"{r.name} (residual {r.residual:.3g} > {r.tolerance:.3g})"
                for r in self.failures
            )
            raise VerificationError(
                f"{len(self.failures)} invariant(s) failed: {names}"
            )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Invariant] = {}


def invariant(
    name: str,
    *,
    phase: str,
    cost: str,
    tol_class: str,
    tolerance: float,
    description: str,
) -> Callable:
    """Decorator registering a check under *name*."""
    if phase not in PHASES:
        raise VerificationError(f"unknown phase {phase!r}; expected one of {PHASES}")
    if cost not in ("cheap", "full"):
        raise VerificationError(f"cost must be 'cheap' or 'full', got {cost!r}")
    if tol_class not in TOLERANCE_CLASSES:
        raise VerificationError(
            f"unknown tolerance class {tol_class!r}; expected {TOLERANCE_CLASSES}"
        )
    if tol_class == BIT_EXACT and tolerance != 0.0:
        raise VerificationError(f"bit-exact checks need tolerance 0, got {tolerance}")

    def decorator(fn: Callable) -> Callable:
        if name in _REGISTRY:
            raise VerificationError(f"invariant {name!r} registered twice")
        _REGISTRY[name] = Invariant(
            name=name,
            phase=phase,
            cost=cost,
            tol_class=tol_class,
            tolerance=tolerance,
            description=description,
            fn=fn,
        )
        return fn

    return decorator


def all_invariants() -> Tuple[Invariant, ...]:
    """Every registered invariant, in registration order."""
    return tuple(_REGISTRY.values())


def invariants_for(phase: str, level: str = "full") -> Tuple[Invariant, ...]:
    """Invariants of one phase active at one verification level."""
    if level not in VERIFY_LEVELS:
        raise VerificationError(
            f"unknown verify level {level!r}; expected one of {VERIFY_LEVELS}"
        )
    if level == "off":
        return ()
    return tuple(
        inv
        for inv in _REGISTRY.values()
        if inv.phase == phase and (inv.cost == "cheap" or level == "full")
    )


class Verifier:
    """Runs the registered invariants at one level, accumulating a report.

    Drivers hold at most one; :meth:`run_phase` is their single entry
    point. ``Verifier.from_level("off")`` returns ``None`` so the hot
    path stays a plain ``if verifier is not None`` with zero overhead.
    """

    def __init__(self, level: str = "cheap") -> None:
        if level not in VERIFY_LEVELS or level == "off":
            raise VerificationError(
                f"Verifier level must be 'cheap' or 'full', got {level!r}"
            )
        self.level = level
        self.report = VerifyReport(level=level)

    @classmethod
    def from_level(cls, level: str) -> Optional["Verifier"]:
        if level not in VERIFY_LEVELS:
            raise VerificationError(
                f"unknown verify level {level!r}; expected one of {VERIFY_LEVELS}"
            )
        return None if level == "off" else cls(level)

    def run_phase(self, phase: str, **context) -> List[InvariantResult]:
        """Evaluate every active invariant of *phase* against *context*."""
        ctx = CheckContext(**context)
        out: List[InvariantResult] = []
        for inv in invariants_for(phase, self.level):
            detail = ""
            try:
                value = inv.fn(ctx)
                if isinstance(value, tuple):
                    residual, detail = float(value[0]), str(value[1])
                else:
                    residual = float(value)
            except Exception as exc:  # noqa: BLE001 - see module docstring
                residual = float("inf")
                detail = f"check raised {type(exc).__name__}: {exc}"
            result = InvariantResult(
                name=inv.name,
                phase=inv.phase,
                tol_class=inv.tol_class,
                residual=residual,
                tolerance=inv.tolerance,
                passed=residual <= inv.tolerance,
                detail=detail,
            )
            self.report.add(result)
            out.append(result)
        return out


# ----------------------------------------------------------------------
# Integrals-phase invariants (density-independent matrices)
# ----------------------------------------------------------------------
@invariant(
    "overlap_hermitian",
    phase="integrals",
    cost="cheap",
    tol_class=BIT_EXACT,
    tolerance=0.0,
    description="S = S^T (symmetrized on construction)",
)
def _overlap_hermitian(ctx: CheckContext) -> float:
    s = ctx.overlap
    return float(np.abs(s - s.T).max())


@invariant(
    "overlap_positive_definite",
    phase="integrals",
    cost="cheap",
    tol_class=ALLCLOSE,
    tolerance=1e-12,
    description="smallest eigenvalue of S is positive (basis not collapsed)",
)
def _overlap_positive_definite(ctx: CheckContext) -> Tuple[float, str]:
    min_eig = float(np.linalg.eigvalsh(ctx.overlap).min())
    return max(0.0, -min_eig), f"min eig(S) = {min_eig:.3e}"


@invariant(
    "dipole_hermitian",
    phase="integrals",
    cost="cheap",
    tol_class=BIT_EXACT,
    tolerance=0.0,
    description="each dipole matrix D_J is symmetric",
)
def _dipole_hermitian(ctx: CheckContext) -> float:
    d = ctx.dipoles
    return float(max(np.abs(d[j] - d[j].T).max() for j in range(d.shape[0])))


# ----------------------------------------------------------------------
# SCF-phase invariants (converged ground state)
# ----------------------------------------------------------------------
@invariant(
    "hamiltonian_hermitian",
    phase="scf",
    cost="cheap",
    tol_class=BIT_EXACT,
    tolerance=0.0,
    description="the converged Kohn-Sham Hamiltonian is symmetric",
)
def _hamiltonian_hermitian(ctx: CheckContext) -> float:
    h = ctx.hamiltonian
    return float(np.abs(h - h.T).max())


@invariant(
    "dm_hermitian",
    phase="scf",
    cost="cheap",
    tol_class=BIT_EXACT,
    tolerance=0.0,
    description="P = P^T (C f C^T construction)",
)
def _dm_hermitian(ctx: CheckContext) -> float:
    p = ctx.gs.density_matrix
    return float(np.abs(p - p.T).max())


@invariant(
    "dm_trace",
    phase="scf",
    cost="cheap",
    tol_class=ALLCLOSE,
    tolerance=1e-8,
    description="Tr(P S) = N_electrons",
)
def _dm_trace(ctx: CheckContext) -> Tuple[float, str]:
    tr = float(np.sum(ctx.gs.density_matrix * ctx.gs.overlap.T))
    return abs(tr - ctx.n_electrons), f"Tr(PS) = {tr:.12g}"


@invariant(
    "dm_idempotent",
    phase="scf",
    cost="cheap",
    tol_class=ALLCLOSE,
    tolerance=1e-8,
    description="closed-shell idempotency P S P = 2 P",
)
def _dm_idempotent(ctx: CheckContext) -> float:
    p, s = ctx.gs.density_matrix, ctx.gs.overlap
    return float(np.abs(p @ s @ p - 2.0 * p).max())


@invariant(
    "density_nonnegative",
    phase="scf",
    cost="cheap",
    tol_class=ALLCLOSE,
    tolerance=1e-12,
    description="the grid density is nowhere negative",
)
def _density_nonnegative(ctx: CheckContext) -> Tuple[float, str]:
    min_n = float(ctx.gs.density.min())
    return max(0.0, -min_n), f"min n(r) = {min_n:.3e}"


@invariant(
    "charge_integration",
    phase="scf",
    cost="cheap",
    tol_class=PHYSICS,
    tolerance=1e-6,
    description="integral of n(r) over the grid equals N_electrons",
)
def _charge_integration(ctx: CheckContext) -> Tuple[float, str]:
    gs = ctx.gs
    q = float(np.sum(gs.grid.weights * gs.density))
    return abs(q - ctx.n_electrons), f"int n = {q:.12g}"


@invariant(
    "scf_stationarity",
    phase="scf",
    cost="full",
    tol_class=ALLCLOSE,
    tolerance=1e-6,
    description="[H[n], P]_S = 0 with H rebuilt from the converged density",
)
def _scf_stationarity(ctx: CheckContext) -> float:
    from repro.dft.xc import lda_exchange_correlation

    gs = ctx.gs
    v_h = gs.solver.hartree_potential(gs.density)
    xc = lda_exchange_correlation(gs.density)
    h = ctx.h_static + gs.builder.reference_potential_matrix(v_h + xc.vxc)
    p, s = gs.density_matrix, gs.overlap
    return float(np.abs(h @ p @ s - s @ p @ h).max())


@invariant(
    "density_consistency",
    phase="scf",
    cost="full",
    tol_class=ALLCLOSE,
    tolerance=1e-10,
    description="backend grid density matches a fresh reference evaluation",
)
def _density_consistency(ctx: CheckContext) -> float:
    gs = ctx.gs
    reference = gs.builder.reference_density(gs.density_matrix)
    return float(np.abs(gs.density - reference).max())


@invariant(
    "screening_vs_dense",
    phase="scf",
    cost="full",
    tol_class=PHYSICS,
    tolerance=5e-5,
    description="screened grid density matches the fully dense reference",
)
def _screening_vs_dense(ctx: CheckContext) -> Tuple[float, str]:
    # The one invariant that crosses the screening seam: every other
    # full-tier check re-derives through ``screened=True`` references
    # (bit-tight against an honest screened backend), while this one
    # forces the *dense* derivation — so a pattern that wrongly drops a
    # non-negligible block shows up as a density defect, not as two
    # consistently-wrong screened quantities agreeing with each other.
    gs = ctx.gs
    pattern = gs.builder.pattern
    if pattern is None:
        return 0.0, "screening disabled (dense run)"
    dense = gs.builder.reference_density(gs.density_matrix, screened=False)
    residual = float(np.abs(gs.density - dense).max())
    return residual, (
        f"threshold = {gs.builder.screening_threshold:g}, "
        f"fill = {pattern.stats.fill_fraction:.3f}"
    )


@invariant(
    "gauss_law_monopole",
    phase="scf",
    cost="full",
    tol_class=PHYSICS,
    tolerance=2e-2,
    description="far-field Hartree potential obeys Gauss's law (v ~ N/r)",
)
def _gauss_law_monopole(ctx: CheckContext) -> Tuple[float, str]:
    gs = ctx.gs
    n_elec = float(ctx.n_electrons)
    structure = gs.structure
    center = np.average(
        structure.coords, axis=0, weights=structure.nuclear_charges
    )
    expansion = gs.solver.solve(gs.solver.expand(gs.density))
    radius = 25.0 + float(np.abs(structure.coords - center).max())
    directions = np.array(
        [[1, 0, 0], [0, 1, 0], [0, 0, 1], [-1, 0, 0], [0, -1, 0], [0, 0, -1]],
        dtype=float,
    )
    points = center[None, :] + radius * directions
    v = gs.solver.evaluate(expansion, points=points)
    rel = np.abs(v * radius / n_elec - 1.0)
    return float(rel.max()), f"max |v r / N - 1| at r = {radius:.1f} Bohr"


# ----------------------------------------------------------------------
# CPSCF-phase invariants (one converged response direction)
# ----------------------------------------------------------------------
@invariant(
    "h1_hermitian",
    phase="cpscf",
    cost="cheap",
    tol_class=BIT_EXACT,
    tolerance=0.0,
    description="the response Hamiltonian H^(1) is symmetric",
)
def _h1_hermitian(ctx: CheckContext) -> float:
    h1 = ctx.h1
    return float(np.abs(h1 - h1.T).max())


@invariant(
    "p1_hermitian",
    phase="cpscf",
    cost="cheap",
    tol_class=BIT_EXACT,
    tolerance=0.0,
    description="P^(1) = P^(1)^T (Eq. 7 construction)",
)
def _p1_hermitian(ctx: CheckContext) -> float:
    p1 = ctx.p1
    return float(np.abs(p1 - p1.T).max())


@invariant(
    "p1_traceless",
    phase="cpscf",
    cost="cheap",
    tol_class=ALLCLOSE,
    tolerance=1e-8,
    description="Tr(P^(1) S) = 0: a field moves no charge in or out",
)
def _p1_traceless(ctx: CheckContext) -> float:
    return abs(float(np.sum(ctx.p1 * ctx.gs.overlap.T)))


@invariant(
    "p1_idempotency_derivative",
    phase="cpscf",
    cost="cheap",
    tol_class=ALLCLOSE,
    tolerance=1e-8,
    description="P S P^(1) + P^(1) S P = 2 P^(1) (derivative of P S P = 2P)",
)
def _p1_idempotency_derivative(ctx: CheckContext) -> float:
    gs = ctx.gs
    p, s, p1 = gs.density_matrix, gs.overlap, ctx.p1
    return float(np.abs(p @ s @ p1 + p1 @ s @ p - 2.0 * p1).max())


@invariant(
    "cpscf_stationarity",
    phase="cpscf",
    cost="full",
    tol_class=PHYSICS,
    tolerance=1e-4,
    description="one independently recomputed CPSCF cycle leaves P^(1) fixed",
)
def _cpscf_stationarity(ctx: CheckContext) -> float:
    from repro.backends.base import first_order_dm_dense
    from repro.constants import EIGENVALUE_GAP_FLOOR
    from repro.dft.xc import lda_xc_kernel

    gs = ctx.gs
    p1 = ctx.p1
    builder = gs.builder
    # Everything below is re-derived from ground-state data through the
    # reference (backend-free) path, so a bug in the solver's cached
    # kernel, its backend or its mixing shows up as a violated fixed
    # point rather than being replayed.
    n1 = builder.reference_density(p1)
    v1 = gs.solver.hartree_potential(n1) + lda_xc_kernel(gs.density) * n1
    h1 = -gs.dipoles[ctx.direction] + builder.reference_potential_matrix(v1)

    occ = gs.occupations > 0.0
    c_occ = gs.orbitals[:, occ]
    c_virt = gs.orbitals[:, ~occ]
    gaps = gs.eigenvalues[occ][None, :] - gs.eigenvalues[~occ][:, None]
    gaps = np.where(np.abs(gaps) < EIGENVALUE_GAP_FLOOR, -EIGENVALUE_GAP_FLOOR, gaps)
    _, _, p1_new = first_order_dm_dense(
        h1, 1.0 / gaps, c_occ, c_virt, gs.occupations[occ]
    )
    return float(np.abs(p1_new - p1).max())


# ----------------------------------------------------------------------
# Polarizability invariants
# ----------------------------------------------------------------------
@invariant(
    "polarizability_symmetric",
    phase="polarizability",
    cost="cheap",
    tol_class=PHYSICS,
    tolerance=1e-3,
    description="alpha_IJ = alpha_JI (relative to the largest element)",
)
def _polarizability_symmetric(ctx: CheckContext) -> float:
    alpha = ctx.polarizability
    scale = max(1.0, float(np.abs(alpha).max()))
    return float(np.abs(alpha - alpha.T).max()) / scale

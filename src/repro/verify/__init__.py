"""Physics-invariant verification and differential conformance.

The repo's correctness story in one place (DESIGN §9):

* :mod:`repro.verify.invariants` — a registry of named, tolerance-tagged
  physics checks (Hermiticity, idempotency, charge conservation, Gauss
  law, CPSCF stationarity...) that the SCF/CPSCF drivers run at phase
  boundaries when ``RunSettings.verify`` is ``"cheap"`` or ``"full"``.
* :mod:`repro.verify.differential` — the conformance harness: one
  workload across the {backend} x {mapping} x {comm-scheme} matrix plus
  the block-sparse {screening} axis (dense vs screened traces), every
  configuration classified as bit-exact / tolerance-class / divergent,
  with divergences bisected to the first differing phase.
* :mod:`repro.verify.golden` — tolerance-aware ``.npz`` golden
  snapshots of H2/H2O energies, matrices and polarizabilities, guarded
  against silent regeneration.
* :mod:`repro.verify.mutations` — deliberately seeded bugs proving the
  invariants have teeth (used by the mutation smoke tests).

CLI: ``python -m repro verify`` (and ``make verify``).
"""

from repro.verify.differential import (
    ConformanceReport,
    PairResult,
    capture_physics_trace,
    classify,
    first_divergent_phase,
    run_conformance,
    screening_conformance,
)
from repro.verify.golden import (
    GOLDEN_MOLECULES,
    compare_to_golden,
    compute_golden_record,
    golden_path,
    load_golden,
    record_from_run,
    save_golden,
    verify_golden,
)
from repro.verify.invariants import (
    InvariantResult,
    Verifier,
    VerifyReport,
    all_invariants,
    invariants_for,
)
from repro.verify.mutations import MUTATIONS, MutantBackend, flip_xc_kernel_sign

__all__ = [
    "ConformanceReport",
    "GOLDEN_MOLECULES",
    "InvariantResult",
    "MUTATIONS",
    "MutantBackend",
    "PairResult",
    "Verifier",
    "VerifyReport",
    "all_invariants",
    "capture_physics_trace",
    "classify",
    "compare_to_golden",
    "compute_golden_record",
    "first_divergent_phase",
    "flip_xc_kernel_sign",
    "golden_path",
    "invariants_for",
    "load_golden",
    "record_from_run",
    "run_conformance",
    "save_golden",
    "screening_conformance",
    "verify_golden",
]

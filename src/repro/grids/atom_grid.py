"""The structure-wide integration grid (Fig. 2).

One radial-spherical point cloud per atom, concatenated into flat arrays
(positions, owning atom, shell index, quadrature weight).  Becke
partition weights are folded in on request — geometry-only consumers
(batching and the scale experiments) skip that cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.atoms.structure import Structure
from repro.config import GridSettings
from repro.errors import GridError
from repro.grids.angular import AngularRule, angular_rule
from repro.grids.partition import becke_weights
from repro.grids.shells import RadialShells, radial_shells_for_species


@dataclass
class IntegrationGrid:
    """Flat arrays describing every grid point of a structure.

    Attributes
    ----------
    structure:
        The owning molecular system.
    points:
        ``(n, 3)`` point coordinates (Bohr).
    atom_index:
        Owning atom of each point.
    shell_index:
        Radial shell (within the owning atom) of each point.
    quadrature_weights:
        ``w_rad * w_ang`` product weights (no partitioning).
    angular_weights:
        Pure angular weight of each point (sums to 4 pi per shell);
        needed by the multipole projection of the Hartree solver.
    shell_radii:
        Radial shell table per atom (list indexed by atom id) — the
        abscissae on which ``rho_multipole`` is tabulated.
    partition_weights:
        Becke weights; ``None`` until :meth:`compute_partition_weights`.
    """

    structure: Structure
    points: np.ndarray
    atom_index: np.ndarray
    shell_index: np.ndarray
    quadrature_weights: np.ndarray
    angular_weights: np.ndarray
    shell_radii: list
    settings: GridSettings
    partition_weights: Optional[np.ndarray] = field(default=None)

    @property
    def n_points(self) -> int:
        return self.points.shape[0]

    @property
    def weights(self) -> np.ndarray:
        """Full integration weights (quadrature x partition).

        Requires partition weights; call :meth:`compute_partition_weights`
        first (physics paths do; geometry-only paths never need this).
        """
        if self.partition_weights is None:
            raise GridError(
                "partition weights not computed; call compute_partition_weights()"
            )
        return self.quadrature_weights * self.partition_weights

    def compute_partition_weights(self) -> np.ndarray:
        """Compute (once) and return the Becke partition weights."""
        if self.partition_weights is None:
            w = np.empty(self.n_points)
            for atom in range(self.structure.n_atoms):
                sel = self.atom_index == atom
                w[sel] = becke_weights(
                    self.structure,
                    self.points[sel],
                    atom,
                    smoothing=self.settings.becke_smoothing,
                )
            self.partition_weights = w
        return self.partition_weights

    def integrate(self, values: np.ndarray) -> np.ndarray:
        """Integrate point-sampled values over all space."""
        values = np.asarray(values)
        if values.shape[0] != self.n_points:
            raise GridError(
                f"{values.shape[0]} samples for a {self.n_points}-point grid"
            )
        w = self.weights
        return np.tensordot(w, values, axes=(0, 0))

    def points_of_atom(self, atom: int) -> np.ndarray:
        """Indices of the points owned by one atom."""
        return np.nonzero(self.atom_index == atom)[0]


def build_grid(
    structure: Structure,
    settings: GridSettings,
    with_partition: bool = False,
) -> IntegrationGrid:
    """Construct the atom-centered integration grid for a structure.

    Parameters
    ----------
    structure:
        The molecular system.
    settings:
        Grid-resolution knobs (radial base count, angular points, ...).
    with_partition:
        Compute Becke weights eagerly (physics runs need them; pure
        geometry/batching studies should leave this off).
    """
    rule: AngularRule = angular_rule(settings.n_angular)

    # One radial mesh per species (cached by z).
    shells_by_z: Dict[int, RadialShells] = {}
    pts_list = []
    atom_list = []
    shell_list = []
    wq_list = []
    wang_list = []
    shell_radii = []
    for atom, elem in enumerate(structure.elements):
        if elem.z not in shells_by_z:
            shells_by_z[elem.z] = radial_shells_for_species(
                elem.z,
                settings.n_radial_base,
                multiplier=settings.radial_multiplier,
            )
        shells = shells_by_z[elem.z]
        shell_radii.append(shells.r)
        # Outer product: (n_shells, n_ang, 3) then flattened.
        rel = shells.r[:, None, None] * rule.points[None, :, :]
        pts = structure.coords[atom] + rel.reshape(-1, 3)
        wq = (shells.weights[:, None] * rule.weights[None, :]).reshape(-1)
        n_local = pts.shape[0]
        pts_list.append(pts)
        wq_list.append(wq)
        wang_list.append(np.tile(rule.weights, shells.n))
        atom_list.append(np.full(n_local, atom, dtype=np.int64))
        shell_list.append(
            np.repeat(np.arange(shells.n, dtype=np.int64), rule.n_points)
        )

    grid = IntegrationGrid(
        structure=structure,
        points=np.concatenate(pts_list, axis=0),
        atom_index=np.concatenate(atom_list),
        shell_index=np.concatenate(shell_list),
        quadrature_weights=np.concatenate(wq_list),
        angular_weights=np.concatenate(wang_list),
        shell_radii=shell_radii,
        settings=settings,
    )
    if with_partition:
        grid.compute_partition_weights()
    return grid

"""Angular quadrature rules on the unit sphere.

Two families are provided:

* exact octahedral **Lebedev rules** with 6, 14 and 26 points (their
  weights are simple rationals; exactness degrees 3, 5, 7), used by the
  "minimal" settings and as golden references in tests;
* **Gauss-Legendre x uniform-azimuth product rules** for any higher
  accuracy: ``n_theta`` Gauss-Legendre nodes in cos(theta) crossed with
  ``2 n_theta`` equally spaced azimuths integrate all spherical
  harmonics up to degree ``2 n_theta - 1`` exactly.

Weights sum to 4 pi, so ``sum_j w_j f(u_j)`` approximates the surface
integral over the unit sphere.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.errors import GridError

#: Lebedev point counts with hard-coded exact weights.
AVAILABLE_LEBEDEV: Tuple[int, ...] = (6, 14, 26)


@dataclass(frozen=True)
class AngularRule:
    """A spherical quadrature rule.

    Attributes
    ----------
    points:
        ``(n, 3)`` unit vectors.
    weights:
        ``(n,)`` weights summing to 4 pi.
    degree:
        Highest spherical-harmonic degree integrated exactly.
    """

    points: np.ndarray
    weights: np.ndarray
    degree: int

    @property
    def n_points(self) -> int:
        return self.points.shape[0]

    def integrate(self, values: np.ndarray) -> np.ndarray:
        """Surface integral of sampled values (leading axis = points)."""
        values = np.asarray(values)
        if values.shape[0] != self.n_points:
            raise GridError(
                f"{values.shape[0]} samples for a {self.n_points}-point rule"
            )
        return np.tensordot(self.weights, values, axes=(0, 0))


def _octahedron_vertices() -> np.ndarray:
    """The 6 points (+-1, 0, 0) and permutations."""
    pts = []
    for axis in range(3):
        for sign in (1.0, -1.0):
            v = [0.0, 0.0, 0.0]
            v[axis] = sign
            pts.append(v)
    return np.array(pts)


def _cube_vertices() -> np.ndarray:
    """The 8 points (+-1, +-1, +-1)/sqrt(3)."""
    s = 1.0 / math.sqrt(3.0)
    return np.array(
        [[sx * s, sy * s, sz * s] for sx in (1, -1) for sy in (1, -1) for sz in (1, -1)]
    )


def _cuboctahedron_vertices() -> np.ndarray:
    """The 12 points (+-1, +-1, 0)/sqrt(2) and permutations."""
    s = 1.0 / math.sqrt(2.0)
    pts = []
    for a in range(3):
        b = (a + 1) % 3
        for sa in (1, -1):
            for sb in (1, -1):
                v = [0.0, 0.0, 0.0]
                v[a] = sa * s
                v[b] = sb * s
                pts.append(v)
    return np.array(pts)


def _lebedev(n: int) -> AngularRule:
    four_pi = 4.0 * math.pi
    if n == 6:
        pts = _octahedron_vertices()
        w = np.full(6, four_pi / 6.0)
        return AngularRule(pts, w, degree=3)
    if n == 14:
        pts = np.vstack([_octahedron_vertices(), _cube_vertices()])
        w = np.concatenate(
            [np.full(6, four_pi / 15.0), np.full(8, four_pi * 3.0 / 40.0)]
        )
        return AngularRule(pts, w, degree=5)
    if n == 26:
        pts = np.vstack(
            [_octahedron_vertices(), _cuboctahedron_vertices(), _cube_vertices()]
        )
        w = np.concatenate(
            [
                np.full(6, four_pi / 21.0),
                np.full(12, four_pi * 4.0 / 105.0),
                np.full(8, four_pi * 9.0 / 280.0),
            ]
        )
        return AngularRule(pts, w, degree=7)
    raise GridError(f"no hard-coded Lebedev rule with {n} points")


def _product_rule(n_theta: int) -> AngularRule:
    """Gauss-Legendre x uniform azimuth rule, exact to degree 2*n_theta - 1."""
    if n_theta < 2:
        raise GridError(f"product rule needs n_theta >= 2, got {n_theta}")
    nodes, gl_weights = np.polynomial.legendre.leggauss(n_theta)
    n_phi = 2 * n_theta
    phi = (np.arange(n_phi) + 0.5) * (2.0 * math.pi / n_phi)
    cos_t = np.repeat(nodes, n_phi)
    sin_t = np.sqrt(np.maximum(0.0, 1.0 - cos_t**2))
    cp = np.tile(np.cos(phi), n_theta)
    sp = np.tile(np.sin(phi), n_theta)
    pts = np.stack([sin_t * cp, sin_t * sp, cos_t], axis=1)
    w = np.repeat(gl_weights, n_phi) * (2.0 * math.pi / n_phi)
    return AngularRule(pts, w, degree=2 * n_theta - 1)


_RULE_CACHE: Dict[int, AngularRule] = {}


def angular_rule(min_points: int) -> AngularRule:
    """Smallest supported rule with at least *min_points* points.

    Lebedev rules are preferred while they suffice; beyond 26 points the
    product family (50, 72, 98, 128, ... = 2 n_theta^2) takes over.
    """
    if min_points < 1:
        raise GridError(f"min_points must be positive, got {min_points}")
    if min_points not in _RULE_CACHE:
        rule = None
        for n in AVAILABLE_LEBEDEV:
            if min_points <= n:
                rule = _lebedev(n)
                break
        if rule is None:
            n_theta = max(2, math.ceil(math.sqrt(min_points / 2.0)))
            rule = _product_rule(n_theta)
        _RULE_CACHE[min_points] = rule
    return _RULE_CACHE[min_points]

"""Batch-local basis screening: the block-sparsity seam of the pipeline.

NAO basis functions have finite radial extent, so on any spatially
compact :class:`~repro.grids.batching.GridBatch` only the functions
whose screened reach touches the batch's bounding sphere are
non-negligible (Huhn et al., arXiv:1912.06636).  A
:class:`SparsityPattern` records exactly that — per-batch active
function indices, per-batch active atoms, and the atom-pair block mask
their union implies — built **once per structure** and shared by every
execution backend, which is what turns the dense ``O(n_points x
n_basis)`` contractions into block-sparse ones at scale.

Threshold semantics (``RunSettings.screening_threshold``):

* ``0.0`` — screening disabled.  No pattern is built and every layer
  runs the exact pre-existing dense code path, so results are *bitwise*
  identical to the unscreened pipeline.
* ``> 0.0`` — functions whose amplitude proxy stays below the threshold
  on a batch are dropped from that batch's contractions.  All three
  backends share the same pattern and the same compact batch-ordered
  math, so they remain bit-identical to *each other*; agreement with
  the dense path is a physics-tolerance statement checked by the
  ``screening_vs_dense`` invariant and the differential-conformance
  ``screening`` axis.

:func:`modeled_block_counts` applies the same screening rule to the
summary batches of :func:`repro.core.workload.synthetic_batches`
without materializing them, extending the modeled-scale experiments
past the paper's 200 012-atom ceiling.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.atoms.structure import Structure
from repro.basis.basis_set import BasisSet, _species_shells, effective_shell_radius
from repro.config import RunSettings, get_settings
from repro.errors import GridError
from repro.grids.batching import GridBatch

#: Threshold used when screening is requested without an explicit value
#: (``repro physics --screening``): tight enough that light-basis
#: physics stays within every golden tolerance, loose enough that long
#: polymer chains screen away most of each batch's basis.
DEFAULT_SCREENING_THRESHOLD: float = 1e-6


def active_fraction_histogram(
    fractions: Sequence[float], bins: int = 10
) -> Tuple[int, ...]:
    """Histogram of per-batch active fractions over ``[0, 1]``.

    The screened-elements histogram surfaced in backend profiles and run
    reports: bin ``k`` counts batches whose active-function fraction
    falls in ``[k/bins, (k+1)/bins)`` (last bin closed).

    >>> active_fraction_histogram([0.0, 0.05, 0.5, 1.0], bins=4)
    (2, 0, 1, 1)
    """
    counts, _ = np.histogram(
        np.asarray(list(fractions), dtype=float), bins=bins, range=(0.0, 1.0)
    )
    return tuple(int(c) for c in counts)


@dataclass(frozen=True)
class SparsityStats:
    """Structure-level size accounting of one :class:`SparsityPattern`.

    ``blocks_*`` count (batch, atom) basis blocks — the unit of work a
    screened phase launches; ``elements_*`` count grid-point x function
    entries of the batch chi tables.  ``fill_fraction`` is
    ``elements_active / elements_dense``; the payoff target of the
    refactor is ``block_reduction >= 3`` on the polymer chain.
    """

    n_batches: int
    n_atoms: int
    n_basis: int
    n_grid_points: int
    blocks_active: int
    blocks_dense: int
    elements_active: int
    elements_dense: int
    fill_fraction: float
    histogram: Tuple[int, ...]

    @property
    def block_reduction(self) -> float:
        """Dense over active block count (>= 1; higher is sparser)."""
        return self.blocks_dense / max(self.blocks_active, 1)

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly snapshot (flows into profiles and reports)."""
        return {
            "n_batches": self.n_batches,
            "n_atoms": self.n_atoms,
            "n_basis": self.n_basis,
            "n_grid_points": self.n_grid_points,
            "blocks_active": self.blocks_active,
            "blocks_dense": self.blocks_dense,
            "block_reduction": self.block_reduction,
            "elements_active": self.elements_active,
            "elements_dense": self.elements_dense,
            "fill_fraction": self.fill_fraction,
            "histogram": list(self.histogram),
        }


class SparsityPattern:
    """Who is non-negligible where: the structure's screening decisions.

    Built once by :func:`build_sparsity_pattern` and consumed by every
    layer below the drivers: backends gather compact basis blocks with
    :attr:`active_functions`, evaluate only :attr:`active_atoms`, key
    block caches on :meth:`active_hash`, and scatter-add contributions
    into the atom-pair blocks of :attr:`block_mask`.
    """

    def __init__(
        self,
        threshold: float,
        n_basis: int,
        n_atoms: int,
        active_functions: List[np.ndarray],
        active_atoms: List[Tuple[int, ...]],
        block_mask: np.ndarray,
        batch_points: Sequence[int],
        matrix_nnz: int = 0,
    ) -> None:
        self.threshold = float(threshold)
        self.n_basis = int(n_basis)
        self.n_atoms = int(n_atoms)
        #: Per batch: sorted flat indices of the active basis functions.
        self.active_functions = active_functions
        #: Per batch: sorted atom ids owning at least one active function.
        self.active_atoms = active_atoms
        #: ``(n_atoms, n_atoms)`` bool — atom pairs co-active on >= 1 batch,
        #: i.e. the H/S atom blocks that receive grid contributions.
        self.block_mask = block_mask
        #: Function-pair entries inside the block mask — the element
        #: count of one block-sparse operator matrix (DM-phase pricing).
        self.matrix_nnz = int(matrix_nnz)
        self._hashes = [
            hashlib.sha1(act.tobytes()).hexdigest()[:16] for act in active_functions
        ]
        batch_points = [int(n) for n in batch_points]
        sizes = np.array([act.size for act in active_functions], dtype=np.int64)
        pts = np.array(batch_points, dtype=np.int64)
        self.stats = SparsityStats(
            n_batches=len(active_functions),
            n_atoms=self.n_atoms,
            n_basis=self.n_basis,
            n_grid_points=int(pts.sum()),
            blocks_active=int(sum(len(a) for a in active_atoms)),
            blocks_dense=len(active_functions) * self.n_atoms,
            elements_active=int((pts * sizes).sum()),
            elements_dense=int(pts.sum()) * self.n_basis,
            fill_fraction=float((pts * sizes).sum())
            / max(int(pts.sum()) * self.n_basis, 1),
            histogram=active_fraction_histogram(sizes / max(self.n_basis, 1)),
        )

    @property
    def n_batches(self) -> int:
        """Number of batches the pattern covers."""
        return len(self.active_functions)

    def n_active(self, batch_index: int) -> int:
        """Active-function count of one batch."""
        return int(self.active_functions[batch_index].size)

    def active_hash(self, batch_index: int) -> str:
        """Stable digest of one batch's active set (block-cache key part).

        Two pattern instances assigning the same active functions to a
        batch share the hash, so LRU entries keyed on ``(batch,
        active_hash)`` are reusable exactly when the cached compact
        block is bitwise valid.
        """
        return self._hashes[batch_index]

    def __repr__(self) -> str:
        s = self.stats
        return (
            f"SparsityPattern(threshold={self.threshold:g}, "
            f"batches={s.n_batches}, fill={s.fill_fraction:.3f}, "
            f"block_reduction={s.block_reduction:.2f})"
        )


def build_sparsity_pattern(
    basis: BasisSet,
    batches: Sequence[GridBatch],
    threshold: float,
    chunk: int = 256,
) -> SparsityPattern:
    """Screen every batch against every function's effective reach.

    A function ``mu`` is active on a batch when the batch's bounding
    sphere intersects the function's screened cutoff sphere:
    ``|centroid - R_mu| <= r_eff(mu, threshold) + batch.radius``.
    Because ``r_eff`` never exceeds the hard cutoff, active atoms are
    always a subset of the batch's geometric ``relevant_atoms`` — which
    is what makes compact screened blocks bitwise slices of the dense
    ones.  Chunked over batches to bound the distance matrix at
    ``(chunk, n_atoms)``.
    """
    if threshold <= 0.0:
        raise GridError(
            f"screening threshold must be > 0 to build a pattern, got "
            f"{threshold!r}; threshold 0 means screening is disabled"
        )
    fn_cut = basis.screened_function_cutoffs(threshold)
    fn_atom = basis.function_atoms
    coords = basis.structure.coords
    n_atoms = basis.structure.n_atoms
    centroids = np.array([b.centroid for b in batches])
    radii = np.array([b.radius for b in batches])

    active_functions: List[np.ndarray] = []
    active_atoms: List[Tuple[int, ...]] = []
    block_mask = np.zeros((n_atoms, n_atoms), dtype=bool)
    for start in range(0, len(batches), chunk):
        stop = min(start + chunk, len(batches))
        # (chunk, n_atoms) centroid->atom distances, broadcast to the
        # function level through each function's owning atom.
        d = np.linalg.norm(
            centroids[start:stop, None, :] - coords[None, :, :], axis=2
        )
        hits = d[:, fn_atom] <= fn_cut[None, :] + radii[start:stop, None]
        for row in range(stop - start):
            act = np.nonzero(hits[row])[0].astype(np.int64)
            active_functions.append(act)
            aa = np.unique(fn_atom[act])
            active_atoms.append(tuple(int(a) for a in aa))
            block_mask[np.ix_(aa, aa)] = True

    fn_counts = np.bincount(fn_atom, minlength=n_atoms)
    return SparsityPattern(
        threshold=threshold,
        n_basis=basis.n_basis,
        n_atoms=n_atoms,
        active_functions=active_functions,
        active_atoms=active_atoms,
        block_mask=block_mask,
        batch_points=[b.n_points for b in batches],
        matrix_nnz=int(fn_counts @ block_mask @ fn_counts),
    )


def screened_atom_cutoffs_light(
    structure: Structure, threshold: float
) -> np.ndarray:
    """Per-atom screened reach from the species radial tables (Bohr).

    The modeled-scale analogue of
    :meth:`~repro.basis.basis_set.BasisSet.screened_atom_cutoffs`:
    species-level, no per-atom basis objects, cheap for million-atom
    chains.  ``threshold <= 0`` gives the unscreened reaches.
    """
    by_symbol: Dict[str, float] = {}
    out = np.empty(structure.n_atoms)
    for i, (sym, elem) in enumerate(zip(structure.symbols, structure.elements)):
        if sym not in by_symbol:
            by_symbol[sym] = max(
                effective_shell_radius(spline, cutoff, shell.l, threshold)
                for shell, spline, cutoff in _species_shells(sym, elem.z)
            )
        out[i] = by_symbol[sym]
    return out


#: Bounding radius of one summary batch (matches ``synthetic_batches``).
_SUMMARY_BATCH_RADIUS: float = 2.0


def modeled_block_counts(
    structure: Structure,
    settings: Optional[RunSettings] = None,
    threshold: float = 1e-6,
    target_points: Optional[int] = None,
) -> Dict[str, float]:
    """Screened vs dense block counts for a modeled-scale structure.

    Applies the screening rule of :func:`build_sparsity_pattern` to the
    *summary* batches of :func:`repro.core.workload.synthetic_batches`
    without materializing a single batch object: every summary batch
    sits on its atom with a fixed 2.0 Bohr envelope, so a cell-list
    neighbour count over atoms yields the (batch, atom) block and
    element totals directly.  Near-linear in ``n_atoms`` — this is what
    carries the sparsity accounting past the paper's 200 012-atom
    ceiling toward the million-atom regime.
    """
    from repro.core.workload import _points_per_atom
    from repro.mapping.memory_model import atom_basis_counts

    settings = settings or get_settings("light")
    coords = structure.coords
    n_atoms = structure.n_atoms
    if target_points is None:
        target_points = settings.grids.batch_target_points

    ppa = _points_per_atom(structure, settings.grids).astype(np.int64)
    n_frag = np.maximum(1, -(-ppa // int(target_points)))
    basis_counts = atom_basis_counts(structure)
    n_basis = int(basis_counts.sum())
    cutoffs = screened_atom_cutoffs_light(structure, threshold)

    # Cell list sized by the farthest screened reach plus the envelope.
    cell = max(float(cutoffs.max()) + _SUMMARY_BATCH_RADIUS, 1e-6)
    keys = np.floor(coords / cell).astype(np.int64)
    buckets: Dict[Tuple[int, int, int], List[int]] = {}
    for idx, key in enumerate(map(tuple, keys)):
        buckets.setdefault(key, []).append(idx)
    offsets = [
        (dx, dy, dz) for dx in (-1, 0, 1) for dy in (-1, 0, 1) for dz in (-1, 0, 1)
    ]

    blocks_active = 0
    elements_active = 0
    # One vectorized pass per occupied cell: all its atoms against the
    # candidate atoms of the 27-neighbourhood.
    for key, members in buckets.items():
        cand: List[int] = []
        for off in offsets:
            cand.extend(
                buckets.get((key[0] + off[0], key[1] + off[1], key[2] + off[2]), ())
            )
        cand_arr = np.array(cand, dtype=np.int64)
        mem = np.array(members, dtype=np.int64)
        d = np.linalg.norm(
            coords[mem][:, None, :] - coords[cand_arr][None, :, :], axis=2
        )
        hits = d <= cutoffs[cand_arr][None, :] + _SUMMARY_BATCH_RADIUS
        nbr_blocks = hits.sum(axis=1)  # active atoms per member batch site
        nbr_basis = hits @ basis_counts[cand_arr]  # active functions
        blocks_active += int((n_frag[mem] * nbr_blocks).sum())
        elements_active += int((ppa[mem] * nbr_basis).sum())

    n_batches = int(n_frag.sum())
    n_points = int(ppa.sum())
    blocks_dense = n_batches * n_atoms
    elements_dense = n_points * n_basis
    return {
        "n_atoms": n_atoms,
        "n_basis": n_basis,
        "n_batches": n_batches,
        "n_grid_points": n_points,
        "threshold": float(threshold),
        "blocks_active": blocks_active,
        "blocks_dense": blocks_dense,
        "block_reduction": blocks_dense / max(blocks_active, 1),
        "elements_active": elements_active,
        "elements_dense": elements_dense,
        "fill_fraction": elements_active / max(elements_dense, 1),
    }

"""Discretized 3-D integration grids (Fig. 2 of the paper).

Non-uniform radial-spherical grids centred on each nucleus, Becke
partition-of-unity weights, and the grid-adapted cut-plane batching that
groups points into the 100-300-point batches the task-mapping strategies
distribute over MPI ranks.
"""

from repro.grids.angular import AngularRule, angular_rule, AVAILABLE_LEBEDEV
from repro.grids.shells import RadialShells, radial_shells_for_species
from repro.grids.partition import becke_weights
from repro.grids.atom_grid import IntegrationGrid, build_grid
from repro.grids.batching import (
    GridBatch,
    build_batches,
    cut_plane_partition,
    attach_relevant_atoms,
)
from repro.grids.sparsity import (
    SparsityPattern,
    SparsityStats,
    build_sparsity_pattern,
    modeled_block_counts,
)

__all__ = [
    "AngularRule",
    "angular_rule",
    "AVAILABLE_LEBEDEV",
    "RadialShells",
    "radial_shells_for_species",
    "becke_weights",
    "IntegrationGrid",
    "build_grid",
    "GridBatch",
    "build_batches",
    "cut_plane_partition",
    "attach_relevant_atoms",
    "SparsityPattern",
    "SparsityStats",
    "build_sparsity_pattern",
    "modeled_block_counts",
]

"""Grid-adapted cut-plane batching (Havu et al., JCP 228, 8367 (2009)).

All grid points of a structure are recursively split by axis-aligned
cut planes — each split along the dimension of largest spatial extent,
at the median — until batches hold at most ``target_points`` points.
These batches are the atoms of work the task-mapping strategies of
Section 3.1 distribute over MPI ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.atoms.structure import Structure
from repro.errors import GridError
from repro.grids.atom_grid import IntegrationGrid


@dataclass(frozen=True)
class GridBatch:
    """A spatially compact set of grid points.

    Attributes
    ----------
    index:
        Batch id within its grid.
    point_indices:
        Indices into the flat grid arrays.
    centroid:
        Average coordinate of the member points — the batch "location"
        used by the mapping strategies (Alg. 1 line 7-8).
    radius:
        Max distance from centroid to a member point (bounding sphere).
    owner_atoms:
        Sorted atom ids owning at least one member point.
    relevant_atoms:
        Sorted atom ids whose basis functions can be nonzero somewhere
        in the batch (cutoff sphere intersects bounding sphere); filled
        by :func:`attach_relevant_atoms` when a basis reach is known.
    """

    index: int
    point_indices: np.ndarray
    centroid: np.ndarray
    radius: float
    owner_atoms: Tuple[int, ...]
    relevant_atoms: Tuple[int, ...] = field(default=())

    @property
    def n_points(self) -> int:
        return self.point_indices.shape[0]


def cut_plane_partition(
    points: np.ndarray, target_points: int
) -> List[np.ndarray]:
    """Split a point cloud into index groups of <= target_points each.

    Iterative median bisection along the widest dimension; returns the
    groups in deterministic spatial order.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 3:
        raise GridError(f"points must be (n, 3), got {points.shape}")
    if target_points < 1:
        raise GridError(f"target_points must be >= 1, got {target_points}")

    result: List[np.ndarray] = []
    stack: List[np.ndarray] = [np.arange(points.shape[0], dtype=np.int64)]
    while stack:
        idx = stack.pop()
        if idx.shape[0] <= target_points:
            result.append(idx)
            continue
        sub = points[idx]
        spans = sub.max(axis=0) - sub.min(axis=0)
        dim = int(np.argmax(spans))
        order = np.argsort(sub[:, dim], kind="stable")
        half = idx.shape[0] // 2
        # Push right half first so the left half is processed next
        # (keeps output ordered along the cut direction).
        stack.append(idx[order[half:]])
        stack.append(idx[order[:half]])
    return result


def build_batches(
    grid: IntegrationGrid,
    target_points: Optional[int] = None,
) -> List[GridBatch]:
    """Partition a grid into :class:`GridBatch` objects."""
    if target_points is None:
        target_points = grid.settings.batch_target_points
    groups = cut_plane_partition(grid.points, target_points)
    batches: List[GridBatch] = []
    for i, idx in enumerate(groups):
        pts = grid.points[idx]
        centroid = pts.mean(axis=0)
        radius = float(np.linalg.norm(pts - centroid, axis=1).max()) if idx.size else 0.0
        owners = tuple(sorted(set(int(a) for a in grid.atom_index[idx])))
        batches.append(
            GridBatch(
                index=i,
                point_indices=idx,
                centroid=centroid,
                radius=radius,
                owner_atoms=owners,
            )
        )
    return batches


def attach_relevant_atoms(
    batches: Sequence[GridBatch],
    structure: Structure,
    atom_cutoffs: np.ndarray,
    chunk: int = 512,
) -> List[GridBatch]:
    """Return new batches annotated with their relevant-atom sets.

    An atom is *relevant* to a batch when its farthest-reaching basis
    function (radius ``atom_cutoffs[a]``) can be nonzero inside the
    batch's bounding sphere.  The per-rank union of these sets is what
    sizes the local Hamiltonian in the memory model of Fig. 9(a).

    Dense all-pairs distances are used for small problems; above
    ~5*10^7 batch-atom pairs a cell-list search takes over (needed for
    the 200 012-atom chains).
    """
    atom_cutoffs = np.asarray(atom_cutoffs, dtype=float)
    if atom_cutoffs.shape[0] != structure.n_atoms:
        raise GridError(
            f"{atom_cutoffs.shape[0]} cutoffs for {structure.n_atoms} atoms"
        )
    if len(batches) * structure.n_atoms > 50_000_000:
        return _attach_relevant_atoms_celllist(batches, structure, atom_cutoffs)
    coords = structure.coords
    centroids = np.array([b.centroid for b in batches])
    radii = np.array([b.radius for b in batches])

    out: List[GridBatch] = []
    for start in range(0, len(batches), chunk):
        stop = min(start + chunk, len(batches))
        # (chunk, n_atoms) distances batch-centroid -> atom.
        d = np.linalg.norm(
            centroids[start:stop, None, :] - coords[None, :, :], axis=2
        )
        reach = atom_cutoffs[None, :] + radii[start:stop, None]
        hits = d <= reach
        for row, b in enumerate(batches[start:stop]):
            rel = tuple(np.nonzero(hits[row])[0].tolist())
            out.append(
                GridBatch(
                    index=b.index,
                    point_indices=b.point_indices,
                    centroid=b.centroid,
                    radius=b.radius,
                    owner_atoms=b.owner_atoms,
                    relevant_atoms=rel,
                )
            )
    return out


def _attach_relevant_atoms_celllist(
    batches: Sequence[GridBatch],
    structure: Structure,
    atom_cutoffs: np.ndarray,
) -> List[GridBatch]:
    """Cell-list variant of :func:`attach_relevant_atoms` (near-linear).

    Batches are grouped by spatial cell so each cell's candidate atoms
    (27-neighbourhood) are gathered once and compared against all the
    cell's batch centroids in one vectorized pass.
    """
    coords = structure.coords
    max_reach = float(atom_cutoffs.max()) + max(
        (b.radius for b in batches), default=0.0
    )
    cell = max(max_reach, 1e-6)
    atom_keys = np.floor(coords / cell).astype(np.int64)
    buckets: dict = {}
    for idx, key in enumerate(map(tuple, atom_keys)):
        buckets.setdefault(key, []).append(idx)

    centroids = np.array([b.centroid for b in batches])
    radii = np.array([b.radius for b in batches])
    batch_keys = np.floor(centroids / cell).astype(np.int64)
    cells: dict = {}
    for i, key in enumerate(map(tuple, batch_keys)):
        cells.setdefault(key, []).append(i)

    offsets = [
        (dx, dy, dz) for dx in (-1, 0, 1) for dy in (-1, 0, 1) for dz in (-1, 0, 1)
    ]
    relevant: List[tuple] = [()] * len(batches)
    for key, batch_ids in cells.items():
        cand: List[int] = []
        for off in offsets:
            cand.extend(
                buckets.get((key[0] + off[0], key[1] + off[1], key[2] + off[2]), ())
            )
        if not cand:
            continue
        cand_arr = np.array(cand, dtype=np.int64)
        bid = np.array(batch_ids, dtype=np.int64)
        # (n_batches_in_cell, n_candidates) distances.
        d = np.linalg.norm(
            centroids[bid][:, None, :] - coords[cand_arr][None, :, :], axis=2
        )
        hits = d <= atom_cutoffs[cand_arr][None, :] + radii[bid][:, None]
        for row, i in enumerate(bid):
            rel = cand_arr[hits[row]]
            rel.sort()
            relevant[int(i)] = tuple(int(a) for a in rel)

    return [
        GridBatch(
            index=b.index,
            point_indices=b.point_indices,
            centroid=b.centroid,
            radius=b.radius,
            owner_atoms=b.owner_atoms,
            relevant_atoms=relevant[i],
        )
        for i, b in enumerate(batches)
    ]

"""Becke partition-of-unity weights for atom-centered integration.

Overlapping atomic grids are disentangled with Becke's fuzzy-cell scheme
(JCP 88, 2547 (1988)): every grid point receives the weight

    w_a(r) = P_a(r) / sum_b P_b(r) ,

with cell functions P built from iterated smooth step functions of the
elliptical coordinate ``mu_ab`` and Becke's atomic-size adjustment.  The
sum over partner atoms is restricted to a neighbourhood of the owning
atom, so the cost stays near-linear for large systems.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.atoms.structure import Structure
from repro.errors import GridError

#: Atoms farther than this (Bohr) from the owner cannot influence the
#: partition weight noticeably (the step function saturates).
PARTNER_CUTOFF: float = 18.0


def _becke_step(mu: np.ndarray, k: int) -> np.ndarray:
    """Iterated smoothing polynomial p(p(...p(mu))) with p(x)=1.5x-0.5x^3."""
    f = mu
    for _ in range(k):
        f = 1.5 * f - 0.5 * f**3
    return f


def _size_adjustment(r_a: float, r_b: float) -> float:
    """Becke's heteronuclear cell-boundary shift a_ab (clamped to 1/2)."""
    chi = r_a / r_b
    u = (chi - 1.0) / (chi + 1.0)
    a = u / (u * u - 1.0)
    return float(np.clip(a, -0.5, 0.5))


def becke_weights(
    structure: Structure,
    points: np.ndarray,
    owner: int,
    smoothing: int = 3,
    partners: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Partition weights of *owner*'s grid points.

    Parameters
    ----------
    structure:
        The molecular system.
    points:
        ``(n, 3)`` coordinates of grid points centred on atom *owner*.
    owner:
        Index of the atom owning these points.
    smoothing:
        Becke's k (number of iterated smoothing passes), typically 3.
    partners:
        Optional explicit partner-atom list; defaults to all atoms within
        :data:`PARTNER_CUTOFF` of the owner.

    Returns
    -------
    ``(n,)`` weights in [0, 1].
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    if not 0 <= owner < structure.n_atoms:
        raise GridError(f"owner atom {owner} out of range")
    if smoothing < 1:
        raise GridError(f"smoothing must be >= 1, got {smoothing}")

    if partners is None:
        partner_idx = structure.neighbors_within(owner, PARTNER_CUTOFF)
        partner_idx = np.concatenate([[owner], partner_idx])
    else:
        partner_idx = np.asarray(list(partners), dtype=np.int64)
        if owner not in partner_idx:
            partner_idx = np.concatenate([[owner], partner_idx])

    centers = structure.coords[partner_idx]  # (m, 3)
    radii = np.array(
        [structure.elements[a].covalent_radius for a in partner_idx]
    )
    m = partner_idx.shape[0]
    if m == 1:
        return np.ones(points.shape[0])

    # Distances point -> each partner atom: (n, m).
    dist = np.linalg.norm(points[:, None, :] - centers[None, :, :], axis=2)
    # Pairwise atom separations: (m, m).
    sep = np.linalg.norm(centers[:, None, :] - centers[None, :, :], axis=2)

    cell = np.ones((points.shape[0], m))
    for a in range(m):
        for b in range(m):
            if a == b:
                continue
            mu = (dist[:, a] - dist[:, b]) / sep[a, b]
            # Heteronuclear boundary shift.
            adj = _size_adjustment(radii[a], radii[b])
            mu = mu + adj * (1.0 - mu**2)
            mu = np.clip(mu, -1.0, 1.0)
            cell[:, a] *= 0.5 * (1.0 - _becke_step(mu, smoothing))

    total = cell.sum(axis=1)
    total = np.where(total > 1e-300, total, 1.0)
    # Owner is entry 0 of the partner list by construction.
    return cell[:, 0] / total

"""Stratmann-Scuseria partition weights — the O(1)-support alternative.

Becke's smoothing polynomial never reaches exactly 0/1, so every atom
formally contributes everywhere; Stratmann's piecewise switching
function (CPL 257, 213 (1996)) saturates at |mu| >= a, giving weights
exact compact support — the property production codes (FHI-aims
included) rely on for O(N) grid partitioning.  Drop-in alternative to
:func:`repro.grids.partition.becke_weights`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.atoms.structure import Structure
from repro.errors import GridError
from repro.grids.partition import PARTNER_CUTOFF

#: Stratmann's saturation parameter (weights frozen beyond |mu| > a).
STRATMANN_A: float = 0.64


def stratmann_switch(mu: np.ndarray, a: float = STRATMANN_A) -> np.ndarray:
    """Stratmann's g(mu): odd 7th-order polynomial in mu/a, clamped.

    g(-a) = -1, g(a) = +1, with zero 1st-3rd derivatives at +-a.
    """
    x = np.clip(np.asarray(mu, dtype=float) / a, -1.0, 1.0)
    x2 = x * x
    g = x * (35.0 + x2 * (-35.0 + x2 * (21.0 - 5.0 * x2))) / 16.0
    return g


def stratmann_weights(
    structure: Structure,
    points: np.ndarray,
    owner: int,
    partners: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Partition weights of *owner*'s grid points (Stratmann scheme).

    Same contract as :func:`repro.grids.partition.becke_weights`; no
    heteronuclear size adjustment (Stratmann's original prescription).
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    if not 0 <= owner < structure.n_atoms:
        raise GridError(f"owner atom {owner} out of range")

    if partners is None:
        partner_idx = structure.neighbors_within(owner, PARTNER_CUTOFF)
        partner_idx = np.concatenate([[owner], partner_idx])
    else:
        partner_idx = np.asarray(list(partners), dtype=np.int64)
        if owner not in partner_idx:
            partner_idx = np.concatenate([[owner], partner_idx])

    centers = structure.coords[partner_idx]
    m = partner_idx.shape[0]
    if m == 1:
        return np.ones(points.shape[0])

    dist = np.linalg.norm(points[:, None, :] - centers[None, :, :], axis=2)
    sep = np.linalg.norm(centers[:, None, :] - centers[None, :, :], axis=2)

    cell = np.ones((points.shape[0], m))
    for a in range(m):
        for b in range(m):
            if a == b:
                continue
            mu = (dist[:, a] - dist[:, b]) / sep[a, b]
            cell[:, a] *= 0.5 * (1.0 - stratmann_switch(mu))

    total = cell.sum(axis=1)
    total = np.where(total > 1e-300, total, 1.0)
    return cell[:, 0] / total

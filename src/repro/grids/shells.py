"""Per-species radial integration shells.

FHI-aims-style radial meshes (Baker et al. mapping): shell *i* of *n*
sits at

    r(i) = r_outer * log(1 - (i/(n+1))^2) / log(1 - (n/(n+1))^2) ,

dense near the nucleus, with analytically known ``dr/di`` giving the
radial quadrature weight ``w_i = r_i^2 * dr/di``.  Heavier species get
more shells (their all-electron densities oscillate near the core).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import GridError


@dataclass(frozen=True)
class RadialShells:
    """Radial integration mesh of one atom.

    Attributes
    ----------
    r:
        Shell radii (Bohr), strictly increasing, excluding the nucleus.
    weights:
        ``r^2 dr`` quadrature weights: ``sum_i w_i f(r_i)`` approximates
        ``int f(r) r^2 dr``.
    """

    r: np.ndarray
    weights: np.ndarray

    @property
    def n(self) -> int:
        return self.r.shape[0]


def radial_shells_for_species(
    z: int, n_base: int, r_outer: float = 10.0, multiplier: float = 1.0
) -> RadialShells:
    """Build the radial mesh for nuclear charge *z*.

    Parameters
    ----------
    z:
        Nuclear charge; the shell count grows like ``n_base * (1 + 0.4 ln z)``.
    n_base:
        Shell count for hydrogen (settings knob ``n_radial_base``).
    r_outer:
        Outermost shell radius in Bohr (must cover the basis cutoff).
    multiplier:
        Extra scaling of the shell count (settings ``radial_multiplier``).
    """
    if n_base < 4:
        raise GridError(f"n_base must be >= 4, got {n_base}")
    if r_outer <= 0.0:
        raise GridError(f"r_outer must be positive, got {r_outer}")
    n = int(round(n_base * multiplier * (1.0 + 0.4 * math.log(max(z, 1)))))
    n = max(n, 4)

    i = np.arange(1, n + 1, dtype=float)
    frac = i / (n + 1.0)
    scale = r_outer / math.log(1.0 - (n / (n + 1.0)) ** 2)
    r = scale * np.log(1.0 - frac**2)
    # dr/di = scale * (-2 i / (n+1)^2) / (1 - frac^2)
    dr_di = scale * (-2.0 * i / (n + 1.0) ** 2) / (1.0 - frac**2)
    weights = r**2 * dr_di
    if np.any(weights < 0.0) or np.any(np.diff(r) <= 0.0):
        raise GridError("radial mesh construction produced a non-monotone grid")
    return RadialShells(r=r, weights=weights)

"""Run-settings presets mirroring FHI-aims' ``light``/``tight`` levels.

The paper runs "light settings and the LDA functional"; these dataclasses
bundle the numerical knobs (grid sizes, basis size, SCF/CPSCF tolerances)
so that examples, tests and benchmarks share one definition of "light".
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Mapping, Optional


@dataclass(frozen=True)
class GridSettings:
    """Integration-grid resolution for one run."""

    #: Number of radial shells for the *lightest* element (H); heavier
    #: elements scale this up with sqrt(Z) as in Baker-style grids.
    n_radial_base: int = 24
    #: Angular quadrature points per shell (must be a supported rule size).
    n_angular: int = 50
    #: Multiplicative scaling of the outermost shell radius (Bohr).
    radial_multiplier: float = 1.0
    #: Target number of grid points per batch (paper: 100-300).
    batch_target_points: int = 200
    #: Becke partition-function stiffness (number of smoothing passes).
    becke_smoothing: int = 3


@dataclass(frozen=True)
class SCFSettings:
    """Ground-state self-consistency controls."""

    max_iterations: int = 60
    density_tolerance: float = 1e-6
    energy_tolerance: float = 1e-8
    mixing_factor: float = 0.35
    pulay_history: int = 6
    occupation_width: float = 0.0  # Hartree; 0 => integer occupations


@dataclass(frozen=True)
class CPSCFSettings:
    """Coupled-perturbed SCF (DFPT) self-consistency controls."""

    max_iterations: int = 40
    response_tolerance: float = 1e-6
    mixing_factor: float = 0.5


@dataclass(frozen=True)
class TuningSettings:
    """Closed-loop auto-tuner controls (:mod:`repro.tune`).

    ``mode`` selects who picks the performance knobs: ``"off"`` keeps
    the hand-chosen values in the surrounding :class:`RunSettings`;
    ``"auto"`` lets the tuner search the configuration space and apply
    the winning configuration before the run.  A tuned run's *effective*
    settings always carry ``mode="off"`` again (the tuner rewrites the
    knobs it owns), so the service cache key of a tuned run equals the
    key of the identical hand-picked configuration and tuned runs dedup
    correctly.
    """

    #: ``"off"`` (human-picked knobs) or ``"auto"`` (tuner-picked).
    mode: str = "off"
    #: Measured-stage trial budget: how many top cost-model candidates
    #: get a real (seeded, single-sweep) trial run before the decision.
    budget: int = 3
    #: Warm-start the measured stage from prior ``BENCH_history.jsonl``
    #: tuner decisions with a matching workload fingerprint.
    warm_start: bool = True
    #: Simulated rank count the mapping/communication terms are priced at.
    n_ranks: int = 4


@dataclass(frozen=True)
class RunSettings:
    """Everything a simulation needs besides the structure itself."""

    level: str = "light"
    grids: GridSettings = field(default_factory=GridSettings)
    scf: SCFSettings = field(default_factory=SCFSettings)
    cpscf: CPSCFSettings = field(default_factory=CPSCFSettings)
    #: Maximum multipole angular momentum for the Hartree solver.
    l_max_hartree: int = 6
    #: Exchange-correlation functional identifier (only LDA implemented).
    xc: str = "lda"
    #: Execution backend for the grid-heavy phases: ``"numpy"`` (full
    #: cached table, the reference), ``"batched"`` (bounded LRU block
    #: streaming) or ``"device"`` (priced OpenCL-model launches).
    backend: str = "numpy"
    #: Physics-invariant verification level: ``"off"`` (no checks),
    #: ``"cheap"`` (O(n_basis^2) algebra at phase boundaries) or
    #: ``"full"`` (adds independent re-derivations: fresh basis
    #: evaluation, Hartree rebuild, Gauss-law far field).  See
    #: :mod:`repro.verify.invariants`.
    verify: str = "off"
    #: Batch-local basis-screening threshold for the block-sparse
    #: integration seam (:mod:`repro.grids.sparsity`).  ``0.0`` disables
    #: screening — the exact dense code path, bitwise identical to the
    #: pre-screening pipeline; ``> 0`` drops basis functions whose
    #: amplitude proxy stays below the threshold on a batch.
    screening_threshold: float = 0.0
    #: Basis-table element budget (``n_points * n_basis``) for the
    #: full-table cache in :class:`repro.dft.hamiltonian.MatrixBuilder`;
    #: ``None`` keeps the builder's default budget, ``0`` forbids the
    #: full table (forcing the streaming paths).  A knob the auto-tuner
    #: owns in ``mode="auto"``.
    cache_limit: Optional[int] = None
    #: Closed-loop auto-tuner controls (:mod:`repro.tune`).
    tuning: TuningSettings = field(default_factory=TuningSettings)

    def with_grids(self, **kwargs) -> "RunSettings":
        """Return a copy with modified grid settings."""
        return replace(self, grids=replace(self.grids, **kwargs))

    def with_scf(self, **kwargs) -> "RunSettings":
        """Return a copy with modified SCF settings."""
        return replace(self, scf=replace(self.scf, **kwargs))

    def with_cpscf(self, **kwargs) -> "RunSettings":
        """Return a copy with modified CPSCF settings."""
        return replace(self, cpscf=replace(self.cpscf, **kwargs))

    def as_canonical_dict(self) -> Dict[str, Any]:
        """JSON-friendly snapshot with a *canonical* (sorted) key order.

        Two :class:`RunSettings` built from the same field values — in
        any keyword order — produce identical dicts, which is what the
        service layer's content-addressed cache keys hash (see
        :func:`repro.service.jobs.cache_key`).
        """
        def _sorted(d: Dict[str, Any]) -> Dict[str, Any]:
            return {
                k: _sorted(v) if isinstance(v, dict) else v
                for k, v in sorted(d.items())
            }

        return _sorted(asdict(self))

    @classmethod
    def from_canonical_dict(cls, data: Mapping[str, Any]) -> "RunSettings":
        """Rebuild settings from :meth:`as_canonical_dict` output.

        The round trip is exact: ``RunSettings.from_canonical_dict(
        s.as_canonical_dict()) == s`` for every ``s``.
        """
        d = dict(data)
        tuning = d.pop("tuning", None)
        return cls(
            grids=GridSettings(**d.pop("grids")),
            scf=SCFSettings(**d.pop("scf")),
            cpscf=CPSCFSettings(**d.pop("cpscf")),
            tuning=TuningSettings(**tuning) if tuning else TuningSettings(),
            **d,
        )

    def with_tuning(self, **kwargs) -> "RunSettings":
        """Return a copy with modified tuning settings."""
        return replace(self, tuning=replace(self.tuning, **kwargs))


_PRESETS: Dict[str, RunSettings] = {
    # Test-grade: small but still numerically meaningful grids.
    "minimal": RunSettings(
        level="minimal",
        grids=GridSettings(n_radial_base=16, n_angular=26, batch_target_points=64),
        l_max_hartree=4,
    ),
    # The paper's production level for its physics runs.
    "light": RunSettings(level="light"),
    # Heavier grids for convergence studies.
    "tight": RunSettings(
        level="tight",
        grids=GridSettings(n_radial_base=36, n_angular=110, batch_target_points=200),
        l_max_hartree=8,
    ),
}


def get_settings(level: str = "light", **overrides) -> RunSettings:
    """Look up a named preset, optionally overriding top-level fields.

    Parameters
    ----------
    level:
        One of ``"minimal"``, ``"light"``, ``"tight"``.
    overrides:
        Keyword overrides applied on top of the preset
        (e.g. ``l_max_hartree=4``).
    """
    try:
        preset = _PRESETS[level]
    except KeyError:
        raise ValueError(
            f"unknown settings level {level!r}; expected one of {sorted(_PRESETS)}"
        ) from None
    return replace(preset, **overrides) if overrides else preset

"""Optimization toggles — the paper's innovations, individually switchable.

``OptimizationFlags.none()`` reproduces the baseline OpenCL
implementation the paper measures speedups against;
``OptimizationFlags.all()`` is the fully optimized code.  Ablation
benches flip one flag at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class OptimizationFlags:
    """Which of the paper's innovations are active."""

    #: Section 3.1 — locality-enhancing task mapping (vs least-loaded).
    locality_mapping: bool = True
    #: Section 3.2.1 — pack row-wise collectives (30 MB heuristic).
    packed_comm: bool = True
    #: Section 3.2.2 — intra-node SHM + leader collective (needs SHM).
    hierarchical_comm: bool = True
    #: Section 4.2 — fuse widely-dependent kernels (vertical/horizontal).
    kernel_fusion: bool = True
    #: Section 4.3 — eliminate A[B[i]] patterns via gather maps.
    indirect_elimination: bool = True
    #: Section 4.4 — collapse the (p, m) loop for fine-grained parallelism.
    loop_collapse: bool = True

    @staticmethod
    def all() -> "OptimizationFlags":
        """Everything on (the paper's optimized configuration)."""
        return OptimizationFlags()

    @staticmethod
    def none() -> "OptimizationFlags":
        """Everything off (the baseline configuration)."""
        return OptimizationFlags(
            locality_mapping=False,
            packed_comm=False,
            hierarchical_comm=False,
            kernel_fusion=False,
            indirect_elimination=False,
            loop_collapse=False,
        )

    def but(self, **kwargs) -> "OptimizationFlags":
        """Copy with selected flags changed (ablation helper)."""
        return replace(self, **kwargs)

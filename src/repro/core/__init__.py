"""Public high-level API: the quantum-perturbation simulator.

Two entry points on :class:`PerturbationSimulator`:

* :meth:`~PerturbationSimulator.run_physics` — the real thing, for
  laptop-scale molecules: ground-state SCF, CPSCF, polarizability.
* :meth:`~PerturbationSimulator.run_model` — the scale path used by the
  paper's figures: real geometry/batching/mapping + the machine, device
  and communication models produce per-phase times, memory footprints
  and communication costs for arbitrary rank counts.
"""

from repro.core.flags import OptimizationFlags
from repro.core.workload import Workload, synthetic_batches
from repro.core.phasemodel import PhaseModel, CYCLE_PHASES
from repro.core.simulator import (
    PerturbationSimulator,
    SimulationReport,
    PhysicsResult,
)

__all__ = [
    "OptimizationFlags",
    "Workload",
    "synthetic_batches",
    "PhaseModel",
    "CYCLE_PHASES",
    "PerturbationSimulator",
    "SimulationReport",
    "PhysicsResult",
]

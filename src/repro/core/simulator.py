"""The top-level :class:`PerturbationSimulator` API.

One object, two modes:

* ``run_physics()`` — real all-electron DFPT on the given molecule
  (small systems): returns ground state, polarizability tensor and
  measured per-phase wall times.
* ``run_model(machine, n_ranks, flags)`` — the exascale path: builds
  the workload summary, maps batches under the selected strategy and
  prices every phase with the device/communication models; used by all
  scale figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.atoms.structure import Structure

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.backends.base import BackendProfile, ExecutionBackend
    from repro.verify.invariants import VerifyReport
from repro.config import RunSettings, get_settings
from repro.core.flags import OptimizationFlags
from repro.core.phasemodel import PhaseBreakdown, PhaseCalibration, PhaseModel
from repro.core.workload import Workload, build_workload, synthetic_batches
from repro.dfpt.polarizability import polarizability_tensor
from repro.dfpt.response import DFPTSolver
from repro.dft.scf import GroundState, SCFDriver
from repro.errors import ExperimentError
from repro.grids.batching import GridBatch
from repro.mapping.strategies import (
    BatchAssignment,
    load_balancing_mapping,
    locality_enhancing_mapping,
)
from repro.runtime.machines import MachineSpec
from repro.utils.timing import PhaseTimer

#: Number of CPSCF cycles a typical production run needs (used to turn
#: per-cycle model times into run totals; the paper reports per-cycle).
TYPICAL_CPSCF_CYCLES = 12


@dataclass
class PhysicsResult:
    """Outcome of a real (laptop-scale) DFPT run."""

    ground_state: GroundState
    polarizability: np.ndarray
    phase_seconds: Dict[str, float]
    cpscf_iterations_per_direction: List[int] = field(default_factory=list)
    backend_profile: Optional["BackendProfile"] = None
    verify_report: Optional["VerifyReport"] = None


@dataclass
class SimulationReport:
    """Outcome of one modeled configuration (machine, ranks, flags)."""

    machine: str
    n_ranks: int
    flags: OptimizationFlags
    n_atoms: int
    n_basis: int
    per_cycle_seconds: Dict[str, float]
    init_seconds: float
    memory_per_rank_bytes: int
    splines_per_rank: int
    points_per_rank: int
    comm_detail: Dict[str, float]

    @property
    def cycle_seconds(self) -> float:
        return sum(self.per_cycle_seconds.values())

    @property
    def feasible(self) -> bool:
        """Does the per-rank Hamiltonian fit the machine's memory?"""
        return self.memory_per_rank_bytes >= 0  # refined by caller w/ machine


class PerturbationSimulator:
    """Bind a structure + settings; run physics or scale models."""

    def __init__(
        self,
        structure: Structure,
        settings: Optional[RunSettings] = None,
        charge: int = 0,
        backend: Union[str, "ExecutionBackend", None] = None,
    ) -> None:
        self.structure = structure
        self.settings = settings or get_settings("light")
        self.charge = charge
        self.backend = backend
        self._workload: Optional[Workload] = None
        self._batches: Optional[List[GridBatch]] = None
        self._assignments: Dict[tuple, BatchAssignment] = {}
        self._memory_model = None

    # ------------------------------------------------------------------
    # Real physics (small systems)
    # ------------------------------------------------------------------
    def run_physics(self) -> PhysicsResult:
        """Ground-state SCF + CPSCF for all three directions.

        Intended for molecules up to a few tens of atoms; the grid and
        basis grow quadratically beyond that.
        """
        timer = PhaseTimer()
        driver = SCFDriver(
            self.structure,
            self.settings,
            charge=self.charge,
            timer=timer,
            backend=self.backend,
        )
        gs = driver.run()
        solver = DFPTSolver(
            gs, self.settings.cpscf, timer=timer, verifier=driver.verifier
        )
        alpha = np.empty((3, 3))
        iterations = []
        for j in range(3):
            result = solver.solve_direction(j)
            alpha[:, j] = result.polarizability_column(gs.dipoles)
            iterations.append(result.iterations)
        if driver.verifier is not None:
            driver.verifier.run_phase("polarizability", polarizability=alpha)
        return PhysicsResult(
            ground_state=gs,
            polarizability=alpha,
            phase_seconds=timer.as_dict(),
            cpscf_iterations_per_direction=iterations,
            backend_profile=driver.backend.profile,
            verify_report=driver.verifier.report if driver.verifier else None,
        )

    # ------------------------------------------------------------------
    # Scale modeling
    # ------------------------------------------------------------------
    @property
    def workload(self) -> Workload:
        if self._workload is None:
            self._workload = build_workload(self.structure, self.settings)
        return self._workload

    @property
    def batches(self) -> List[GridBatch]:
        """Summary batches shared by every modeled configuration."""
        if self._batches is None:
            self._batches = synthetic_batches(self.workload)
        return self._batches

    def assignment(self, n_ranks: int, locality: bool) -> BatchAssignment:
        """Cached batch->rank mapping for one (ranks, strategy) pair."""
        key = (n_ranks, locality)
        if key not in self._assignments:
            fn = locality_enhancing_mapping if locality else load_balancing_mapping
            self._assignments[key] = fn(self.batches, n_ranks)
        return self._assignments[key]

    def run_model(
        self,
        machine: MachineSpec,
        n_ranks: int,
        flags: Optional[OptimizationFlags] = None,
        calibration: Optional[PhaseCalibration] = None,
        use_accelerator: bool = True,
    ) -> SimulationReport:
        """Price one configuration at scale."""
        flags = flags or OptimizationFlags.all()
        if len(self.batches) < n_ranks:
            raise ExperimentError(
                f"{len(self.batches)} batches cannot feed {n_ranks} ranks; "
                "reduce ranks or grid batch size"
            )
        assignment = self.assignment(n_ranks, flags.locality_mapping)
        if self._memory_model is None:
            from repro.mapping.memory_model import HamiltonianMemoryModel

            self._memory_model = HamiltonianMemoryModel(self.structure)
        model = PhaseModel(
            workload=self.workload,
            machine=machine,
            n_ranks=n_ranks,
            flags=flags,
            batches=self.batches,
            assignment=assignment,
            calibration=calibration,
            use_accelerator=use_accelerator,
            memory_model=self._memory_model,
        )
        bd: PhaseBreakdown = model.breakdown()
        return SimulationReport(
            machine=machine.name,
            n_ranks=n_ranks,
            flags=flags,
            n_atoms=self.workload.n_atoms,
            n_basis=self.workload.n_basis,
            per_cycle_seconds=bd.per_cycle,
            init_seconds=bd.init,
            memory_per_rank_bytes=model.memory_per_rank,
            splines_per_rank=model.splines_per_rank,
            points_per_rank=model.points_per_rank,
            comm_detail=bd.comm_detail,
        )

"""Per-phase execution-time synthesis at arbitrary scale.

Combines the real geometry-derived workload (points per rank, basis
reach, spline counts, multipole row sizes) with the device and
communication models to produce per-CPSCF-cycle times for the paper's
phases: ``DM``, ``Sumup``, ``Rho``, ``H``, ``Comm`` (plus the one-off
``init``).  Every optimization flag changes the inputs the way the
paper describes — locality changes access patterns and spline counts,
packing/hierarchy change the reduction, fusion/collapse/indirect change
the kernel declarations.

The shape of each term follows Sections 3-4; the dimensionless
efficiency constants in :class:`PhaseCalibration` are fitted so the
reproduced figures land in the paper's reported ranges (see
EXPERIMENTS.md for measured-vs-paper numbers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.basis.ylm import n_lm
from repro.comm.schemes import (
    BaselineRowwiseAllreduce,
    PackedAllreduce,
    PackedHierarchicalAllreduce,
)
from repro.core.flags import OptimizationFlags
from repro.core.workload import Workload
from repro.errors import ExperimentError
from repro.grids.batching import GridBatch
from repro.mapping.memory_model import HamiltonianMemoryModel, atom_basis_counts
from repro.mapping.spline_model import spline_counts_per_rank
from repro.mapping.strategies import BatchAssignment
from repro.ocl.device import Device
from repro.ocl.fusion import horizontal_fusion, vertical_fusion
from repro.ocl.kernel import Kernel, NDRange
from repro.ocl.transforms import eliminate_indirect_accesses
from repro.runtime.machines import MachineSpec

#: The CPSCF phases of the artifact, in pipeline order.
CYCLE_PHASES = ("DM", "Sumup", "Rho", "H", "Comm")

#: Maximum angular momentum component of an atom (paper: p_max <= 9).
P_MAX = 9


@dataclass(frozen=True)
class PhaseCalibration:
    """Dimensionless fit constants of the phase model."""

    #: Fraction of peak FLOP rate dense grid kernels sustain.
    kernel_efficiency: float = 0.002
    #: Extra CSR gathers per *basis pair* per point when the Hamiltonian
    #: is sparse (locality mapping off): fetching one element through
    #: (row_ptr, col, val) costs extra latency-bound reads — Fig. 9(b).
    csr_gathers_per_pair: float = 0.005
    #: Extra streamed bytes per basis pair for CSR index arrays.
    csr_bytes_per_pair: float = 4.0
    #: Host-side DM GEMM-equivalent seconds per atom^1.2 (O(N^1.2)).
    dm_seconds_per_atom12: float = 8.0e-3
    #: ScaLAPACK-style collectives per cycle in the DM phase; priced
    #: with the machine's collective model, so the DM share grows with
    #: rank count exactly as the paper observes (22.5% -> 39.1%).
    dm_collectives_per_cycle: int = 60
    #: Payload of one DM collective (distributed P^(1) panel).
    dm_message_bytes: float = 1.0e6
    #: CSR element-access penalty cap for the un-optimized DM phase.
    dm_csr_latency_penalty_cap: float = 8.0
    #: Far-field multipole flops per point ~ c * N_atoms^0.7 (O(N^1.7)).
    farfield_flops_scale: float = 100.0
    #: Producer flops per (atom, lm, knot): radial Poisson solve,
    #: Adams-Moulton integration and spline coefficient factorization.
    spline_flops_per_knot: float = 30000.0
    #: Fraction of producer work inside the width-limited (p, m)
    #: Adams-Moulton nest (the part Section 4.4 collapses).
    am_loop_fraction: float = 0.1
    #: Consumer interpolation flops per (point, near atom, lm).
    interp_flops: float = 18.0
    #: Init (grid partition) flops per point (raw index arithmetic).
    init_flops_per_point: float = 8000.0
    #: Init indirect gathers per point before elimination (Section 4.3).
    init_indirect_per_point: float = 4.0


@dataclass
class PhaseBreakdown:
    """Modeled seconds per phase for one configuration."""

    per_cycle: Dict[str, float]
    init: float
    comm_detail: Dict[str, float] = field(default_factory=dict)

    @property
    def cycle_total(self) -> float:
        return sum(self.per_cycle.values())


class PhaseModel:
    """Prices one (workload, machine, ranks, flags) configuration."""

    def __init__(
        self,
        workload: Workload,
        machine: MachineSpec,
        n_ranks: int,
        flags: OptimizationFlags,
        batches: Sequence[GridBatch],
        assignment: BatchAssignment,
        calibration: Optional[PhaseCalibration] = None,
        use_accelerator: bool = True,
        memory_model: Optional[HamiltonianMemoryModel] = None,
    ) -> None:
        if n_ranks < 1:
            raise ExperimentError(f"need >= 1 rank, got {n_ranks}")
        self.w = workload
        self.machine = machine
        self.n_ranks = n_ranks
        self.flags = flags
        self.batches = batches
        self.assignment = assignment
        self.cal = calibration or PhaseCalibration()
        self._memory_model_arg = memory_model
        self.use_accelerator = use_accelerator
        if use_accelerator:
            self.device = Device(machine.accelerator)
            # Unfused kernels of the ranks sharing one accelerator are
            # launched "in turn" (Fig. 7(b)), so each rank effectively
            # sees 1/g of the device.
            self._share = machine.ranks_per_accelerator
        else:
            from repro.runtime.machines import HPC2_CPU_CORE

            self.device = Device(HPC2_CPU_CORE)
            self._share = 1

        self._derive_rank_quantities()

    # ------------------------------------------------------------------
    def _derive_rank_quantities(self) -> None:
        pts = self.assignment.points_per_rank(self.batches)
        self.points_per_rank = int(pts.max())
        self.batches_per_rank = max(
            1, math.ceil(len(self.batches) / self.n_ranks)
        )

        # Basis functions alive at a typical point: derived from the
        # batches' relevant-atom sets (sampled for big systems).
        counts = atom_basis_counts(self.w.structure)
        sample = self.batches[:: max(1, len(self.batches) // 128)]
        per_batch = [
            int(counts[list(b.relevant_atoms)].sum()) if b.relevant_atoms else 0
            for b in sample
        ]
        self.basis_per_point = max(1.0, float(np.mean(per_batch)))
        # Atoms whose multipole mesh reaches a typical point.
        rel_atoms = [len(b.relevant_atoms) for b in sample]
        self.near_atoms_per_point = max(1.0, float(np.mean(rel_atoms)))

        # Spline constructions per rank under this mapping (Fig. 9(c)),
        # computed for the representative (max-loaded) rank only so huge
        # batch sets stay cheap.
        owned = self.assignment.batches_of_rank
        rep_rank = int(np.argmax(pts))
        sub = [self.batches[b] for b in owned[rep_rank]]
        sc = spline_counts_per_rank(
            BatchAssignment(
                strategy=self.assignment.strategy,
                n_ranks=1,
                batches_of_rank=(tuple(range(len(sub))),),
            ),
            sub,
            self.w.structure,
        )
        self.splines_per_rank = int(sc[0])

        # Memory footprint per rank (feasibility; Figs. 9(a), weak scaling).
        self._memory_model = self._memory_model_arg or HamiltonianMemoryModel(
            self.w.structure
        )
        self.memory_per_rank = int(
            self._memory_model.per_rank_bytes(self.assignment, self.batches).max()
        )

    # ------------------------------------------------------------------
    # Kernel catalog
    # ------------------------------------------------------------------
    def _grid_kernel(self, name: str, flops_scale: float) -> Kernel:
        """Sumup/H-type kernel: per point, touch all local basis pairs."""
        nb = self.basis_per_point
        flops = flops_scale * nb * nb / self.cal.kernel_efficiency
        indirect = 0.0
        extra_bytes = 0.0
        if not self.flags.locality_mapping:
            # CSR Hamiltonian: extra pointer-chasing and index traffic
            # for every matrix element touched.
            indirect = self.cal.csr_gathers_per_pair * nb * nb
            extra_bytes = self.cal.csr_bytes_per_pair * nb * nb
        return Kernel(
            name=name,
            flops_per_item=flops,
            bytes_read_per_item=16.0 * nb + extra_bytes,
            bytes_written_per_item=8.0,
            indirect_accesses_per_item=indirect,
        )

    def _rho_producer_kernel(self) -> Kernel:
        """Spline-coefficient producer, one work-item per (atom, lm).

        The Adams-Moulton sub-loop can only occupy ``p_max + 1`` lanes
        until collapsed to ``(p_max + 1)^2`` (Section 4.4); its lane
        under-utilization is folded into the flop count so the fusion
        transforms can treat the producer as one kernel.
        """
        cal = self.cal
        flops = cal.spline_flops_per_knot * self.w.spline_knots / cal.kernel_efficiency
        lanes = self.device.spec.lanes_per_unit
        width = (P_MAX + 1) ** 2 if self.flags.loop_collapse else P_MAX + 1
        am_penalty = lanes / max(1.0, min(width, lanes))
        flops = flops * (
            (1.0 - cal.am_loop_fraction) + cal.am_loop_fraction * am_penalty
        )
        return Kernel(
            name="rho_producer_splines",
            flops_per_item=flops,
            bytes_read_per_item=8.0 * self.w.spline_knots,
            bytes_written_per_item=24.0 * self.w.spline_knots,
        )

    def _rho_consumer_kernel(self) -> Kernel:
        lm = n_lm(self.w.settings.l_max_hartree)
        near = self.cal.interp_flops * self.near_atoms_per_point * lm
        far = self.cal.farfield_flops_scale * self.w.n_atoms**0.7
        return Kernel(
            name="rho_consumer_interp",
            flops_per_item=(near + far) / self.cal.kernel_efficiency,
            bytes_read_per_item=12.0 * self.near_atoms_per_point,
            bytes_written_per_item=8.0,
        )

    def _init_kernel(self) -> Kernel:
        # Init is simple index arithmetic: raw flops, no efficiency
        # scaling — its cost is dominated by the indirect gathers.
        k = Kernel(
            name="grid_partition_init",
            flops_per_item=self.cal.init_flops_per_point,
            bytes_read_per_item=48.0,
            bytes_written_per_item=16.0,
            indirect_accesses_per_item=self.cal.init_indirect_per_point,
        )
        if self.flags.indirect_elimination:
            k = eliminate_indirect_accesses(k)
        return k

    # ------------------------------------------------------------------
    # Phase pricing
    # ------------------------------------------------------------------
    def _points_ndrange(self) -> NDRange:
        items = max(
            1, self.points_per_rank // max(1, self.batches_per_rank)
        )
        return NDRange(n_groups=self.batches_per_rank, items_per_group=items)

    def sumup_time(self) -> float:
        t = self.device.estimate(
            self._grid_kernel("sumup_n1", 2.0), self._points_ndrange()
        ).total_time
        return t * self._share

    def h_time(self) -> float:
        t = self.device.estimate(
            self._grid_kernel("h1_integration", 3.0), self._points_ndrange()
        ).total_time
        return t * self._share

    def rho_time(self) -> float:
        lm = n_lm(self.w.settings.l_max_hartree)
        producer = self._rho_producer_kernel()
        prod_range = NDRange(
            n_groups=max(1, self.splines_per_rank), items_per_group=lm
        )
        consumer = self._rho_consumer_kernel()
        cons_range = self._points_ndrange()

        intermediate = 24 * self.w.spline_knots * lm * max(1, self.splines_per_rank)
        if self.flags.kernel_fusion and self.use_accelerator:
            if self.machine.accelerator.persistent_buffers:
                rep = horizontal_fusion(
                    self.device,
                    producer,
                    prod_range,
                    consumer,
                    cons_range,
                    intermediate_bytes=intermediate,
                    group_size=self.machine.ranks_per_accelerator,
                )
                # One fused launch serves the whole accelerator group;
                # every rank's phase waits for it, so the per-rank wall
                # time is the fused pipeline itself.
                return rep.time_after
            rep = vertical_fusion(
                self.device,
                producer,
                prod_range,
                consumer,
                cons_range,
                intermediate_bytes=intermediate,
            )
            return rep.time_after * self._share
        t_prod = self.device.estimate(producer, prod_range).total_time
        t_cons = self.device.estimate(consumer, cons_range).total_time
        transfer = 2.0 * intermediate / self.device.spec.host_bandwidth
        return (t_prod + t_cons + transfer) * self._share

    def dm_time(self) -> float:
        from repro.runtime.costmodel import CommCostModel

        cal = self.cal
        base = cal.dm_seconds_per_atom12 * self.w.n_atoms**1.2 / self.n_ranks
        cost = CommCostModel(self.machine)
        sync = cal.dm_collectives_per_cycle * cost.allreduce(
            self.n_ranks, cal.dm_message_bytes
        )
        t = base + sync
        if not self.flags.locality_mapping:
            # Global sparse CSR traversal: more elements touched and a
            # latency penalty per access (bounded by the cap).
            model = self._memory_model
            local = self.assignment.atoms_per_rank(self.batches)
            counts = atom_basis_counts(self.w.structure)
            rep = max(local, key=len)
            n_loc = max(1, int(counts[np.asarray(list(rep), dtype=np.int64)].sum()))
            nnz_ratio = model.global_sparse_nnz() / (
                self.n_ranks * float(n_loc) ** 2
            )
            spec = self.device.spec
            gather = spec.offchip_latency / (
                spec.compute_units * spec.memory_level_parallelism
            )
            stream = 8.0 / spec.offchip_bandwidth
            penalty = min(
                cal.dm_csr_latency_penalty_cap, max(1.0, gather / stream / 8.0)
            )
            t = base * max(1.0, nnz_ratio) * penalty + sync
        return t

    def comm_time(self) -> tuple:
        """(total, detail) of the per-cycle collective costs."""
        if self.flags.packed_comm and self.flags.hierarchical_comm and (
            self.machine.shm_windows
        ):
            scheme = PackedHierarchicalAllreduce()
        elif self.flags.packed_comm:
            scheme = PackedAllreduce()
        else:
            scheme = BaselineRowwiseAllreduce()
        rep = scheme.estimate(
            self.machine,
            self.n_ranks,
            self.w.rho_multipole_rows,
            self.w.rho_multipole_row_bytes,
        )
        detail = {
            "scheme": rep.scheme,
            "communication": rep.communication_time,
            "local_update": rep.local_update_time,
        }
        return rep.total_time, detail

    def init_time(self) -> float:
        t = self.device.estimate(
            self._init_kernel(), self._points_ndrange()
        ).total_time
        return t * self._share

    def breakdown(self) -> PhaseBreakdown:
        """Full per-cycle phase times + one-off init."""
        comm, detail = self.comm_time()
        per_cycle = {
            "DM": self.dm_time(),
            "Sumup": self.sumup_time(),
            "Rho": self.rho_time(),
            "H": self.h_time(),
            "Comm": comm,
        }
        return PhaseBreakdown(
            per_cycle=per_cycle, init=self.init_time(), comm_detail=detail
        )

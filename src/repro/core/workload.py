"""Workload descriptors: everything the scale models need from a system.

For small systems the real integration grid and batches are used; the
200 000-atom runs would need ~10^8 materialized grid points, so
:func:`synthetic_batches` builds *summary* batches — correct point
counts, centroids and relevant-atom sets derived from the real geometry
and the real per-species grid dimensions — which is all the mapping,
memory and phase models consume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.atoms.structure import Structure
from repro.basis.ylm import n_lm
from repro.config import GridSettings, RunSettings, get_settings
from repro.grids.angular import angular_rule
from repro.grids.batching import GridBatch
from repro.grids.shells import radial_shells_for_species
from repro.mapping.memory_model import atom_basis_counts, atom_cutoffs_light


@dataclass(frozen=True)
class Workload:
    """Size summary of one simulation configuration.

    All quantities are derived from the actual structure and settings —
    no free parameters — so the scale models are anchored to the same
    geometry the physics engine integrates over.
    """

    structure: Structure
    settings: RunSettings
    n_atoms: int
    n_basis: int
    n_electrons: int
    n_grid_points: int
    points_per_atom: np.ndarray  # (n_atoms,)
    rho_multipole_rows: int  # one AllReduce row per atom
    rho_multipole_row_bytes: int  # shells x lm x 8 (max over species)
    spline_knots: int  # radial shells (max over species)
    avg_interacting_atoms: float  # atoms within basis reach of an atom

    @property
    def n_occupied(self) -> int:
        return self.n_electrons // 2


def _points_per_atom(structure: Structure, grids: GridSettings) -> np.ndarray:
    rule = angular_rule(grids.n_angular)
    cache: Dict[int, int] = {}
    out = np.empty(structure.n_atoms, dtype=np.int64)
    for i, elem in enumerate(structure.elements):
        if elem.z not in cache:
            shells = radial_shells_for_species(
                elem.z, grids.n_radial_base, multiplier=grids.radial_multiplier
            )
            cache[elem.z] = shells.n * rule.n_points
        out[i] = cache[elem.z]
    return out


def _avg_interacting_atoms(structure: Structure, sample: int = 256) -> float:
    """Mean number of atoms within basis reach of an atom (sampled)."""
    cutoffs = atom_cutoffs_light(structure)
    reach = 2.0 * float(cutoffs.max())
    n = structure.n_atoms
    idx = np.linspace(0, n - 1, min(sample, n)).astype(np.int64)
    coords = structure.coords
    counts = []
    for i in idx:
        d = np.linalg.norm(coords - coords[i], axis=1)
        counts.append(int(np.count_nonzero(d <= reach)))
    return float(np.mean(counts))


def build_workload(
    structure: Structure, settings: Optional[RunSettings] = None
) -> Workload:
    """Summarize a structure + settings into model inputs."""
    settings = settings or get_settings("light")
    ppa = _points_per_atom(structure, settings.grids)
    shells_max = 0
    for elem in set(structure.elements):
        shells = radial_shells_for_species(
            elem.z,
            settings.grids.n_radial_base,
            multiplier=settings.grids.radial_multiplier,
        )
        shells_max = max(shells_max, shells.n)
    row_bytes = shells_max * n_lm(settings.l_max_hartree) * 8
    return Workload(
        structure=structure,
        settings=settings,
        n_atoms=structure.n_atoms,
        n_basis=int(atom_basis_counts(structure).sum()),
        n_electrons=structure.n_electrons,
        n_grid_points=int(ppa.sum()),
        points_per_atom=ppa,
        rho_multipole_rows=structure.n_atoms,
        rho_multipole_row_bytes=row_bytes,
        spline_knots=shells_max,
        avg_interacting_atoms=_avg_interacting_atoms(structure),
    )


def synthetic_batches(
    workload: Workload,
    target_points: Optional[int] = None,
) -> List[GridBatch]:
    """Summary batches for systems too large to materialize the grid.

    Atoms are visited in spatially sorted order (widest bounding-box
    dimension); consecutive atoms' point masses are cut into batches of
    ~``target_points``.  Centroids are atom positions, radii the grid
    extent — the quantities the mapping strategies and memory models
    read.  Relevant-atom sets are attached with the same cutoff logic
    as the real batches.
    """
    structure = workload.structure
    if target_points is None:
        target_points = workload.settings.grids.batch_target_points

    coords = structure.coords
    cutoffs = atom_cutoffs_light(structure)

    # Every atom's point mass exceeds the batch target at realistic
    # settings (a light H atom alone carries >1000 points), so the real
    # cut planes always slice *within* atomic grids.  Summary batches
    # are therefore per-atom fragments: atom a contributes
    # ceil(mass_a / target) batches located at the atom, never mixing
    # atoms (which would fabricate spatially extended batches).
    ppa = workload.points_per_atom.astype(np.int64)
    n_frag = np.maximum(1, -(-ppa // target_points))

    # Emit fragments in spatial order along the widest dimension so
    # batch ids correlate with space (as the real batch stream does).
    lo, hi = structure.bounding_box()
    dim = int(np.argmax(hi - lo))
    order = np.argsort(coords[:, dim], kind="stable")

    batches: List[GridBatch] = []
    for a in order:
        a = int(a)
        frags = int(n_frag[a])
        base = int(ppa[a]) // frags
        extra = int(ppa[a]) - base * frags
        for k in range(frags):
            npts = base + (1 if k < extra else 0)
            batches.append(
                GridBatch(
                    index=len(batches),
                    point_indices=np.empty(npts, dtype=np.int64),
                    centroid=coords[a].copy(),
                    radius=2.0,  # one atom's grid fragment envelope (Bohr)
                    owner_atoms=(a,),
                    relevant_atoms=(),
                )
            )

    # Attach relevant atoms (same rule as the real pipeline).
    from repro.grids.batching import attach_relevant_atoms

    return attach_relevant_atoms(batches, structure, cutoffs)

"""Density-functional perturbation theory for homogeneous electric fields.

The paper's primary physics: the self-consistent response cycle of
Fig. 1 — response density matrix (Eq. 7), response density (Eq. 8),
response Hartree potential (Eq. 9), response Hamiltonian (Eqs. 10-12) —
iterated to convergence, yielding polarizabilities (Eq. 13).
"""

from repro.dfpt.response import DFPTSolver, ResponseResult
from repro.dfpt.polarizability import polarizability_tensor, isotropic_polarizability
from repro.dfpt.finite_difference import finite_difference_polarizability
from repro.dfpt.dielectric import (
    clausius_mossotti_dielectric,
    refractive_index,
    polarizability_anisotropy,
)

__all__ = [
    "DFPTSolver",
    "ResponseResult",
    "polarizability_tensor",
    "isotropic_polarizability",
    "finite_difference_polarizability",
    "clausius_mossotti_dielectric",
    "refractive_index",
    "polarizability_anisotropy",
]

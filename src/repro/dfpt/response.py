"""The coupled-perturbed SCF (CPSCF) cycle of Fig. 1.

For a unit electric field along direction J the bare perturbation is
``h^(1) = -r_J`` (Eq. 11).  Each cycle:

* **DM phase** — first-order coefficients from the finite-basis
  Sternheimer solution ``U_ai = H^(1)_ai / (eps_i - eps_a)`` and the
  response density matrix P^(1) of Eq. (7);
* **Sumup phase** — response density on the grid (Eq. 8);
* **Rho phase** — response electrostatic potential via the multipole
  Poisson solver (Eq. 9);
* **H phase** — response Hamiltonian (Eq. 10) including the xc kernel
  term of Eq. (12);

iterated with linear mixing until the response density matrix is
stationary.  Phase names deliberately match the paper's artifact
(``DM``, ``Sumup``, ``Rho``, ``H``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple, Union

import numpy as np

from repro.config import CPSCFSettings
from repro.constants import EIGENVALUE_GAP_FLOOR
from repro.dft.scf import GroundState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.backends.base import ExecutionBackend
    from repro.verify.invariants import Verifier
from repro.dft.xc import lda_xc_kernel
from repro.errors import CPSCFConvergenceError
from repro.obs.tracer import obs_event, trace_context
from repro.runtime.faults import CycleFaultInjector
from repro.utils.timing import PhaseTimer


@dataclass
class ResponseResult:
    """Converged first-order response for one field direction."""

    direction: int
    response_density_matrix: np.ndarray  # P^(1)
    response_orbitals: np.ndarray  # C^(1), occupied columns
    response_density: np.ndarray  # n^(1) on the grid
    response_potential: np.ndarray  # v^(1)_es,tot + v^(1)_xc on the grid
    iterations: int
    residual: float
    restarts: int = 0  # cycles redone after injected faults

    def polarizability_column(self, dipoles: np.ndarray) -> np.ndarray:
        """alpha_{I, J=direction} = Tr(P^(1) D_I) = int r_I n^(1) (Eq. 13).

        The paper's convention: the perturbation is ``-r_J`` (Eq. 11)
        and alpha is the response of ``int r_I n`` — both signs absorb
        the electron charge, so the diagonal comes out positive.
        """
        return np.array(
            [float(np.sum(self.response_density_matrix * dipoles[i])) for i in range(3)]
        )


class DFPTSolver:
    """CPSCF solver bound to one converged ground state."""

    def __init__(
        self,
        ground_state: GroundState,
        settings: Optional[CPSCFSettings] = None,
        timer: Optional[PhaseTimer] = None,
        fault_injector: Optional[CycleFaultInjector] = None,
        backend: Union[str, "ExecutionBackend", None] = None,
        verifier: Optional["Verifier"] = None,
    ) -> None:
        self.gs = ground_state
        self.settings = settings or CPSCFSettings()
        self.timer = timer or PhaseTimer()
        self.fault_injector = fault_injector
        self.verifier = verifier
        if backend is None:
            # Share the ground state's backend (and its profile), so SCF
            # and CPSCF run the same execution engine end to end.
            self.backend = ground_state.builder.backend
        else:
            from repro.backends.registry import resolve_backend

            self.backend = resolve_backend(backend, ground_state.builder)
        # The xc kernel is a ground-state property; compute it once.
        self._fxc = lda_xc_kernel(ground_state.density)

        occ_mask = ground_state.occupations > 0.0
        self._c_occ = ground_state.orbitals[:, occ_mask]
        self._c_virt = ground_state.orbitals[:, ~occ_mask]
        self._f_occ = ground_state.occupations[occ_mask]
        eps = ground_state.eigenvalues
        self._eps_occ = eps[occ_mask]
        self._eps_virt = eps[~occ_mask]
        if self._c_virt.shape[1] == 0:
            raise CPSCFConvergenceError(
                "no virtual orbitals: the basis offers no response freedom",
                iterations=0,
                residual=0.0,
            )
        # Gap denominators eps_i - eps_a (occupied minus virtual): (n_virt, n_occ).
        gaps = self._eps_occ[None, :] - self._eps_virt[:, None]
        small = np.abs(gaps) < EIGENVALUE_GAP_FLOOR
        if np.any(small):
            gaps = np.where(small, -EIGENVALUE_GAP_FLOOR, gaps)
        self._inv_gaps = 1.0 / gaps

    # ------------------------------------------------------------------
    def _first_order_dm(
        self, h1: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """DM phase: U_ai, C^(1) and P^(1) from a response Hamiltonian."""
        return self.backend.first_order_dm(
            h1, self._inv_gaps, self._c_occ, self._c_virt, self._f_occ
        )

    def solve_direction(self, direction: int) -> ResponseResult:
        """Run the CPSCF loop for one Cartesian field direction."""
        steps = self.iter_direction(direction)
        while True:
            try:
                next(steps)
            except StopIteration as stop:
                return stop.value

    def iter_direction(self, direction: int):
        """Generator form of :meth:`solve_direction`: one cycle per ``next()``.

        Exactly :meth:`solve_direction`'s loop with a yield at every
        cycle boundary, so a fleet driver can interleave CPSCF cycles
        of different molecules without touching any single molecule's
        floating-point sequence.  The converged :class:`ResponseResult`
        is the generator's return value (``StopIteration.value``).
        """
        if direction not in (0, 1, 2):
            raise ValueError(f"direction must be 0, 1 or 2, got {direction}")
        gs = self.gs
        cfg = self.settings
        h1_ext = -gs.dipoles[direction]

        p1 = np.zeros_like(gs.density_matrix)
        c1 = np.zeros_like(self._c_occ)
        n1 = np.zeros_like(gs.density)
        v1_total = np.zeros_like(gs.density)
        residual = np.inf
        restarts = 0
        attempt = 0

        iteration = 1
        while iteration <= cfg.max_iterations:
            # Checkpoint of the last converged cycle; an injected fault
            # discards this cycle's work and restarts from here.
            checkpoint = p1.copy()
            with trace_context(
                backend=self.backend.name,
                loop="cpscf",
                direction=direction,
                cycle=iteration,
            ):
                with self.timer.phase("Sumup"):
                    n1 = self.backend.density_on_grid(p1)
                with self.timer.phase("Rho"):
                    v1_h = gs.solver.hartree_potential(n1)
                with self.timer.phase("H"):
                    v1_xc = self._fxc * n1
                    v1_total = v1_h + v1_xc
                    h1 = h1_ext + self.backend.potential_matrix(v1_total)
                with self.timer.phase("DM"):
                    _, c1, p1_new = self._first_order_dm(h1)

            if self.fault_injector is not None and self.fault_injector.cycle_fault(
                f"cpscf{direction}", iteration, attempt
            ):
                obs_event(
                    "cycle_fault", category="fault",
                    site=f"cpscf{direction}[{iteration}]", attempt=attempt,
                )
                p1 = checkpoint  # restore: redo this cycle from scratch
                restarts += 1
                attempt += 1
                yield iteration
                continue
            attempt = 0

            residual = float(np.abs(p1_new - p1).max())
            p1 = p1 + cfg.mixing_factor * (p1_new - p1)
            if residual < cfg.response_tolerance:
                n1 = self.backend.density_on_grid(p1)
                if self.verifier is not None:
                    self.verifier.run_phase(
                        "cpscf", gs=gs, p1=p1, h1=h1, direction=direction
                    )
                return ResponseResult(
                    direction=direction,
                    response_density_matrix=p1,
                    response_orbitals=c1,
                    response_density=n1,
                    response_potential=v1_total,
                    iterations=iteration,
                    residual=residual,
                    restarts=restarts,
                )
            iteration += 1
            yield iteration

        raise CPSCFConvergenceError(
            f"CPSCF direction {direction} did not converge in "
            f"{cfg.max_iterations} iterations (residual {residual:.2e})",
            iterations=cfg.max_iterations,
            residual=residual,
        )

    def solve_all(self) -> List[ResponseResult]:
        """Responses for all three field directions."""
        return [self.solve_direction(j) for j in range(3)]

"""Finite-field reference polarizabilities.

The gold-standard validation of the DFPT implementation: run the full
SCF in small external fields +-h along each axis and differentiate the
dipole moment numerically.  DFPT and this reference share every
substrate (grid, basis, Hartree solver, xc), so agreement isolates the
correctness of the response cycle itself.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.atoms.structure import Structure
from repro.config import RunSettings, get_settings
from repro.dft.scf import SCFDriver


def finite_difference_polarizability(
    structure: Structure,
    settings: Optional[RunSettings] = None,
    step: float = 1e-3,
    charge: int = 0,
    driver: Optional[SCFDriver] = None,
) -> np.ndarray:
    """Central-difference alpha_IJ = [mu_I(+h e_J) - mu_I(-h e_J)] / 2h.

    Parameters
    ----------
    structure:
        The molecule.
    settings:
        Run settings (defaults to "light").
    step:
        Field magnitude h in atomic units; 1e-3 balances truncation
        against SCF convergence noise.
    charge:
        Net charge passed through to the SCF driver.
    driver:
        Optionally reuse an existing driver (its integrals are reused
        across all six field runs either way).
    """
    if step <= 0.0:
        raise ValueError(f"field step must be positive, got {step}")
    settings = settings or get_settings("light")
    driver = driver or SCFDriver(structure, settings, charge=charge)

    alpha = np.empty((3, 3))
    for j in range(3):
        field = np.zeros(3)
        field[j] = step
        mu_plus = driver.run(external_field=field).dipole_moment()
        mu_minus = driver.run(external_field=-field).dipole_moment()
        # The SCF applies the paper's perturbation -xi.r while the
        # physical dipole is -<r> + nuclear; Eq. 13's alpha (response of
        # +int r n to -r_J) is therefore minus the dipole derivative.
        alpha[:, j] = -(mu_plus - mu_minus) / (2.0 * step)
    return alpha

"""Polarizability tensors from converged responses (Eq. 13)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import CPSCFSettings
from repro.dfpt.response import DFPTSolver
from repro.dft.scf import GroundState


def polarizability_tensor(
    ground_state: GroundState,
    settings: Optional[CPSCFSettings] = None,
    solver: Optional[DFPTSolver] = None,
) -> np.ndarray:
    """Static dipole polarizability alpha_IJ (atomic units, Bohr^3).

    alpha_IJ = d mu_I / d xi_J = -Tr(P^(1,J) D_I): one CPSCF solve per
    field direction J fills one column.
    """
    solver = solver or DFPTSolver(ground_state, settings)
    alpha = np.empty((3, 3))
    for j in range(3):
        result = solver.solve_direction(j)
        alpha[:, j] = result.polarizability_column(ground_state.dipoles)
    return alpha


def isotropic_polarizability(alpha: np.ndarray) -> float:
    """Orientation average: Tr(alpha) / 3."""
    alpha = np.asarray(alpha, dtype=float)
    if alpha.shape != (3, 3):
        raise ValueError(f"expected a 3x3 tensor, got {alpha.shape}")
    return float(np.trace(alpha) / 3.0)

"""Dielectric properties from polarizabilities.

The last step of the paper's pipeline (Section 2.1: "the polarizability
and dielectric constants are computed").  For molecular materials the
macroscopic dielectric constant follows from the molecular
polarizability via the Clausius-Mossotti relation

    (eps - 1) / (eps + 2) = (4 pi / 3) * alpha_iso / v_mol ,

with ``v_mol`` the volume per molecule.
"""

from __future__ import annotations

import numpy as np

from repro.dfpt.polarizability import isotropic_polarizability


def clausius_mossotti_dielectric(alpha: np.ndarray, molecular_volume: float) -> float:
    """Dielectric constant of a molecular material.

    Parameters
    ----------
    alpha:
        3x3 polarizability tensor in atomic units (Bohr^3).
    molecular_volume:
        Volume per molecule in Bohr^3.

    Returns
    -------
    The static dielectric constant eps > 1.

    Raises
    ------
    ValueError
        If the packing exceeds the Clausius-Mossotti pole
        (``4 pi alpha / 3 v >= 1``), where the relation diverges —
        a polarization catastrophe rather than a physical answer.
    """
    if molecular_volume <= 0.0:
        raise ValueError(f"molecular volume must be positive, got {molecular_volume}")
    iso = isotropic_polarizability(alpha)
    if iso <= 0.0:
        raise ValueError(f"polarizability must be positive, got {iso}")
    x = 4.0 * np.pi * iso / (3.0 * molecular_volume)
    if x >= 1.0:
        raise ValueError(
            f"Clausius-Mossotti pole reached (4 pi alpha / 3V = {x:.3f} >= 1); "
            "reduce density or check the polarizability"
        )
    return float((1.0 + 2.0 * x) / (1.0 - x))


def refractive_index(alpha: np.ndarray, molecular_volume: float) -> float:
    """Optical refractive index n = sqrt(eps) (electronic response only)."""
    return float(np.sqrt(clausius_mossotti_dielectric(alpha, molecular_volume)))


def polarizability_anisotropy(alpha: np.ndarray) -> float:
    """Polarizability anisotropy Delta-alpha (rotational-Raman relevant).

    ``Delta^2 = (3 Tr(A^2) - Tr(A)^2) / 2`` for the symmetric tensor A —
    zero for isotropic response, positive otherwise.
    """
    alpha = np.asarray(alpha, dtype=float)
    if alpha.shape != (3, 3):
        raise ValueError(f"expected a 3x3 tensor, got {alpha.shape}")
    sym = 0.5 * (alpha + alpha.T)
    tr = np.trace(sym)
    tr2 = np.trace(sym @ sym)
    value = max(0.0, (3.0 * tr2 - tr * tr) / 2.0)
    return float(np.sqrt(value))

"""Harmonic vibrations by finite differences of SCF total energies.

The SC'21 predecessor of this paper accelerated all-electron *Raman*
simulations; Raman activities need normal modes and polarizability
derivatives along them.  This module supplies the vibrational part: a
central-finite-difference Hessian over the real SCF engine,
mass-weighted normal-mode analysis, and harmonic frequencies in cm^-1.

Cost is 2*(3N)^2/2 + ... SCF runs — intended for the small validation
molecules (H2, H2O); the driver reuses its integrals across
displacements of the *same* geometry only, so each displacement builds
fresh (geometries differ).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.atoms.structure import Structure
from repro.config import RunSettings, get_settings
from repro.dft.scf import SCFDriver

#: Atomic masses (amu) of the supported species.
ATOMIC_MASSES = {"H": 1.008, "C": 12.011, "N": 14.007, "O": 15.999, "S": 32.06}

#: amu in electron masses.
AMU_IN_ME = 1822.888486

#: Hartree-frequency (sqrt(Ha / (me Bohr^2))) to cm^-1.
AU_FREQUENCY_IN_CM1 = 219474.63


@dataclass
class NormalModes:
    """Result of a harmonic analysis.

    Attributes
    ----------
    frequencies_cm1:
        All 3N frequencies (cm^-1), ascending; imaginary frequencies
        are reported as negative numbers.  The first ~6 (5 for linear
        molecules) are near-zero translations/rotations.
    modes:
        ``(3N, 3N)`` mass-weighted eigenvectors (columns), aligned with
        the frequencies.
    hessian:
        The raw ``(3N, 3N)`` Cartesian Hessian (Ha/Bohr^2).
    """

    structure: Structure
    frequencies_cm1: np.ndarray
    modes: np.ndarray
    hessian: np.ndarray

    def vibrational_frequencies(self, n_rigid: int = 6) -> np.ndarray:
        """Frequencies with the rigid-body block dropped."""
        return self.frequencies_cm1[n_rigid:]


def _displaced(structure: Structure, atom: int, axis: int, delta: float) -> Structure:
    coords = structure.coords.copy()
    coords[atom, axis] += delta
    return Structure(structure.symbols, coords, name=structure.name)


def finite_difference_hessian(
    structure: Structure,
    settings: Optional[RunSettings] = None,
    step: float = 5e-3,
    charge: int = 0,
) -> np.ndarray:
    """Central-difference Hessian of the SCF total energy (Ha/Bohr^2).

    Mixed second derivatives use the 4-point formula; diagonals the
    3-point formula with the unperturbed energy.
    """
    if step <= 0.0:
        raise ValueError(f"displacement step must be positive, got {step}")
    settings = settings or get_settings("minimal")
    n3 = 3 * structure.n_atoms

    def energy(s: Structure) -> float:
        return SCFDriver(s, settings, charge=charge).run().total_energy

    e0 = energy(structure)
    # Single displacements (cached for the diagonal and the mixed terms).
    e_plus = np.empty(n3)
    e_minus = np.empty(n3)
    for i in range(n3):
        atom, axis = divmod(i, 3)
        e_plus[i] = energy(_displaced(structure, atom, axis, step))
        e_minus[i] = energy(_displaced(structure, atom, axis, -step))

    h = np.empty((n3, n3))
    for i in range(n3):
        h[i, i] = (e_plus[i] - 2.0 * e0 + e_minus[i]) / step**2
        ai, xi = divmod(i, 3)
        for j in range(i + 1, n3):
            aj, xj = divmod(j, 3)
            spp = _displaced(_displaced(structure, ai, xi, step), aj, xj, step)
            smm = _displaced(_displaced(structure, ai, xi, -step), aj, xj, -step)
            e_pp = energy(spp)
            e_mm = energy(smm)
            h[i, j] = h[j, i] = (
                e_pp - e_plus[i] - e_plus[j] + 2.0 * e0 - e_minus[i] - e_minus[j] + e_mm
            ) / (2.0 * step**2)
    return h


def normal_modes(
    structure: Structure,
    settings: Optional[RunSettings] = None,
    step: float = 5e-3,
    charge: int = 0,
    hessian: Optional[np.ndarray] = None,
) -> NormalModes:
    """Mass-weighted harmonic analysis."""
    if hessian is None:
        hessian = finite_difference_hessian(structure, settings, step, charge)
    masses = np.array(
        [ATOMIC_MASSES[s] * AMU_IN_ME for s in structure.symbols]
    )
    inv_sqrt_m = 1.0 / np.sqrt(np.repeat(masses, 3))
    weighted = hessian * inv_sqrt_m[:, None] * inv_sqrt_m[None, :]
    evals, evecs = np.linalg.eigh(0.5 * (weighted + weighted.T))
    freqs = np.sign(evals) * np.sqrt(np.abs(evals)) * AU_FREQUENCY_IN_CM1
    return NormalModes(
        structure=structure,
        frequencies_cm1=freqs,
        modes=evecs,
        hessian=hessian,
    )

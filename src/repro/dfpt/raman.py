"""Raman activities: polarizability derivatives along normal modes.

Bridges the two halves of the pipeline exactly like the paper's SC'21
predecessor ("all-electron ab initio simulation of Raman spectra"):
DFPT polarizabilities (this paper's machinery) differentiated along the
harmonic normal modes give the Raman activity of each mode,

    S_k = 45 a_k'^2 + 7 gamma_k'^2 ,

with ``a'`` the isotropic and ``gamma'`` the anisotropic invariant of
``d alpha / d Q_k``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.atoms.structure import Structure
from repro.config import RunSettings, get_settings
from repro.dfpt.polarizability import polarizability_tensor
from repro.dfpt.vibrations import AMU_IN_ME, NormalModes, ATOMIC_MASSES
from repro.dft.scf import SCFDriver


@dataclass
class RamanSpectrum:
    """Frequencies and activities of the vibrational modes."""

    frequencies_cm1: np.ndarray  # vibrational modes only
    activities: np.ndarray  # A^4/amu-style relative units (a.u. based)

    def dominant_mode(self) -> int:
        """Index of the strongest Raman-active mode."""
        return int(np.argmax(self.activities))


def _alpha_at(structure: Structure, settings: RunSettings, charge: int) -> np.ndarray:
    gs = SCFDriver(structure, settings, charge=charge).run()
    return polarizability_tensor(gs, settings.cpscf)


def raman_spectrum(
    structure: Structure,
    modes: NormalModes,
    settings: Optional[RunSettings] = None,
    step: float = 1e-2,
    charge: int = 0,
    n_rigid: int = 6,
) -> RamanSpectrum:
    """Activities of every vibrational mode by central differences.

    Parameters
    ----------
    structure:
        The equilibrium geometry (must match *modes*).
    modes:
        Harmonic analysis from :func:`repro.dfpt.vibrations.normal_modes`.
    step:
        Dimensionless normal-coordinate displacement amplitude.
    n_rigid:
        Number of leading (translation/rotation) modes to skip — 5 for
        linear molecules, 6 otherwise.
    """
    if step <= 0.0:
        raise ValueError(f"step must be positive, got {step}")
    settings = settings or get_settings("minimal")
    masses = np.array(
        [ATOMIC_MASSES[s] * AMU_IN_ME for s in structure.symbols]
    )
    inv_sqrt_m = 1.0 / np.sqrt(np.repeat(masses, 3))

    freqs = modes.frequencies_cm1[n_rigid:]
    activities: List[float] = []
    for k in range(n_rigid, modes.modes.shape[1]):
        # Cartesian displacement of the mass-weighted mode.
        direction = (modes.modes[:, k] * inv_sqrt_m).reshape(-1, 3)
        norm = np.linalg.norm(direction)
        direction = direction / norm
        plus = Structure(
            structure.symbols, structure.coords + step * direction, structure.name
        )
        minus = Structure(
            structure.symbols, structure.coords - step * direction, structure.name
        )
        d_alpha = (_alpha_at(plus, settings, charge) - _alpha_at(minus, settings, charge)) / (
            2.0 * step
        )
        a_iso = np.trace(d_alpha) / 3.0
        sym = 0.5 * (d_alpha + d_alpha.T)
        gamma2 = max(
            0.0, (3.0 * np.trace(sym @ sym) - np.trace(sym) ** 2) / 2.0
        )
        activities.append(45.0 * a_iso**2 + 7.0 * gamma2)

    return RamanSpectrum(
        frequencies_cm1=freqs, activities=np.array(activities)
    )

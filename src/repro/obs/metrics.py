"""Counters, gauges and histograms for the observability layer (DESIGN §10.3).

A *metric* is a named scalar accumulated over one run — bytes reduced,
block-cache hits, basis blocks evaluated, collective retries — as
opposed to a *span*, which is a timed region.  The registry is
deliberately deterministic: metric values depend only on the work
performed, never on wall-clock time, so two bit-identical runs (e.g.
the same sweep under two execution backends) produce identical
snapshots.  That determinism is what the regression gate and the
cross-backend tests assert.

>>> reg = MetricsRegistry()
>>> reg.counter("comm.bytes_reduced").inc(1024)
>>> reg.counter("comm.bytes_reduced").inc(1024)
>>> reg.gauge("cache.peak_bytes").set(4096)
>>> reg.histogram("batch.points").observe(200)
>>> reg.as_dict()["counters"]["comm.bytes_reduced"]
2048
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class Counter:
    """Monotonically increasing integer metric.

    >>> c = Counter("retries")
    >>> c.inc(); c.inc(2); c.value
    3
    """

    name: str
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (must be >= 0; counters never decrease)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease by {amount}")
        self.value += int(amount)


@dataclass
class Gauge:
    """Last-written scalar metric (e.g. a peak or a configuration value).

    >>> g = Gauge("cache.peak_bytes")
    >>> g.set(10.0); g.set_max(4.0); g.value
    10.0
    """

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = float(value)

    def set_max(self, value: float) -> None:
        """Keep the running maximum of all written values."""
        self.value = max(self.value, float(value))


@dataclass
class Histogram:
    """Streaming summary (count/sum/min/max) of observed samples.

    Samples are not stored individually, so memory is O(1) no matter
    how many observations arrive.

    >>> h = Histogram("batch.points")
    >>> for v in (100, 300, 200): h.observe(v)
    >>> h.count, h.sum, h.min, h.max
    (3, 600.0, 100.0, 300.0)
    >>> round(h.mean, 1)
    200.0
    """

    name: str
    count: int = 0
    sum: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def observe(self, value: float) -> None:
        """Fold one sample in."""
        v = float(value)
        self.count += 1
        self.sum += v
        self.min = v if v < self.min else self.min
        self.max = v if v > self.max else self.max

    @property
    def mean(self) -> float:
        """Sample mean (0.0 before any observation)."""
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Get-or-create store of named metrics with a deterministic snapshot.

    Names are free-form dotted paths (``comm.bytes_reduced``,
    ``backend.Sumup.calls``); the snapshot is sorted by name so its JSON
    form is byte-stable across runs that performed the same work.

    >>> reg = MetricsRegistry()
    >>> reg.counter("a").inc(); reg.counter("a").value
    1
    >>> reg.counter("a") is reg.counter("a")
    True
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under *name* (created on first use)."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under *name* (created on first use)."""
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under *name* (created on first use)."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        return sorted(
            list(self._counters) + list(self._gauges) + list(self._histograms)
        )

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """JSON-friendly snapshot, sorted by metric name."""
        return {
            "counters": {n: self._counters[n].value for n in sorted(self._counters)},
            "gauges": {n: self._gauges[n].value for n in sorted(self._gauges)},
            "histograms": {
                n: {
                    "count": h.count,
                    "sum": h.sum,
                    "min": h.min if h.count else 0.0,
                    "max": h.max if h.count else 0.0,
                    "mean": h.mean,
                }
                for n, h in sorted(self._histograms.items())
            },
        }

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's accumulations into this one."""
        for name, c in other._counters.items():
            self.counter(name).inc(c.value)
        for name, g in other._gauges.items():
            self.gauge(name).set_max(g.value)
        for name, h in other._histograms.items():
            mine = self.histogram(name)
            mine.count += h.count
            mine.sum += h.sum
            if h.count:
                mine.min = min(mine.min, h.min)
                mine.max = max(mine.max, h.max)

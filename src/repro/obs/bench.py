"""Backend-benchmark emission shared by the CLI gate and the bench script.

The measurement itself (repeated Sumup + H sweeps over every registered
execution backend on an over-cache-limit system, all outputs asserted
bit-identical) lives here so that both entry points produce the same
``BENCH_backends.json`` shape:

* ``benchmarks/bench_backends.py`` — prints the comparison table and
  (re)writes the committed baseline;
* ``repro bench-check`` — re-runs the emission at the baseline's own
  parameters and feeds it to :mod:`repro.obs.regress`.

The emission carries a :class:`~repro.obs.report.Provenance` block, so
every ``BENCH_*.json`` names the commit, seed and machine models it was
produced under (the EXPERIMENTS.md footer policy).

The document is *byte-stable by construction*: every volatile
measurement (wall seconds, speedups, per-phase wall slices) lives under
a ``timings`` subtree, everything else is deterministic, and
:func:`stable_view` strips the ``timings`` subtrees so two runs of the
same code serialize to identical bytes (writers use sorted keys).
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from repro.errors import ExperimentError
from repro.obs.report import collect_provenance

#: Registered backends in comparison order (numpy is the reference).
BACKEND_ORDER = ("numpy", "batched", "device")

#: Seed of the random density/potential inputs the sweeps contract.
BENCH_SEED = 2023


def build_builders(level: str, cache_limit: int) -> Dict[str, object]:
    """One MatrixBuilder per backend over a shared basis/grid/batches.

    ``cache_limit=0`` disallows the full basis table, forcing the
    legacy numpy path to re-evaluate every block per sweep — the
    contrast the benchmark exists to measure.
    """
    from repro.atoms import water
    from repro.basis import build_basis
    from repro.config import get_settings
    from repro.dft.hamiltonian import MatrixBuilder
    from repro.grids import build_grid

    structure = water()
    settings = get_settings(level)
    basis = build_basis(structure)
    grid = build_grid(structure, settings.grids, with_partition=True)
    reference = MatrixBuilder(basis, grid, backend="numpy", cache_limit=cache_limit)
    builders: Dict[str, object] = {"numpy": reference}
    for name in BACKEND_ORDER[1:]:
        builders[name] = MatrixBuilder(
            basis,
            grid,
            batches=reference.batches,
            backend=name,
            cache_limit=cache_limit,
        )
    return builders


def sweep(builder, n_sweeps: int, seed: int = BENCH_SEED) -> dict:
    """Time ``n_sweeps`` Sumup + H passes; return wall time and outputs."""
    rng = np.random.default_rng(seed)
    nb = builder.basis.n_basis
    p = rng.normal(size=(nb, nb))
    p = p + p.T
    v = rng.normal(size=builder.grid.n_points)
    density = potential = None
    start = time.perf_counter()
    for _ in range(n_sweeps):
        density = builder.backend.density_on_grid(p)
        potential = builder.potential_matrix(v)
    wall = time.perf_counter() - start
    return {"wall": wall, "density": density, "potential": potential}


def backend_emission(level: str, n_sweeps: int) -> dict:
    """Run the full comparison; return the ``BENCH_backends.json`` document.

    Raises :class:`~repro.errors.ExperimentError` if any backend's
    outputs diverge bitwise from the numpy reference — a benchmark must
    never time a wrong answer.
    """
    if n_sweeps < 1:
        raise ExperimentError(f"need >= 1 sweep, got {n_sweeps}")
    builders = build_builders(level, cache_limit=0)
    reference = builders["numpy"]
    results = {name: sweep(builders[name], n_sweeps) for name in BACKEND_ORDER}

    ref = results["numpy"]
    for name in BACKEND_ORDER[1:]:
        if not np.array_equal(ref["density"], results[name]["density"]):
            raise ExperimentError(f"{name} density diverged from numpy")
        if not np.array_equal(ref["potential"], results[name]["potential"]):
            raise ExperimentError(f"{name} potential matrix diverged from numpy")

    report: dict = {
        "system": "water",
        "level": level,
        "n_points": reference.grid.n_points,
        "n_basis": reference.basis.n_basis,
        "n_sweeps": n_sweeps,
        "cache_limit": 0,
        "backends": {},
        "provenance": collect_provenance(seed=BENCH_SEED).as_dict(),
    }
    for name in BACKEND_ORDER:
        profile, timed_phases = _split_profile(
            builders[name].backend.profile.as_dict()
        )
        wall = results[name]["wall"]
        speedup = ref["wall"] / wall if wall > 0 else float("inf")
        report["backends"][name] = {
            "profile": profile,
            "timings": {
                "phases": timed_phases,
                "speedup_vs_numpy": speedup,
                "wall_seconds": wall,
            },
        }
    report["timings"] = {
        "batched_speedup_vs_numpy": report["backends"]["batched"]["timings"][
            "speedup_vs_numpy"
        ]
    }
    return report


def _split_profile(profile: dict) -> tuple:
    """Separate a profile dict into (deterministic part, timed phases).

    Per-phase wall ``seconds`` are the only volatile leaves of a
    :meth:`BackendProfile.as_dict` snapshot (calls/elements/cache/device
    counters and modeled seconds are deterministic); they move to the
    emission's ``timings.phases`` subtree, keeping the leaf name
    ``seconds`` so the regression gate's per-phase slowdown band still
    applies.
    """
    phases = {}
    timed = {}
    for name, stats in profile["phases"].items():
        stats = dict(stats)
        timed[name] = {"seconds": stats.pop("seconds")}
        phases[name] = stats
    return dict(profile, phases=phases), timed


def stable_view(report: dict) -> dict:
    """The emission with every ``timings`` subtree removed, recursively.

    What remains is deterministic, so serializing it with sorted keys
    yields identical bytes across repeated runs of the same code — the
    property the byte-stability test pins.

    >>> stable_view({"a": 1, "timings": {"wall": 0.3},
    ...              "b": {"timings": {}, "calls": 2}})
    {'a': 1, 'b': {'calls': 2}}
    """
    return {
        k: stable_view(v) if isinstance(v, dict) else v
        for k, v in report.items()
        if k != "timings"
    }


def emission_summary_rows(report: dict) -> List[List[str]]:
    """Table rows (backend, wall, speedup, cache peak, launches) for printing."""
    from repro.utils.reports import format_bytes, format_seconds

    rows = []
    for name in BACKEND_ORDER:
        entry = report["backends"][name]
        profile = entry["profile"]
        timings = entry["timings"]
        rows.append(
            [
                name,
                format_seconds(timings["wall_seconds"]),
                f"{timings['speedup_vs_numpy']:.2f}x",
                format_bytes(profile["cache"]["peak_bytes"])
                if name == "batched"
                else "-",
                profile["device"]["launches"] or "-",
            ]
        )
    return rows

"""Backend-benchmark emission shared by the CLI gate and the bench script.

The measurement itself (repeated Sumup + H sweeps over every registered
execution backend on an over-cache-limit system, all outputs asserted
bit-identical) lives here so that both entry points produce the same
``BENCH_backends.json`` shape:

* ``benchmarks/bench_backends.py`` — prints the comparison table and
  (re)writes the committed baseline;
* ``repro bench-check`` — re-runs the emission at the baseline's own
  parameters and feeds it to :mod:`repro.obs.regress`.

:func:`sparse_emission` is the block-sparse sibling
(``BENCH_sparse.json``, via ``benchmarks/bench_sparse.py``): dense vs
screened sweeps on a polyethylene chain, pinning the screening
pattern's block-evaluation reduction.  :func:`emission_for_baseline`
dispatches the gate to whichever emission a baseline came from.

The emission carries a :class:`~repro.obs.report.Provenance` block, so
every ``BENCH_*.json`` names the commit, seed and machine models it was
produced under (the EXPERIMENTS.md footer policy).

The document is *byte-stable by construction*: every volatile
measurement (wall seconds, speedups, per-phase wall slices) lives under
a ``timings`` subtree, everything else is deterministic, and
:func:`stable_view` strips the ``timings`` subtrees so two runs of the
same code serialize to identical bytes (writers use sorted keys).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ExperimentError
from repro.obs.report import collect_provenance

#: Registered backends in comparison order (numpy is the reference).
BACKEND_ORDER = ("numpy", "batched", "device")

#: Seed of the random density/potential inputs the sweeps contract.
BENCH_SEED = 2023


def build_builders(level: str, cache_limit: int) -> Dict[str, object]:
    """One MatrixBuilder per backend over a shared basis/grid/batches.

    ``cache_limit=0`` disallows the full basis table, forcing the
    legacy numpy path to re-evaluate every block per sweep — the
    contrast the benchmark exists to measure.
    """
    from repro.atoms import water
    from repro.basis import build_basis
    from repro.config import get_settings
    from repro.dft.hamiltonian import MatrixBuilder
    from repro.grids import build_grid

    structure = water()
    settings = get_settings(level)
    basis = build_basis(structure)
    grid = build_grid(structure, settings.grids, with_partition=True)
    reference = MatrixBuilder(basis, grid, backend="numpy", cache_limit=cache_limit)
    builders: Dict[str, object] = {"numpy": reference}
    for name in BACKEND_ORDER[1:]:
        builders[name] = MatrixBuilder(
            basis,
            grid,
            batches=reference.batches,
            backend=name,
            cache_limit=cache_limit,
        )
    return builders


def sweep(builder, n_sweeps: int, seed: int = BENCH_SEED) -> dict:
    """Time ``n_sweeps`` Sumup + H passes; return wall time and outputs."""
    rng = np.random.default_rng(seed)
    nb = builder.basis.n_basis
    p = rng.normal(size=(nb, nb))
    p = p + p.T
    v = rng.normal(size=builder.grid.n_points)
    density = potential = None
    start = time.perf_counter()
    for _ in range(n_sweeps):
        density = builder.backend.density_on_grid(p)
        potential = builder.potential_matrix(v)
    wall = time.perf_counter() - start
    return {"wall": wall, "density": density, "potential": potential}


def backend_emission(level: str, n_sweeps: int) -> dict:
    """Run the full comparison; return the ``BENCH_backends.json`` document.

    Raises :class:`~repro.errors.ExperimentError` if any backend's
    outputs diverge bitwise from the numpy reference — a benchmark must
    never time a wrong answer.
    """
    if n_sweeps < 1:
        raise ExperimentError(f"need >= 1 sweep, got {n_sweeps}")
    builders = build_builders(level, cache_limit=0)
    reference = builders["numpy"]
    results = {name: sweep(builders[name], n_sweeps) for name in BACKEND_ORDER}

    ref = results["numpy"]
    for name in BACKEND_ORDER[1:]:
        if not np.array_equal(ref["density"], results[name]["density"]):
            raise ExperimentError(f"{name} density diverged from numpy")
        if not np.array_equal(ref["potential"], results[name]["potential"]):
            raise ExperimentError(f"{name} potential matrix diverged from numpy")

    report: dict = {
        "system": "water",
        "level": level,
        "n_points": reference.grid.n_points,
        "n_basis": reference.basis.n_basis,
        "n_sweeps": n_sweeps,
        "cache_limit": 0,
        "backends": {},
        "provenance": collect_provenance(seed=BENCH_SEED).as_dict(),
    }
    for name in BACKEND_ORDER:
        profile, timed_phases = _split_profile(
            builders[name].backend.profile.as_dict()
        )
        wall = results[name]["wall"]
        speedup = ref["wall"] / wall if wall > 0 else float("inf")
        report["backends"][name] = {
            "profile": profile,
            "timings": {
                "phases": timed_phases,
                "speedup_vs_numpy": speedup,
                "wall_seconds": wall,
            },
        }
    report["timings"] = {
        "batched_speedup_vs_numpy": report["backends"]["batched"]["timings"][
            "speedup_vs_numpy"
        ]
    }
    return report


def sparse_emission(
    n_units: int,
    n_sweeps: int,
    threshold: Optional[float] = None,
    level: str = "minimal",
) -> dict:
    """Dense-vs-screened comparison; the ``BENCH_sparse.json`` document.

    A polyethylene chain (``H(C2H4)nH``, the paper's linear-scaling
    workload shape) is long enough that batch-local screening actually
    drops atom-pair blocks — unlike the water molecule of
    :func:`backend_emission`, whose every function reaches every batch.
    Two builders share one basis/grid/batch decomposition: the dense
    reference (``screening_threshold = 0``) and the screened one at
    *threshold*; both run ``n_sweeps`` Sumup + H sweeps.

    The screened outputs are checked against the dense ones within the
    physics tolerance (1e-4) before any timing is reported, and the
    pattern's block-evaluation reduction is recorded — the committed
    baseline pins the >= 3x payoff the locality seam exists for.
    """
    from repro.atoms import polyethylene
    from repro.basis import build_basis
    from repro.config import get_settings
    from repro.dft.hamiltonian import MatrixBuilder
    from repro.grids import build_grid
    from repro.grids.sparsity import DEFAULT_SCREENING_THRESHOLD

    if n_sweeps < 1:
        raise ExperimentError(f"need >= 1 sweep, got {n_sweeps}")
    if threshold is None:
        threshold = DEFAULT_SCREENING_THRESHOLD
    if threshold <= 0.0:
        raise ExperimentError(
            f"the sparse benchmark needs a positive threshold, got {threshold}"
        )
    structure = polyethylene(n_units)
    settings = get_settings(level)
    basis = build_basis(structure)
    grid = build_grid(structure, settings.grids, with_partition=True)
    dense = MatrixBuilder(basis, grid, backend="numpy")
    screened = MatrixBuilder(
        basis,
        grid,
        batches=dense.batches,
        backend="numpy",
        screening_threshold=threshold,
    )
    results = {
        "dense": sweep(dense, n_sweeps),
        "screened": sweep(screened, n_sweeps),
    }

    density_diff = float(
        np.abs(results["dense"]["density"] - results["screened"]["density"]).max()
    )
    potential_diff = float(
        np.abs(
            results["dense"]["potential"] - results["screened"]["potential"]
        ).max()
    )
    if max(density_diff, potential_diff) > 1e-4:
        raise ExperimentError(
            f"screened outputs left the physics tolerance: density diff "
            f"{density_diff:.3e}, potential diff {potential_diff:.3e}"
        )

    stats = screened.pattern.stats
    dense_wall = results["dense"]["wall"]
    screened_wall = results["screened"]["wall"]
    return {
        "benchmark": "sparse",
        "system": "polyethylene",
        "n_units": n_units,
        "n_atoms": structure.n_atoms,
        "level": level,
        "n_points": grid.n_points,
        "n_basis": basis.n_basis,
        "n_sweeps": n_sweeps,
        "threshold": threshold,
        "sparsity": stats.as_dict(),
        "block_reduction": stats.block_reduction,
        "screen_counters": screened.backend.profile.as_dict()["sparsity"],
        "diff": {
            "density_max_diff": density_diff,
            "potential_max_diff": potential_diff,
        },
        "timings": {
            "dense_wall_seconds": dense_wall,
            "screened_wall_seconds": screened_wall,
            "screened_speedup_vs_dense": (
                dense_wall / screened_wall if screened_wall > 0 else float("inf")
            ),
        },
        "provenance": collect_provenance(seed=BENCH_SEED).as_dict(),
    }


def fleet_emission(
    level: str = "minimal",
    n_requests: int = 16,
    n_distinct: int = 4,
    backend: str = "device",
) -> dict:
    """Fleet-vs-sequential throughput; the ``BENCH_fleet.json`` document.

    ``n_requests`` jobs over ``n_distinct`` H2 bond-length variants (a
    screening-service shape: many near-duplicate small systems) run
    twice: once sequentially — one
    :meth:`~repro.core.simulator.PerturbationSimulator.run_physics` per
    request — and once through the
    :class:`~repro.fleet.driver.FleetDriver`.  Every per-request result
    payload is asserted byte-identical between the two before any
    number is reported: the benchmark never times a wrong answer.

    The gated headline is ``model.molecules_per_second_speedup`` — the
    deterministic device-model account (sequential modeled seconds of
    all requests over the fleet's fused modeled seconds), composing the
    physics-dedup factor with cross-molecule launch fusion.  Wall
    measurements are quarantined under ``timings``.
    """
    from repro.atoms import hydrogen_molecule
    from repro.config import RunSettings, get_settings
    from repro.core import PerturbationSimulator
    from repro.fleet import FleetDriver, fleet_tasks_from_requests
    from repro.service.jobs import JobRequest, structure_from_dict
    from repro.service.worker import result_payload, stable_result_bytes

    if n_requests < 1 or n_distinct < 1 or n_distinct > n_requests:
        raise ExperimentError(
            f"need 1 <= n_distinct <= n_requests, got "
            f"{n_distinct}/{n_requests}"
        )
    if backend != "device":
        raise ExperimentError(
            f"the fleet benchmark measures the fused device model; "
            f"got backend {backend!r} (parity across all backends is the "
            f"test suite's job)"
        )
    settings = get_settings(level, backend=backend)
    requests = [
        JobRequest(
            hydrogen_molecule(bond_length=1.40 + 0.02 * (i % n_distinct)),
            settings,
            seed=i,
        )
        for i in range(n_requests)
    ]
    tasks = fleet_tasks_from_requests(requests, commit=f"bench-{BENCH_SEED}")

    # Sequential reference: one isolated simulator per request.
    sequential = {
        "modeled_seconds": 0.0,
        "launches": 0,
        "bytes": 0,
    }
    reference_bytes: Dict[str, bytes] = {}
    seq_start = time.perf_counter()
    for task in tasks:
        structure = structure_from_dict(task.payload["structure"])
        run_settings = RunSettings.from_canonical_dict(task.payload["settings"])
        sim = PerturbationSimulator(structure, run_settings)
        result = sim.run_physics()
        profile = result.backend_profile.as_dict()["device"]
        sequential["modeled_seconds"] += profile["modeled_seconds"]
        sequential["launches"] += profile["launches"]
        sequential["bytes"] += profile["bytes_transferred"]
        reference_bytes[task.key] = stable_result_bytes(
            result_payload(task, structure, run_settings, result)
        )
    seq_wall = time.perf_counter() - seq_start

    # Fleet run: shared tables, dedup groups, fused launches.
    driver = FleetDriver()
    fleet_start = time.perf_counter()
    outcome = driver.run_tasks(tasks)
    fleet_wall = time.perf_counter() - fleet_start
    if outcome.errors:
        raise ExperimentError(f"fleet run failed: {outcome.errors}")
    for key, payload in outcome.results.items():
        if stable_result_bytes(payload) != reference_bytes[key]:
            raise ExperimentError(
                f"fleet result for {key} diverged bitwise from the "
                f"sequential reference"
            )

    stats = outcome.report.device
    fused_seconds = stats["modeled"]["fused"]["modeled_seconds"]
    model_speedup = (
        sequential["modeled_seconds"] / fused_seconds
        if fused_seconds > 0
        else float("inf")
    )
    return {
        "benchmark": "fleet",
        "system": "h2-variants",
        "level": level,
        "backend": backend,
        "n_sweeps": 1,
        "n_requests": n_requests,
        "n_distinct": n_distinct,
        "groups": outcome.report.n_groups,
        "rounds": outcome.report.rounds,
        "registry": outcome.report.registry,
        "substrates": outcome.report.substrates,
        "launches": {
            "sequential": sequential["launches"],
            "fused": stats["launches"]["fused"],
        },
        "model": {
            "sequential": {"modeled_seconds": sequential["modeled_seconds"]},
            "fleet": {"modeled_seconds": fused_seconds},
            "overhead_saved": dict(stats["modeled"]["overhead_saved"]),
            "molecules_per_second_speedup": model_speedup,
        },
        "transfers": {
            "sequential_bytes": sequential["bytes"],
            "fleet_bytes": stats["bytes_transferred"],
        },
        "timings": {
            "sequential_wall_seconds": seq_wall,
            "fleet_wall_seconds": fleet_wall,
            "wall_speedup": (
                seq_wall / fleet_wall if fleet_wall > 0 else float("inf")
            ),
        },
        "provenance": collect_provenance(seed=BENCH_SEED).as_dict(),
    }


def tuner_emission(
    level: str = "minimal",
    n_ranks: int = 4,
    budget: int = 2,
    cost_model=None,
) -> dict:
    """Tuned-vs-default comparison; the ``BENCH_tuner.json`` document.

    Runs the full closed loop (:func:`repro.tune.tuner.tune`) over two
    committed workloads — the water molecule (the backend benchmark's
    system) and a short polyethylene chain (the screening benchmark's
    shape) — and records each :class:`~repro.tune.decision.TunerDecision`
    verbatim.  The gated headlines per workload:

    * ``decision.candidates[].predicted/measured.modeled_seconds`` —
      deterministic cost-model floats (relative band, any cost-model
      change trips the gate and names the tuner);
    * ``tuned_speedup_vs_default`` / ``predicted_speedup_vs_default``
      — floor bands: the chosen config must stay no slower than the
      hand-picked default.

    The loop's wall time is quarantined under ``timings``; everything
    else is deterministic, so the emission is byte-stable.

    ``cost_model`` is injectable for gate-liveness testing (a perturbed
    model must make ``make tune-check`` fail).
    """
    from repro.atoms import polyethylene, water
    from repro.config import get_settings
    from repro.tune.costmodel import DEFAULT_COST_MODEL
    from repro.tune.tuner import tune

    if n_ranks < 1:
        raise ExperimentError(f"need >= 1 rank, got {n_ranks}")
    if budget < 1:
        raise ExperimentError(
            f"the tuner benchmark needs a positive trial budget, got {budget}"
        )
    model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
    settings = get_settings(level)
    workloads = {
        "water": water(),
        "polyethylene4": polyethylene(4),
    }
    report: dict = {
        "benchmark": "tuner",
        "level": level,
        "n_sweeps": 1,  # one seeded sweep per measured trial
        "n_ranks": n_ranks,
        "budget": budget,
        "workloads": {},
        "timings": {},
        "provenance": collect_provenance(seed=BENCH_SEED).as_dict(),
    }
    for name, structure in workloads.items():
        wall_start = time.perf_counter()
        decision = tune(
            structure,
            settings,
            n_ranks=n_ranks,
            budget=budget,
            cost_model=model,
        )
        wall = time.perf_counter() - wall_start
        doc = decision.as_dict()
        timings = doc.pop("timings")
        chosen = decision.chosen_outcome
        default = decision.default_outcome
        report["workloads"][name] = {
            "decision": doc,
            # Absolute modeled costs gate under the relative band: a
            # uniform cost-model perturbation cancels out of every
            # speedup ratio but not out of these.
            "chosen_cost": {
                "predicted": {"modeled_seconds": chosen.predicted_seconds},
                "measured": (
                    None
                    if chosen.measured_seconds is None
                    else {"modeled_seconds": chosen.measured_seconds}
                ),
            },
            "default_cost": {
                "predicted": {"modeled_seconds": default.predicted_seconds},
                "measured": (
                    None
                    if default.measured_seconds is None
                    else {"modeled_seconds": default.measured_seconds}
                ),
            },
            "tuned_speedup_vs_default": decision.measured_speedup,
            "predicted_speedup_vs_default": decision.predicted_speedup,
        }
        report["timings"][name] = dict(timings, wall_seconds=wall)
    return report


def emission_for_baseline(baseline: dict) -> dict:
    """Re-run the emission that produced *baseline*, at its own parameters.

    Dispatches on the document's ``benchmark`` tag (absent in the
    original backend emissions, so those default to ``"backends"``) —
    the regression gate stays one code path for every ``BENCH_*.json``.
    """
    from repro.obs.regress import baseline_run_parameters

    kind = str(baseline.get("benchmark", "backends"))
    level, n_sweeps = baseline_run_parameters(baseline)
    if kind == "sparse":
        try:
            n_units = int(baseline["n_units"])
            threshold = float(baseline["threshold"])
        except (KeyError, TypeError, ValueError):
            raise ExperimentError(
                "sparse baseline is missing its run parameters "
                "(n_units, threshold); regenerate it with the current benchmark"
            ) from None
        return sparse_emission(n_units, n_sweeps, threshold, level=level)
    if kind == "fleet":
        try:
            n_requests = int(baseline["n_requests"])
            n_distinct = int(baseline["n_distinct"])
            backend = str(baseline["backend"])
        except (KeyError, TypeError, ValueError):
            raise ExperimentError(
                "fleet baseline is missing its run parameters "
                "(n_requests, n_distinct, backend); regenerate it with the "
                "current benchmark"
            ) from None
        return fleet_emission(
            level=level,
            n_requests=n_requests,
            n_distinct=n_distinct,
            backend=backend,
        )
    if kind == "tuner":
        try:
            n_ranks = int(baseline["n_ranks"])
            budget = int(baseline["budget"])
        except (KeyError, TypeError, ValueError):
            raise ExperimentError(
                "tuner baseline is missing its run parameters "
                "(n_ranks, budget); regenerate it with the current benchmark"
            ) from None
        return tuner_emission(level=level, n_ranks=n_ranks, budget=budget)
    if kind == "slo":
        from repro.obs.telemetry.slo import slo_emission

        try:
            seed = int(baseline["seed"])
            window = float(baseline["window"])
        except (KeyError, TypeError, ValueError):
            raise ExperimentError(
                "slo baseline is missing its run parameters "
                "(seed, window); regenerate it with the current benchmark"
            ) from None
        return slo_emission(seed=seed, window=window)
    if kind != "backends":
        raise ExperimentError(f"unknown benchmark kind {kind!r} in baseline")
    return backend_emission(level, n_sweeps)


def _split_profile(profile: dict) -> tuple:
    """Separate a profile dict into (deterministic part, timed phases).

    Per-phase wall ``seconds`` are the only volatile leaves of a
    :meth:`BackendProfile.as_dict` snapshot (calls/elements/cache/device
    counters and modeled seconds are deterministic); they move to the
    emission's ``timings.phases`` subtree, keeping the leaf name
    ``seconds`` so the regression gate's per-phase slowdown band still
    applies.
    """
    phases = {}
    timed = {}
    for name, stats in profile["phases"].items():
        stats = dict(stats)
        timed[name] = {"seconds": stats.pop("seconds")}
        phases[name] = stats
    return dict(profile, phases=phases), timed


def stable_view(report: dict) -> dict:
    """The emission with every ``timings`` subtree removed, recursively.

    What remains is deterministic, so serializing it with sorted keys
    yields identical bytes across repeated runs of the same code — the
    property the byte-stability test pins.

    >>> stable_view({"a": 1, "timings": {"wall": 0.3},
    ...              "b": {"timings": {}, "calls": 2}})
    {'a': 1, 'b': {'calls': 2}}
    """
    return {
        k: stable_view(v) if isinstance(v, dict) else v
        for k, v in report.items()
        if k != "timings"
    }


def emission_summary_rows(report: dict) -> List[List[str]]:
    """Table rows (backend, wall, speedup, cache peak, launches) for printing."""
    from repro.utils.reports import format_bytes, format_seconds

    rows = []
    for name in BACKEND_ORDER:
        entry = report["backends"][name]
        profile = entry["profile"]
        timings = entry["timings"]
        rows.append(
            [
                name,
                format_seconds(timings["wall_seconds"]),
                f"{timings['speedup_vs_numpy']:.2f}x",
                format_bytes(profile["cache"]["peak_bytes"])
                if name == "batched"
                else "-",
                profile["device"]["launches"] or "-",
            ]
        )
    return rows

"""Span-based tracing for the SCF/CPSCF pipeline (DESIGN §10.2).

A :class:`Span` is one timed region with free-form attributes (phase,
rank, cycle, backend, comm scheme, fault site …); a :class:`Tracer`
collects spans and instant events and owns one
:class:`~repro.obs.metrics.MetricsRegistry`.

Context propagation is *ambient*: a tracer is installed with
:func:`activate`, and instrumentation points anywhere in the codebase
(``PhaseTimer``, the execution backends, ``SimComm`` collectives, the
fault injectors) call the module-level helpers :func:`obs_span`,
:func:`obs_event`, :func:`obs_counter` and :func:`trace_context`.
When no tracer is active every helper is a cheap no-op, so the physics
hot loop pays nothing by default.

>>> tracer = Tracer()
>>> with activate(tracer):
...     with trace_context(cycle=1):
...         with obs_span("Sumup", category="phase"):
...             obs_counter("bytes_reduced", 128)
>>> [s.name for s in tracer.spans]
['Sumup']
>>> tracer.spans[0].attrs["cycle"]
1
>>> tracer.metrics.counter("bytes_reduced").value
128
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.obs.metrics import MetricsRegistry

#: The ambient tracer (None = tracing disabled, helpers are no-ops).
_ACTIVE: "ContextVar[Optional[Tracer]]" = ContextVar("repro_obs_tracer", default=None)

#: Ambient attribute stack, merged into every span/event opened below it.
_CONTEXT: "ContextVar[Dict[str, object]]" = ContextVar("repro_obs_context", default={})


@dataclass
class Span:
    """One timed region of the run.

    Timestamps are seconds relative to the owning tracer's epoch, so a
    fresh trace always starts near ``t=0`` and exported timestamps are
    non-negative and monotonic within a track.

    >>> s = Span(name="H", category="phase", start=0.0, end=0.25)
    >>> round(s.duration, 2)
    0.25
    """

    name: str
    category: str = "phase"
    start: float = 0.0
    end: float = 0.0
    attrs: Dict[str, object] = field(default_factory=dict)
    instant: bool = False

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 for instant events)."""
        return max(0.0, self.end - self.start)


class Tracer:
    """Collect spans, instant events and metrics for one run.

    >>> t = Tracer()
    >>> with t.span("DM", cycle=3):
    ...     pass
    >>> t.spans[0].attrs
    {'cycle': 3}
    >>> t.wall_seconds() >= t.spans[0].duration
    True
    """

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.spans: List[Span] = []
        self.metrics = MetricsRegistry()

    def _now(self) -> float:
        return time.perf_counter() - self.epoch

    @contextmanager
    def span(self, name: str, category: str = "phase", **attrs) -> Iterator[Span]:
        """Open one span; ambient context attributes are merged in."""
        merged = dict(_CONTEXT.get())
        merged.update(attrs)
        sp = Span(name=name, category=category, start=self._now(), attrs=merged)
        try:
            yield sp
        finally:
            sp.end = self._now()
            self.spans.append(sp)

    def event(self, name: str, category: str = "fault", **attrs) -> Span:
        """Record an instant (zero-duration) event, e.g. an injected fault."""
        merged = dict(_CONTEXT.get())
        merged.update(attrs)
        now = self._now()
        sp = Span(
            name=name, category=category, start=now, end=now,
            attrs=merged, instant=True,
        )
        self.spans.append(sp)
        return sp

    def wall_seconds(self) -> float:
        """Seconds since the tracer's epoch."""
        return self._now()

    def spans_of(self, category: str) -> List[Span]:
        """All spans of one category, in completion order."""
        return [s for s in self.spans if s.category == category]

    def phase_wall(self, category: str = "phase") -> float:
        """Summed duration of one category's spans.

        Driver phases are sequential and non-overlapping, so for
        ``category="phase"`` this equals the run's reported phase wall
        time (the acceptance check behind ``repro physics --trace``).
        """
        return sum(s.duration for s in self.spans_of(category))


def activate(tracer: Optional[Tracer]):
    """Install *tracer* as the ambient tracer for a ``with`` block.

    >>> with activate(Tracer()) as t:
    ...     current_tracer() is t
    True
    >>> current_tracer() is None
    True
    """

    @contextmanager
    def _ctx():
        token = _ACTIVE.set(tracer)
        try:
            yield tracer
        finally:
            _ACTIVE.reset(token)

    return _ctx()


def current_tracer() -> Optional[Tracer]:
    """The ambient tracer, or None when tracing is off."""
    return _ACTIVE.get()


@contextmanager
def trace_context(**attrs) -> Iterator[None]:
    """Push ambient attributes (cycle, rank, backend …) for a block.

    Nested contexts merge; inner values win.  Attributes apply even when
    no tracer is active yet (they are orthogonal to span recording).

    >>> with trace_context(cycle=2, backend="numpy"):
    ...     with trace_context(cycle=3):
    ...         sorted(current_context().items())
    [('backend', 'numpy'), ('cycle', 3)]
    """
    merged = dict(_CONTEXT.get())
    merged.update(attrs)
    token = _CONTEXT.set(merged)
    try:
        yield
    finally:
        _CONTEXT.reset(token)


def current_context() -> Dict[str, object]:
    """A copy of the ambient attribute dict."""
    return dict(_CONTEXT.get())


@contextmanager
def obs_span(name: str, category: str = "phase", **attrs) -> Iterator[Optional[Span]]:
    """Span on the ambient tracer; no-op (yields None) when tracing is off.

    >>> with obs_span("Rho"):
    ...     pass  # no tracer active: nothing recorded, nothing raised
    """
    tracer = _ACTIVE.get()
    if tracer is None:
        yield None
        return
    with tracer.span(name, category=category, **attrs) as sp:
        yield sp


def obs_event(name: str, category: str = "fault", **attrs) -> Optional[Span]:
    """Instant event on the ambient tracer; None when tracing is off."""
    tracer = _ACTIVE.get()
    if tracer is None:
        return None
    return tracer.event(name, category=category, **attrs)


def obs_counter(name: str, amount: int = 1) -> None:
    """Increment a counter on the ambient tracer's metrics registry.

    >>> obs_counter("noop.bytes", 4096)  # no tracer active: no-op
    """
    tracer = _ACTIVE.get()
    if tracer is not None:
        tracer.metrics.counter(name).inc(amount)


def obs_gauge(name: str, value: float) -> None:
    """Set a gauge on the ambient tracer's metrics registry."""
    tracer = _ACTIVE.get()
    if tracer is not None:
        tracer.metrics.gauge(name).set(value)


def obs_histogram(name: str, value: float) -> None:
    """Observe one sample on the ambient tracer's metrics registry."""
    tracer = _ACTIVE.get()
    if tracer is not None:
        tracer.metrics.histogram(name).observe(value)

"""Windowed SLO rollups on the logical clock (DESIGN §16.2).

The aggregator folds one ordered telemetry event stream (see
:mod:`repro.obs.telemetry.events`) into fixed-width windows of the
logical clock and computes, per window:

* **latency distributions** — queue wait (waiting → claimed) and time
  to result (submitted → complete), with deterministic nearest-rank
  percentiles;
* **throughput** — completed tasks per logical second;
* **rates** — cache-hit ratio over all submit lookups, retry/requeue,
  failure and crash rates per claim, lease expiries;
* **queue pressure** — tasks still waiting at the window's end and the
  oldest waiting task's age at that instant;
* **work attribution** — per-phase seconds summed over completed
  payloads, quarantined under ``timings`` (DESIGN §11.8) because phase
  walls are the one wall-clock-dependent input.

Everything outside ``timings`` depends only on the event stream, so two
identical logical-clock runs roll up byte-identically — the property
``make slo-check`` gates.  The window algebra is closed under merging:
``merge(w[2k], w[2k+1])`` equals the corresponding window of a rollup
at twice the width (pinned by hypothesis tests).

>>> events = [{"kind": "submit", "t": 0.0, "task": "t1"},
...           {"kind": "claim", "t": 1.0, "task": "t1", "worker": "w0"},
...           {"kind": "complete", "t": 3.0, "task": "t1", "worker": "w0"}]
>>> (w,) = rollup(events, window=4.0)
>>> w.counts["completed"], w.queue_wait, w.time_to_result
(1, [1.0], [3.0])
>>> w.metric("queue_wait_p50")
1.0
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Count keys every window carries (sorted; zero counts included so the
#: rollup document shape is stable across runs).
COUNT_KEYS = (
    "alerts",
    "cache_hits",
    "cancelled",
    "claimed",
    "completed",
    "crashes",
    "dedups",
    "errored",
    "failed",
    "heartbeats",
    "lease_expiries",
    "requeued",
    "resubmitted",
    "started",
    "submitted",
)

#: The percentiles every latency distribution reports.
PERCENTILES = (50, 90, 99)


def percentile(samples: Sequence[float], q: float) -> float:
    """Deterministic nearest-rank percentile (0.0 for an empty sample set).

    Uses the classical nearest-rank definition — the ``ceil(q/100 * n)``-th
    smallest value — so the result is always an observed sample and two
    runs over the same multiset agree bit for bit (no interpolation).

    >>> percentile([4.0, 1.0, 3.0, 2.0], 50)
    2.0
    >>> percentile([4.0, 1.0, 3.0, 2.0], 99)
    4.0
    >>> percentile([], 50)
    0.0
    """
    if not samples:
        return 0.0
    if not 0.0 < q <= 100.0:
        raise ValueError(f"percentile q must be in (0, 100], got {q}")
    ordered = sorted(float(v) for v in samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass
class WindowRollup:
    """SLO metrics for one window ``[start, end)`` of the logical clock."""

    index: int
    start: float
    end: float
    counts: Dict[str, int] = field(
        default_factory=lambda: {k: 0 for k in COUNT_KEYS}
    )
    queue_wait: List[float] = field(default_factory=list)
    time_to_result: List[float] = field(default_factory=list)
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    waiting_at_end: int = 0
    oldest_waiting_age: float = 0.0

    @property
    def width(self) -> float:
        """The window's logical duration."""
        return self.end - self.start

    def metric(self, name: str) -> float:
        """Resolve one named SLO metric (the alert rules' vocabulary).

        Count keys resolve directly; derived names are ``throughput``,
        ``crash_rate`` / ``failure_rate`` / ``retry_rate`` (per claim),
        ``cache_hit_ratio`` / ``cache_lookups`` (per submit lookup),
        ``waiting_at_end``,
        ``oldest_waiting_age`` and the latency summaries
        ``queue_wait_p50/p90/p99/max/mean`` and ``ttr_p50/p90/p99/max/mean``.
        """
        if name in self.counts:
            return float(self.counts[name])
        if name == "throughput":
            return self.counts["completed"] / self.width if self.width else 0.0
        claims = self.counts["claimed"]
        if name == "crash_rate":
            return self.counts["crashes"] / claims if claims else 0.0
        if name == "failure_rate":
            return self.counts["failed"] / claims if claims else 0.0
        if name == "retry_rate":
            return self.counts["requeued"] / claims if claims else 0.0
        if name in ("cache_hit_ratio", "cache_lookups"):
            lookups = (
                self.counts["submitted"]
                + self.counts["resubmitted"]
                + self.counts["cache_hits"]
                + self.counts["dedups"]
            )
            if name == "cache_lookups":
                return float(lookups)
            return self.counts["cache_hits"] / lookups if lookups else 0.0
        if name == "waiting_at_end":
            return float(self.waiting_at_end)
        if name == "oldest_waiting_age":
            return self.oldest_waiting_age
        for prefix, samples in (
            ("queue_wait", self.queue_wait),
            ("ttr", self.time_to_result),
        ):
            if name == f"{prefix}_max":
                return max(samples) if samples else 0.0
            if name == f"{prefix}_mean":
                return sum(samples) / len(samples) if samples else 0.0
            for q in PERCENTILES:
                if name == f"{prefix}_p{q}":
                    return percentile(samples, q)
        raise KeyError(f"unknown SLO metric {name!r}")

    def as_dict(self) -> Dict[str, Any]:
        """Deterministic JSON form; phase walls quarantined under ``timings``."""
        doc: Dict[str, Any] = {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "counts": {k: self.counts[k] for k in sorted(self.counts)},
            "queue_wait": {
                "samples": sorted(self.queue_wait),
                **{f"p{q}": percentile(self.queue_wait, q) for q in PERCENTILES},
            },
            "time_to_result": {
                "samples": sorted(self.time_to_result),
                **{
                    f"p{q}": percentile(self.time_to_result, q)
                    for q in PERCENTILES
                },
            },
            "throughput": self.metric("throughput"),
            "crash_rate": self.metric("crash_rate"),
            "failure_rate": self.metric("failure_rate"),
            "retry_rate": self.metric("retry_rate"),
            "cache_hit_ratio": self.metric("cache_hit_ratio"),
            "waiting_at_end": self.waiting_at_end,
            "oldest_waiting_age": self.oldest_waiting_age,
        }
        if self.phase_seconds:
            doc["timings"] = {
                "phase_seconds": {
                    k: self.phase_seconds[k] for k in sorted(self.phase_seconds)
                }
            }
        return doc


def merge(a: WindowRollup, b: WindowRollup) -> WindowRollup:
    """Fold two adjacent windows into one twice-as-wide window.

    Counts and latency samples are unions; the end-of-window queue
    snapshot (``waiting_at_end`` / ``oldest_waiting_age``) comes from
    whichever window ends later — exactly what a rollup at the doubled
    width would have observed.  ``merge(w[2k], w[2k+1])`` over a
    width-``w`` rollup therefore equals window ``k`` of the width-``2w``
    rollup (the hypothesis-pinned algebra).
    """
    first, second = (a, b) if a.end <= b.end else (b, a)
    out = WindowRollup(
        index=0,
        start=min(a.start, b.start),
        end=max(a.end, b.end),
        counts={
            k: a.counts.get(k, 0) + b.counts.get(k, 0)
            for k in sorted(set(a.counts) | set(b.counts))
        },
        queue_wait=sorted(a.queue_wait + b.queue_wait),
        time_to_result=sorted(a.time_to_result + b.time_to_result),
        waiting_at_end=second.waiting_at_end,
        oldest_waiting_age=second.oldest_waiting_age,
    )
    for src in (a, b):
        for phase, seconds in src.phase_seconds.items():
            out.phase_seconds[phase] = out.phase_seconds.get(phase, 0.0) + seconds
    width = out.end - out.start
    out.index = int(out.start // width) if width > 0 else 0
    return out


def _waiting_intervals(
    events: Sequence[Dict[str, Any]],
) -> List[Tuple[float, float]]:
    """Each task's ``[entered-waiting, left-waiting)`` intervals."""
    entered: Dict[str, float] = {}
    intervals: List[Tuple[float, float]] = []
    for ev in events:
        kind, task = ev.get("kind"), ev.get("task")
        t = float(ev.get("t", 0.0))
        if kind in ("submit", "resubmit"):
            entered[task] = t
        elif kind == "requeue" and not ev.get("terminal", False):
            entered[task] = t
        elif kind in ("claim", "cancel") or (
            kind == "requeue" and ev.get("terminal", False)
        ):
            if task in entered:
                intervals.append((entered.pop(task), t))
    intervals.extend((t0, math.inf) for t0 in entered.values())
    return sorted(intervals)


def _queue_snapshot(
    intervals: Sequence[Tuple[float, float]], at: float
) -> Tuple[int, float]:
    """(tasks waiting, oldest waiting age) at logical instant *at*."""
    waiting = [t0 for (t0, t1) in intervals if t0 <= at < t1]
    if not waiting:
        return 0, 0.0
    return len(waiting), at - min(waiting)


def rollup(
    events: Sequence[Dict[str, Any]],
    window: float,
    *,
    t0: float = 0.0,
    horizon: Optional[float] = None,
) -> List[WindowRollup]:
    """Fold one telemetry event stream into contiguous windows.

    Windows are ``[t0 + k*window, t0 + (k+1)*window)``; an event at an
    exact boundary belongs to the window it *starts* (floor semantics),
    so every event lands in exactly one window.  Latency samples are
    attributed to the window of the *resolving* event (the claim for a
    queue wait, the completion for a time to result) even when the
    submission happened windows earlier.  ``horizon`` forces coverage
    through a later end time (empty trailing windows included) so
    hysteresis evaluation sees quiet periods.

    Events with ``t < t0`` (e.g. the provenance header at ``t = -1``)
    are ignored.
    """
    if window <= 0:
        raise ValueError(f"window must be > 0, got {window}")
    live = [ev for ev in events if float(ev.get("t", 0.0)) >= t0]
    n_windows = 1
    for ev in live:
        n_windows = max(n_windows, int((float(ev["t"]) - t0) // window) + 1)
    if horizon is not None and horizon > t0:
        n_windows = max(n_windows, int(math.ceil((horizon - t0) / window)))
    windows = [
        WindowRollup(index=k, start=t0 + k * window, end=t0 + (k + 1) * window)
        for k in range(n_windows)
    ]

    entered: Dict[str, float] = {}
    submitted_at: Dict[str, float] = {}
    for ev in live:
        t = float(ev["t"])
        w = windows[int((t - t0) // window)]
        kind, task = ev.get("kind"), ev.get("task")
        if kind == "submit":
            w.counts["submitted"] += 1
            entered[task] = t
            submitted_at[task] = t
        elif kind == "resubmit":
            w.counts["resubmitted"] += 1
            entered[task] = t
            submitted_at[task] = t
        elif kind == "claim":
            w.counts["claimed"] += 1
            if task in entered:
                w.queue_wait.append(t - entered.pop(task))
        elif kind == "start":
            w.counts["started"] += 1
        elif kind == "heartbeat":
            w.counts["heartbeats"] += 1
        elif kind == "complete":
            w.counts["completed"] += 1
            if task in submitted_at:
                w.time_to_result.append(t - submitted_at.pop(task))
        elif kind == "requeue":
            if not ev.get("expired", False):
                w.counts["failed"] += 1
            if ev.get("terminal", False):
                w.counts["errored"] += 1
                entered.pop(task, None)
            else:
                w.counts["requeued"] += 1
                entered[task] = t
        elif kind == "cancel":
            w.counts["cancelled"] += 1
            entered.pop(task, None)
        elif kind == "cache_hit":
            w.counts["cache_hits"] += 1
        elif kind == "dedup":
            w.counts["dedups"] += 1
        elif kind == "lease_expiry":
            w.counts["lease_expiries"] += 1
        elif kind == "worker_crash":
            w.counts["crashes"] += 1
        elif kind == "alert":
            w.counts["alerts"] += 1
        elif kind == "phase_work":
            for phase, seconds in (ev.get("phases") or {}).items():
                w.phase_seconds[phase] = (
                    w.phase_seconds.get(phase, 0.0) + float(seconds)
                )

    intervals = _waiting_intervals(live)
    for w in windows:
        w.waiting_at_end, w.oldest_waiting_age = _queue_snapshot(
            intervals, w.end
        )
        w.queue_wait.sort()
        w.time_to_result.sort()
    return windows


def window_origin(events: Sequence[Dict[str, Any]], window: float) -> float:
    """A window-aligned ``t0`` at or below the first event.

    Logical-clock streams start at 0 and need no origin, but wall-clock
    journals are stamped with epoch seconds — windowing those from
    ``t0 = 0`` would enumerate fifty years of empty windows.  Alignment
    to a window multiple keeps boundary invariance: re-rolling the same
    journal always yields the same windows.

    >>> window_origin([{"t": 11.0}, {"t": 17.0}], 4.0)
    8.0
    >>> window_origin([], 4.0)
    0.0
    """
    ts = [
        float(ev.get("t", 0.0))
        for ev in events
        if float(ev.get("t", 0.0)) >= 0.0
    ]
    if not ts:
        return 0.0
    return math.floor(min(ts) / window) * window


def overall(
    events: Sequence[Dict[str, Any]],
    *,
    t0: float = 0.0,
    horizon: Optional[float] = None,
) -> WindowRollup:
    """One rollup spanning the whole event stream (a single giant window).

    >>> overall([{"kind": "submit", "t": 0.0, "task": "a"}]).counts["submitted"]
    1
    """
    end = t0 + 1.0
    for ev in events:
        end = max(end, float(ev.get("t", 0.0)) + 1.0)
    if horizon is not None:
        end = max(end, horizon)
    (w,) = rollup(events, window=end - t0, t0=t0, horizon=end)
    return w

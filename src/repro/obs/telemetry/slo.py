"""The committed SLO scenario and its ``BENCH_slo.json`` emission.

Service SLOs are gated exactly like the compute benchmarks: a committed
scenario runs the real statestore + worker pool on the logical clock,
its telemetry stream is rolled up into windows, the alert engine walks
the windows, and the resulting document is compared metric-by-metric
against ``BENCH_slo.json`` by ``repro slo --gate`` / ``make slo-check``.

Two scenario variants share one queue shape (:data:`N_JOBS` synthetic
jobs, :data:`N_WORKERS` workers, lease :data:`LEASE_SECONDS`, followed
by a resubmission sweep that produces pure cache hits):

``steady``
    fault-free; the reference.  Every claim completes on its first
    attempt and **zero alerts fire** — pinned by tests.
``chaos``
    a seeded :class:`~repro.runtime.faults.FaultPlan` schedules two
    ``worker_crash`` faults on worker ``w0``'s first two claims.  The
    crashes abandon their tasks, the store's lease expiry requeues
    them, the pool retries them to completion — and the rollup's
    window-0 crash rate (2 crashes / 6 claims) deterministically fires
    ``crash_rate_spike``, which hysteresis clears two quiet windows
    later.  The exact alert sequence is byte-stable and pinned.

Everything in the emission outside ``timings`` derives from the logical
clock, so ``stable_bytes`` of two runs are identical; the scenario wall
times are quarantined per DESIGN §11.8.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.telemetry.alerts import AlertEngine
from repro.obs.telemetry.events import TelemetrySink
from repro.obs.telemetry.health import WorkerHealth, health_from_store
from repro.obs.telemetry.rollup import WindowRollup, overall, rollup

#: Scenario shape (committed: changing any of these regenerates the baseline).
N_JOBS = 8
N_WORKERS = 2
LEASE_SECONDS = 2.0
DEFAULT_WINDOW = 4.0
#: Rollup coverage; fixed so trailing quiet windows (which clear the
#: chaos alert) exist in both variants.
HORIZON = 16.0
#: Seed of the chaos variant's fault plan.
SLO_SEED = 2023


def scenario_runner(task) -> Dict[str, Any]:
    """Deterministic synthetic task executor for the SLO scenario.

    Returns a result payload in the worker contract's shape —
    deterministic fields at the top, per-phase seconds under
    ``timings`` — with *modeled* phase numbers derived from the task
    payload, so even the quarantined subtree is reproducible.
    """
    i = int(task.payload["index"])
    return {
        "index": i,
        "value": (i + 1) ** 2,
        "timings": {
            "phase_seconds": {
                "scf": 0.40 + 0.01 * i,
                "cpscf": 0.20 + 0.005 * i,
            }
        },
    }


@dataclass
class ScenarioRun:
    """Everything one scenario variant produced (for tests and the CLI)."""

    name: str
    sink: TelemetrySink
    store: Any
    steps: int
    completed: int
    failed: int
    crashes: int
    cache_hits: int
    end_time: float
    windows: List[WindowRollup] = field(default_factory=list)
    alerts: List[Dict[str, Any]] = field(default_factory=list)

    def health(self) -> List[WorkerHealth]:
        """Worker health at the scenario's final instant."""
        return health_from_store(self.store, now=self.end_time)


def run_slo_scenario(
    *,
    faults: bool = False,
    seed: int = SLO_SEED,
    window: float = DEFAULT_WINDOW,
) -> ScenarioRun:
    """Run one scenario variant end to end and roll up its telemetry.

    The run is entirely on the logical clock (``dt = 1``): submits at
    ``t = 0``, one claim per worker per step, cache-hit resubmissions
    one tick after the queue drains.  With ``faults=True`` the seeded
    crash schedule described in the module docstring is injected.
    """
    from repro.runtime.faults import FaultPlan, ScheduledFault
    from repro.service.statestore import StateStore
    from repro.service.worker import WorkerPool

    sink = TelemetrySink()
    store = StateStore(
        lease_seconds=LEASE_SECONDS,
        backoff_base=1.0,
        backoff_factor=2.0,
        telemetry=sink,
    )
    for i in range(N_JOBS):
        store.submit(
            {"kind": "slo", "index": i},
            key=f"slo-job-{i}",
            client=f"client-{i % 2}",
            priority=i % 2,
            now=0.0,
        )
    plan = None
    if faults:
        plan = FaultPlan(
            seed=seed,
            schedule=[
                ScheduledFault("worker_crash", call_index=0, site="worker:w0"),
                ScheduledFault("worker_crash", call_index=1, site="worker:w0"),
            ],
        )
    pool = WorkerPool(
        store,
        n_workers=N_WORKERS,
        runner=scenario_runner,
        fault_plan=plan,
        start_time=0.0,
        dt=1.0,
    )
    report = pool.run_until_idle()

    # Resubmission sweep: every key is complete now, so each submit is
    # a pure cache hit (telemetry: N_JOBS cache_hit events, no work).
    t_hits = pool.now + 1.0
    cache_hits = 0
    for i in range(N_JOBS):
        outcome = store.submit(
            {"kind": "slo", "index": i}, key=f"slo-job-{i}", now=t_hits
        )
        cache_hits += int(outcome.cache_hit)

    run = ScenarioRun(
        name="chaos" if faults else "steady",
        sink=sink,
        store=store,
        steps=report.steps,
        completed=report.completed,
        failed=report.failed,
        crashes=report.crashes,
        cache_hits=cache_hits,
        end_time=max(t_hits, HORIZON),
    )
    run.windows = rollup(sink.events, window, horizon=HORIZON)
    run.alerts = AlertEngine().evaluate(run.windows, sink=sink)
    return run


def _alert_summary(alerts: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Gate-friendly alert digest: numeric outcomes per rule.

    The regression gate only compares numeric leaves, so each rule's
    fired/cleared counts and deciding window indices are spelled out as
    numbers; the human-ordered ``sequence`` list rides along for the
    rendering (lists are not gated).
    """
    by_rule: Dict[str, Dict[str, float]] = {}
    for a in alerts:
        entry = by_rule.setdefault(
            a["rule"],
            {
                "fired": 0,
                "cleared": 0,
                "first_fired_window": -1,
                "last_cleared_window": -1,
            },
        )
        if a["action"] == "fired":
            entry["fired"] += 1
            if entry["first_fired_window"] < 0:
                entry["first_fired_window"] = a["window"]
        else:
            entry["cleared"] += 1
            entry["last_cleared_window"] = a["window"]
    return {
        "total_fired": sum(1 for a in alerts if a["action"] == "fired"),
        "total_cleared": sum(1 for a in alerts if a["action"] == "cleared"),
        "by_rule": by_rule,
        "sequence": [dict(a) for a in alerts],
    }


def _scenario_doc(run: ScenarioRun) -> Dict[str, Any]:
    return {
        "steps": run.steps,
        "completed": run.completed,
        "failed_attempts": run.failed,
        "crashes": run.crashes,
        "cache_hits": run.cache_hits,
        "events_recorded": len(run.sink.events),
        "windows": {f"w{w.index}": w.as_dict() for w in run.windows},
        "overall": overall(run.sink.events, horizon=HORIZON).as_dict(),
        "alerts": _alert_summary(run.alerts),
    }


def slo_emission(
    seed: int = SLO_SEED, window: float = DEFAULT_WINDOW
) -> Dict[str, Any]:
    """Run both scenario variants; return the ``BENCH_slo.json`` document.

    ``level`` / ``n_sweeps`` exist for the shared baseline dispatch
    (:func:`repro.obs.regress.baseline_run_parameters`); the scenario
    has no physics level.  Scenario wall clocks are quarantined under
    ``timings`` with leaf name ``seconds`` (the micro-time slowdown
    band — these are millisecond-scale queue drains).
    """
    from repro.obs.report import collect_provenance

    docs: Dict[str, Any] = {}
    walls: Dict[str, Any] = {}
    for name, faults in (("steady", False), ("chaos", True)):
        start = time.perf_counter()
        run = run_slo_scenario(faults=faults, seed=seed, window=window)
        walls[name] = {"seconds": time.perf_counter() - start}
        docs[name] = _scenario_doc(run)
    return {
        "benchmark": "slo",
        "system": "synthetic-queue",
        "level": "minimal",
        "n_sweeps": 1,
        "seed": seed,
        "window": window,
        "horizon": HORIZON,
        "n_jobs": N_JOBS,
        "n_workers": N_WORKERS,
        "lease_seconds": LEASE_SECONDS,
        "scenarios": docs,
        "timings": walls,
        "provenance": collect_provenance(seed=seed).as_dict(),
    }


def stable_slo_bytes(emission: Dict[str, Any]) -> bytes:
    """Canonical bytes of an SLO emission with ``timings`` stripped.

    >>> stable_slo_bytes({"benchmark": "slo", "timings": {"s": 0.1}})
    b'{"benchmark": "slo"}'
    """
    from repro.obs.bench import stable_view

    return json.dumps(stable_view(emission), sort_keys=True).encode()


# ----------------------------------------------------------------------
# Rendering (the `repro slo` dashboard)
# ----------------------------------------------------------------------
def render_windows(windows: List[WindowRollup]) -> str:
    """One table row per rollup window (the SLO dashboard's core)."""
    from repro.utils.reports import TableFormatter

    table = TableFormatter(
        [
            "window",
            "span",
            "claims",
            "done",
            "crash%",
            "qwait p50/p99",
            "ttr p50/p99",
            "hit%",
            "oldest wait",
        ],
        title="SLO rollup",
    )
    for w in windows:
        table.add_row(
            [
                f"w{w.index}",
                f"[{w.start:g},{w.end:g})",
                w.counts["claimed"],
                w.counts["completed"],
                f"{100.0 * w.metric('crash_rate'):.0f}",
                f"{w.metric('queue_wait_p50'):g}/{w.metric('queue_wait_p99'):g}",
                f"{w.metric('ttr_p50'):g}/{w.metric('ttr_p99'):g}",
                f"{100.0 * w.metric('cache_hit_ratio'):.0f}",
                f"{w.oldest_waiting_age:g}s",
            ]
        )
    return table.render()


def render_slo_emission(emission: Dict[str, Any]) -> str:
    """The full ``repro slo`` report for one emission document."""
    from repro.obs.telemetry.alerts import render_alerts

    lines = [
        f"SLO scenario: {emission['n_jobs']} jobs, "
        f"{emission['n_workers']} workers, lease "
        f"{emission['lease_seconds']:g}s, window {emission['window']:g}s "
        f"(seed {emission['seed']})"
    ]
    for name in ("steady", "chaos"):
        doc = emission["scenarios"][name]
        lines += [
            "",
            f"=== {name}: {doc['completed']} completed, "
            f"{doc['crashes']} crash(es), {doc['cache_hits']} cache hit(s) "
            f"in {doc['steps']} step(s) ===",
        ]
        windows = _windows_from_doc(doc)
        lines.append(render_windows(windows))
        lines.append("alerts: " + render_alerts(doc["alerts"]["sequence"]))
    return "\n".join(lines)


def _windows_from_doc(doc: Dict[str, Any]) -> List[WindowRollup]:
    """Rebuild :class:`WindowRollup` rows from an emission's window dicts."""
    out = []
    for key in sorted(doc["windows"], key=lambda k: int(k[1:])):
        wd = doc["windows"][key]
        w = WindowRollup(
            index=int(wd["index"]),
            start=float(wd["start"]),
            end=float(wd["end"]),
            queue_wait=list(wd["queue_wait"]["samples"]),
            time_to_result=list(wd["time_to_result"]["samples"]),
            waiting_at_end=int(wd["waiting_at_end"]),
            oldest_waiting_age=float(wd["oldest_waiting_age"]),
        )
        w.counts.update(wd["counts"])
        w.phase_seconds = dict(
            wd.get("timings", {}).get("phase_seconds", {})
        )
        out.append(w)
    return out

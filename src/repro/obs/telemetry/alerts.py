"""Declarative threshold alerting with hysteresis (DESIGN §16.4).

An :class:`AlertRule` names one rollup metric (the vocabulary of
:meth:`~repro.obs.telemetry.rollup.WindowRollup.metric`), a comparison
against a threshold, and two streak lengths: the rule **fires** only
after ``fire_after`` consecutive breaching windows and **clears** only
after ``clear_after`` consecutive healthy ones — classic hysteresis, so
a single noisy window neither raises nor silences an alert.

Rules may carry a *guard*: minimum metric values a window must meet
before the rule is evaluated at all.  A guard-unmet window counts as
healthy — ``crash_rate`` over zero claims is 0/0, not an incident — so
small-sample windows can never fire and an active alert still clears
through quiet periods.

Everything is a pure function of the rollup windows, which are a pure
function of the logically-clocked event stream, so the alert sequence
of a seeded chaos run is byte-stable and pinned by tests (the
``worker_crash`` ⇒ ``crash_rate_spike`` contract in ISSUE 10).

>>> from repro.obs.telemetry.rollup import WindowRollup
>>> w0 = WindowRollup(index=0, start=0.0, end=4.0)
>>> w0.counts.update(claimed=4, crashes=2)
>>> w1 = WindowRollup(index=1, start=4.0, end=8.0)
>>> engine = AlertEngine()
>>> [(a["rule"], a["action"], a["window"]) for a in engine.evaluate([w0, w1])]
[('crash_rate_spike', 'fired', 0)]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.errors import ReproError
from repro.obs.telemetry.rollup import WindowRollup

#: Comparison operators an :class:`AlertRule` may use.
OPS = (">", "<")


@dataclass(frozen=True)
class AlertRule:
    """One declarative SLO threshold with hysteresis.

    Parameters
    ----------
    name:
        Stable identifier recorded in alert events.
    metric:
        A :meth:`WindowRollup.metric` name (``crash_rate``,
        ``oldest_waiting_age``, ``cache_hit_ratio``, …).
    op, threshold:
        A window breaches when ``metric op threshold`` holds
        (``">"`` for ceilings, ``"<"`` for floors).
    fire_after:
        Consecutive breaching windows required before the rule fires.
    clear_after:
        Consecutive healthy windows required before an active alert
        clears.
    guard:
        ``{metric: minimum}`` preconditions; a window missing any
        minimum is treated as healthy (never breaches).
    description:
        One-line operator-facing summary.
    """

    name: str
    metric: str
    op: str
    threshold: float
    fire_after: int = 1
    clear_after: int = 1
    guard: Mapping[str, float] = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ReproError(
                f"alert rule {self.name!r}: op must be one of {OPS}, "
                f"got {self.op!r}"
            )
        if self.fire_after < 1 or self.clear_after < 1:
            raise ReproError(
                f"alert rule {self.name!r}: fire_after/clear_after must be >= 1"
            )

    def breaches(self, window: WindowRollup) -> bool:
        """Does this window violate the rule (guards included)?

        >>> from repro.obs.telemetry.rollup import WindowRollup
        >>> rule = AlertRule("r", "crash_rate", ">", 0.25,
        ...                  guard={"claimed": 1})
        >>> rule.breaches(WindowRollup(index=0, start=0.0, end=1.0))
        False
        """
        for guard_metric in sorted(self.guard):
            if window.metric(guard_metric) < float(self.guard[guard_metric]):
                return False
        value = window.metric(self.metric)
        return value > self.threshold if self.op == ">" else value < self.threshold


def default_rules() -> List[AlertRule]:
    """The stock SLO rule set every engine starts from (DESIGN §16.4)."""
    return [
        AlertRule(
            name="crash_rate_spike",
            metric="crash_rate",
            op=">",
            threshold=0.25,
            fire_after=1,
            clear_after=2,
            guard={"claimed": 1},
            description="more than a quarter of claims crashed the worker",
        ),
        AlertRule(
            name="error_rate_spike",
            metric="failure_rate",
            op=">",
            threshold=0.5,
            fire_after=1,
            clear_after=2,
            guard={"claimed": 1},
            description="over half of claimed attempts reported failure",
        ),
        AlertRule(
            name="lease_expiry_storm",
            metric="lease_expiries",
            op=">",
            threshold=2.0,
            fire_after=1,
            clear_after=1,
            description="three or more leases expired in one window",
        ),
        AlertRule(
            name="queue_age_ceiling",
            metric="oldest_waiting_age",
            op=">",
            threshold=8.0,
            fire_after=2,
            clear_after=1,
            description="a task has been waiting beyond the age ceiling "
            "for two consecutive windows",
        ),
        AlertRule(
            name="cache_hit_floor",
            metric="cache_hit_ratio",
            op="<",
            threshold=0.05,
            fire_after=2,
            clear_after=1,
            guard={"cache_lookups": 16.0},
            description="cache-hit ratio collapsed despite substantial "
            "lookup traffic",
        ),
    ]


class AlertEngine:
    """Evaluate a rule set over a window sequence, deterministically.

    The engine is stateless between calls: :meth:`evaluate` walks the
    windows in order, tracks per-rule breach/health streaks, and emits
    one ``fired``/``cleared`` transition event per state change.  The
    result is sorted by ``(t, rule, action)`` so the alert sequence for
    a given event stream is unique.
    """

    def __init__(self, rules: Optional[Sequence[AlertRule]] = None) -> None:
        self.rules: List[AlertRule] = (
            list(rules) if rules is not None else default_rules()
        )
        names = [r.name for r in self.rules]
        if len(set(names)) != len(names):
            raise ReproError(f"duplicate alert rule names: {sorted(names)}")

    def evaluate(
        self,
        windows: Sequence[WindowRollup],
        *,
        sink=None,
    ) -> List[Dict[str, Any]]:
        """All alert transitions over *windows*, in deterministic order.

        Each transition is
        ``{"rule", "action", "window", "t", "metric", "value",
        "threshold"}`` with ``t`` the end of the deciding window.  When
        *sink* (a :class:`~repro.obs.telemetry.events.TelemetrySink`)
        is given, every transition is also recorded in the telemetry
        journal as an ``alert`` note — alerts are part of the service's
        history, not just a rendering.
        """
        alerts: List[Dict[str, Any]] = []
        for rule in self.rules:
            breaching_streak = 0
            healthy_streak = 0
            active = False
            for window in windows:
                if rule.breaches(window):
                    breaching_streak += 1
                    healthy_streak = 0
                else:
                    healthy_streak += 1
                    breaching_streak = 0
                if not active and breaching_streak >= rule.fire_after:
                    active = True
                    alerts.append(self._transition(rule, window, "fired"))
                elif active and healthy_streak >= rule.clear_after:
                    active = False
                    alerts.append(self._transition(rule, window, "cleared"))
        alerts.sort(key=lambda a: (a["t"], a["rule"], a["action"]))
        if sink is not None:
            for alert in alerts:
                sink.note(
                    "alert",
                    alert["t"],
                    rule=alert["rule"],
                    action=alert["action"],
                    window=alert["window"],
                    metric=alert["metric"],
                    value=alert["value"],
                    threshold=alert["threshold"],
                )
        return alerts

    @staticmethod
    def _transition(
        rule: AlertRule, window: WindowRollup, action: str
    ) -> Dict[str, Any]:
        return {
            "rule": rule.name,
            "action": action,
            "window": window.index,
            "t": window.end,
            "metric": rule.metric,
            "value": window.metric(rule.metric),
            "threshold": rule.threshold,
        }


def render_alerts(alerts: Sequence[Dict[str, Any]]) -> str:
    """One operator-facing line per alert transition.

    >>> print(render_alerts([{"rule": "crash_rate_spike", "action": "fired",
    ...                       "window": 0, "t": 4.0, "metric": "crash_rate",
    ...                       "value": 0.5, "threshold": 0.25}]))
    [t=4] FIRED crash_rate_spike: crash_rate=0.5 > threshold 0.25 (window 0)
    """
    if not alerts:
        return "no alerts"
    lines = []
    for a in alerts:
        lines.append(
            f"[t={a['t']:g}] {a['action'].upper()} {a['rule']}: "
            f"{a['metric']}={a['value']:g} "
            f"{'>' if a['action'] == 'fired' else 'vs'} "
            f"threshold {a['threshold']:g} (window {a['window']})"
        )
    return "\n".join(lines)

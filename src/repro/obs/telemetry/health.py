"""Per-worker health model: live / degraded / stuck / idle (DESIGN §16.3).

A worker's health is derived from two deterministic inputs — the age of
its last store contact (claim, start, heartbeat, complete or fail, all
stamped with the logical clock) and the store's lease duration.  The
same classification feeds three surfaces: the telemetry rollups, the
``repro status`` dashboard (via
:meth:`repro.service.statestore.StateStore.render_status`) and the
``repro slo`` health table, so a "stuck" verdict means the same thing
everywhere.

The thresholds mirror the lease contract: a worker that has been silent
longer than its lease would already have had its tasks requeued by
:meth:`~repro.service.statestore.StateStore.expire_leases`, so silence
past one lease is *degraded* and past :data:`STUCK_LEASE_FACTOR` leases
is *stuck*.  A worker holding no live task cannot be stuck — it is
*idle* no matter how old its last contact is.

>>> classify_heartbeat_age(0.5, lease_seconds=2.0, holds_live_task=True)
'live'
>>> classify_heartbeat_age(3.0, lease_seconds=2.0, holds_live_task=True)
'degraded'
>>> classify_heartbeat_age(5.0, lease_seconds=2.0, holds_live_task=True)
'stuck'
>>> classify_heartbeat_age(99.0, lease_seconds=2.0, holds_live_task=False)
'idle'
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

#: Health states, from best to worst.
LIVE = "live"
IDLE = "idle"
DEGRADED = "degraded"
STUCK = "stuck"

#: Heartbeat age beyond this many leases marks a task-holding worker
#: as stuck (between 1 and this factor it is merely degraded).
STUCK_LEASE_FACTOR = 2.0


def classify_heartbeat_age(
    age: float, lease_seconds: float, *, holds_live_task: bool = True
) -> str:
    """The health state for one worker's heartbeat *age*.

    ``age`` is ``now - last_contact`` on the logical clock;
    ``holds_live_task`` distinguishes a slow worker (claimed/running
    work but silent) from a finished one (nothing claimed — idle, never
    stuck).
    """
    if not holds_live_task:
        return IDLE
    if age <= lease_seconds:
        return LIVE
    if age <= STUCK_LEASE_FACTOR * lease_seconds:
        return DEGRADED
    return STUCK


@dataclass(frozen=True)
class WorkerHealth:
    """One worker's health verdict at a given logical instant."""

    worker: str
    last_heartbeat: float
    age: float
    state: str
    live_tasks: int

    def describe(self) -> str:
        """One dashboard row, e.g. ``w0: last heartbeat 1.0s ago [live]``."""
        return (
            f"{self.worker}: last heartbeat {self.age:g}s ago "
            f"[{self.state}] ({self.live_tasks} live task(s))"
        )


def worker_health(
    heartbeats: Dict[str, float],
    live_tasks: Dict[str, int],
    now: float,
    lease_seconds: float,
) -> List[WorkerHealth]:
    """Classify every known worker, sorted by worker id.

    ``heartbeats`` maps worker id to the logical time of its last store
    contact; ``live_tasks`` to the number of claimed/running tasks it
    currently holds (absent means 0).

    >>> rows = worker_health({"w0": 4.0, "w1": 1.0}, {"w1": 1}, 6.0, 2.0)
    >>> [(r.worker, r.state) for r in rows]
    [('w0', 'idle'), ('w1', 'stuck')]
    """
    out: List[WorkerHealth] = []
    for worker in sorted(heartbeats):
        last = float(heartbeats[worker])
        age = max(0.0, float(now) - last)
        holding = int(live_tasks.get(worker, 0))
        out.append(
            WorkerHealth(
                worker=worker,
                last_heartbeat=last,
                age=age,
                state=classify_heartbeat_age(
                    age, lease_seconds, holds_live_task=holding > 0
                ),
                live_tasks=holding,
            )
        )
    return out


def health_from_store(store, now: float) -> List[WorkerHealth]:
    """Health rows for every worker a statestore has heard from.

    ``store`` is duck-typed (anything exposing ``worker_heartbeats()``,
    ``tasks()`` and ``lease_seconds``) so this module never imports
    :mod:`repro.service`.
    """
    live: Dict[str, int] = {}
    for task in store.tasks():
        if task.live and task.worker is not None:
            live[task.worker] = live.get(task.worker, 0) + 1
    return worker_health(
        store.worker_heartbeats(), live, now, store.lease_seconds
    )

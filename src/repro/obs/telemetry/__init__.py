"""Fleet-wide service telemetry: journal, SLO rollups, health, alerts.

The service layers (statestore, worker pool, fleet driver) emit one
ordered, logically-timestamped event stream through a
:class:`TelemetrySink`; this package turns that stream into operable
signal — windowed SLO rollups with deterministic percentiles
(:mod:`~repro.obs.telemetry.rollup`), a per-worker live/degraded/stuck
health model (:mod:`~repro.obs.telemetry.health`), declarative alert
rules with hysteresis (:mod:`~repro.obs.telemetry.alerts`) and the
committed, gateable SLO scenario behind ``repro slo`` and
``make slo-check`` (:mod:`~repro.obs.telemetry.slo`).

Everything is a pure function of the logical clock, so every rollup,
health verdict and alert transition is byte-stable and regression-
gateable like the rest of the repo (DESIGN §16).
"""

from repro.obs.telemetry.alerts import (
    AlertEngine,
    AlertRule,
    default_rules,
    render_alerts,
)
from repro.obs.telemetry.events import (
    NOTE_KINDS,
    STORE_OPS,
    TelemetrySink,
    load_events,
    telemetry_path_for,
)
from repro.obs.telemetry.health import (
    WorkerHealth,
    classify_heartbeat_age,
    health_from_store,
    worker_health,
)
from repro.obs.telemetry.rollup import (
    WindowRollup,
    merge,
    overall,
    percentile,
    rollup,
    window_origin,
)
from repro.obs.telemetry.slo import (
    ScenarioRun,
    render_slo_emission,
    render_windows,
    run_slo_scenario,
    slo_emission,
    stable_slo_bytes,
)

__all__ = [
    "AlertEngine",
    "AlertRule",
    "NOTE_KINDS",
    "STORE_OPS",
    "ScenarioRun",
    "TelemetrySink",
    "WindowRollup",
    "WorkerHealth",
    "classify_heartbeat_age",
    "default_rules",
    "health_from_store",
    "load_events",
    "merge",
    "overall",
    "percentile",
    "render_alerts",
    "render_slo_emission",
    "render_windows",
    "rollup",
    "run_slo_scenario",
    "slo_emission",
    "stable_slo_bytes",
    "telemetry_path_for",
    "window_origin",
    "worker_health",
]

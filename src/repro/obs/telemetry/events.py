"""Append-only service telemetry journal (DESIGN §16.1).

A :class:`TelemetrySink` samples every statestore lifecycle transition
plus the worker-side instants the store never sees (crashes, per-phase
work) into one ordered, logically-timestamped event list, optionally
mirrored line-by-line to a provenance-stamped sidecar journal next to
the statestore journal (``service.jsonl`` → ``service.telemetry.jsonl``).

Events are plain dicts — ``{"kind": ..., "t": ..., **fields}`` — written
as sorted-key JSON lines, so a telemetry journal is byte-stable for a
deterministic (logical-clock) run and replayable into the exact same
rollups by :func:`load_events`.  Wall-clock material (per-phase seconds
of completed tasks) is kept under the event's ``timings`` field so the
rollup layer can quarantine it per DESIGN §11.8.

The sink attaches to a store at construction
(``StateStore(telemetry=sink)``) or later via
:meth:`~repro.service.statestore.StateStore.attach_telemetry`; from
then on :meth:`TelemetrySink.record_store_op` receives every journal
event the store applies **live** (replay does not re-sample — the
telemetry journal is its own history).

>>> sink = TelemetrySink()
>>> _ = sink.record_store_op({"op": "submit", "task_id": "t-000001",
...                           "key": "k", "client": "anon", "priority": 0,
...                           "max_retries": 3, "now": 0.0})
>>> sink.events[0]["kind"], sink.events[0]["t"]
('submit', 0.0)
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

#: Store ops sampled 1:1 into telemetry events.
STORE_OPS = (
    "submit",
    "resubmit",
    "claim",
    "start",
    "heartbeat",
    "complete",
    "requeue",
    "cancel",
)

#: Worker/store instants recorded via :meth:`TelemetrySink.note`.
NOTE_KINDS = (
    "cache_hit",
    "dedup",
    "lease_expiry",
    "worker_crash",
    "phase_work",
    "alert",
)


def telemetry_path_for(store_path: Union[str, Path]) -> Path:
    """The sidecar telemetry journal path for one statestore journal.

    >>> str(telemetry_path_for("runs/service.jsonl"))
    'runs/service.telemetry.jsonl'
    """
    path = Path(store_path)
    stem = path.name[: -len(path.suffix)] if path.suffix else path.name
    return path.with_name(f"{stem}.telemetry.jsonl")


class TelemetrySink:
    """Collect (and optionally persist) service telemetry events in order.

    Parameters
    ----------
    path:
        Optional sidecar journal; events are appended as sorted-key
        JSON lines.  ``None`` keeps the journal in memory only.
    fresh:
        Truncate an existing sidecar instead of appending to it (used
        when the statestore itself starts a fresh journal).
    """

    def __init__(
        self,
        path: Union[str, Path, None] = None,
        *,
        fresh: bool = False,
    ) -> None:
        self.events: List[Dict[str, Any]] = []
        self._path: Optional[Path] = None
        if path is not None:
            self._path = Path(path)
            self._path.parent.mkdir(parents=True, exist_ok=True)
            if fresh or not self._path.exists():
                self._path.write_text("")

    @property
    def path(self) -> Optional[Path]:
        """The sidecar journal path (None for in-memory sinks)."""
        return self._path

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _append(self, event: Dict[str, Any]) -> Dict[str, Any]:
        self.events.append(event)
        if self._path is not None:
            with self._path.open("a") as fh:
                fh.write(json.dumps(event, sort_keys=True) + "\n")
        return event

    def record_store_op(self, store_event: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """Sample one live statestore journal event.

        Called by :meth:`repro.service.statestore.StateStore._record`
        after the event is applied; ops outside :data:`STORE_OPS`
        (``set_quota``) carry no SLO signal and are skipped.
        """
        op = str(store_event.get("op"))
        if op not in STORE_OPS:
            return None
        event: Dict[str, Any] = {
            "kind": op,
            "t": float(store_event["now"]),
            "task": store_event.get("task_id"),
        }
        for field in ("key", "client", "priority", "worker"):
            if field in store_event:
                event[field] = store_event[field]
        if op == "requeue":
            event["terminal"] = bool(store_event["terminal"])
            event["expired"] = bool(store_event.get("expired", False))
            event["not_before"] = float(store_event["not_before"])
        return self._append(event)

    def note(self, kind: str, t: float, **fields: Any) -> Dict[str, Any]:
        """Record one worker-side or derived instant (crash, cache hit …).

        >>> TelemetrySink().note("worker_crash", 3.0, worker="w0")["kind"]
        'worker_crash'
        """
        if kind not in NOTE_KINDS:
            raise ValueError(
                f"unknown telemetry note kind {kind!r}; expected one of "
                f"{NOTE_KINDS}"
            )
        event: Dict[str, Any] = {"kind": kind, "t": float(t)}
        event.update(fields)
        return self._append(event)

    def write_provenance(self, seed: Optional[int] = None) -> Dict[str, Any]:
        """Stamp the journal with a provenance header event.

        Recorded once per sink activation so a persisted telemetry
        journal names the commit/seed it was produced under (the
        EXPERIMENTS.md footer policy).  Provenance events carry
        ``t = -1`` and are ignored by the rollup layer.
        """
        from repro.obs.report import collect_provenance

        prov = collect_provenance(seed=seed)
        event = {"kind": "provenance", "t": -1.0, "provenance": prov.as_dict()}
        return self._append(event)


def load_events(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read one telemetry sidecar journal back into an event list.

    Blank lines are skipped; corrupt lines raise ``ValueError`` with
    the offending line number (mirroring the statestore's replay
    contract).
    """
    out: List[Dict[str, Any]] = []
    for lineno, line in enumerate(
        Path(path).read_text().splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            out.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"corrupt telemetry journal {path}:{lineno}: {exc}"
            ) from None
    return out

"""repro.obs — the unified observability layer (DESIGN §10).

Five pieces, one taxonomy:

* **spans** (:mod:`repro.obs.tracer`) — timed regions with phase /
  rank / cycle / backend / comm-scheme attributes, propagated
  ambiently through the SCF and CPSCF drivers, the execution backends,
  the simulated collectives and the fault injectors;
* **metrics** (:mod:`repro.obs.metrics`) — deterministic counters,
  gauges and histograms (bytes reduced, cache hits, blocks evaluated,
  retries; the service layer adds ``service.tasks_claimed`` /
  ``service.tasks_completed`` / ``service.tasks_failed`` /
  ``service.worker_crashes`` around its worker pool, and each task
  executes under a ``service``-category span carrying worker / task /
  cache-key / attempt attributes);
* **artifacts** (:mod:`repro.obs.export`, :mod:`repro.obs.report`) —
  a Perfetto-loadable Chrome trace-event file and the single
  :class:`RunReport` JSON/ASCII document that absorbs the legacy
  ``PhaseTimer`` / ``BackendProfile`` / ``VerifyReport`` trio;
* **the gate** (:mod:`repro.obs.regress`) — per-metric tolerance-band
  comparison of a fresh benchmark emission against a committed
  ``BENCH_*.json`` baseline (``repro bench-check`` / ``make bench-check``);
* **service telemetry** (:mod:`repro.obs.telemetry`) — fleet-wide SLO
  rollups, per-worker health and deterministic alerting over the
  statestore's logically-timestamped event stream
  (``repro slo`` / ``make slo-check``).

>>> from repro.obs import Tracer, activate, obs_span
>>> t = Tracer()
>>> with activate(t), obs_span("Sumup", rank=0):
...     pass
>>> len(t.spans)
1
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import (
    Span,
    Tracer,
    activate,
    current_context,
    current_tracer,
    obs_counter,
    obs_event,
    obs_gauge,
    obs_histogram,
    obs_span,
    trace_context,
)
from repro.obs.export import (
    chrome_trace,
    cycle_trace_events,
    service_track_events,
    span_events,
    write_chrome_trace,
)
from repro.obs.report import Provenance, RunReport, collect_provenance
from repro.obs.regress import (
    Band,
    MetricDelta,
    RegressionReport,
    check_against_baseline,
    compare_reports,
    default_band,
    flatten,
    load_baseline,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "activate",
    "current_context",
    "current_tracer",
    "obs_counter",
    "obs_event",
    "obs_gauge",
    "obs_histogram",
    "obs_span",
    "trace_context",
    "chrome_trace",
    "cycle_trace_events",
    "service_track_events",
    "span_events",
    "write_chrome_trace",
    "Provenance",
    "RunReport",
    "collect_provenance",
    "Band",
    "MetricDelta",
    "RegressionReport",
    "check_against_baseline",
    "compare_reports",
    "default_band",
    "flatten",
    "load_baseline",
]

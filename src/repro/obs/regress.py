"""The perf-regression gate: fresh emission vs committed baseline (DESIGN §10.6).

Benchmark artifacts (``BENCH_*.json``) are flattened to dotted metric
paths and compared metric-by-metric under a *tolerance band* chosen by
key pattern:

``exact``
    deterministic work counters (calls, elements, cache hits/misses,
    launches, grid/basis sizes, modeled seconds) — any drift means the
    work itself changed, which is exactly what the gate must catch;
``slowdown``
    measured wall seconds — one-sided: getting faster always passes,
    getting slower beyond ``(1 + tol)x`` the baseline fails;
``floor``
    speedup ratios — one-sided: higher is fine, falling below
    ``baseline / tol`` fails;
``ignore``
    recorded but never gating.

>>> base = {"calls": 8, "wall_seconds": 1.0, "speedup_vs_numpy": 10.0}
>>> compare_reports(dict(base), dict(base)).ok
True
>>> bad = dict(base, wall_seconds=9.0)  # 9x slowdown
>>> rep = compare_reports(bad, base)
>>> rep.ok, [d.key for d in rep.offenders]
(False, ['wall_seconds'])
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ExperimentError

#: Default slack for one-sided wall-time comparisons (fail above 3x base).
WALL_SLOWDOWN_TOLERANCE = 2.0

#: Slack for per-phase micro-times (fail above 10x base).  These are
#: sub-50ms slices of the total, so scheduler noise on a loaded machine
#: moves them far more than the aggregate wall they sum into.
PHASE_SLOWDOWN_TOLERANCE = 9.0

#: Default slack for one-sided speedup floors (fail below base / 3).
SPEEDUP_FLOOR_FACTOR = 3.0


@dataclass(frozen=True)
class Band:
    """One metric's tolerance policy.

    >>> Band("exact").allows(3.0, 3.0)
    True
    >>> Band("slowdown", 2.0).allows(baseline=1.0, fresh=2.9)
    True
    >>> Band("slowdown", 2.0).allows(baseline=1.0, fresh=3.1)
    False
    """

    kind: str  # "exact" | "slowdown" | "floor" | "relative" | "ignore"
    tol: float = 0.0

    def allows(self, baseline: float, fresh: float) -> bool:
        """Does *fresh* stay in-band relative to *baseline*?"""
        if self.kind == "ignore":
            return True
        if self.kind == "exact":
            return fresh == baseline
        if self.kind == "slowdown":
            return fresh <= baseline * (1.0 + self.tol)
        if self.kind == "floor":
            return fresh >= baseline / self.tol if self.tol > 0 else True
        if self.kind == "relative":
            scale = max(abs(baseline), 1e-300)
            return abs(fresh - baseline) / scale <= self.tol
        raise ExperimentError(f"unknown tolerance-band kind {self.kind!r}")

    def describe(self) -> str:
        """Short human-readable form for report rows."""
        if self.kind == "exact":
            return "exact"
        if self.kind == "ignore":
            return "ignore"
        if self.kind == "slowdown":
            return f"<= {1.0 + self.tol:g}x base"
        if self.kind == "floor":
            return f">= base/{self.tol:g}"
        return f"+-{self.tol:g} rel"


def default_band(key: str) -> Band:
    """The tolerance policy for one flattened metric key.

    The rules encode the policy documented in DESIGN §10.6: anything
    deterministic is exact; anything wall-clock is one-sided.

    >>> default_band("backends.numpy.profile.phases.H.calls").kind
    'exact'
    >>> default_band("backends.batched.wall_seconds").kind
    'slowdown'
    >>> default_band("batched_speedup_vs_numpy").kind
    'floor'
    >>> default_band("diff.density_max_diff").kind
    'ignore'
    """
    leaf = key.rsplit(".", 1)[-1]
    if "diff" in leaf:
        # Dense-vs-screened residuals: bounded by the emission itself
        # (it refuses to report past the physics tolerance) but their
        # exact value is BLAS-library noise — recorded, never gating.
        return Band("ignore")
    if "speedup" in leaf:
        return Band("floor", SPEEDUP_FLOOR_FACTOR)
    if leaf == "modeled_seconds":
        # Cost-model output: deterministic float arithmetic, but allow
        # for library-level reduction-order jitter.
        return Band("relative", 1e-9)
    if leaf == "seconds":
        # Per-phase profile slices: tiny absolute times, noisy under load.
        return Band("slowdown", PHASE_SLOWDOWN_TOLERANCE)
    if "wall" in leaf or leaf.endswith("_seconds"):
        return Band("slowdown", WALL_SLOWDOWN_TOLERANCE)
    return Band("exact")


def flatten(doc: Dict[str, object], prefix: str = "") -> Dict[str, float]:
    """Numeric leaves of a nested JSON document as dotted paths.

    Booleans and strings are skipped — the gate compares measurements,
    not labels.

    >>> flatten({"a": {"b": 2}, "label": "x", "ok": True})
    {'a.b': 2.0}
    """
    out: Dict[str, float] = {}
    for key, value in doc.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            out.update(flatten(value, path))
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            out[path] = float(value)
    return out


@dataclass
class MetricDelta:
    """One compared metric: values, band, verdict."""

    key: str
    baseline: Optional[float]
    fresh: Optional[float]
    band: Band
    ok: bool

    def describe(self) -> str:
        """One report row, e.g. for the failure summary."""
        base = "missing" if self.baseline is None else f"{self.baseline:g}"
        new = "missing" if self.fresh is None else f"{self.fresh:g}"
        status = "ok" if self.ok else "REGRESSION"
        return f"{self.key}: baseline={base} fresh={new} [{self.band.describe()}] {status}"


@dataclass
class RegressionReport:
    """Outcome of one baseline comparison."""

    deltas: List[MetricDelta] = field(default_factory=list)

    @property
    def offenders(self) -> List[MetricDelta]:
        """Every metric that left its tolerance band."""
        return [d for d in self.deltas if not d.ok]

    @property
    def ok(self) -> bool:
        """True when no compared metric left its band."""
        return not self.offenders

    def render(self) -> str:
        """Summary plus one line per offending metric."""
        checked = [d for d in self.deltas if d.band.kind != "ignore"]
        lines = [
            f"bench-check: {len(checked)} metrics compared, "
            f"{len(self.offenders)} out of band"
        ]
        for d in self.offenders:
            lines.append("  " + d.describe())
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)


def compare_reports(
    fresh: Dict[str, object],
    baseline: Dict[str, object],
    overrides: Optional[Dict[str, Band]] = None,
) -> RegressionReport:
    """Compare one fresh benchmark emission against a committed baseline.

    Every metric present in the baseline must exist in the fresh
    emission (a vanished metric is itself a regression — the benchmark
    stopped measuring something).  Metrics new in the fresh emission
    are recorded but pass (baselines are updated by re-committing).
    """
    overrides = overrides or {}
    base_flat = flatten(baseline)
    fresh_flat = flatten(fresh)
    report = RegressionReport()
    for key in sorted(set(base_flat) | set(fresh_flat)):
        band = overrides.get(key, default_band(key))
        b, f = base_flat.get(key), fresh_flat.get(key)
        if b is None:
            ok = True  # new metric, not yet in the baseline
        elif f is None:
            ok = False  # metric vanished from the fresh emission
        else:
            ok = band.allows(b, f)
        report.deltas.append(MetricDelta(key, b, f, band, ok))
    return report


def load_baseline(path: Union[str, Path]) -> Dict[str, object]:
    """Read one committed ``BENCH_*.json`` baseline."""
    path = Path(path)
    if not path.exists():
        raise ExperimentError(
            f"baseline {path} does not exist; run the benchmark once and "
            "commit its JSON output"
        )
    return json.loads(path.read_text())


def check_against_baseline(
    fresh: Dict[str, object],
    baseline_path: Union[str, Path],
    overrides: Optional[Dict[str, Band]] = None,
) -> RegressionReport:
    """Convenience wrapper: load the baseline file, compare, report."""
    return compare_reports(fresh, load_baseline(baseline_path), overrides=overrides)


def baseline_run_parameters(baseline: Dict[str, object]) -> Tuple[str, int]:
    """The (level, n_sweeps) a fresh emission must use to be comparable.

    >>> baseline_run_parameters({"level": "light", "n_sweeps": 8})
    ('light', 8)
    """
    try:
        return str(baseline["level"]), int(baseline["n_sweeps"])  # type: ignore[arg-type]
    except (KeyError, TypeError, ValueError):
        raise ExperimentError(
            "baseline is missing its run parameters (level, n_sweeps); "
            "regenerate it with the current benchmark"
        ) from None

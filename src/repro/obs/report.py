"""The unified per-run artifact: :class:`RunReport` (DESIGN §10.5).

One JSON/ASCII document absorbing everything a run previously scattered
over four structures — :class:`~repro.utils.timing.PhaseTimer` phase
walls, the backend's :class:`~repro.backends.base.BackendProfile`, the
:class:`~repro.verify.invariants.VerifyReport`, and the tracer's
metrics snapshot — plus a :class:`Provenance` block (commit, seed,
``REPRO_FULL_SCALE``, machine-model names) so a benchmark row is
reproducible on its face.

>>> rep = RunReport(label="doctest", phase_seconds={"Sumup": 0.5, "H": 0.25})
>>> round(rep.wall_seconds, 2)
0.75
>>> "Sumup" in rep.render_ascii()
True
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.backends.base import BackendProfile
    from repro.obs.tracer import Tracer
    from repro.utils.timing import PhaseTimer
    from repro.verify.invariants import VerifyReport


@dataclass
class Provenance:
    """Where and how one benchmark emission was produced.

    >>> p = Provenance(commit="abc1234", seed=2023, full_scale=False)
    >>> "abc1234" in p.footer_markdown()
    True
    """

    commit: str = "unknown"
    dirty: bool = False
    seed: Optional[int] = None
    full_scale: bool = False
    machines: List[str] = field(default_factory=list)
    python: str = ""
    numpy: str = ""

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form (stable key order)."""
        return {
            "commit": self.commit,
            "dirty": self.dirty,
            "seed": self.seed,
            "full_scale": self.full_scale,
            "machines": list(self.machines),
            "python": self.python,
            "numpy": self.numpy,
        }

    def footer_markdown(self) -> str:
        """The EXPERIMENTS.md provenance footer for one benchmark block."""
        commit = self.commit + ("+dirty" if self.dirty else "")
        parts = [
            f"commit `{commit}`",
            f"seed {self.seed if self.seed is not None else '—'}",
            f"`REPRO_FULL_SCALE={'1' if self.full_scale else '0'}`",
        ]
        if self.machines:
            parts.append("machine models: " + ", ".join(self.machines))
        if self.python:
            parts.append(f"python {self.python}")
        if self.numpy:
            parts.append(f"numpy {self.numpy}")
        return "> provenance: " + " · ".join(parts)


def collect_provenance(seed: Optional[int] = None) -> Provenance:
    """Gather the current repo/environment provenance.

    Works outside a git checkout (commit stays ``"unknown"``); never
    raises — a report writer must not fail the run it documents.
    """
    commit, dirty = "unknown", False
    try:
        here = Path(__file__).resolve().parent
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=here, capture_output=True, text=True, timeout=10,
        )
        if out.returncode == 0:
            commit = out.stdout.strip()
            st = subprocess.run(
                ["git", "status", "--porcelain"],
                cwd=here, capture_output=True, text=True, timeout=10,
            )
            dirty = st.returncode == 0 and bool(st.stdout.strip())
    except (OSError, subprocess.SubprocessError):  # pragma: no cover
        pass
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        numpy_version = "unavailable"
    try:
        from repro.runtime.machines import HPC1_SUNWAY, HPC2_AMD

        machines = [HPC1_SUNWAY.name, HPC2_AMD.name]
    except ImportError:  # pragma: no cover - cycle guard
        machines = []
    return Provenance(
        commit=commit,
        dirty=dirty,
        seed=seed,
        full_scale=os.environ.get("REPRO_FULL_SCALE", "0") == "1",
        machines=machines,
        python=platform.python_version(),
        numpy=numpy_version,
    )


@dataclass
class RunReport:
    """Everything observable about one run, in one artifact.

    Build it from live objects with :meth:`from_run`; serialize with
    :meth:`to_json` / :meth:`write`; render for humans with
    :meth:`render_ascii`.
    """

    label: str = "run"
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    backend: Optional[Dict[str, object]] = None
    verify: Optional[Dict[str, object]] = None
    metrics: Dict[str, object] = field(default_factory=dict)
    trace: Dict[str, object] = field(default_factory=dict)
    provenance: Optional[Provenance] = None
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def wall_seconds(self) -> float:
        """Summed per-phase wall time (phases are sequential)."""
        return sum(self.phase_seconds.values())

    # ------------------------------------------------------------------
    @classmethod
    def from_run(
        cls,
        label: str,
        timer: Optional["PhaseTimer"] = None,
        backend_profile: Optional["BackendProfile"] = None,
        verify_report: Optional["VerifyReport"] = None,
        tracer: Optional["Tracer"] = None,
        seed: Optional[int] = None,
        **extra,
    ) -> "RunReport":
        """Absorb the four legacy per-run structures into one report."""
        verify: Optional[Dict[str, object]] = None
        if verify_report is not None:
            verify = {
                "level": verify_report.level,
                "checks": len(verify_report.results),
                "failures": verify_report.failed_names,
                "ok": verify_report.ok,
            }
        trace: Dict[str, object] = {}
        metrics: Dict[str, object] = {}
        if tracer is not None:
            metrics = tracer.metrics.as_dict()
            trace = {
                "spans": len(tracer.spans),
                "phase_wall_seconds": tracer.phase_wall("phase"),
                "categories": sorted({s.category for s in tracer.spans}),
            }
        return cls(
            label=label,
            phase_seconds=dict(timer.as_dict()) if timer is not None else {},
            backend=backend_profile.as_dict() if backend_profile is not None else None,
            verify=verify,
            metrics=metrics,
            trace=trace,
            provenance=collect_provenance(seed=seed),
            extra=dict(extra),
        )

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly snapshot of the whole report."""
        return {
            "label": self.label,
            "phase_seconds": dict(self.phase_seconds),
            "wall_seconds": self.wall_seconds,
            "backend": self.backend,
            "verify": self.verify,
            "metrics": self.metrics,
            "trace": self.trace,
            "provenance": self.provenance.as_dict() if self.provenance else None,
            "extra": self.extra,
        }

    def to_json(self) -> str:
        """Serialized report (stable key order)."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    def write(self, path: Union[str, Path]) -> Path:
        """Write the JSON artifact; returns the path written."""
        path = Path(path)
        path.write_text(self.to_json())
        return path

    def render_ascii(self) -> str:
        """The unified human-readable report (tables + summary lines)."""
        from repro.utils.reports import TableFormatter, format_seconds

        lines: List[str] = [f"run report [{self.label}]"]
        if self.phase_seconds:
            table = TableFormatter(["phase", "wall"], title="per-phase wall time")
            for phase, seconds in self.phase_seconds.items():
                table.add_row([phase, format_seconds(seconds)])
            table.add_row(["total", format_seconds(self.wall_seconds)])
            lines += ["", table.render()]
        if self.backend:
            phases = self.backend.get("phases", {})
            table = TableFormatter(
                ["phase", "calls", "elements", "wall"],
                title=f"backend profile [{self.backend.get('backend', '?')}]",
            )
            for name, s in phases.items():  # type: ignore[union-attr]
                table.add_row(
                    [name, s["calls"], f"{s['elements']:,}",
                     format_seconds(s["seconds"])]
                )
            lines += ["", table.render()]
        if self.verify:
            status = "ok" if self.verify.get("ok") else (
                "FAILED: " + ", ".join(self.verify.get("failures", []))  # type: ignore[arg-type]
            )
            lines += [
                "",
                f"verification [{self.verify.get('level')}]: "
                f"{self.verify.get('checks')} checks — {status}",
            ]
        counters = self.metrics.get("counters", {}) if self.metrics else {}
        if counters:
            table = TableFormatter(["metric", "value"], title="counters")
            for name, value in counters.items():  # type: ignore[union-attr]
                table.add_row([name, f"{value:,}"])
            lines += ["", table.render()]
        if self.trace:
            lines += [
                "",
                f"trace: {self.trace.get('spans')} spans, phase wall "
                f"{format_seconds(float(self.trace.get('phase_wall_seconds', 0.0)))}",
            ]
        if self.provenance is not None:
            lines += ["", self.provenance.footer_markdown()]
        return "\n".join(lines)

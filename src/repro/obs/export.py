"""Chrome trace-event (Perfetto-loadable) export (DESIGN §10.4).

Two sources feed one ``traceEvents`` JSON file:

* real :class:`~repro.obs.tracer.Span` records from a measured physics
  run (track = the span's ``rank`` attribute, default rank 0);
* synthesized per-rank tracks from a modeled
  :class:`~repro.runtime.trace.CycleTrace`, so the straggler view of
  the scale model can be opened in the same UI as a measured trace.

Timestamps are microseconds (the trace-event format's unit), strictly
non-negative, and non-decreasing in emission order within each track.
Open the output at https://ui.perfetto.dev or ``chrome://tracing``.

>>> from repro.obs.tracer import Tracer
>>> t = Tracer()
>>> with t.span("Sumup", rank=0):
...     pass
>>> doc = chrome_trace(t.spans)
>>> doc["traceEvents"][-1]["ph"]
'X'
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.tracer import Span
    from repro.runtime.trace import CycleTrace

#: Process ids used for the track families.
MEASURED_PID = 0
MODELED_PID = 1
#: Fleet-level service telemetry tracks (one per worker + the queue).
SERVICE_PID = 2

_US = 1e6  # seconds -> microseconds


def _meta(pid: int, tid: int, name: str) -> Dict[str, object]:
    return {
        "ph": "M",
        "name": "thread_name",
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }


def _clean_args(attrs: Dict[str, object]) -> Dict[str, object]:
    return {k: v for k, v in attrs.items() if isinstance(v, (str, int, float, bool))}


def span_events(
    spans: Sequence["Span"], pid: int = MEASURED_PID
) -> List[Dict[str, object]]:
    """Trace events for measured spans (one track per ``rank`` attribute).

    Duration spans become complete (``ph="X"``) events; instant spans
    (injected faults, degradations) become instant (``ph="i"``) events.
    """
    events: List[Dict[str, object]] = []
    seen_tids: Dict[int, str] = {}
    for sp in spans:
        tid = int(sp.attrs.get("rank", 0))  # type: ignore[arg-type]
        seen_tids.setdefault(tid, f"rank {tid}")
        base = {
            "name": sp.name,
            "cat": sp.category,
            "pid": pid,
            "tid": tid,
            "ts": max(0.0, sp.start) * _US,
            "args": _clean_args(sp.attrs),
        }
        if sp.instant:
            base.update({"ph": "i", "s": "t"})
        else:
            base.update({"ph": "X", "dur": sp.duration * _US})
        events.append(base)
    metas = [_meta(pid, tid, name) for tid, name in sorted(seen_tids.items())]
    return metas + sorted(events, key=lambda e: (e["tid"], e["ts"]))


def cycle_trace_events(
    trace: "CycleTrace", pid: int = MODELED_PID, label: str = "modeled"
) -> List[Dict[str, object]]:
    """Synthesized per-rank tracks from one modeled cycle timeline.

    Each :class:`~repro.runtime.trace.Interval` becomes a complete
    event on its rank's track; zero-duration intervals are dropped
    (they carry no information and would render as 0-width slivers).
    """
    events: List[Dict[str, object]] = [
        _meta(pid, r, f"{label} rank {r}") for r in range(trace.n_ranks)
    ]
    for iv in sorted(trace.intervals, key=lambda iv: (iv.rank, iv.start)):
        if iv.duration <= 0.0:
            continue
        events.append(
            {
                "name": iv.phase,
                "cat": "model",
                "ph": "X",
                "pid": pid,
                "tid": iv.rank,
                "ts": max(0.0, iv.start) * _US,
                "dur": iv.duration * _US,
                "args": {"rank": iv.rank},
            }
        )
    return events


#: Queue-level telemetry instants shown on the service ``queue`` track.
_QUEUE_INSTANTS = ("submit", "resubmit", "cache_hit", "dedup", "alert")


def service_track_events(
    telemetry_events: Sequence[Dict[str, object]], pid: int = SERVICE_PID
) -> List[Dict[str, object]]:
    """Fleet-level tracks from one service telemetry event stream.

    Each worker gets its own track: a complete (``ph="X"``) event per
    claim, spanning claim → complete / fail / crash, plus instant
    markers for crashes and lease expiries.  Queue-level instants
    (submits, cache hits, dedups, alert transitions) share a ``queue``
    track at tid 0.  Input is the event-dict stream of a
    :class:`~repro.obs.telemetry.events.TelemetrySink` (or
    :func:`~repro.obs.telemetry.events.load_events`); logical seconds
    map to trace microseconds.

    >>> evs = service_track_events([
    ...     {"kind": "claim", "t": 1.0, "task": "t-1", "worker": "w0"},
    ...     {"kind": "complete", "t": 3.0, "task": "t-1", "worker": "w0"},
    ... ])
    >>> [(e["ph"], e.get("dur")) for e in evs if e["ph"] == "X"]
    [('X', 2000000.0)]
    """
    workers = sorted(
        {
            str(ev["worker"])
            for ev in telemetry_events
            if ev.get("worker") is not None
        }
    )
    tids = {w: i + 1 for i, w in enumerate(workers)}
    metas = [_meta(pid, 0, "service queue")]
    metas += [_meta(pid, tids[w], f"worker {w}") for w in workers]

    events: List[Dict[str, object]] = []
    open_claims: Dict[tuple, float] = {}

    def _instant(name: str, t: float, tid: int, args: Dict[str, object]) -> None:
        events.append(
            {
                "name": name,
                "cat": "service",
                "ph": "i",
                "s": "t",
                "pid": pid,
                "tid": tid,
                "ts": max(0.0, t) * _US,
                "args": _clean_args(args),
            }
        )

    for ev in telemetry_events:
        kind = str(ev.get("kind"))
        t = float(ev.get("t", 0.0))  # type: ignore[arg-type]
        if t < 0.0:  # provenance header
            continue
        worker = ev.get("worker")
        task = ev.get("task")
        if kind == "claim" and worker is not None:
            open_claims[(worker, task)] = t
        elif kind in ("complete", "requeue", "worker_crash"):
            outcome = {
                "complete": "completed",
                "worker_crash": "crashed",
            }.get(kind, "expired" if ev.get("expired") else "failed")
            start = open_claims.pop((worker, task), None)
            if start is not None and worker in tids:
                events.append(
                    {
                        "name": str(task),
                        "cat": "service",
                        "ph": "X",
                        "pid": pid,
                        "tid": tids[worker],
                        "ts": max(0.0, start) * _US,
                        "dur": max(0.0, t - start) * _US,
                        "args": {"worker": str(worker), "outcome": outcome},
                    }
                )
            if kind == "worker_crash" and worker in tids:
                _instant("worker_crash", t, tids[worker], {"task": str(task)})
        if kind == "lease_expiry" and worker in tids:
            _instant("lease_expiry", t, tids[worker], {"task": str(task)})
        elif kind in _QUEUE_INSTANTS:
            name = (
                f"alert:{ev.get('action')}:{ev.get('rule')}"
                if kind == "alert"
                else kind
            )
            _instant(name, t, 0, {k: v for k, v in ev.items() if k != "kind"})
    return metas + sorted(events, key=lambda e: (e["tid"], e["ts"]))


def chrome_trace(
    spans: Sequence["Span"] = (),
    cycle_traces: Iterable["CycleTrace"] = (),
    metadata: Optional[Dict[str, object]] = None,
    telemetry_events: Sequence[Dict[str, object]] = (),
) -> Dict[str, object]:
    """Assemble one trace-event document from spans and modeled cycles.

    ``metadata`` lands in the document's ``otherData`` section (the
    format's free-form run-provenance slot); ``telemetry_events`` adds
    the fleet-level service tracks of :func:`service_track_events`.
    """
    events: List[Dict[str, object]] = []
    events.extend(span_events(spans))
    for i, ct in enumerate(cycle_traces):
        events.extend(cycle_trace_events(ct, pid=MODELED_PID + i))
    if telemetry_events:
        events.extend(service_track_events(telemetry_events))
    doc: Dict[str, object] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if metadata:
        doc["otherData"] = metadata
    return doc


def write_chrome_trace(
    path: Union[str, Path],
    spans: Sequence["Span"] = (),
    cycle_traces: Iterable["CycleTrace"] = (),
    metadata: Optional[Dict[str, object]] = None,
    telemetry_events: Sequence[Dict[str, object]] = (),
) -> Path:
    """Write a Perfetto-loadable JSON file; returns the path written."""
    path = Path(path)
    doc = chrome_trace(
        spans, cycle_traces, metadata=metadata,
        telemetry_events=telemetry_events,
    )
    path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    return path

"""Timeline reconstruction and critical-path extraction (DESIGN §11.2).

A :class:`Timeline` is the normalized, analysis-ready view of one
recorded run.  Three artifact sources feed it:

* live :class:`~repro.obs.tracer.Span` lists from an active tracer
  (:meth:`Timeline.from_spans`);
* Chrome trace-event JSON written by :mod:`repro.obs.export`
  (:meth:`Timeline.from_chrome_trace` / :func:`load_run`);
* modeled :class:`~repro.runtime.trace.CycleTrace` per-rank timelines
  (:meth:`Timeline.from_cycle_trace`).

Every event carries ``(rank, phase, start, end)`` plus the *segment* it
belongs to — one SCF or CPSCF cycle, reconstructed from the ambient
``loop``/``direction``/``cycle`` attributes the drivers push — and
injected faults survive as :class:`FaultMark` records, so post-mortem
attribution can point at them.

:func:`critical_path` answers the question the raw artifacts only
imply: which (rank, phase) chain bounds the wall time of each cycle.

>>> from repro.runtime.trace import CycleTrace, Interval
>>> ct = CycleTrace(2, [Interval(0, "DM", 0.0, 1.0),
...                     Interval(1, "DM", 0.0, 3.0)])
>>> tl = Timeline.from_cycle_trace(ct)
>>> cp = critical_path(tl)
>>> (cp.steps[0].phase, cp.steps[0].rank)
('DM', 1)
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ExperimentError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.tracer import Span
    from repro.runtime.trace import CycleTrace

_US = 1e-6  # trace-event microseconds -> seconds


@dataclass(frozen=True)
class TimelineEvent:
    """One rank's occupation of one phase within one segment.

    >>> TimelineEvent(rank=1, phase="Sumup", start=0.5, end=2.0).duration
    1.5
    """

    rank: int
    phase: str
    start: float
    end: float
    segment: str = ""
    category: str = "phase"
    nbytes: int = 0
    scheme: str = ""

    @property
    def duration(self) -> float:
        """Elapsed seconds (never negative)."""
        return max(0.0, self.end - self.start)


@dataclass(frozen=True)
class FaultMark:
    """One injected fault as it appears in a recorded artifact."""

    kind: str
    rank: int = -1
    time: float = 0.0
    site: str = ""
    delay: float = 0.0
    segment: str = ""

    def describe(self) -> str:
        """One deterministic report line for dashboards/narratives."""
        where = f" on rank {self.rank}" if self.rank >= 0 else ""
        site = f" at {self.site}" if self.site else ""
        delay = f" (delay {self.delay:g}s)" if self.delay > 0 else ""
        return f"{self.kind}{where}{site}{delay}"


def _segment_of(attrs: Dict[str, object]) -> str:
    loop = attrs.get("loop")
    cycle = attrs.get("cycle")
    if loop == "cpscf":
        loop = f"cpscf{attrs.get('direction', '?')}"
    if loop is not None:
        return str(loop) if cycle is None else f"{loop}[{cycle}]"
    if cycle is not None:
        return f"cycle[{cycle}]"
    return ""


@dataclass
class Timeline:
    """Normalized per-rank/per-phase view of one recorded run."""

    label: str = "run"
    events: List[TimelineEvent] = field(default_factory=list)
    faults: List[FaultMark] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_spans(
        cls,
        spans: Sequence["Span"],
        label: str = "run",
        categories: Optional[Sequence[str]] = None,
    ) -> "Timeline":
        """Build from live tracer spans.

        Duration spans become events (``categories`` filters them;
        ``None`` keeps every non-instant category); instant spans of
        category ``"fault"`` become :class:`FaultMark` records.
        """
        events: List[TimelineEvent] = []
        faults: List[FaultMark] = []
        for sp in spans:
            attrs = sp.attrs
            if sp.instant:
                if sp.category == "fault":
                    faults.append(
                        FaultMark(
                            kind=sp.name,
                            rank=int(attrs.get("rank", -1)),  # type: ignore[arg-type]
                            time=sp.start,
                            site=str(attrs.get("site", "")),
                            delay=float(attrs.get("delay", 0.0)),  # type: ignore[arg-type]
                            segment=_segment_of(attrs),
                        )
                    )
                continue
            if categories is not None and sp.category not in categories:
                continue
            events.append(
                TimelineEvent(
                    rank=int(attrs.get("rank", 0)),  # type: ignore[arg-type]
                    phase=sp.name,
                    start=sp.start,
                    end=sp.end,
                    segment=_segment_of(attrs),
                    category=sp.category,
                    nbytes=int(attrs.get("nbytes", 0)),  # type: ignore[arg-type]
                    scheme=str(attrs.get("scheme", "")),
                )
            )
        return cls(label=label, events=events, faults=faults)

    @classmethod
    def from_chrome_trace(
        cls,
        doc: Union[Dict[str, object], str, Path],
        label: Optional[str] = None,
        pid: Optional[int] = None,
    ) -> "Timeline":
        """Build from a Chrome trace-event document (or its file path).

        ``ph:"X"`` events become timeline events (track id = rank),
        ``ph:"i"`` events of category ``fault`` become fault marks;
        ``pid`` restricts parsing to one process track family (``None``
        = every pid, the common single-family case).
        """
        if not isinstance(doc, dict):
            path = Path(doc)
            label = label or path.stem
            doc = json.loads(path.read_text())
        raw = doc.get("traceEvents")
        if not isinstance(raw, list):
            raise ExperimentError(
                "not a Chrome trace-event document (missing traceEvents)"
            )
        events: List[TimelineEvent] = []
        faults: List[FaultMark] = []
        for e in raw:
            if not isinstance(e, dict) or e.get("ph") == "M":
                continue
            if pid is not None and e.get("pid") != pid:
                continue
            args = e.get("args") or {}
            tid = int(e.get("tid", 0))  # type: ignore[arg-type]
            start = float(e.get("ts", 0.0)) * _US  # type: ignore[arg-type]
            if e.get("ph") == "i":
                if e.get("cat") == "fault":
                    faults.append(
                        FaultMark(
                            kind=str(e.get("name", "fault")),
                            rank=int(args.get("rank", tid)),
                            time=start,
                            site=str(args.get("site", "")),
                            delay=float(args.get("delay", 0.0)),
                            segment=_segment_of(args),
                        )
                    )
                continue
            if e.get("ph") != "X":
                continue
            end = start + float(e.get("dur", 0.0)) * _US  # type: ignore[arg-type]
            events.append(
                TimelineEvent(
                    rank=tid,
                    phase=str(e.get("name", "?")),
                    start=start,
                    end=end,
                    segment=_segment_of(args),
                    category=str(e.get("cat", "phase")),
                    nbytes=int(args.get("nbytes", 0)),
                    scheme=str(args.get("scheme", "")),
                )
            )
        return cls(label=label or "trace", events=events, faults=faults)

    @classmethod
    def from_cycle_trace(
        cls,
        trace: "CycleTrace",
        label: str = "modeled",
        fault_events: Sequence[object] = (),
    ) -> "Timeline":
        """Build from one modeled per-rank cycle timeline.

        ``fault_events`` (e.g. the :class:`~repro.runtime.faults.FaultEvent`
        list a chaos run collected) become fault marks so the modeled
        ``Idle``/``Retry`` intervals stay attributable.
        """
        events = [
            TimelineEvent(
                rank=iv.rank,
                phase=iv.phase,
                start=iv.start,
                end=iv.end,
                category="model",
            )
            for iv in trace.intervals
        ]
        faults = [
            FaultMark(
                kind=str(getattr(ev, "kind", "fault")),
                rank=int(getattr(ev, "rank", -1)),
                site=str(getattr(ev, "site", "")),
                delay=float(getattr(ev, "delay", 0.0)),
            )
            for ev in fault_events
        ]
        return cls(label=label, events=events, faults=faults)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def n_ranks(self) -> int:
        """Number of rank tracks (max rank id + 1, at least 1)."""
        ranks = [e.rank for e in self.events] + [
            f.rank for f in self.faults if f.rank >= 0
        ]
        return max(ranks, default=0) + 1

    @property
    def wall_seconds(self) -> float:
        """End of the last event (timeline epoch is t=0)."""
        return max((e.end for e in self.events), default=0.0)

    def primary_categories(self) -> Tuple[str, ...]:
        """The category set busy-time accounting defaults to.

        Driver ``phase`` spans (or a modeled trace's ``model``
        intervals) are sequential and non-overlapping; nested
        ``backend``/``comm`` spans would double-count against them, so
        analysis prefers the outermost family present.
        """
        present = {e.category for e in self.events}
        for preferred in ("phase", "model"):
            if preferred in present:
                return (preferred,)
        return tuple(sorted(present))

    def _selected(
        self, categories: Optional[Sequence[str]]
    ) -> List[TimelineEvent]:
        cats = tuple(categories) if categories is not None else self.primary_categories()
        return [e for e in self.events if e.category in cats]

    def busy_matrix(
        self, categories: Optional[Sequence[str]] = None
    ) -> Dict[str, Dict[int, float]]:
        """``phase -> rank -> busy seconds`` over the selected categories.

        Every phase row covers all ranks (missing ranks count 0.0), so
        imbalance over the matrix sees idle ranks.
        """
        out: Dict[str, Dict[int, float]] = {}
        n = self.n_ranks
        for e in self._selected(categories):
            row = out.setdefault(e.phase, {r: 0.0 for r in range(n)})
            row[e.rank] = row.get(e.rank, 0.0) + e.duration
        return out

    def phase_busy(
        self, categories: Optional[Sequence[str]] = None
    ) -> Dict[str, float]:
        """``phase -> summed busy seconds`` across all ranks."""
        return {
            phase: sum(row.values())
            for phase, row in self.busy_matrix(categories).items()
        }

    def rank_busy(
        self, categories: Optional[Sequence[str]] = None
    ) -> Dict[int, float]:
        """``rank -> summed busy seconds`` across all phases."""
        out: Dict[int, float] = {r: 0.0 for r in range(self.n_ranks)}
        for e in self._selected(categories):
            out[e.rank] = out.get(e.rank, 0.0) + e.duration
        return out

    def segments(self) -> List[str]:
        """Segment labels (SCF/CPSCF cycles) ordered by first start."""
        first: Dict[str, float] = {}
        for e in self.events:
            if e.segment not in first or e.start < first[e.segment]:
                first[e.segment] = e.start
        return sorted(first, key=lambda s: (first[s], s))

    def summary(self) -> str:
        """One deterministic header line for dashboards."""
        return (
            f"timeline [{self.label}]: {len(self.events)} events, "
            f"{self.n_ranks} rank(s), {len(self.segments())} segment(s), "
            f"{len(self.faults)} fault(s), wall {self.wall_seconds:.6g}s"
        )


# ----------------------------------------------------------------------
# Critical path
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CriticalStep:
    """One link of the chain that bounds wall time."""

    segment: str
    phase: str
    rank: int
    seconds: float


@dataclass
class CriticalPath:
    """The per-segment (rank, phase) chain bounding the run's wall time."""

    steps: List[CriticalStep]
    wall_seconds: float
    faults: List[FaultMark] = field(default_factory=list)

    @property
    def bound_seconds(self) -> float:
        """Summed step durations — the modeled lower bound on wall time."""
        return sum(s.seconds for s in self.steps)

    def render(self, top: Optional[int] = None) -> str:
        """Deterministic ASCII table (one row per step, slowest first
        when ``top`` truncates)."""
        from repro.utils.reports import TableFormatter, format_seconds

        steps = self.steps
        if top is not None:
            steps = sorted(
                steps, key=lambda s: (-s.seconds, s.segment, s.phase, s.rank)
            )[:top]
        bound = self.bound_seconds
        table = TableFormatter(
            ["segment", "phase", "rank", "time", "share"],
            title="critical path (per-segment bounding rank+phase chain)",
        )
        for s in steps:
            share = s.seconds / bound * 100 if bound > 0 else 0.0
            table.add_row(
                [s.segment or "run", s.phase, s.rank,
                 format_seconds(s.seconds), f"{share:.1f}%"]
            )
        lines = [table.render(),
                 f"bound {format_seconds(bound)} of wall "
                 f"{format_seconds(self.wall_seconds)}"]
        for f in self.faults:
            lines.append(f"fault on path: {f.describe()}")
        return "\n".join(lines)


def critical_path(
    timeline: Timeline, categories: Optional[Sequence[str]] = None
) -> CriticalPath:
    """Extract the chain of (rank, phase) steps that bounds wall time.

    Within each segment (SCF/CPSCF cycle) phases execute in start
    order with a barrier between them, so the bounding chain takes, for
    every phase, the rank with the largest busy time (ties break to the
    lowest rank — deterministic).  Injected faults ride along so the
    attribution can name them.
    """
    events = timeline._selected(categories)
    # (segment, phase) -> rank -> busy; remember first-start ordering.
    busy: Dict[Tuple[str, str], Dict[int, float]] = {}
    first: Dict[Tuple[str, str], float] = {}
    for e in events:
        key = (e.segment, e.phase)
        busy.setdefault(key, {})
        busy[key][e.rank] = busy[key].get(e.rank, 0.0) + e.duration
        if key not in first or e.start < first[key]:
            first[key] = e.start
    steps: List[CriticalStep] = []
    for key in sorted(busy, key=lambda k: (first[k], k)):
        ranks = busy[key]
        # max busy time; ties resolved toward the lowest rank id.
        rank = min(r for r in ranks if ranks[r] == max(ranks.values()))
        steps.append(
            CriticalStep(
                segment=key[0], phase=key[1], rank=rank, seconds=ranks[rank]
            )
        )
    return CriticalPath(
        steps=steps,
        wall_seconds=timeline.wall_seconds,
        faults=list(timeline.faults),
    )


def load_run(path: Union[str, Path]) -> Timeline:
    """Load one recorded artifact as a timeline, whatever its flavor.

    Chrome trace-event files (``traceEvents``) keep full per-rank
    detail; :class:`~repro.obs.report.RunReport` JSON degrades
    gracefully to a rank-0 sequence of its ``phase_seconds``.
    """
    path = Path(path)
    doc = json.loads(path.read_text())
    if isinstance(doc, dict) and "traceEvents" in doc:
        return Timeline.from_chrome_trace(doc, label=path.stem)
    if isinstance(doc, dict) and "phase_seconds" in doc:
        events = []
        cursor = 0.0
        for phase, seconds in doc["phase_seconds"].items():
            events.append(
                TimelineEvent(
                    rank=0, phase=str(phase), start=cursor,
                    end=cursor + float(seconds),
                )
            )
            cursor += float(seconds)
        return Timeline(label=str(doc.get("label", path.stem)), events=events)
    raise ExperimentError(
        f"{path} is neither a Chrome trace nor a RunReport artifact"
    )

"""A/B run attribution: explain *where* a regression lives (DESIGN §11.5).

Given two recorded runs — a trusted base and a fresh candidate —
:func:`diff_timelines` decomposes the wall-time delta per (phase, rank)
and ranks the contributions, and :meth:`RunDiff.narrative` turns that
into the deterministic "explain the regression" report the perf gate
links to: the top entries name the perturbed phase and rank, injected
faults present only in the fresh run are called out, and
``obs.regress`` offenders can be folded in.

>>> from repro.obs.analyze.timeline import Timeline, TimelineEvent
>>> base = Timeline("base", [TimelineEvent(0, "H", 0.0, 1.0),
...                          TimelineEvent(1, "H", 0.0, 1.0)])
>>> fresh = Timeline("fresh", [TimelineEvent(0, "H", 0.0, 1.0),
...                            TimelineEvent(1, "H", 0.0, 3.0)])
>>> d = diff_timelines(base, fresh)
>>> (d.contributions[0].phase, d.contributions[0].rank)
('H', 1)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.analyze.timeline import FaultMark, Timeline


@dataclass(frozen=True)
class Contribution:
    """One (phase, rank) cell's share of the wall-time delta."""

    phase: str
    rank: int
    base_seconds: float
    fresh_seconds: float

    @property
    def delta(self) -> float:
        """Busy-time change, positive = the fresh run got slower here."""
        return self.fresh_seconds - self.base_seconds


@dataclass
class RunDiff:
    """Decomposed wall-time delta between two recorded runs."""

    base_label: str
    fresh_label: str
    base_wall: float
    fresh_wall: float
    contributions: List[Contribution] = field(default_factory=list)
    new_faults: List[FaultMark] = field(default_factory=list)

    @property
    def wall_delta(self) -> float:
        """Wall-time change, positive = fresh is slower."""
        return self.fresh_wall - self.base_wall

    def top(self, k: int = 5) -> List[Contribution]:
        """The k largest slowdown contributions."""
        return self.contributions[:k]

    def narrative(
        self,
        top_k: int = 5,
        offenders: Optional[Sequence[object]] = None,
    ) -> str:
        """The deterministic "explain the regression" report.

        ``offenders`` (e.g. :class:`~repro.obs.regress.MetricDelta`
        rows from a failed gate) are appended so the trace-level and
        metric-level views of one regression read as a single story.
        """
        from repro.utils.reports import format_seconds

        direction = "slower" if self.wall_delta > 0 else "faster"
        lines = [
            f"diff [{self.base_label} -> {self.fresh_label}]: wall "
            f"{format_seconds(self.base_wall)} -> "
            f"{format_seconds(self.fresh_wall)} "
            f"({abs(self.wall_delta):.6g}s {direction})"
        ]
        positive = sum(c.delta for c in self.contributions if c.delta > 0)
        shown = [c for c in self.top(top_k) if c.delta != 0.0]
        if not shown:
            lines.append("no per-phase busy-time change detected")
        for i, c in enumerate(shown, 1):
            share = (
                f" ({c.delta / positive * 100:.1f}% of total slowdown)"
                if positive > 0 and c.delta > 0
                else ""
            )
            line = (
                f"{i}. phase {c.phase} on rank {c.rank}: "
                f"{format_seconds(c.base_seconds)} -> "
                f"{format_seconds(c.fresh_seconds)} "
                f"({c.delta:+.6g}s){share}"
            )
            linked = self._linked_faults(c)
            if linked:
                line += "  <- " + "; ".join(f.describe() for f in linked)
            lines.append(line)
        if self.new_faults:
            lines.append("injected faults in fresh run only:")
            for f in self.new_faults:
                lines.append(f"  - {f.describe()}")
        for d in offenders or ():
            lines.append(f"gate offender: {d.describe()}")  # type: ignore[attr-defined]
        return "\n".join(lines)

    def _linked_faults(self, c: Contribution) -> List[FaultMark]:
        """Faults plausibly explaining one contribution.

        A fault links to a slowdown cell when it hit the same rank, or
        when the cell is one of the modeled fault phases (Idle/Retry).
        """
        if c.delta <= 0:
            return []
        return [
            f
            for f in self.new_faults
            if f.rank == c.rank or c.phase in ("Idle", "Retry")
        ]


def diff_timelines(base: Timeline, fresh: Timeline) -> RunDiff:
    """Decompose the wall-time delta of two runs per (phase, rank).

    Contributions are ranked largest-slowdown-first; ties break on
    (phase, rank) so repeated invocations emit identical bytes.
    Faults recorded only in the fresh run ride along for linkage.
    """
    cells: Dict[Tuple[str, int], List[float]] = {}
    for which, tl in enumerate((base, fresh)):
        for phase, row in tl.busy_matrix().items():
            for rank, seconds in row.items():
                cell = cells.setdefault((phase, rank), [0.0, 0.0])
                cell[which] += seconds
    contributions = [
        Contribution(phase=k[0], rank=k[1], base_seconds=v[0], fresh_seconds=v[1])
        for k, v in cells.items()
    ]
    contributions.sort(key=lambda c: (-c.delta, c.phase, c.rank))
    base_keys = {(f.kind, f.rank, f.site) for f in base.faults}
    new_faults = [
        f for f in fresh.faults if (f.kind, f.rank, f.site) not in base_keys
    ]
    return RunDiff(
        base_label=base.label,
        fresh_label=fresh.label,
        base_wall=base.wall_seconds,
        fresh_wall=fresh.wall_seconds,
        contributions=contributions,
        new_faults=new_faults,
    )

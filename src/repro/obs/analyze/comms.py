"""Communication attribution (DESIGN §11.4, paper Fig. 10).

Two complementary sources feed this module:

* recorded ``comm``-category spans / ``comm.*`` counters from the
  simulated MPI layer — what one run actually moved;
* the analytic reduction-scheme estimators of
  :mod:`repro.comm.schemes` — what each scheme *would* cost at a given
  scale, reproducing the paper's packed-vs-unpacked comparison.

>>> from repro.obs.analyze.timeline import Timeline, TimelineEvent
>>> tl = Timeline(events=[
...     TimelineEvent(0, "allreduce", 0.0, 1.0, category="comm",
...                   nbytes=4096, scheme="packed"),
...     TimelineEvent(0, "allreduce", 1.0, 2.0, category="comm",
...                   nbytes=4096, scheme="packed")])
>>> comm_matrix(tl)[("packed", "allreduce")]
CommCell(calls=2, nbytes=8192, seconds=2.0)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Sequence, Tuple

from repro.errors import CommunicationError
from repro.obs.analyze.timeline import Timeline

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.comm.schemes import ReductionReport
    from repro.hardware.machines import MachineModel


@dataclass(frozen=True)
class CommCell:
    """Aggregate of one (scheme, operation) communication bucket."""

    calls: int
    nbytes: int
    seconds: float


def comm_matrix(
    timeline: Timeline,
) -> Dict[Tuple[str, str], CommCell]:
    """Aggregate ``comm``-category events into a (scheme, op) matrix.

    Events without an explicit ``scheme`` attribute land in the
    ``"flat"`` bucket (the simulated MPI layer's direct collectives).
    """
    acc: Dict[Tuple[str, str], List[float]] = {}
    for e in timeline.events:
        if e.category != "comm":
            continue
        key = (e.scheme or "flat", e.phase)
        cell = acc.setdefault(key, [0, 0, 0.0])
        cell[0] += 1
        cell[1] += e.nbytes
        cell[2] += e.duration
    return {
        key: CommCell(calls=int(c[0]), nbytes=int(c[1]), seconds=c[2])
        for key, c in acc.items()
    }


def comm_counters(metrics: Mapping[str, object]) -> Dict[str, float]:
    """Extract the ``comm.*`` counters from one metrics snapshot.

    Accepts either a full :meth:`MetricsRegistry.as_dict` document or
    its ``counters`` subtree.
    """
    counters = metrics.get("counters", metrics)
    if not isinstance(counters, Mapping):
        return {}
    return {
        str(k): float(v)  # type: ignore[arg-type]
        for k, v in sorted(counters.items())
        if str(k).startswith("comm.") and isinstance(v, (int, float))
    }


def render_comm_matrix(
    matrix: Mapping[Tuple[str, str], CommCell],
    counters: Mapping[str, float] = (),  # type: ignore[assignment]
    label: str = "run",
) -> str:
    """Deterministic table of recorded communication, heaviest first."""
    from repro.utils.reports import TableFormatter, format_bytes, format_seconds

    table = TableFormatter(
        ["scheme", "operation", "calls", "bytes", "time"],
        title=f"recorded communication [{label}]",
    )
    for key in sorted(matrix, key=lambda k: (-matrix[k].nbytes, k)):
        cell = matrix[key]
        table.add_row(
            [key[0], key[1], cell.calls, format_bytes(cell.nbytes),
             format_seconds(cell.seconds)]
        )
    lines = [table.render()] if matrix else [f"no recorded communication [{label}]"]
    for name, value in dict(counters).items():
        lines.append(f"{name}: {value:g}")
    return "\n".join(lines)


def scheme_cost_table(
    machine: "MachineModel",
    n_ranks: int,
    n_rows: int,
    row_bytes: int,
) -> List[Tuple[str, "ReductionReport"]]:
    """Estimate every reduction scheme at one problem scale (Fig. 10).

    Schemes a machine cannot run (hierarchical packing needs shared-
    memory windows) are skipped rather than failed, so the comparison
    table always renders.
    """
    from repro.comm.schemes import (
        BaselineRowwiseAllreduce,
        PackedAllreduce,
        PackedHierarchicalAllreduce,
    )

    rows: List[Tuple[str, "ReductionReport"]] = []
    for scheme in (
        BaselineRowwiseAllreduce(),
        PackedAllreduce(),
        PackedHierarchicalAllreduce(),
    ):
        try:
            report = scheme.estimate(machine, n_ranks, n_rows, row_bytes)
        except CommunicationError:
            continue
        rows.append((report.scheme, report))
    return rows


def scheme_cost_seconds(
    machine: "MachineModel",
    n_ranks: int,
    n_rows: int,
    row_bytes: int,
) -> Dict[str, float]:
    """Total modeled seconds per feasible reduction scheme.

    The cost-model extraction seam the auto-tuner's pricing stage reads
    (:mod:`repro.tune.costmodel`): the same estimates
    :func:`scheme_cost_table` renders for humans, reduced to one
    deterministic ``{scheme name: total seconds}`` mapping.  Schemes
    the machine cannot run are simply absent.
    """
    return {
        name: rep.total_time
        for name, rep in scheme_cost_table(machine, n_ranks, n_rows, row_bytes)
    }


def render_scheme_costs(
    rows: Sequence[Tuple[str, "ReductionReport"]],
    machine_name: str,
    n_ranks: int,
) -> str:
    """Packed-vs-unpacked cost table in the style of the paper's Fig. 10."""
    from repro.utils.reports import TableFormatter, format_bytes, format_seconds

    table = TableFormatter(
        ["scheme", "collectives", "comm", "local", "peak pack", "total"],
        title=f"reduction-scheme cost model [{machine_name}, {n_ranks} ranks]",
    )
    baseline_total = rows[0][1].total_time if rows else 0.0
    speedups = []
    for name, rep in rows:
        table.add_row(
            [
                name,
                rep.n_collectives,
                format_seconds(rep.communication_time),
                format_seconds(rep.local_update_time),
                format_bytes(rep.peak_pack_bytes),
                format_seconds(rep.total_time),
            ]
        )
        if baseline_total > 0 and rep.total_time > 0:
            speedups.append(f"{name}: {baseline_total / rep.total_time:.2f}x")
    lines = [table.render()]
    if speedups:
        lines.append("speedup vs baseline: " + ", ".join(speedups))
    return "\n".join(lines)

"""Per-phase load-imbalance attribution (DESIGN §11.3, paper Fig. 9).

Imbalance is always the one repo-wide definition —
:func:`repro.utils.balance.max_mean_imbalance` — applied to per-rank
busy seconds (recorded or modeled timelines) or per-rank grid-point
counts (mapping assignments).  This module ranks which phase suffers
most, names the hot ranks, and links the numbers back to the mapping
strategy that produced the distribution, mirroring the paper's
locality-vs-load-balancing comparison.

>>> from repro.obs.analyze.timeline import Timeline, TimelineEvent
>>> tl = Timeline(events=[TimelineEvent(0, "H", 0.0, 3.0),
...                       TimelineEvent(1, "H", 0.0, 1.0)])
>>> rows = phase_imbalances(tl)
>>> rows[0].phase, rows[0].imbalance
('H', 1.5)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.obs.analyze.timeline import Timeline
from repro.utils.balance import max_mean_imbalance

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.grids.batching import GridBatch
    from repro.mapping.strategies import BatchAssignment


@dataclass(frozen=True)
class PhaseImbalance:
    """One phase's load distribution across ranks."""

    phase: str
    imbalance: float  # max/mean busy-time ratio, 1.0 = perfect
    mean_seconds: float
    max_seconds: float
    hot_ranks: Tuple[int, ...]  # top-k busiest, busiest first

    @property
    def idle_fraction(self) -> float:
        """Wall-time share lost to waiting on the hottest rank."""
        if self.max_seconds <= 0.0:
            return 0.0
        return 1.0 - self.mean_seconds / self.max_seconds


def phase_imbalances(
    timeline: Timeline,
    top_k: int = 3,
    categories: Optional[Sequence[str]] = None,
) -> List[PhaseImbalance]:
    """Rank the phases of one timeline by load imbalance.

    Zero-work phases are skipped (imbalance is undefined for them);
    the result is sorted worst-first, ties broken by phase name so the
    dashboard is deterministic.
    """
    out: List[PhaseImbalance] = []
    for phase, row in timeline.busy_matrix(categories).items():
        loads = [row[r] for r in sorted(row)]
        total = sum(loads)
        if total <= 0.0:
            continue
        ranked = sorted(sorted(row), key=lambda r: (-row[r], r))
        out.append(
            PhaseImbalance(
                phase=phase,
                imbalance=max_mean_imbalance(loads),
                mean_seconds=total / len(loads),
                max_seconds=max(loads),
                hot_ranks=tuple(ranked[:top_k]),
            )
        )
    out.sort(key=lambda p: (-p.imbalance, p.phase))
    return out


def render_phase_imbalances(
    rows: Sequence[PhaseImbalance], label: str = "run"
) -> str:
    """Deterministic ASCII table, worst phase first."""
    from repro.utils.reports import TableFormatter, format_seconds

    table = TableFormatter(
        ["phase", "imbalance", "mean", "max", "idle%", "hot ranks"],
        title=f"per-phase load imbalance [{label}] (max/mean busy time)",
    )
    for p in rows:
        table.add_row(
            [
                p.phase,
                f"{p.imbalance:.3f}",
                format_seconds(p.mean_seconds),
                format_seconds(p.max_seconds),
                f"{p.idle_fraction * 100:.1f}%",
                ",".join(str(r) for r in p.hot_ranks),
            ]
        )
    return table.render()


@dataclass(frozen=True)
class MappingAttribution:
    """One mapping's imbalance, linked to its strategy (Fig. 9)."""

    strategy: str
    n_ranks: int
    imbalance: float  # max/mean grid points per rank
    mean_points: float
    hot_ranks: Tuple[int, ...]
    mean_atoms: float  # relevant atoms per rank (locality proxy)
    max_atoms: int


def mapping_attribution(
    assignment: "BatchAssignment",
    batches: Sequence["GridBatch"],
    top_k: int = 3,
) -> MappingAttribution:
    """Attribute an assignment's imbalance to its mapping strategy.

    The per-rank relevant-atom counts are the paper's locality metric:
    the locality-enhancing mapping trades a few percent of point-count
    balance for far fewer atoms per rank (less replicated work, less
    communication).
    """
    points = assignment.points_per_rank(batches)
    atoms = [len(a) for a in assignment.atoms_per_rank(batches)]
    order = sorted(range(len(points)), key=lambda r: (-int(points[r]), r))
    return MappingAttribution(
        strategy=assignment.strategy,
        n_ranks=assignment.n_ranks,
        imbalance=assignment.imbalance(batches),
        mean_points=float(points.mean()),
        hot_ranks=tuple(order[:top_k]),
        mean_atoms=sum(atoms) / len(atoms) if atoms else 0.0,
        max_atoms=max(atoms, default=0),
    )


def strategy_imbalance_factors(
    batches: Sequence["GridBatch"],
    n_ranks: int,
) -> Dict[str, "MappingAttribution"]:
    """Both mapping strategies' attribution on one batch set.

    The cost-model extraction seam the auto-tuner's pricing stage reads
    (:mod:`repro.tune.costmodel`): keys are the strategy names the
    tuner's configuration space uses (``"load_balancing"``,
    ``"locality"``), values the full :class:`MappingAttribution` so the
    model can price both the point-balance penalty (``imbalance``) and
    the locality payoff (``mean_atoms``) deterministically.
    """
    from repro.mapping.strategies import (
        load_balancing_mapping,
        locality_enhancing_mapping,
    )

    return {
        "load_balancing": mapping_attribution(
            load_balancing_mapping(batches, n_ranks), batches
        ),
        "locality": mapping_attribution(
            locality_enhancing_mapping(batches, n_ranks), batches
        ),
    }


def render_mapping_attributions(
    rows: Sequence[MappingAttribution],
) -> str:
    """Fig.-9-style strategy comparison table."""
    from repro.utils.reports import TableFormatter

    table = TableFormatter(
        ["strategy", "ranks", "imbalance", "mean pts", "hot ranks",
         "mean atoms", "max atoms"],
        title="mapping attribution (points balance vs atom locality)",
    )
    for m in rows:
        table.add_row(
            [
                m.strategy,
                m.n_ranks,
                f"{m.imbalance:.3f}",
                f"{m.mean_points:.0f}",
                ",".join(str(r) for r in m.hot_ranks),
                f"{m.mean_atoms:.1f}",
                m.max_atoms,
            ]
        )
    return table.render()

"""Post-mortem trace analytics and scaling attribution (DESIGN §11).

The :mod:`repro.obs` layer *records* (spans, metrics, Chrome traces,
run reports, benchmark emissions); this package *explains*.  Every
function here is a pure transformation of recorded artifacts, so every
dashboard is deterministic: same input files, same output bytes.

* :mod:`~repro.obs.analyze.timeline` — normalized per-rank/per-phase
  timelines from spans, Chrome traces or modeled cycle traces, plus
  critical-path extraction;
* :mod:`~repro.obs.analyze.imbalance` — per-phase load-imbalance
  attribution and mapping-strategy linkage (Fig. 9);
* :mod:`~repro.obs.analyze.comms` — recorded communication matrices
  and packed-vs-unpacked reduction cost tables (Fig. 10);
* :mod:`~repro.obs.analyze.diff` — A/B wall-time attribution between
  two recorded runs ("explain the regression");
* :mod:`~repro.obs.analyze.history` — append-only benchmark history
  with rolling baselines and trend detection;
* :mod:`~repro.obs.analyze.scaling` — the one place strong/weak
  scaling ratios are defined (Figs. 15/16).

>>> from repro.obs.analyze import Timeline, TimelineEvent, critical_path
>>> tl = Timeline(events=[TimelineEvent(0, "H", 0.0, 1.0),
...                       TimelineEvent(1, "H", 0.0, 2.0)])
>>> critical_path(tl).steps[0].rank
1
"""

from repro.obs.analyze.comms import (
    CommCell,
    comm_counters,
    comm_matrix,
    render_comm_matrix,
    render_scheme_costs,
    scheme_cost_seconds,
    scheme_cost_table,
)
from repro.obs.analyze.diff import Contribution, RunDiff, diff_timelines
from repro.obs.analyze.history import (
    Trend,
    TrendReport,
    append_entry,
    detect_trends,
    latest_parameters,
    load_history,
    rolling_baseline,
)
from repro.obs.analyze.imbalance import (
    MappingAttribution,
    PhaseImbalance,
    mapping_attribution,
    phase_imbalances,
    render_mapping_attributions,
    render_phase_imbalances,
    strategy_imbalance_factors,
)
from repro.obs.analyze.scaling import (
    ScalingPoint,
    render_scaling,
    strong_scaling,
    weak_scaling,
)
from repro.obs.analyze.timeline import (
    CriticalPath,
    CriticalStep,
    FaultMark,
    Timeline,
    TimelineEvent,
    critical_path,
    load_run,
)

__all__ = [
    "CommCell",
    "Contribution",
    "CriticalPath",
    "CriticalStep",
    "FaultMark",
    "MappingAttribution",
    "PhaseImbalance",
    "RunDiff",
    "ScalingPoint",
    "Timeline",
    "TimelineEvent",
    "Trend",
    "TrendReport",
    "append_entry",
    "comm_counters",
    "comm_matrix",
    "critical_path",
    "detect_trends",
    "diff_timelines",
    "latest_parameters",
    "load_history",
    "load_run",
    "mapping_attribution",
    "phase_imbalances",
    "render_comm_matrix",
    "render_mapping_attributions",
    "render_phase_imbalances",
    "strategy_imbalance_factors",
    "render_scaling",
    "render_scheme_costs",
    "rolling_baseline",
    "scheme_cost_seconds",
    "scheme_cost_table",
    "strong_scaling",
    "weak_scaling",
]

"""Strong/weak scaling math shared by the figures and the CLI (§11.7).

The Fig. 15/16 experiment scripts and ``repro analyze scaling`` all
compute speedups and efficiencies through these two functions, so the
definitions exist exactly once:

* strong scaling — fixed problem, growing ranks: ``speedup = t_0 / t``
  and ``efficiency = speedup / (p / p_0)``;
* weak scaling — problem and ranks grow together: ``efficiency =
  t_0 / t`` (per-rank work is constant by construction).

>>> pts = strong_scaling([100, 200], [10.0, 6.0])
>>> (round(pts[1].speedup, 3), round(pts[1].efficiency, 3))
(1.667, 0.833)
>>> weak_scaling([1000, 2000], [100, 200], [10.0, 12.5])[1].efficiency
0.8
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ExperimentError


@dataclass(frozen=True)
class ScalingPoint:
    """One (ranks, time) measurement with its derived ratios."""

    ranks: int
    cycle_seconds: float
    speedup: float
    efficiency: float
    atoms: Optional[int] = None


def _validate(ranks: Sequence[int], seconds: Sequence[float]) -> None:
    if not ranks or len(ranks) != len(seconds):
        raise ExperimentError(
            f"scaling series needs matching non-empty ranks/seconds, got "
            f"{len(ranks)}/{len(seconds)}"
        )
    if any(t <= 0 for t in seconds):
        raise ExperimentError("scaling series has non-positive cycle times")
    if any(p <= 0 for p in ranks):
        raise ExperimentError("scaling series has non-positive rank counts")


def strong_scaling(
    ranks: Sequence[int], seconds: Sequence[float]
) -> List[ScalingPoint]:
    """Derive strong-scaling speedups/efficiencies vs the first point."""
    _validate(ranks, seconds)
    t0, p0 = seconds[0], ranks[0]
    return [
        ScalingPoint(
            ranks=int(p),
            cycle_seconds=float(t),
            speedup=t0 / t,
            efficiency=(t0 / t) / (p / p0),
        )
        for p, t in zip(ranks, seconds)
    ]


def weak_scaling(
    atoms: Sequence[int], ranks: Sequence[int], seconds: Sequence[float]
) -> List[ScalingPoint]:
    """Derive weak-scaling efficiencies vs the first point.

    The *effective* speedup scales the efficiency by the rank growth —
    what the machine delivered relative to one first-point run.
    """
    _validate(ranks, seconds)
    if len(atoms) != len(ranks):
        raise ExperimentError(
            f"scaling series needs matching atoms/ranks, got "
            f"{len(atoms)}/{len(ranks)}"
        )
    t0, p0 = seconds[0], ranks[0]
    return [
        ScalingPoint(
            ranks=int(p),
            cycle_seconds=float(t),
            speedup=(t0 / t) * (p / p0),
            efficiency=t0 / t,
            atoms=int(a),
        )
        for a, p, t in zip(atoms, ranks, seconds)
    ]


def render_scaling(
    points: Sequence[ScalingPoint], title: str, weak: bool = False
) -> str:
    """Deterministic scaling table in the figures' house style."""
    from repro.utils.reports import TableFormatter, format_seconds

    headers = (["atoms"] if weak else []) + [
        "ranks", "cycle time", "speedup", "efficiency"
    ]
    table = TableFormatter(headers, title=title)
    for pt in points:
        row = ([pt.atoms] if weak else []) + [
            pt.ranks,
            format_seconds(pt.cycle_seconds),
            f"{pt.speedup:.2f}x",
            f"{pt.efficiency * 100:.1f}%",
        ]
        table.add_row(row)
    return table.render()

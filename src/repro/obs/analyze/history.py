"""Benchmark history: provenance-stamped JSONL + trend detection (§11.6).

``BENCH_history.jsonl`` is append-only: every ``make bench-check`` run
adds one line holding the fresh emission, its provenance stamp, the
gate verdict and a timestamp.  On top of that log this module offers

* :func:`rolling_baseline` — a per-metric median over the last *k*
  entries, usable directly with
  :func:`repro.obs.regress.compare_reports` (flattening a flat dict is
  the identity), so the gate can compare against recent reality instead
  of one hand-committed snapshot;
* :func:`detect_trends` — slow monotone drifts that never trip the
  per-run tolerance band but add up across commits.

>>> entries = [{"emission": {"wall_seconds": w}} for w in (1.0, 1.1, 1.3)]
>>> rolling_baseline(entries)["wall_seconds"]
1.1
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from statistics import median_low
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ExperimentError
from repro.obs.regress import baseline_run_parameters, default_band, flatten

#: Entries considered by default for baselines and trend detection.
DEFAULT_WINDOW = 5

#: Relative drift across the window that flags a trend.
TREND_THRESHOLD = 0.25


def append_entry(
    path: Union[str, Path],
    emission: Dict[str, object],
    label: str = "backends",
    gate_ok: Optional[bool] = None,
    recorded_at: Optional[str] = None,
    provenance: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Append one provenance-stamped benchmark entry to the JSONL log.

    The line is serialized with sorted keys so history diffs stay
    reviewable; the log itself is append-only by construction.  Returns
    the entry that was written.
    """
    if provenance is None:
        prov = emission.get("provenance")
        if isinstance(prov, dict):
            provenance = prov
        else:
            from repro.obs.report import collect_provenance

            provenance = collect_provenance().as_dict()
    if recorded_at is None:
        recorded_at = datetime.now(timezone.utc).isoformat(timespec="seconds")
    entry: Dict[str, object] = {
        "emission": emission,
        "gate_ok": gate_ok,
        "label": label,
        "provenance": provenance,
        "recorded_at": recorded_at,
    }
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def load_history(
    path: Union[str, Path], label: Optional[str] = None
) -> List[Dict[str, object]]:
    """Read the history log, oldest first; missing file = empty history."""
    p = Path(path)
    if not p.exists():
        return []
    entries: List[Dict[str, object]] = []
    for i, line in enumerate(p.read_text().splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            raise ExperimentError(
                f"{p}:{i} is not valid JSON; the history log is corrupt"
            ) from None
        if not isinstance(entry, dict) or "emission" not in entry:
            raise ExperimentError(f"{p}:{i} is not a history entry")
        if label is None or entry.get("label") == label:
            entries.append(entry)
    return entries


def _window_emissions(
    entries: Sequence[Dict[str, object]], window: int
) -> List[Dict[str, float]]:
    tail = list(entries)[-window:] if window > 0 else list(entries)
    return [flatten(e.get("emission", {})) for e in tail]  # type: ignore[arg-type]


def rolling_baseline(
    entries: Sequence[Dict[str, object]], window: int = DEFAULT_WINDOW
) -> Dict[str, float]:
    """Per-metric median over the last ``window`` entries (flat dict).

    Keys come from the most recent entry; each key's value is the low
    median of the entries that recorded it.  The result plugs straight
    into :func:`repro.obs.regress.compare_reports` as the baseline.
    """
    flats = _window_emissions(entries, window)
    if not flats:
        raise ExperimentError("history is empty; record one entry first")
    out: Dict[str, float] = {}
    for key in flats[-1]:
        values = [f[key] for f in flats if key in f]
        out[key] = median_low(values)
    return out


def latest_parameters(
    entries: Sequence[Dict[str, object]],
) -> Tuple[str, int]:
    """(level, n_sweeps) of the newest entry — the comparable settings."""
    if not entries:
        raise ExperimentError("history is empty; record one entry first")
    emission = entries[-1].get("emission")
    if not isinstance(emission, dict):
        raise ExperimentError("newest history entry has no emission")
    return baseline_run_parameters(emission)


@dataclass(frozen=True)
class Trend:
    """One metric drifting monotonically in its bad direction."""

    key: str
    direction: str  # "rising" | "falling"
    first: float
    last: float

    @property
    def change(self) -> float:
        """Relative drift across the window."""
        scale = max(abs(self.first), 1e-300)
        return (self.last - self.first) / scale

    def describe(self) -> str:
        """One report line."""
        return (
            f"{self.key}: {self.direction} {self.first:g} -> {self.last:g} "
            f"({self.change * 100:+.1f}% over window)"
        )


@dataclass
class TrendReport:
    """Outcome of one trend scan over the history window."""

    n_entries: int
    window: int
    trends: List[Trend] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no metric is drifting in its bad direction."""
        return not self.trends

    def render(self) -> str:
        """Summary plus one line per drifting metric."""
        lines = [
            f"history-trends: {self.n_entries} entr"
            f"{'y' if self.n_entries == 1 else 'ies'}, window {self.window}, "
            f"{len(self.trends)} drift(s)"
        ]
        for t in self.trends:
            lines.append("  " + t.describe())
        lines.append("PASS" if self.ok else "DRIFT")
        return "\n".join(lines)


def detect_trends(
    entries: Sequence[Dict[str, object]],
    window: int = DEFAULT_WINDOW,
    threshold: float = TREND_THRESHOLD,
) -> TrendReport:
    """Flag metrics drifting monotonically in their bad direction.

    Only wall-clock-style metrics can drift: keys whose tolerance band
    is ``slowdown`` are bad when rising, ``floor`` keys are bad when
    falling.  A trend needs at least three points, strict monotonicity
    and a relative change above ``threshold`` — a one-off noisy run
    breaks the monotone chain and clears the flag.
    """
    flats = _window_emissions(entries, window)
    report = TrendReport(n_entries=len(flats), window=window)
    if len(flats) < 3:
        return report
    for key in sorted(flats[-1]):
        band = default_band(key)
        if band.kind not in ("slowdown", "floor"):
            continue
        values = [f[key] for f in flats if key in f]
        if len(values) < 3:
            continue
        rising = all(b > a for a, b in zip(values, values[1:]))
        falling = all(b < a for a, b in zip(values, values[1:]))
        bad = rising if band.kind == "slowdown" else falling
        if not bad:
            continue
        trend = Trend(
            key=key,
            direction="rising" if rising else "falling",
            first=values[0],
            last=values[-1],
        )
        if abs(trend.change) > threshold:
            report.trends.append(trend)
    return report

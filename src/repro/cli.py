"""Command-line interface.

Mirrors the artifact's workflow (geometry file in, timings and physical
results out):

    python -m repro physics geometry.in --level minimal
    python -m repro physics geometry.in --backend batched
    python -m repro physics geometry.in --trace out.json
    python -m repro trace --molecule water --out trace.json --force
    python -m repro bench-check --baseline BENCH_backends.json --history BENCH_history.jsonl
    python -m repro analyze trace trace.json
    python -m repro analyze diff base.json fresh.json
    python -m repro analyze scaling --atoms 3002
    python -m repro analyze history
    python -m repro model geometry.in --machine hpc2 --ranks 2048
    python -m repro model --polyethylene 30002 --machine hpc1 --ranks 4096 --baseline
    python -m repro chaos --seed 2023 --machine hpc2 --ranks 8
    python -m repro verify --molecule h2
    python -m repro tune --molecule water --budget 2 --history BENCH_history.jsonl
    python -m repro submit --molecule h2 --level minimal --store service.jsonl
    python -m repro submit --molecule h2 --tune auto --store service.jsonl
    python -m repro serve --store service.jsonl --workers 2 --fleet auto
    python -m repro status --store service.jsonl
    python -m repro info

Artifact-writing commands refuse to overwrite an existing output file
unless ``--force`` is given, and create missing parent directories.
Library failures (:class:`~repro.errors.ReproError`) exit with status 2
and a one-line message instead of a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.atoms import polyethylene_units_for_atoms
from repro.atoms.builders import polyethylene
from repro.atoms.io import read_geometry_in
from repro.config import get_settings
from repro.core import OptimizationFlags, PerturbationSimulator
from repro.dfpt.polarizability import isotropic_polarizability
from repro.backends import available_backends
from repro.errors import ReproError
from repro.runtime import HPC1_SUNWAY, HPC2_AMD, machine_by_name
from repro.utils.artifacts import prepare_artifact_path
from repro.utils.reports import format_backend_profile, format_bytes, format_seconds


def _fleet_arg(value: str):
    if value == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a wave size or 'auto', got {value!r}"
        ) from None


def _load_structure(args: argparse.Namespace):
    if getattr(args, "polyethylene", None):
        return polyethylene(polyethylene_units_for_atoms(args.polyethylene))
    if not args.geometry:
        molecule = getattr(args, "molecule", None)
        if molecule:
            from repro.atoms import hydrogen_molecule, water

            return water() if molecule == "water" else hydrogen_molecule()
        raise SystemExit(
            "provide a geometry.in path, --polyethylene N_ATOMS or --molecule"
        )
    return read_geometry_in(args.geometry)


def _cmd_physics(args: argparse.Namespace) -> int:
    from repro.obs import RunReport, Tracer, activate, write_chrome_trace

    structure = _load_structure(args)
    screening = float(getattr(args, "screening", 0.0) or 0.0)
    settings = get_settings(
        args.level, backend=args.backend, verify=args.verify,
        screening_threshold=screening,
    )
    print(f"Running all-electron DFPT on {structure} "
          f"(level={args.level}, backend={args.backend}"
          + (f", screening={screening:g})" if screening > 0.0 else ")"))
    sim = PerturbationSimulator(structure, settings, charge=args.charge)
    # Validate every output path *before* the run: a doomed artifact
    # write must fail fast, not after the SCF+CPSCF work.
    force = getattr(args, "force", False)
    trace_path = getattr(args, "trace", None)
    report_path = getattr(args, "report", None)
    if trace_path:
        trace_path = prepare_artifact_path(trace_path, force=force)
    if report_path:
        report_path = prepare_artifact_path(report_path, force=force)
    tracer = Tracer() if (trace_path or report_path) else None
    with activate(tracer):
        result = sim.run_physics()
    gs = result.ground_state
    print(f"SCF converged in {gs.iterations} iterations: "
          f"E = {gs.total_energy:.6f} Ha")
    print(f"dipole: {np.array2string(gs.dipole_moment(), precision=4)} e*Bohr")
    print("polarizability (a.u.):")
    for row in result.polarizability:
        print("  " + "  ".join(f"{v:10.4f}" for v in row))
    print(f"isotropic alpha: {isotropic_polarizability(result.polarizability):.4f} a.u.")
    print()
    print("per-phase wall time (SCF + CPSCF):")
    for phase, seconds in result.phase_seconds.items():
        print(f"  {phase:12s} {format_seconds(seconds):>12s}")
    if result.backend_profile is not None:
        print()
        print(format_backend_profile(result.backend_profile))
    if result.verify_report is not None:
        from repro.utils.reports import format_verify_report

        print()
        print(format_verify_report(result.verify_report))

    if tracer is not None:
        report = RunReport.from_run(
            label=f"physics:{structure.name}:{args.level}:{args.backend}",
            timer=None,
            backend_profile=result.backend_profile,
            verify_report=result.verify_report,
            tracer=tracer,
        )
        report.phase_seconds = dict(result.phase_seconds)
        if trace_path:
            write_chrome_trace(
                trace_path, tracer.spans,
                metadata=report.provenance.as_dict() if report.provenance else None,
            )
            phase_wall = tracer.phase_wall("phase")
            reported = sum(result.phase_seconds.values())
            gap = abs(phase_wall - reported) / reported * 100 if reported else 0.0
            print()
            print(f"trace: {len(tracer.spans)} spans -> {trace_path} "
                  f"(open in Perfetto); phase spans sum to "
                  f"{phase_wall:.4g}s vs reported {reported:.4g}s "
                  f"(gap {gap:.2f}%)")
        if report_path:
            report.write(report_path)
            print(f"run report -> {report_path}")
        print()
        print(report.render_ascii())

    if result.verify_report is not None and not result.verify_report.ok:
        return 1
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.atoms import hydrogen_molecule  # noqa: F401 (registry import)
    from repro.utils.reports import format_verify_report
    from repro.verify import (
        GOLDEN_MOLECULES,
        compare_to_golden,
        record_from_run,
        run_conformance,
        save_golden,
    )

    molecules = (
        sorted(GOLDEN_MOLECULES) if args.molecule == "all" else [args.molecule]
    )
    failed: List[str] = []
    for name in molecules:
        structure = GOLDEN_MOLECULES[name]()
        settings = get_settings(args.level, verify="full")
        print(f"=== {name}: invariants (level={args.level}, verify=full) ===")
        sim = PerturbationSimulator(structure, settings)
        result = sim.run_physics()
        report = result.verify_report
        print(format_verify_report(report))
        if not report.ok:
            failed.append(f"{name}:invariants")

        record = record_from_run(
            result.ground_state, result.polarizability, structure.n_electrons
        )
        if args.update_golden:
            from repro.verify import golden_path

            save_golden(name, record, level=args.level, allow_update=True)
            print(f"golden updated: {golden_path(name)}")
        else:
            print(f"\n=== {name}: golden comparison ===")
            golden_report = compare_to_golden(name, record)
            print(format_verify_report(golden_report))
            if not golden_report.ok:
                failed.append(f"{name}:golden")

        if not args.skip_conformance:
            print(f"\n=== {name}: differential conformance ===")
            conf = run_conformance(
                structure, level=args.level, n_ranks=args.ranks
            )
            print(conf.render())
            if not conf.ok:
                failed.append(f"{name}:conformance")
        print()
    if failed:
        print("VERIFICATION FAILED: " + ", ".join(failed))
        return 1
    print("verification passed for: " + ", ".join(molecules))
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    structure = _load_structure(args)
    settings = get_settings(args.level)
    machine = machine_by_name(args.machine)
    flags = OptimizationFlags.none() if args.baseline else OptimizationFlags.all()
    sim = PerturbationSimulator(structure, settings)
    rep = sim.run_model(
        machine, args.ranks, flags, use_accelerator=not args.cpu_only
    )
    label = "baseline" if args.baseline else "optimized"
    print(f"{structure.name}: {rep.n_atoms:,} atoms, {rep.n_basis:,} basis functions")
    print(f"{machine.name}, {args.ranks:,} ranks ({label}"
          f"{', CPU only' if args.cpu_only else ''})")
    for phase, seconds in rep.per_cycle_seconds.items():
        print(f"  {phase:6s} {format_seconds(seconds):>12s}")
    print(f"  cycle  {format_seconds(rep.cycle_seconds):>12s}")
    print(f"  init   {format_seconds(rep.init_seconds):>12s} (once)")
    print(f"memory/rank: {format_bytes(rep.memory_per_rank_bytes)}"
          f"  splines/rank: {rep.splines_per_rank}"
          f"  points/rank: {rep.points_per_rank:,}")
    if rep.memory_per_rank_bytes > machine.per_proc_memory:
        print("WARNING: per-rank Hamiltonian exceeds the machine's memory "
              f"({format_bytes(machine.per_proc_memory)}) — this "
              "configuration would fail on the real system")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.atoms import hydrogen_molecule, water
    from repro.runtime.faults import FaultRates
    from repro.testing.chaos import run_chaos

    structure = water() if args.molecule == "water" else hydrogen_molecule()
    rates = None
    if args.corruption_rate or args.straggler_rate or args.cycle_fault_rate:
        rates = FaultRates(
            message_corruption=args.corruption_rate,
            straggler=args.straggler_rate,
            cycle_fault=args.cycle_fault_rate,
        )
    print(f"Running chaos harness on {structure} (seed={args.seed})")
    report = run_chaos(
        structure=structure,
        level=args.level,
        seed=args.seed,
        machine=machine_by_name(args.machine),
        n_ranks=args.ranks,
        rates=rates,
    )
    print(report.summary())
    if not report.bit_exact:
        print("FAILED: faulted run diverged from the fault-free reference")
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """`repro trace`: a physics run that always emits the trace artifacts."""
    if not getattr(args, "trace", None):
        args.trace = "trace.json"
    return _cmd_physics(args)


def _cmd_bench_check(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs.analyze.history import (
        append_entry,
        latest_parameters,
        load_history,
        rolling_baseline,
    )
    from repro.obs.bench import emission_for_baseline
    from repro.obs.regress import (
        baseline_run_parameters,
        compare_reports,
        load_baseline,
    )

    # The gate re-runs whichever emission kind ("backends", "sparse")
    # the baseline came from; history entries of other kinds are a
    # separate lineage and never mix into the rolling median.
    history = load_history(args.history) if args.history else []
    if args.against_history and history:
        kind = str(history[-1].get("label", "backends"))
        history = [e for e in history if str(e.get("label", "backends")) == kind]
        params_doc = history[-1]["emission"]
        level, n_sweeps = latest_parameters(history)
        baseline = rolling_baseline(history, window=args.window)
        print(
            f"bench-check: fresh {kind} emission (level={level}, "
            f"{n_sweeps} sweeps) "
            f"vs rolling median of last {min(args.window, len(history))} "
            f"history entr{'y' if len(history) == 1 else 'ies'} "
            f"({args.history})"
        )
    else:
        if args.against_history:
            print(f"history {args.history} is empty; "
                  "falling back to the committed baseline")
        params_doc = baseline = load_baseline(args.baseline)
        kind = str(baseline.get("benchmark", "backends"))
        history = [e for e in history if str(e.get("label", "backends")) == kind]
        level, n_sweeps = baseline_run_parameters(baseline)
        print(f"bench-check: fresh {kind} emission (level={level}, "
              f"{n_sweeps} sweeps) vs baseline {args.baseline}")
    fresh = emission_for_baseline(params_doc)
    if args.write_fresh:
        from pathlib import Path

        Path(args.write_fresh).write_text(
            _json.dumps(fresh, indent=2, sort_keys=True) + "\n"
        )
        print(f"fresh emission -> {args.write_fresh}")
    report = compare_reports(fresh, baseline)
    print(report.render())
    if args.history:
        append_entry(args.history, fresh, label=kind, gate_ok=report.ok)
        print(f"history: appended entry #{len(history) + 1} -> {args.history}")
    return 0 if report.ok else 1


def _cmd_analyze_trace(args: argparse.Namespace) -> int:
    from repro.obs.analyze import (
        comm_matrix,
        critical_path,
        load_run,
        phase_imbalances,
        render_comm_matrix,
        render_phase_imbalances,
    )

    timeline = load_run(args.trace)
    print(timeline.summary())
    print()
    print(critical_path(timeline).render(top=args.top))
    rows = phase_imbalances(timeline)
    if rows:
        print()
        print(render_phase_imbalances(rows, label=timeline.label))
    matrix = comm_matrix(timeline)
    if matrix:
        print()
        print(render_comm_matrix(matrix, label=timeline.label))
    return 0


def _cmd_analyze_diff(args: argparse.Namespace) -> int:
    from repro.obs.analyze import diff_timelines, load_run
    from repro.obs.regress import compare_reports, load_baseline

    diff = diff_timelines(load_run(args.base), load_run(args.fresh))
    offenders = None
    if args.gate:
        gate = compare_reports(
            load_baseline(args.gate[1]), load_baseline(args.gate[0])
        )
        offenders = gate.offenders
    print(diff.narrative(top_k=args.top, offenders=offenders))
    return 0


def _cmd_analyze_scaling(args: argparse.Namespace) -> int:
    from repro.experiments.fig15_strong import run_fig15_strong
    from repro.experiments.fig16_weak import run_fig16_weak
    from repro.obs.analyze import (
        mapping_attribution,
        render_mapping_attributions,
        render_scaling,
        render_scheme_costs,
        scheme_cost_table,
    )
    from repro.experiments.common import polyethylene_simulator

    ranks = [args.base_ranks * 2 ** i for i in range(args.points)]
    print(f"strong scaling: {args.atoms} atoms, ranks {ranks}")
    fig15 = run_fig15_strong(
        n_atoms=args.atoms, ranks_hpc1=ranks, ranks_hpc2=ranks
    )
    for series in fig15.series:
        print()
        print(render_scaling(
            series.points(),
            title=f"strong scaling [{series.label}], {args.atoms} atoms",
        ))
    # Weak series doubles the chain; atom counts must stay of the
    # 6n+2 polyethylene form, so double the unit count instead.
    units = polyethylene_units_for_atoms(args.atoms)
    cases = tuple(
        (6 * units * 2 ** i + 2, ranks[i], ranks[i])
        for i in range(args.points)
    )
    fig16 = run_fig16_weak(cases=cases)
    for series in fig16.series:
        print()
        print(render_scaling(
            series.points(),
            title=f"weak scaling [{series.label}]",
            weak=True,
        ))
    sim = polyethylene_simulator(args.atoms)
    rows = [
        mapping_attribution(sim.assignment(args.base_ranks, locality), sim.batches)
        for locality in (False, True)
    ]
    print()
    print(render_mapping_attributions(rows))
    n_basis = sim.workload.n_basis
    costs = scheme_cost_table(
        HPC2_AMD, args.base_ranks, n_rows=n_basis, row_bytes=8 * n_basis
    )
    print()
    print(render_scheme_costs(costs, HPC2_AMD.name, args.base_ranks))
    return 0


def _cmd_analyze_history(args: argparse.Namespace) -> int:
    from repro.obs.analyze import detect_trends, load_history

    entries = load_history(args.path)
    if not entries:
        print(f"no benchmark history at {args.path}")
        return 0
    report = detect_trends(
        entries, window=args.window, threshold=args.threshold
    )
    print(report.render())
    return 0 if report.ok else 1


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.tune import TunerDecision, append_decision, tune

    if args.replay:
        decision = TunerDecision.load(args.replay)
        print(f"replaying recorded decision {args.replay}")
        print(decision.render_ascii())
        return 0
    structure = _load_structure(args)
    settings = get_settings(args.level).with_tuning(
        mode="auto",
        budget=args.budget,
        n_ranks=args.ranks,
        warm_start=not args.no_warm_start,
    )
    decision = tune(
        structure,
        settings,
        machine=machine_by_name(args.machine),
        fleet=args.fleet,
        history_path=args.history,
    )
    print(decision.render_ascii())
    if args.decision:
        path = prepare_artifact_path(args.decision, force=args.force)
        decision.write(path)
        print(f"\ndecision artifact -> {path}")
    if args.history:
        append_decision(args.history, decision)
        print(f"decision appended to history -> {args.history}")
    if not args.apply:
        return 0

    # Apply the winner and run the real pipeline under it, recording
    # predicted-vs-actual in the RunReport's tuner block.
    from repro.obs import RunReport, Tracer, activate

    effective = decision.apply(settings)
    print(f"\napplying chosen config and running physics "
          f"(backend={effective.backend})")
    report_path = None
    if args.report:
        report_path = prepare_artifact_path(args.report, force=args.force)
    sim = PerturbationSimulator(structure, effective, charge=args.charge)
    tracer = Tracer()
    with activate(tracer):
        result = sim.run_physics()
    gs = result.ground_state
    actual_wall = sum(result.phase_seconds.values())
    chosen = decision.chosen_outcome
    print(f"SCF converged in {gs.iterations} iterations: "
          f"E = {gs.total_energy:.6f} Ha")
    print(f"predicted {chosen.predicted_seconds:.3e} modeled s; "
          f"actual run wall {format_seconds(actual_wall)}")
    report = RunReport.from_run(
        label=f"tuned:{structure.name}:{args.level}",
        timer=None,
        backend_profile=result.backend_profile,
        tracer=tracer,
        tuner={
            "decision": decision.as_dict(),
            "predicted": {"modeled_seconds": chosen.predicted_seconds},
            "measured": (
                None
                if chosen.measured_seconds is None
                else {"modeled_seconds": chosen.measured_seconds}
            ),
            "actual": {
                "timings": {
                    "wall_seconds": actual_wall,
                    "phase_seconds": dict(result.phase_seconds),
                }
            },
        },
    )
    report.phase_seconds = dict(result.phase_seconds)
    if report_path:
        report.write(report_path)
        print(f"run report (with tuner block) -> {report_path}")
    return 0


def _open_store(args: argparse.Namespace) -> "object":
    from repro.service import StateStore

    return StateStore(
        args.store,
        fresh=getattr(args, "fresh", False),
        force=getattr(args, "force", False),
        lease_seconds=getattr(args, "lease_seconds", 30.0),
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import JobRequest, WorkerPool, submit_job

    store = _open_store(args)
    structure = _load_structure(args)
    settings = get_settings(args.level, backend=args.backend)
    if args.tune == "auto":
        from repro.tune import append_decision, tune

        decision = tune(
            structure,
            settings.with_tuning(mode="auto"),
            history_path=args.tune_history,
            charge=args.charge,
        )
        # The applied settings carry tuning.mode="off", so this job's
        # cache key equals the same hand-picked configuration's key.
        settings = decision.apply(settings)
        print(f"tuner: chose [{decision.chosen.describe()}] over "
              f"{decision.space_size} candidates "
              f"(predicted {decision.predicted_speedup:.2f}x vs default)")
        if args.tune_history:
            append_decision(args.tune_history, decision)
    request = JobRequest(
        molecule=structure,
        settings=settings,
        charge=args.charge,
        client=args.client,
        priority=args.priority,
        max_retries=args.max_retries,
    )
    outcome = submit_job(store, request)
    key = outcome.task.key
    if outcome.cache_hit:
        print(f"{key}: cache hit — served from the result store "
              "(no recomputation)")
        _print_service_result(outcome.result)
        return 0
    if outcome.deduplicated:
        print(f"{key}: deduplicated onto live task {outcome.task.task_id} "
              f"({outcome.task.status})")
    elif outcome.resubmitted:
        print(f"{key}: errored task {outcome.task.task_id} resubmitted "
              "with a fresh retry budget")
    else:
        print(f"{key}: submitted as {outcome.task.task_id} "
              f"(priority {outcome.task.priority}, client {args.client})")
    if args.no_run:
        print("queued; run `repro serve` to process it")
        return 0
    pool = WorkerPool(store, n_workers=1)
    pool.run_until_idle()
    result = store.result_for_key(key)
    task = store.get(outcome.task.task_id)
    if result is None:
        print(f"task {task.task_id} did not complete (status {task.status}"
              f"{': ' + task.error if task.error else ''})")
        return 1
    _print_service_result(result)
    return 0


def _print_service_result(result) -> None:
    if not result:
        return
    print(f"  molecule: {result.get('molecule')}  "
          f"level={result.get('level')}  backend={result.get('backend')}")
    energy = result.get("total_energy")
    alpha = result.get("isotropic_alpha")
    if energy is not None:
        print(f"  E = {energy:.6f} Ha  "
              f"(SCF {result.get('scf_iterations')} iterations)")
    if alpha is not None:
        print(f"  isotropic alpha: {alpha:.4f} a.u.")


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs.telemetry import (
        AlertEngine,
        TelemetrySink,
        render_alerts,
        rollup,
        telemetry_path_for,
        window_origin,
    )
    from repro.runtime.faults import FaultPlan, FaultRates
    from repro.service import WorkerPool

    store = _open_store(args)
    # Every serve drain is telemetered: lifecycle transitions stream
    # into the sidecar journal next to the statestore journal.
    sink = TelemetrySink(telemetry_path_for(args.store), fresh=args.fresh)
    sink.write_provenance(seed=args.seed)
    store.attach_telemetry(sink)
    plan = None
    if args.crash_rate > 0.0:
        plan = FaultPlan(
            seed=args.seed, rates=FaultRates(worker_crash=args.crash_rate)
        )
        print(f"serving with injected worker crashes "
              f"(rate={args.crash_rate}, seed={args.seed})")
    if args.fleet == "auto":
        print("fleet mode: wave sizes chosen per scheduling step by the "
              "model-only auto-tuner")
    elif args.fleet is not None:
        print(f"fleet mode: waves of up to {args.fleet} task(s) per worker "
              f"share one execution substrate")
    pool = WorkerPool(
        store, n_workers=args.workers, fault_plan=plan, fleet=args.fleet
    )
    report = pool.run_until_idle(max_steps=args.max_steps)
    print(report.summary())
    windows = rollup(
        sink.events, args.slo_window,
        t0=window_origin(sink.events, args.slo_window),
    )
    alerts = AlertEngine().evaluate(windows, sink=sink)
    print(f"telemetry: {len(sink.events)} event(s) -> {sink.path}; "
          f"{len(windows)} rollup window(s) at {args.slo_window:g}s")
    if alerts:
        print(render_alerts(alerts))
    if args.trace:
        from repro.obs import write_chrome_trace
        from repro.obs.report import collect_provenance

        trace_path = prepare_artifact_path(args.trace, force=args.force)
        write_chrome_trace(
            trace_path,
            telemetry_events=sink.events,
            metadata=collect_provenance(seed=args.seed).as_dict(),
        )
        print(f"fleet trace (one track per worker) -> {trace_path} "
              f"(open in Perfetto)")
    print()
    print(store.render_status(now=pool.now))
    return 0 if report.idle else 1


def _render_watch_telemetry(args: argparse.Namespace) -> str:
    """The telemetry tail (rollups + alerts) of one --watch refresh."""
    from repro.obs.telemetry import (
        AlertEngine,
        load_events,
        render_alerts,
        render_windows,
        rollup,
        telemetry_path_for,
        window_origin,
    )

    sidecar = telemetry_path_for(args.store)
    if not sidecar.exists():
        return "no telemetry journal yet (runs appear after `repro serve`)"
    events = load_events(sidecar)
    windows = rollup(
        events, args.window, t0=window_origin(events, args.window)
    )
    alerts = AlertEngine().evaluate(windows)
    tail = windows[-3:]
    return "\n".join(
        [render_windows(tail), "alerts: " + render_alerts(alerts)]
    )


def _cmd_status(args: argparse.Namespace) -> int:
    if not getattr(args, "watch", False):
        print(_open_store(args).render_status())
        return 0
    import itertools
    import time as _time

    refreshes = (
        range(args.iterations) if args.iterations > 0 else itertools.count()
    )
    for i in refreshes:
        if i:
            _time.sleep(args.interval)
        # Re-open per refresh: journal replay picks up transitions other
        # processes appended since the last render.
        store = _open_store(args)
        print(f"--- repro status --watch (refresh {i + 1}) ---")
        print(store.render_status())
        print()
        print(_render_watch_telemetry(args))
        print(flush=True)
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from repro.errors import ExperimentError
    from repro.obs.telemetry import (
        AlertEngine,
        load_events,
        render_alerts,
        render_slo_emission,
        render_windows,
        rollup,
        slo_emission,
        telemetry_path_for,
        window_origin,
    )

    if args.journal or args.store:
        path = (
            Path(args.journal) if args.journal
            else telemetry_path_for(args.store)
        )
        if not path.exists():
            raise ExperimentError(
                f"no telemetry journal at {path}; drain the store with "
                "`repro serve` first (it records one automatically)"
            )
        events = load_events(path)
        windows = rollup(
            events, args.window, t0=window_origin(events, args.window)
        )
        alerts = AlertEngine().evaluate(windows)
        print(f"telemetry journal {path}: {len(events)} event(s), "
              f"{len(windows)} window(s) at {args.window:g}s")
        print()
        print(render_windows(windows))
        print("alerts: " + render_alerts(alerts))
        return 0

    if args.gate:
        from repro.obs.bench import emission_for_baseline
        from repro.obs.regress import compare_reports, load_baseline

        baseline = load_baseline(args.gate)
        print(f"slo-check: fresh SLO emission "
              f"(seed={baseline.get('seed')}, "
              f"window={baseline.get('window')}) vs baseline {args.gate}")
        fresh = emission_for_baseline(baseline)
    else:
        fresh = slo_emission(seed=args.seed, window=args.window)
    if args.write_fresh:
        Path(args.write_fresh).write_text(
            _json.dumps(fresh, indent=2, sort_keys=True) + "\n"
        )
        print(f"fresh emission -> {args.write_fresh}")
    print(render_slo_emission(fresh))
    if args.gate:
        report = compare_reports(fresh, baseline)
        print()
        print(report.render())
        return 0 if report.ok else 1
    return 0


def _cmd_info(_args: argparse.Namespace) -> int:
    for machine in (HPC1_SUNWAY, HPC2_AMD):
        acc = machine.accelerator
        print(machine.name)
        print(f"  ranks/node: {machine.procs_per_node}, "
              f"ranks/accelerator: {machine.ranks_per_accelerator}, "
              f"SHM windows: {machine.shm_windows}")
        print(f"  accelerator: {acc.name} — {acc.compute_units} CUs x "
              f"{acc.lanes_per_unit} lanes, RMA window "
              f"{format_bytes(acc.rma_max_bytes) if acc.rma_max_bytes else 'none'}, "
              f"persistent buffers: {acc.persistent_buffers}")
        print(f"  memory/rank: {format_bytes(machine.per_proc_memory)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="All-electron quantum perturbation simulations (SC'23 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser, physics: bool) -> None:
        p.add_argument("geometry", nargs="?", help="FHI-aims geometry.in file")
        p.add_argument(
            "--polyethylene",
            type=int,
            metavar="N_ATOMS",
            help="use an H(C2H4)nH chain with this many atoms (6n+2)",
        )
        p.add_argument("--level", default="minimal" if physics else "light",
                       choices=["minimal", "light", "tight"])

    def add_physics_opts(p: argparse.ArgumentParser) -> None:
        p.add_argument("--charge", type=int, default=0)
        p.add_argument(
            "--backend",
            default="numpy",
            choices=available_backends(),
            help="execution backend for the DM/Sumup/H phases",
        )
        p.add_argument(
            "--verify",
            default="off",
            choices=["off", "cheap", "full"],
            help="run physics-invariant checks at phase boundaries",
        )
        from repro.grids.sparsity import DEFAULT_SCREENING_THRESHOLD

        p.add_argument(
            "--screening",
            nargs="?",
            type=float,
            const=DEFAULT_SCREENING_THRESHOLD,
            default=0.0,
            metavar="THRESHOLD",
            help="enable block-sparse basis screening (optional threshold; "
            f"bare flag uses {DEFAULT_SCREENING_THRESHOLD:g}, 0 disables "
            "for the exact dense path)",
        )
        p.add_argument(
            "--report",
            metavar="PATH",
            help="write the unified RunReport JSON artifact here",
        )
        p.add_argument(
            "--force",
            action="store_true",
            help="overwrite existing --trace/--report artifacts",
        )

    p_phys = sub.add_parser("physics", help="run the real SCF + CPSCF pipeline")
    add_common(p_phys, physics=True)
    add_physics_opts(p_phys)
    p_phys.add_argument(
        "--trace",
        metavar="PATH",
        help="write a Perfetto-loadable Chrome trace-event file here",
    )
    p_phys.set_defaults(func=_cmd_physics)

    p_trace = sub.add_parser(
        "trace",
        help="physics run that always writes the span trace "
        "(Chrome trace-event JSON, Perfetto-loadable)",
    )
    add_common(p_trace, physics=True)
    add_physics_opts(p_trace)
    p_trace.add_argument(
        "--out",
        dest="trace",
        default="trace.json",
        metavar="PATH",
        help="trace output path (default: trace.json)",
    )
    p_trace.add_argument(
        "--molecule",
        choices=["h2", "water"],
        help="built-in molecule instead of a geometry.in path",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_bench = sub.add_parser(
        "bench-check",
        help="perf-regression gate: fresh backend-benchmark emission vs a "
        "committed BENCH_*.json baseline with per-metric tolerance bands",
    )
    p_bench.add_argument(
        "--baseline",
        default="BENCH_backends.json",
        help="committed baseline artifact (default: ./BENCH_backends.json)",
    )
    p_bench.add_argument(
        "--write-fresh",
        metavar="PATH",
        help="also write the fresh emission JSON here (baseline updates)",
    )
    p_bench.add_argument(
        "--history",
        metavar="PATH",
        help="append the provenance-stamped fresh emission to this "
        "BENCH_history.jsonl log after gating",
    )
    p_bench.add_argument(
        "--against-history",
        action="store_true",
        help="gate against the rolling median of the --history window "
        "instead of the committed baseline",
    )
    p_bench.add_argument(
        "--window",
        type=int,
        default=5,
        metavar="N",
        help="history entries in the rolling-baseline window (default: 5)",
    )
    p_bench.set_defaults(func=_cmd_bench_check)

    p_an = sub.add_parser(
        "analyze",
        help="post-mortem analytics over recorded artifacts (traces, "
        "run reports, benchmark history)",
    )
    an_sub = p_an.add_subparsers(dest="analyze_command", required=True)

    p_at = an_sub.add_parser(
        "trace",
        help="timeline summary, critical path, per-phase imbalance and "
        "communication matrix of one recorded run",
    )
    p_at.add_argument("trace", help="Chrome trace-event or RunReport JSON")
    p_at.add_argument("--top", type=int, default=None, metavar="K",
                      help="show only the K slowest critical-path steps")
    p_at.set_defaults(func=_cmd_analyze_trace)

    p_ad = an_sub.add_parser(
        "diff",
        help="A/B wall-time attribution between two recorded runs "
        "(explain the regression)",
    )
    p_ad.add_argument("base", help="trusted base run artifact")
    p_ad.add_argument("fresh", help="candidate run artifact")
    p_ad.add_argument("--top", type=int, default=5, metavar="K",
                      help="ranked contributions to show (default: 5)")
    p_ad.add_argument(
        "--gate",
        nargs=2,
        metavar=("BASE_BENCH", "FRESH_BENCH"),
        help="also run the perf gate on these two BENCH_*.json emissions "
        "and fold its offenders into the narrative",
    )
    p_ad.set_defaults(func=_cmd_analyze_diff)

    p_as = an_sub.add_parser(
        "scaling",
        help="strong/weak scaling dashboards (Figs. 15/16) plus "
        "mapping and reduction-scheme attribution (Figs. 9/10)",
    )
    p_as.add_argument("--atoms", type=int, default=3002,
                      help="smallest polyethylene chain (default: 3002)")
    p_as.add_argument("--base-ranks", type=int, default=128,
                      help="smallest rank count (default: 128)")
    p_as.add_argument("--points", type=int, default=3,
                      help="doublings per series (default: 3)")
    p_as.set_defaults(func=_cmd_analyze_scaling)

    p_ah = an_sub.add_parser(
        "history",
        help="trend detection over the benchmark history log",
    )
    p_ah.add_argument("--path", default="BENCH_history.jsonl",
                      help="history log (default: ./BENCH_history.jsonl)")
    p_ah.add_argument("--window", type=int, default=5, metavar="N")
    p_ah.add_argument("--threshold", type=float, default=0.25,
                      help="relative drift that flags a trend (default: 0.25)")
    p_ah.set_defaults(func=_cmd_analyze_history)

    p_model = sub.add_parser("model", help="price a configuration at scale")
    add_common(p_model, physics=False)
    p_model.add_argument("--machine", default="hpc2", choices=["hpc1", "hpc2"])
    p_model.add_argument("--ranks", type=int, default=1024)
    p_model.add_argument("--baseline", action="store_true",
                         help="disable all of the paper's innovations")
    p_model.add_argument("--cpu-only", action="store_true",
                         help="HPC#2 without its GPUs (Figs. 15-16 variant)")
    p_model.set_defaults(func=_cmd_model)

    p_chaos = sub.add_parser(
        "chaos", help="fault-injection run with bit-exact recovery check"
    )
    p_chaos.add_argument("--seed", type=int, default=2023)
    p_chaos.add_argument("--machine", default="hpc2", choices=["hpc1", "hpc2"])
    p_chaos.add_argument("--ranks", type=int, default=8)
    p_chaos.add_argument("--molecule", default="h2", choices=["h2", "water"])
    p_chaos.add_argument("--level", default="minimal",
                         choices=["minimal", "light", "tight"])
    p_chaos.add_argument("--corruption-rate", type=float, default=0.0,
                         help="per-collective corruption probability")
    p_chaos.add_argument("--straggler-rate", type=float, default=0.0,
                         help="per-collective straggler probability")
    p_chaos.add_argument("--cycle-fault-rate", type=float, default=0.0,
                         help="per-SCF/CPSCF-cycle fault probability")
    p_chaos.set_defaults(func=_cmd_chaos)

    p_tune = sub.add_parser(
        "tune",
        help="closed-loop auto-tuner: price the config space on the "
        "machine models, trial the short list, report (and optionally "
        "apply) the winning configuration",
    )
    add_common(p_tune, physics=True)
    p_tune.add_argument("--molecule", choices=["h2", "water"],
                        help="built-in molecule instead of a geometry.in path")
    p_tune.add_argument("--charge", type=int, default=0)
    p_tune.add_argument("--machine", default="hpc2", choices=["hpc1", "hpc2"],
                        help="machine model the comm terms are priced on")
    p_tune.add_argument("--ranks", type=int, default=4,
                        help="ranks the mapping/comm terms are priced at")
    p_tune.add_argument("--budget", type=int, default=3,
                        help="measured-stage trial budget (0 = model only)")
    p_tune.add_argument("--fleet", action="store_true",
                        help="also tune the fleet wave-size axis")
    p_tune.add_argument("--history", metavar="PATH",
                        help="BENCH_history.jsonl to warm-start from and "
                        "append the decision to")
    p_tune.add_argument("--no-warm-start", action="store_true",
                        help="ignore prior decisions in --history")
    p_tune.add_argument("--decision", metavar="PATH",
                        help="write the TunerDecision JSON artifact here")
    p_tune.add_argument("--replay", metavar="PATH",
                        help="render a recorded decision artifact instead "
                        "of tuning")
    p_tune.add_argument("--apply", action="store_true",
                        help="run the real pipeline under the chosen config "
                        "and record predicted-vs-actual in the RunReport")
    p_tune.add_argument("--report", metavar="PATH",
                        help="with --apply: write the RunReport (including "
                        "the tuner block) here")
    p_tune.add_argument("--force", action="store_true",
                        help="overwrite existing --decision/--report artifacts")
    p_tune.set_defaults(func=_cmd_tune)

    p_verify = sub.add_parser(
        "verify",
        help="invariants + goldens + differential conformance on the "
        "reference molecules",
    )
    p_verify.add_argument("--molecule", default="all",
                          choices=["h2", "water", "all"])
    p_verify.add_argument("--level", default="minimal",
                          choices=["minimal", "light", "tight"])
    p_verify.add_argument("--ranks", type=int, default=4,
                          help="simulated ranks for the comm-scheme axis")
    p_verify.add_argument("--update-golden", action="store_true",
                          help="regenerate the committed golden snapshots "
                          "instead of comparing against them")
    p_verify.add_argument("--skip-conformance", action="store_true",
                          help="invariants and goldens only")
    p_verify.set_defaults(func=_cmd_verify)

    def add_store_opts(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--store",
            default="service.jsonl",
            metavar="PATH",
            help="statestore journal (default: ./service.jsonl); an "
            "existing journal is resumed",
        )
        p.add_argument(
            "--fresh",
            action="store_true",
            help="start a new journal instead of resuming (refuses to "
            "overwrite an existing one without --force)",
        )
        p.add_argument(
            "--force",
            action="store_true",
            help="allow --fresh to replace an existing journal",
        )

    p_submit = sub.add_parser(
        "submit",
        help="submit one simulation job to the service statestore "
        "(content-addressed: repeated submissions are cache hits)",
    )
    add_common(p_submit, physics=True)
    p_submit.add_argument("--molecule", choices=["h2", "water"],
                          help="built-in molecule instead of a geometry.in path")
    p_submit.add_argument("--charge", type=int, default=0)
    p_submit.add_argument(
        "--backend", default="numpy", choices=available_backends(),
        help="execution backend the worker runs the job under",
    )
    p_submit.add_argument("--client", default="cli",
                          help="client identity for quota accounting")
    p_submit.add_argument("--priority", type=int, default=0,
                          help="claim priority (higher first; default 0)")
    p_submit.add_argument("--max-retries", type=int, default=3,
                          help="retry budget before terminal errored state")
    p_submit.add_argument("--no-run", action="store_true",
                          help="only enqueue; do not drain with an inline worker")
    p_submit.add_argument("--tune", default="off", choices=["off", "auto"],
                          help="auto: run the closed-loop tuner first and "
                          "submit under the chosen configuration")
    p_submit.add_argument("--tune-history", metavar="PATH",
                          help="BENCH_history.jsonl the tuner warm-starts "
                          "from and appends its decision to")
    add_store_opts(p_submit)
    p_submit.set_defaults(func=_cmd_submit)

    p_serve = sub.add_parser(
        "serve",
        help="drain the statestore with a worker pool (optionally under "
        "injected worker crashes)",
    )
    p_serve.add_argument("--workers", type=int, default=2,
                         help="pool size (default: 2)")
    p_serve.add_argument("--fleet", type=_fleet_arg, default=None,
                         metavar="N|auto",
                         help="fleet mode: claim waves of up to N tasks per "
                         "worker and run them through one shared substrate "
                         "(bit-identical to sequential draining); 'auto' "
                         "lets the model-only tuner pick each wave size")
    p_serve.add_argument("--max-steps", type=int, default=10_000,
                         help="scheduling-step budget before giving up")
    p_serve.add_argument("--crash-rate", type=float, default=0.0,
                         help="per-claim worker-crash probability (chaos mode)")
    p_serve.add_argument("--seed", type=int, default=2023,
                         help="fault-plan seed for --crash-rate")
    p_serve.add_argument("--lease-seconds", type=float, default=30.0,
                         help="claim lease before a silent worker's task "
                         "is requeued")
    p_serve.add_argument("--slo-window", type=float, default=4.0,
                         metavar="SECONDS",
                         help="rollup window width for the post-drain SLO "
                         "summary and alert evaluation (default: 4.0)")
    p_serve.add_argument("--trace", metavar="PATH",
                         help="write a fleet Chrome/Perfetto trace of the "
                         "drain: one track per worker plus a queue track")
    add_store_opts(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_status = sub.add_parser(
        "status", help="show the statestore queue, result cache and "
        "worker health (optionally as a live dashboard)"
    )
    p_status.add_argument("--watch", action="store_true",
                          help="refresh the dashboard repeatedly instead of "
                          "printing one snapshot")
    p_status.add_argument("--interval", type=float, default=2.0,
                          metavar="SECONDS",
                          help="--watch refresh period (default: 2.0)")
    p_status.add_argument("--iterations", type=int, default=0, metavar="N",
                          help="stop --watch after N refreshes "
                          "(default: 0 = until interrupted)")
    p_status.add_argument("--window", type=float, default=4.0,
                          metavar="SECONDS",
                          help="rollup window width for the --watch "
                          "telemetry tail (default: 4.0)")
    add_store_opts(p_status)
    p_status.set_defaults(func=_cmd_status)

    p_slo = sub.add_parser(
        "slo",
        help="windowed SLO rollups, health and deterministic alerts over "
        "a telemetry journal — or the committed synthetic scenario "
        "(gateable against BENCH_slo.json)",
    )
    p_slo.add_argument("--window", type=float, default=4.0,
                       metavar="SECONDS",
                       help="rollup window width on the logical clock "
                       "(default: 4.0)")
    p_slo.add_argument("--seed", type=int, default=2023,
                       help="scenario seed for the synthetic SLO emission")
    p_slo.add_argument("--gate", metavar="BASELINE",
                       help="compare a fresh synthetic emission against a "
                       "committed BENCH_slo.json; non-zero exit on "
                       "regression (make slo-check)")
    p_slo.add_argument("--write-fresh", metavar="PATH",
                       help="write the fresh emission as sorted-key JSON "
                       "(use to [re]generate BENCH_slo.json)")
    p_slo.add_argument("--journal", metavar="PATH",
                       help="roll up an explicit telemetry journal instead "
                       "of running the synthetic scenario")
    p_slo.add_argument("--store", default=None, metavar="PATH",
                       help="roll up the telemetry sidecar of this "
                       "statestore journal (as written by `repro serve`)")
    p_slo.set_defaults(func=_cmd_slo)

    p_info = sub.add_parser("info", help="show the machine presets")
    p_info.set_defaults(func=_cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())

"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still being able to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all :mod:`repro` exceptions."""


class GeometryError(ReproError):
    """Malformed structure input (unknown element, bad geometry file...)."""


class BasisError(ReproError):
    """Basis-set construction or evaluation failure."""


class GridError(ReproError):
    """Integration-grid construction failure (bad rule order, empty batch...)."""


class SCFConvergenceError(ReproError):
    """The ground-state SCF cycle failed to reach the requested tolerance."""

    def __init__(self, message: str, *, iterations: int, residual: float):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class CPSCFConvergenceError(ReproError):
    """The coupled-perturbed SCF (DFPT) cycle failed to converge."""

    def __init__(self, message: str, *, iterations: int, residual: float):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class MappingError(ReproError):
    """Task-mapping failure (more ranks than batches, empty partitions...)."""


class CommunicationError(ReproError):
    """Simulated-MPI misuse (mismatched buffers, unknown ranks...)."""


class FaultInjectionError(ReproError):
    """A fault-injection plan is malformed or its restart budget ran out."""


class RankFailureError(CommunicationError):
    """A simulated rank died and could not be brought back."""

    def __init__(self, message: str, *, rank: int = -1):
        super().__init__(message)
        self.rank = rank


class CollectiveTimeoutError(CommunicationError):
    """A collective exhausted its retry/backoff budget under faults."""

    def __init__(self, message: str, *, site: str = "", attempts: int = 0):
        super().__init__(message)
        self.site = site
        self.attempts = attempts


class ShmCorruptionError(CommunicationError):
    """A shared-memory window was corrupted by an injected fault."""


class BackendError(ReproError):
    """Execution-backend misuse (unknown name, unbound/rebound backend...)."""


class DeviceError(ReproError):
    """Simulated OpenCL device misuse (buffer overflow, bad NDRange...)."""


class KernelFusionError(DeviceError):
    """A requested kernel fusion is illegal on the target device."""


class ExperimentError(ReproError):
    """An experiment/benchmark harness was configured inconsistently."""


class ServiceError(ReproError):
    """Simulation-service failure (statestore, job API or worker pool)."""


class TaskTransitionError(ServiceError):
    """An illegal task-lifecycle transition was requested (unknown task,
    wrong claiming worker, or a state the operation is not valid in)."""


class QuotaExceededError(ServiceError):
    """A client submission would exceed its active-task quota."""

    def __init__(self, message: str, *, client: str = "", active: int = 0,
                 quota: int = 0):
        super().__init__(message)
        self.client = client
        self.active = active
        self.quota = quota


class ArtifactError(ReproError):
    """An output artifact cannot be written safely (e.g. it already
    exists and overwriting was not explicitly requested)."""


class VerificationError(ReproError):
    """A physics invariant, golden snapshot or conformance check failed."""


class GoldenUpdateError(VerificationError):
    """A golden snapshot would be (re)written without explicit opt-in."""

"""Persistent task statestore: the service's correctness contract.

The store owns the task lifecycle of the simulation service
(DESIGN §12.2)::

    submit ──> waiting ──claim──> claimed ──start──> running ──complete──> complete
                  ^                  │                  │
                  │                  └──fail/lease──────┘
                  └── (retry with exponential backoff; budget exhausted
                       => terminal ``errored``)

Design points, modeled on alchemiscale's Neo4j statestore contract
(``test_statestore.py``):

* **Claiming** hands each waiting task to exactly one worker: highest
  ``priority`` first, FIFO (submit order) within a priority band.  A
  claimed task is invisible to further claims — double-claiming is
  structurally impossible.
* **Leases** bound worker silence.  Claims carry a lease deadline that
  :meth:`StateStore.heartbeat` extends; :meth:`StateStore.expire_leases`
  requeues (or terminally errors) tasks whose worker went quiet — the
  crash-recovery path the chaos suite exercises.
* **Bounded retry with backoff**: each claim consumes one attempt; a
  failed/expired task becomes eligible again only after an
  exponentially growing delay, and exhausting ``max_retries`` parks it
  in the terminal ``errored`` state.
* **Idempotent resubmission**: tasks are content-addressed by a cache
  ``key`` (see :func:`repro.service.jobs.cache_key`).  Resubmitting a
  completed key is a **cache hit** (the stored result is returned, no
  new task); resubmitting a live key deduplicates onto the existing
  task; resubmitting an errored key revives it with a fresh retry
  budget.
* **Persistence** is an append-only JSON journal: every transition is
  one line carrying its explicit timestamp, so replaying the journal
  rebuilds the exact store state (same statuses, results, quotas) with
  no wall-clock dependence.  The journal path honours the repo-wide
  artifact overwrite guard
  (:func:`repro.utils.artifacts.prepare_artifact_path`).

>>> store = StateStore()                    # in-memory (no journal)
>>> out = store.submit({"job": "h2"}, key="ck-1", now=0.0)
>>> out.task.status
'waiting'
>>> [t.task_id for t in store.claim("w0", now=1.0)]
['t-000001']
>>> store.complete("t-000001", "w0", {"alpha": 4.5}, now=2.0)
>>> store.submit({"job": "h2"}, key="ck-1", now=3.0).cache_hit
True
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.errors import QuotaExceededError, ServiceError, TaskTransitionError
from repro.utils.artifacts import prepare_artifact_path

#: The task lifecycle states (DESIGN §12.2).
WAITING = "waiting"
CLAIMED = "claimed"
RUNNING = "running"
COMPLETE = "complete"
ERRORED = "errored"
CANCELLED = "cancelled"

#: Every status a task may carry.
ALL_STATUSES = (WAITING, CLAIMED, RUNNING, COMPLETE, ERRORED, CANCELLED)

#: States that count against a client's active-task quota and that a
#: same-key resubmission deduplicates onto.
LIVE_STATUSES = (WAITING, CLAIMED, RUNNING)

#: States a task can never leave.
TERMINAL_STATUSES = (COMPLETE, ERRORED, CANCELLED)


@dataclass
class TaskRecord:
    """One task's full mutable state inside the store."""

    task_id: str
    key: str
    payload: Dict[str, Any]
    client: str = "anon"
    priority: int = 0
    max_retries: int = 3
    status: str = WAITING
    attempts: int = 0
    submit_index: int = 0
    submitted_at: float = 0.0
    not_before: float = 0.0
    waiting_since: float = 0.0
    worker: Optional[str] = None
    lease_expires: Optional[float] = None
    error: str = ""
    resubmissions: int = 0

    @property
    def live(self) -> bool:
        """Is the task still in flight (waiting/claimed/running)?"""
        return self.status in LIVE_STATUSES

    @property
    def terminal(self) -> bool:
        """Has the task reached a state it can never leave?"""
        return self.status in TERMINAL_STATUSES


@dataclass
class SubmitOutcome:
    """What one :meth:`StateStore.submit` call resolved to.

    Exactly one of three shapes:

    * fresh submission — ``task`` is a new waiting task;
    * ``deduplicated`` — ``task`` is the pre-existing live task for
      the same key;
    * ``cache_hit`` — ``task`` is the completed task and ``result``
      carries its stored result payload (no recomputation).
    """

    task: TaskRecord
    cache_hit: bool = False
    deduplicated: bool = False
    resubmitted: bool = False
    result: Optional[Dict[str, Any]] = None

    @property
    def fresh(self) -> bool:
        """Did this submission enqueue new work?"""
        return not (self.cache_hit or self.deduplicated)


class StateStore:
    """Persistent priority task queue with leases, retries and a result cache.

    Parameters
    ----------
    path:
        JSON-journal location.  ``None`` keeps the store in memory
        (tests, ephemeral pools).  An existing journal is *resumed* —
        replayed into the exact prior state — unless ``fresh`` is set.
    fresh:
        Start a brand-new journal at ``path``.  Refuses to clobber an
        existing file unless ``force`` is also given (the repo-wide
        :class:`~repro.errors.ArtifactError` exit-2 contract).
    lease_seconds:
        How long a claim stays valid without a heartbeat.
    backoff_base, backoff_factor:
        Retry eligibility delay: attempt *n* (1-based) waits
        ``backoff_base * backoff_factor**(n - 1)`` seconds.
    clock:
        Time source used when a mutator is called without an explicit
        ``now`` (defaults to :func:`time.time`); tests pass logical
        times instead.
    telemetry:
        Optional :class:`~repro.obs.telemetry.events.TelemetrySink`.
        Every **live** journal transition (plus cache hits, dedups and
        lease expiries, which never reach the journal themselves) is
        sampled into it; journal *replay* does not re-sample — the
        telemetry journal is its own history.
    """

    def __init__(
        self,
        path: Union[str, Path, None] = None,
        *,
        fresh: bool = False,
        force: bool = False,
        lease_seconds: float = 30.0,
        backoff_base: float = 1.0,
        backoff_factor: float = 2.0,
        clock: Optional[Callable[[], float]] = None,
        telemetry=None,
    ) -> None:
        if lease_seconds <= 0:
            raise ServiceError(f"lease_seconds must be > 0, got {lease_seconds}")
        if backoff_base < 0 or backoff_factor < 1.0:
            raise ServiceError("backoff_base must be >= 0 and backoff_factor >= 1")
        self.lease_seconds = float(lease_seconds)
        self.backoff_base = float(backoff_base)
        self.backoff_factor = float(backoff_factor)
        self._clock = clock or time.time
        self.telemetry = telemetry
        self._tasks: Dict[str, TaskRecord] = {}
        self._by_key: Dict[str, str] = {}
        self._results: Dict[str, Dict[str, Any]] = {}
        self._quotas: Dict[str, int] = {}
        self._worker_heartbeats: Dict[str, float] = {}
        self._submit_counter = 0
        self._journal: Optional[Path] = None
        if path is not None:
            path = Path(path)
            if fresh or not path.exists():
                # A *new* journal goes through the artifact guard: an
                # existing file is only truncated under --force.
                self._journal = prepare_artifact_path(path, force=force)
                self._journal.write_text("")
            else:
                self._journal = path
                self._replay(path)

    # ------------------------------------------------------------------
    # Journal plumbing
    # ------------------------------------------------------------------
    def _replay(self, path: Path) -> None:
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            if not line.strip():
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ServiceError(
                    f"corrupt statestore journal {path}:{lineno}: {exc}"
                ) from None
            self._apply(event)

    def _record(self, event: Dict[str, Any]) -> None:
        self._apply(event)
        if self._journal is not None:
            with self._journal.open("a") as fh:
                fh.write(json.dumps(event, sort_keys=True) + "\n")
        if self.telemetry is not None:
            self.telemetry.record_store_op(event)

    def attach_telemetry(self, sink) -> None:
        """Start sampling live transitions into *sink* from now on.

        Past history is not backfilled — resume a telemetry sidecar
        journal (:func:`repro.obs.telemetry.events.load_events`) for
        that.
        """
        self.telemetry = sink

    def _note(self, kind: str, t: float, **fields: Any) -> None:
        """Record one non-journal telemetry instant, if a sink is attached."""
        if self.telemetry is not None:
            self.telemetry.note(kind, t, **fields)

    def _now(self, now: Optional[float]) -> float:
        return float(self._clock() if now is None else now)

    def now(self) -> float:
        """The store's current clock reading (shared by worker pools)."""
        return float(self._clock())

    # ------------------------------------------------------------------
    # Event application (shared by live mutation and journal replay)
    # ------------------------------------------------------------------
    def _apply(self, event: Dict[str, Any]) -> None:
        op = event["op"]
        handler = getattr(self, f"_apply_{op}", None)
        if handler is None:
            raise ServiceError(f"unknown statestore journal op {op!r}")
        handler(event)

    def _apply_submit(self, ev: Dict[str, Any]) -> None:
        self._submit_counter += 1
        task = TaskRecord(
            task_id=ev["task_id"],
            key=ev["key"],
            payload=ev["payload"],
            client=ev["client"],
            priority=int(ev["priority"]),
            max_retries=int(ev["max_retries"]),
            submit_index=self._submit_counter,
            submitted_at=float(ev["now"]),
            not_before=float(ev["now"]),
            waiting_since=float(ev["now"]),
        )
        self._tasks[task.task_id] = task
        self._by_key[task.key] = task.task_id

    def _apply_resubmit(self, ev: Dict[str, Any]) -> None:
        task = self._tasks[ev["task_id"]]
        task.status = WAITING
        task.attempts = 0
        self._release_worker(task)
        task.error = ""
        task.not_before = float(ev["now"])
        task.waiting_since = float(ev["now"])
        task.resubmissions += 1

    def _apply_claim(self, ev: Dict[str, Any]) -> None:
        task = self._tasks[ev["task_id"]]
        task.status = CLAIMED
        task.worker = ev["worker"]
        task.attempts += 1
        task.lease_expires = float(ev["lease_expires"])
        self._worker_heartbeats[ev["worker"]] = float(ev["now"])

    def _apply_start(self, ev: Dict[str, Any]) -> None:
        self._tasks[ev["task_id"]].status = RUNNING
        self._worker_heartbeats[ev["worker"]] = float(ev["now"])

    def _apply_heartbeat(self, ev: Dict[str, Any]) -> None:
        self._tasks[ev["task_id"]].lease_expires = float(ev["lease_expires"])
        self._worker_heartbeats[ev["worker"]] = float(ev["now"])

    def _apply_complete(self, ev: Dict[str, Any]) -> None:
        task = self._tasks[ev["task_id"]]
        task.status = COMPLETE
        self._release_worker(task)
        self._results[task.key] = ev["result"]
        self._worker_heartbeats[ev["worker"]] = float(ev["now"])

    def _apply_requeue(self, ev: Dict[str, Any]) -> None:
        task = self._tasks[ev["task_id"]]
        # A worker-reported failure is still worker contact; a lease
        # expiry is precisely the absence of it.
        worker = ev.get("worker")
        if worker and not ev.get("expired", False):
            self._worker_heartbeats[worker] = float(ev["now"])
        self._release_worker(task)
        task.error = ev.get("error", "")
        if ev["terminal"]:
            task.status = ERRORED
        else:
            task.status = WAITING
            task.not_before = float(ev["not_before"])
            task.waiting_since = float(ev["now"])

    def _apply_cancel(self, ev: Dict[str, Any]) -> None:
        task = self._tasks[ev["task_id"]]
        task.status = CANCELLED
        self._release_worker(task)

    @staticmethod
    def _release_worker(task: TaskRecord) -> None:
        """Drop a task's worker binding (shared by every leaving transition)."""
        task.worker = None
        task.lease_expires = None

    def _apply_set_quota(self, ev: Dict[str, Any]) -> None:
        self._quotas[ev["client"]] = int(ev["max_active"])

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        payload: Dict[str, Any],
        *,
        key: str,
        client: str = "anon",
        priority: int = 0,
        max_retries: int = 3,
        now: Optional[float] = None,
    ) -> SubmitOutcome:
        """Enqueue one content-addressed task (idempotently).

        See :class:`SubmitOutcome` for the three possible resolutions.
        Raises :class:`~repro.errors.QuotaExceededError` when the
        client's active-task quota is full (cache hits and dedups never
        count against it).
        """
        now = self._now(now)
        if max_retries < 0:
            raise ServiceError(f"max_retries must be >= 0, got {max_retries}")
        existing_id = self._by_key.get(key)
        if existing_id is not None:
            existing = self._tasks[existing_id]
            if existing.status == COMPLETE:
                # Cache hits bypass the journal (no state changes), so
                # the telemetry sample happens here, not in _record.
                self._note("cache_hit", now, task=existing.task_id,
                           key=key, client=client)
                return SubmitOutcome(
                    task=existing, cache_hit=True, result=self._results.get(key)
                )
            if existing.live:
                self._note("dedup", now, task=existing.task_id,
                           key=key, client=client)
                return SubmitOutcome(task=existing, deduplicated=True)
            if existing.status == ERRORED:
                self._check_quota(client, now)
                self._record(
                    {"op": "resubmit", "task_id": existing.task_id, "now": now}
                )
                return SubmitOutcome(task=existing, resubmitted=True)
            # cancelled: fall through and enqueue a brand-new task
        self._check_quota(client, now)
        task_id = f"t-{self._submit_counter + 1:06d}"
        self._record(
            {
                "op": "submit",
                "task_id": task_id,
                "key": key,
                "payload": payload,
                "client": client,
                "priority": int(priority),
                "max_retries": int(max_retries),
                "now": now,
            }
        )
        return SubmitOutcome(task=self._tasks[task_id])

    def _check_quota(self, client: str, now: float) -> None:
        quota = self._quotas.get(client)
        if quota is None:
            return
        active = sum(
            1 for t in self._tasks.values() if t.client == client and t.live
        )
        if active >= quota:
            raise QuotaExceededError(
                f"client {client!r} has {active} active task(s), "
                f"quota is {quota}",
                client=client, active=active, quota=quota,
            )

    def set_quota(self, client: str, max_active: int) -> None:
        """Cap how many live (waiting/claimed/running) tasks ``client`` may hold."""
        if max_active < 0:
            raise ServiceError(f"quota must be >= 0, got {max_active}")
        self._record({"op": "set_quota", "client": client,
                      "max_active": int(max_active)})

    # ------------------------------------------------------------------
    # Claiming and the worker-side lifecycle
    # ------------------------------------------------------------------
    def claim(
        self, worker: str, *, limit: int = 1, now: Optional[float] = None
    ) -> List[TaskRecord]:
        """Hand up to ``limit`` eligible tasks to ``worker``.

        Eligible means ``waiting`` with its retry backoff elapsed.
        Ordering is priority-descending, then FIFO by submit order —
        the alchemiscale claim contract.  Claimed tasks are invisible
        to subsequent claims until their lease expires.
        """
        now = self._now(now)
        if limit < 1:
            raise ServiceError(f"claim limit must be >= 1, got {limit}")
        eligible = sorted(
            (
                t for t in self._tasks.values()
                if t.status == WAITING and t.not_before <= now
            ),
            key=lambda t: (-t.priority, t.submit_index),
        )
        claimed: List[TaskRecord] = []
        for task in eligible[:limit]:
            self._record(
                {
                    "op": "claim",
                    "task_id": task.task_id,
                    "worker": worker,
                    "now": now,
                    "lease_expires": now + self.lease_seconds,
                }
            )
            claimed.append(task)
        return claimed

    def _checked(self, task_id: str, worker: Optional[str],
                 allowed: Sequence[str], op: str) -> TaskRecord:
        task = self._tasks.get(task_id)
        if task is None:
            raise TaskTransitionError(f"{op}: unknown task {task_id!r}")
        if task.status not in allowed:
            raise TaskTransitionError(
                f"{op}: task {task_id} is {task.status!r}, "
                f"expected one of {tuple(allowed)}"
            )
        if worker is not None and task.worker != worker:
            raise TaskTransitionError(
                f"{op}: task {task_id} is held by {task.worker!r}, "
                f"not {worker!r}"
            )
        return task

    def start(self, task_id: str, worker: str,
              now: Optional[float] = None) -> None:
        """Acknowledge a claim: the worker began computing (claimed -> running)."""
        self._checked(task_id, worker, (CLAIMED,), "start")
        self._record({"op": "start", "task_id": task_id, "worker": worker,
                      "now": self._now(now)})

    def heartbeat(self, task_id: str, worker: str,
                  now: Optional[float] = None) -> float:
        """Extend the lease of a claimed/running task; returns the new deadline."""
        now = self._now(now)
        self._checked(task_id, worker, (CLAIMED, RUNNING), "heartbeat")
        deadline = now + self.lease_seconds
        self._record({"op": "heartbeat", "task_id": task_id, "worker": worker,
                      "now": now, "lease_expires": deadline})
        return deadline

    def complete(self, task_id: str, worker: str, result: Dict[str, Any],
                 now: Optional[float] = None) -> None:
        """Finish a task successfully and cache its result under the task key."""
        self._checked(task_id, worker, (CLAIMED, RUNNING), "complete")
        self._record({"op": "complete", "task_id": task_id, "worker": worker,
                      "now": self._now(now), "result": result})

    def fail(self, task_id: str, worker: str, error: str,
             now: Optional[float] = None) -> TaskRecord:
        """Report a task failure; requeues with backoff or errors out terminally."""
        now = self._now(now)
        task = self._checked(task_id, worker, (CLAIMED, RUNNING), "fail")
        self._requeue(task, error=error, now=now)
        return task

    def _requeue(
        self, task: TaskRecord, error: str, now: float, *, expired: bool = False
    ) -> None:
        """The one requeue/backoff path shared by ``fail`` and lease expiry.

        Emits the single ``requeue`` journal op both callers share:
        terminality (``attempts > max_retries``), the exponential
        backoff eligibility delay, the reporting worker and whether the
        requeue came from a lease expiry (``expired``) are all decided
        here, so the two failure paths cannot drift apart.
        """
        terminal = task.attempts > task.max_retries
        delay = self.backoff_base * self.backoff_factor ** (task.attempts - 1)
        self._record(
            {
                "op": "requeue",
                "task_id": task.task_id,
                "worker": task.worker,
                "error": error,
                "terminal": terminal,
                "expired": expired,
                "not_before": now + delay,
                "now": now,
            }
        )

    def expire_leases(self, now: Optional[float] = None) -> List[TaskRecord]:
        """Requeue every claimed/running task whose lease deadline passed.

        This is the crashed-worker recovery path: a worker that died
        after claiming never completes nor heartbeats, so its tasks
        return to the queue here (or reach terminal ``errored`` once
        the retry budget is spent).
        """
        from repro.obs import obs_counter

        now = self._now(now)
        expired = [
            t for t in self._tasks.values()
            if t.status in (CLAIMED, RUNNING)
            and t.lease_expires is not None and t.lease_expires < now
        ]
        for task in sorted(expired, key=lambda t: t.submit_index):
            obs_counter("service.lease_expiries")
            self._note("lease_expiry", now, task=task.task_id,
                       worker=task.worker)
            self._requeue(task, error=f"lease expired (worker {task.worker})",
                          now=now, expired=True)
        return expired

    def cancel(self, task_id: str, now: Optional[float] = None) -> None:
        """Withdraw a live task (any of waiting/claimed/running)."""
        self._checked(task_id, None, LIVE_STATUSES, "cancel")
        self._record({"op": "cancel", "task_id": task_id,
                      "now": self._now(now)})

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, task_id: str) -> TaskRecord:
        """Look one task up by id (raises for unknown ids)."""
        task = self._tasks.get(task_id)
        if task is None:
            raise TaskTransitionError(f"unknown task {task_id!r}")
        return task

    def task_for_key(self, key: str) -> Optional[TaskRecord]:
        """The task currently owning a cache key, if any."""
        task_id = self._by_key.get(key)
        return self._tasks.get(task_id) if task_id is not None else None

    def result_for_key(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached result payload for a completed key, if any."""
        return self._results.get(key)

    def tasks(self, status: Optional[str] = None) -> List[TaskRecord]:
        """All tasks (optionally filtered by status), in submit order."""
        if status is not None and status not in ALL_STATUSES:
            raise ServiceError(
                f"unknown status {status!r}; expected one of {ALL_STATUSES}"
            )
        out = [
            t for t in self._tasks.values()
            if status is None or t.status == status
        ]
        return sorted(out, key=lambda t: t.submit_index)

    def worker_heartbeats(self) -> Dict[str, float]:
        """Last store-contact time per worker (claim/start/heartbeat/
        complete/fail), rebuilt identically by journal replay.

        >>> s = StateStore()
        >>> _ = s.submit({}, key="k", now=0.0)
        >>> _ = s.claim("w0", now=1.0)
        >>> s.worker_heartbeats()
        {'w0': 1.0}
        """
        return dict(self._worker_heartbeats)

    def counts(self) -> Dict[str, int]:
        """Task counts per lifecycle status (zero statuses omitted).

        >>> s = StateStore()
        >>> _ = s.submit({}, key="k", now=0.0)
        >>> s.counts()
        {'waiting': 1}
        """
        out: Dict[str, int] = {}
        for status in ALL_STATUSES:
            n = sum(1 for t in self._tasks.values() if t.status == status)
            if n:
                out[status] = n
        return out

    def oldest_waiting_age(self, now: Optional[float] = None) -> float:
        """Age of the longest-waiting eligible task (0.0 for an empty queue).

        >>> s = StateStore()
        >>> _ = s.submit({}, key="k", now=1.0)
        >>> s.oldest_waiting_age(now=4.0)
        3.0
        """
        now = self._now(now)
        waiting = [t for t in self._tasks.values() if t.status == WAITING]
        if not waiting:
            return 0.0
        return max(0.0, now - min(t.waiting_since for t in waiting))

    def render_status(self, now: Optional[float] = None) -> str:
        """Human-readable queue dashboard (the ``repro status`` output).

        Beyond the per-task table this surfaces the service health
        signals — per-worker last-heartbeat age with its
        live/degraded/stuck verdict and the oldest-waiting queue age —
        sourced from the same model the telemetry rollups use
        (:mod:`repro.obs.telemetry.health`).
        """
        from repro.obs.telemetry.health import health_from_store
        from repro.utils.reports import TableFormatter

        now = self._now(now)
        lines = [
            f"statestore: {len(self._tasks)} task(s), "
            f"{len(self._results)} cached result(s)"
            + (f" — journal {self._journal}" if self._journal else " (in-memory)")
        ]
        counts = self.counts()
        if counts:
            lines.append("  " + "  ".join(f"{k}={v}" for k, v in counts.items()))
        if counts.get(WAITING):
            lines.append(
                f"  oldest waiting task: {self.oldest_waiting_age(now):g}s"
            )
        if self._tasks:
            table = TableFormatter(
                ["task", "status", "prio", "attempts", "client", "worker", "key"],
                title="tasks",
            )
            for t in self.tasks():
                table.add_row([
                    t.task_id, t.status, t.priority,
                    f"{t.attempts}/{t.max_retries + 1}",
                    t.client, t.worker or "-", t.key[:16],
                ])
            lines += ["", table.render()]
        health = health_from_store(self, now)
        if health:
            table = TableFormatter(
                ["worker", "last heartbeat", "age", "state", "live tasks"],
                title="workers",
            )
            for row in health:
                table.add_row([
                    row.worker, f"t={row.last_heartbeat:g}",
                    f"{row.age:g}s", row.state, row.live_tasks,
                ])
            lines += ["", table.render()]
        return "\n".join(lines)

"""Compute workers: pull claimed tasks, run physics, stream results back.

A :class:`Worker` drains one statestore: it claims the
highest-priority eligible task, acknowledges it (``start``), runs the
existing SCF + CPSCF pipeline through the pluggable backend seam under
``repro.obs`` service spans, and completes the task with a
**provenance-stable result payload** — the deterministic physics
fields plus a quarantined ``timings`` subtree, so
:func:`stable_result_bytes` is byte-identical across reruns, retries
and crash recoveries (the service chaos suite's contract).

Crash injection rides the existing fault layer: a
:class:`~repro.runtime.faults.FaultPlan` whose ``worker_crash`` rate or
schedule fires makes the worker abandon the claimed task without
completing or failing it — exactly what a dead process looks like to
the store.  Recovery is the store's lease expiry + bounded retry.

:class:`WorkerPool` round-robins several workers under one simulated
clock (the repo's SimMPI philosophy: deterministic, single-process),
expiring leases between steps so crashed tasks are requeued and retried
within the same :meth:`WorkerPool.run_until_idle` call.

>>> from repro.service.statestore import StateStore
>>> store = StateStore(lease_seconds=2.0)
>>> _ = store.submit({"kind": "noop"}, key="ck-demo", now=0.0)
>>> pool = WorkerPool(store, n_workers=1, runner=lambda task: {"ok": True})
>>> report = pool.run_until_idle()
>>> report.completed
1
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from repro.errors import ServiceError
from repro.obs import obs_counter, obs_event, obs_span
from repro.runtime.faults import FaultEvent, FaultPlan
from repro.service.statestore import StateStore, TaskRecord

#: A task runner: payload-bearing task in, JSON-friendly result out.
TaskRunner = Callable[[TaskRecord], Dict[str, Any]]


def run_physics_task(task: TaskRecord) -> Dict[str, Any]:
    """Execute one ``kind == "physics"`` task payload end to end.

    Rebuilds the structure and :class:`~repro.config.RunSettings` from
    the payload, runs the real pipeline through the configured
    execution backend, and returns the result payload described in
    :func:`result_payload`.
    """
    from repro.config import RunSettings
    from repro.core import PerturbationSimulator
    from repro.service.jobs import structure_from_dict

    payload = task.payload
    if payload.get("kind") != "physics":
        raise ServiceError(
            f"task {task.task_id} has unsupported payload kind "
            f"{payload.get('kind')!r}"
        )
    structure = structure_from_dict(payload["structure"])
    settings = RunSettings.from_canonical_dict(payload["settings"])
    sim = PerturbationSimulator(
        structure, settings, charge=int(payload.get("charge", 0))
    )
    result = sim.run_physics()
    return result_payload(task, structure, settings, result)


def result_payload(task, structure, settings, physics_result) -> Dict[str, Any]:
    """The RunReport-linked result document a worker streams back.

    Deterministic physics fields live at the top level; everything
    wall-clock-dependent is quarantined under ``timings`` so
    :func:`stable_result_bytes` (which strips that subtree, exactly
    like ``repro.obs.bench.stable_view``) is byte-stable across
    recomputations of the same task.
    """
    from repro.dfpt.polarizability import isotropic_polarizability
    from repro.obs.report import collect_provenance
    from repro.service.jobs import settings_fingerprint

    gs = physics_result.ground_state
    prov = collect_provenance(seed=task.payload.get("seed"))
    return {
        "task": {"key": task.key, "kind": task.payload.get("kind")},
        "molecule": structure.name,
        "level": settings.level,
        "backend": settings.backend,
        "total_energy": gs.total_energy,
        "scf_iterations": gs.iterations,
        "cpscf_iterations": list(physics_result.cpscf_iterations_per_direction),
        "dipole": gs.dipole_moment().tolist(),
        "polarizability": physics_result.polarizability.tolist(),
        "isotropic_alpha": isotropic_polarizability(
            physics_result.polarizability
        ),
        "provenance": {
            "commit": prov.commit,
            "seed": prov.seed,
            "settings_hash": settings_fingerprint(settings),
        },
        "timings": {"phase_seconds": dict(physics_result.phase_seconds)},
    }


def stable_result_bytes(result: Dict[str, Any]) -> bytes:
    """Canonical bytes of a result with every ``timings`` subtree removed.

    >>> stable_result_bytes({"a": 1, "timings": {"wall": 0.2}})
    b'{"a": 1}'
    """
    from repro.obs.bench import stable_view

    return json.dumps(stable_view(result), sort_keys=True).encode()


@dataclass
class WorkerStats:
    """Per-worker lifecycle counters for one pool run."""

    claimed: int = 0
    completed: int = 0
    failed: int = 0
    crashes: int = 0


class Worker:
    """One compute worker bound to a statestore.

    Parameters
    ----------
    store:
        The statestore to pull from.
    worker_id:
        Stable identity used for claims/heartbeats and as the fault
        site (``worker:<id>``) the crash plan keys its decisions on.
    runner:
        Task executor; defaults to :func:`run_physics_task`.  Tests
        substitute cheap deterministic stubs.
    fault_plan:
        Optional :class:`~repro.runtime.faults.FaultPlan`; its
        ``worker_crash`` decisions make :meth:`step` abandon claimed
        tasks mid-flight.
    """

    def __init__(
        self,
        store: StateStore,
        worker_id: str,
        *,
        runner: Optional[TaskRunner] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.store = store
        self.worker_id = worker_id
        self.runner: TaskRunner = runner or run_physics_task
        self.fault_plan = fault_plan
        self.stats = WorkerStats()
        self.events: List[FaultEvent] = []
        self._claim_counter = 0
        self._fleet_driver = None  # lazily built by fleet-mode waves

    def _note(self, kind: str, now: Optional[float], **fields: Any) -> None:
        """Record one worker-side telemetry instant (crash, phase work).

        The store's journal samples every lifecycle transition already;
        these are the two signals the store never sees — a crash is
        silence by definition, and per-phase work attribution lives in
        the result payload the journal treats as opaque.
        """
        sink = getattr(self.store, "telemetry", None)
        if sink is not None:
            t = now if now is not None else self.store.now()
            sink.note(kind, t, worker=self.worker_id, **fields)

    def _note_phase_work(
        self, task: TaskRecord, result: Any, now: Optional[float]
    ) -> None:
        """Attribute a completed task's per-phase seconds to this worker."""
        if not isinstance(result, dict):
            return
        phases = (result.get("timings") or {}).get("phase_seconds")
        if phases:
            self._note("phase_work", now, task=task.task_id,
                       phases=dict(phases))

    def step(self, now: Optional[float] = None) -> Optional[str]:
        """Claim and process at most one task.

        Returns the outcome — ``"completed"``, ``"failed"``,
        ``"crashed"`` or ``None`` (nothing eligible to claim).  A crash
        abandons the task silently: no ``complete``/``fail`` reaches
        the store, and recovery is entirely the store's lease expiry.
        """
        claimed = self.store.claim(self.worker_id, limit=1, now=now)
        if not claimed:
            return None
        task = claimed[0]
        self.stats.claimed += 1
        self._claim_counter += 1
        obs_counter("service.tasks_claimed")
        if self.fault_plan is not None:
            ev = self.fault_plan.worker_fault(
                f"worker:{self.worker_id}",
                self._claim_counter - 1,
                attempt=task.attempts - 1,
            )
            if ev is not None:
                self.events.append(ev)
                self.stats.crashes += 1
                obs_counter("service.worker_crashes")
                obs_event("worker_crash", worker=self.worker_id,
                          task=task.task_id)
                self._note("worker_crash", now, task=task.task_id)
                return "crashed"
        return self._process(task, now)

    def _process(self, task: TaskRecord, now: Optional[float]) -> str:
        """Run one already-claimed, crash-checked task to a terminal state."""
        self.store.start(task.task_id, self.worker_id, now=now)
        with obs_span(
            "service.task", category="service", worker=self.worker_id,
            task=task.task_id, key=task.key, attempt=task.attempts,
        ):
            try:
                result = self.runner(task)
            except Exception as exc:  # noqa: BLE001 — any task error requeues
                self.store.fail(task.task_id, self.worker_id, str(exc), now=now)
                self.stats.failed += 1
                obs_counter("service.tasks_failed")
                return "failed"
        self.store.heartbeat(task.task_id, self.worker_id, now=now)
        self.store.complete(task.task_id, self.worker_id, result, now=now)
        self._note_phase_work(task, result, now)
        self.stats.completed += 1
        obs_counter("service.tasks_completed")
        return "completed"

    def step_fleet(
        self, fleet_size: int, now: Optional[float] = None
    ) -> List[str]:
        """Claim up to *fleet_size* tasks and run them as one fleet wave.

        Crash decisions are still drawn **per claim**, in claim order,
        so a scheduled ``worker_crash`` at claim index k abandons the
        k-th and every later task of the wave (exactly the partial-wave
        loss a dying worker produces) while earlier tasks execute;
        abandoned tasks are recovered by the store's lease expiry like
        any crash.  Physics tasks run through a shared
        :class:`~repro.fleet.driver.FleetDriver` (one wave = one fleet
        run, byte-identical to sequential :meth:`step` results); other
        runners fall back to sequential per-task execution.
        """
        claimed = self.store.claim(self.worker_id, limit=fleet_size, now=now)
        outcomes: List[str] = []
        survivors: List[TaskRecord] = []
        crashed = False
        for task in claimed:
            self.stats.claimed += 1
            self._claim_counter += 1
            obs_counter("service.tasks_claimed")
            if crashed:
                outcomes.append("crashed")  # abandoned with the worker
                continue
            if self.fault_plan is not None:
                ev = self.fault_plan.worker_fault(
                    f"worker:{self.worker_id}",
                    self._claim_counter - 1,
                    attempt=task.attempts - 1,
                )
                if ev is not None:
                    self.events.append(ev)
                    self.stats.crashes += 1
                    obs_counter("service.worker_crashes")
                    obs_event("worker_crash", worker=self.worker_id,
                              task=task.task_id)
                    self._note("worker_crash", now, task=task.task_id)
                    crashed = True
                    outcomes.append("crashed")
                    continue
            survivors.append(task)
        if not survivors:
            return outcomes
        if self.runner is not run_physics_task:
            outcomes.extend(self._process(t, now) for t in survivors)
            return outcomes
        outcomes.extend(self._run_wave(survivors, now))
        return outcomes

    def _run_wave(
        self, tasks: List[TaskRecord], now: Optional[float]
    ) -> List[str]:
        """Run one wave of physics tasks through the shared fleet driver."""
        from repro.fleet import FleetDriver, FleetTask

        if self._fleet_driver is None:
            # Persist across waves: registered basis tables outlive one
            # wave, so a long-lived worker amortizes them fleet to fleet.
            self._fleet_driver = FleetDriver()
        for task in tasks:
            self.store.start(task.task_id, self.worker_id, now=now)
        fleet_tasks = [
            FleetTask(key=t.key, payload=t.payload, task_id=t.task_id)
            for t in tasks
        ]
        with obs_span(
            "service.fleet", category="service", worker=self.worker_id,
            n_tasks=len(tasks),
        ):
            try:
                outcome = self._fleet_driver.run_tasks(fleet_tasks)
            except Exception as exc:  # noqa: BLE001 — driver error requeues all
                outcomes = []
                for task in tasks:
                    self.store.fail(
                        task.task_id, self.worker_id, str(exc), now=now
                    )
                    self.stats.failed += 1
                    obs_counter("service.tasks_failed")
                    outcomes.append("failed")
                return outcomes
        outcomes = []
        for task in tasks:
            result = outcome.results.get(task.key)
            if result is not None:
                self.store.heartbeat(task.task_id, self.worker_id, now=now)
                self.store.complete(
                    task.task_id, self.worker_id, result, now=now
                )
                self._note_phase_work(task, result, now)
                self.stats.completed += 1
                obs_counter("service.tasks_completed")
                outcomes.append("completed")
            else:
                self.store.fail(
                    task.task_id,
                    self.worker_id,
                    outcome.errors.get(task.key, "fleet group failed"),
                    now=now,
                )
                self.stats.failed += 1
                obs_counter("service.tasks_failed")
                outcomes.append("failed")
        return outcomes


@dataclass
class PoolReport:
    """Aggregate outcome of one :meth:`WorkerPool.run_until_idle` drain."""

    steps: int = 0
    completed: int = 0
    failed: int = 0
    crashes: int = 0
    idle: bool = True
    worker_stats: Dict[str, WorkerStats] = field(default_factory=dict)

    def summary(self) -> str:
        """One human-readable line per pool drain."""
        state = "drained" if self.idle else "STOPPED (step budget exhausted)"
        return (
            f"worker pool {state} after {self.steps} step(s): "
            f"{self.completed} completed, {self.failed} failed attempts, "
            f"{self.crashes} injected crash(es) across "
            f"{len(self.worker_stats)} worker(s)"
        )


class WorkerPool:
    """A deterministic round-robin pool of :class:`Worker` instances.

    Time is simulated: each scheduling step advances the shared logical
    clock by ``dt`` and first expires stale leases, so tasks abandoned
    by crashed workers are requeued and retried *within* one
    :meth:`run_until_idle` call.

    With ``fleet=N`` each worker step claims up to N tasks and runs
    them as one fleet wave (:meth:`Worker.step_fleet`) instead of one
    task at a time — same results byte for byte, amortized substrate.
    ``fleet="auto"`` delegates the wave size to a per-pool
    :class:`repro.tune.waves.WavePlanner`: each scheduling step claims
    the model-tuned wave for whatever is waiting.
    """

    def __init__(
        self,
        store: StateStore,
        n_workers: int = 2,
        *,
        runner: Optional[TaskRunner] = None,
        fault_plan: Optional[FaultPlan] = None,
        start_time: Optional[float] = None,
        dt: float = 1.0,
        fleet: Union[int, str, None] = None,
    ) -> None:
        if n_workers < 1:
            raise ServiceError(f"need >= 1 worker, got {n_workers}")
        if dt <= 0:
            raise ServiceError(f"dt must be > 0, got {dt}")
        self._planner = None
        if fleet == "auto":
            from repro.tune.waves import WavePlanner

            self._planner = WavePlanner()
        elif isinstance(fleet, str):
            raise ServiceError(
                f"fleet must be a wave size or 'auto', got {fleet!r}"
            )
        elif fleet is not None and fleet < 1:
            raise ServiceError(f"fleet size must be >= 1, got {fleet}")
        self.fleet = fleet
        self.store = store
        self.workers = [
            Worker(store, f"w{i}", runner=runner, fault_plan=fault_plan)
            for i in range(n_workers)
        ]
        # Default to the store's own clock so logical test clocks and
        # real journals (stamped with epoch times) both drain.
        self.now = store.now() if start_time is None else float(start_time)
        self.dt = float(dt)

    def _pending(self) -> bool:
        return any(t.live for t in self.store.tasks())

    def run_until_idle(self, max_steps: int = 10_000) -> PoolReport:
        """Drain the queue: step workers until no live task remains.

        Lease expiry runs between steps, so the loop terminates for
        every bounded-retry queue: each live task either completes or
        exhausts its attempts into terminal ``errored``.
        """
        report = PoolReport()
        while self._pending():
            if report.steps >= max_steps:
                report.idle = False
                break
            report.steps += 1
            self.now += self.dt
            self.store.expire_leases(now=self.now)
            for worker in self.workers:
                if self._planner is not None:
                    worker.step_fleet(
                        self._planner.plan(self.store), now=self.now
                    )
                elif self.fleet is not None:
                    worker.step_fleet(self.fleet, now=self.now)
                else:
                    worker.step(now=self.now)
        for worker in self.workers:
            report.completed += worker.stats.completed
            report.failed += worker.stats.failed
            report.crashes += worker.stats.crashes
            report.worker_stats[worker.worker_id] = worker.stats
        return report

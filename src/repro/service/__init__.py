"""repro.service — simulation-as-a-service (DESIGN §12).

Three pieces turn the CLI-only pipeline into a long-running job
service:

* **statestore** (:mod:`repro.service.statestore`) — a persistent
  (JSON-journal) task store with submit/claim/heartbeat/complete/fail
  transitions, priority-then-FIFO claiming, lease expiry for crashed
  workers, bounded retry with exponential backoff and idempotent
  content-addressed resubmission;
* **jobs** (:mod:`repro.service.jobs`) — the ``JobRequest(molecule,
  RunSettings)`` client API with Provenance-derived cache keys
  (commit, seed, settings hash), per-client quotas and batch
  submission;
* **workers** (:mod:`repro.service.worker`) — a deterministic worker
  pool that pulls claimed tasks, runs the SCF/DFPT drivers through the
  execution-backend seam under ``repro.obs`` service spans, and
  streams provenance-stable result payloads back into the store.

The CLI front end is ``repro submit | serve | status``; the contract
is pinned by ``tests/test_service_statestore.py`` (alchemiscale-style
statestore suite), ``tests/test_service_keys.py`` (hypothesis cache-key
properties) and ``tests/test_service_chaos.py`` (crash/retry
convergence), gated by ``make service-check``.

>>> from repro.service import StateStore, JobRequest, submit_job
>>> from repro.config import get_settings
>>> store = StateStore()
>>> out = submit_job(store, JobRequest("h2", get_settings("minimal")),
...                  commit="abc1234", now=0.0)
>>> out.task.status
'waiting'
"""

from repro.service.jobs import (
    JobRequest,
    cache_key,
    canonical_settings,
    settings_fingerprint,
    structure_fingerprint,
    structure_from_dict,
    structure_to_dict,
    submit_batch,
    submit_job,
)
from repro.service.statestore import (
    ALL_STATUSES,
    CANCELLED,
    CLAIMED,
    COMPLETE,
    ERRORED,
    LIVE_STATUSES,
    RUNNING,
    TERMINAL_STATUSES,
    WAITING,
    StateStore,
    SubmitOutcome,
    TaskRecord,
)
from repro.service.worker import (
    PoolReport,
    Worker,
    WorkerPool,
    WorkerStats,
    result_payload,
    run_physics_task,
    stable_result_bytes,
)

__all__ = [
    "ALL_STATUSES",
    "CANCELLED",
    "CLAIMED",
    "COMPLETE",
    "ERRORED",
    "JobRequest",
    "LIVE_STATUSES",
    "PoolReport",
    "RUNNING",
    "StateStore",
    "SubmitOutcome",
    "TERMINAL_STATUSES",
    "TaskRecord",
    "WAITING",
    "Worker",
    "WorkerPool",
    "WorkerStats",
    "cache_key",
    "canonical_settings",
    "result_payload",
    "run_physics_task",
    "settings_fingerprint",
    "stable_result_bytes",
    "structure_fingerprint",
    "structure_from_dict",
    "structure_to_dict",
    "submit_batch",
    "submit_job",
]

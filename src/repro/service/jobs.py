"""Job API: (molecule, RunSettings) requests with content-addressed keys.

A :class:`JobRequest` is what a service client submits.  Its cache
``key`` is derived from the same ingredients the Provenance block
stamps on every RunReport (DESIGN §10.5): the **code commit**, the
**seed**, and a canonical **settings hash** — plus the structure's own
fingerprint and the charge.  Two requests with equal physics therefore
share one key and one cached result, while changing *any* single
ingredient (an SCF tolerance, one coordinate, the backend, the commit)
yields a different key — the property pinned by the hypothesis suite
in ``tests/test_service_keys.py``.

>>> from repro.config import get_settings
>>> req = JobRequest(molecule="h2", settings=get_settings("minimal"))
>>> key = req.key(commit="abc1234")
>>> key == JobRequest(molecule="h2",
...                   settings=get_settings("minimal")).key(commit="abc1234")
True
>>> key.startswith("ck-")
True
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Union

import numpy as np

from repro.atoms.structure import Structure
from repro.config import RunSettings, get_settings
from repro.errors import ServiceError
from repro.service.statestore import StateStore, SubmitOutcome

#: Built-in molecules a payload may name instead of carrying geometry.
_BUILTIN_MOLECULES = ("h2", "water")

#: Coordinates are rounded to this many decimals (Bohr) before hashing
#: so a cache key never depends on sub-femtometre float noise.
_COORD_DECIMALS = 12


def canonical_settings(settings: RunSettings) -> Dict[str, Any]:
    """The sorted, JSON-friendly settings dict that cache keys hash.

    >>> canonical_settings(get_settings("minimal"))["level"]
    'minimal'
    """
    return settings.as_canonical_dict()


def settings_fingerprint(settings: RunSettings) -> str:
    """SHA-256 hex digest of the canonical settings document."""
    doc = json.dumps(canonical_settings(settings), sort_keys=True)
    return hashlib.sha256(doc.encode()).hexdigest()


def structure_fingerprint(structure: Structure) -> str:
    """SHA-256 hex digest of (symbols, rounded coordinates)."""
    coords = np.round(np.asarray(structure.coords, dtype=float),
                      _COORD_DECIMALS)
    doc = json.dumps(
        {"symbols": list(structure.symbols), "coords": coords.tolist()},
        sort_keys=True,
    )
    return hashlib.sha256(doc.encode()).hexdigest()


def cache_key(
    structure: Structure,
    settings: RunSettings,
    charge: int = 0,
    *,
    commit: Optional[str] = None,
    seed: Optional[int] = None,
) -> str:
    """Deterministic content-addressed key for one simulation request.

    ``commit`` defaults to the current repo commit from
    :func:`repro.obs.report.collect_provenance`, so results cached at
    one code version are never served at another.
    """
    if commit is None:
        from repro.obs.report import collect_provenance

        commit = collect_provenance().commit
    doc = json.dumps(
        {
            "structure": structure_fingerprint(structure),
            "settings": settings_fingerprint(settings),
            "charge": int(charge),
            "commit": commit,
            "seed": seed,
        },
        sort_keys=True,
    )
    return "ck-" + hashlib.sha256(doc.encode()).hexdigest()[:32]


def _builtin(name: str) -> Structure:
    from repro.atoms import hydrogen_molecule, water

    if name == "h2":
        return hydrogen_molecule()
    if name == "water":
        return water()
    raise ServiceError(
        f"unknown built-in molecule {name!r}; expected one of "
        f"{_BUILTIN_MOLECULES}"
    )


def structure_to_dict(structure: Structure) -> Dict[str, Any]:
    """JSON-friendly geometry block a task payload carries."""
    return {
        "name": structure.name,
        "symbols": list(structure.symbols),
        "coords": np.asarray(structure.coords, dtype=float).tolist(),
    }


def structure_from_dict(data: Dict[str, Any]) -> Structure:
    """Rebuild the :class:`~repro.atoms.structure.Structure` a worker runs."""
    return Structure(
        data["symbols"], np.asarray(data["coords"], dtype=float),
        name=data.get("name", ""),
    )


@dataclass
class JobRequest:
    """One client request: a molecule plus the settings to run it under.

    ``molecule`` is either a built-in name (``"h2"``, ``"water"``) or a
    :class:`~repro.atoms.structure.Structure`.
    """

    molecule: Union[str, Structure]
    settings: RunSettings = field(default_factory=lambda: get_settings("light"))
    charge: int = 0
    client: str = "anon"
    priority: int = 0
    max_retries: int = 3
    seed: Optional[int] = None

    def structure(self) -> Structure:
        """The concrete geometry (resolving built-in names)."""
        if isinstance(self.molecule, Structure):
            return self.molecule
        return _builtin(self.molecule)

    def key(self, commit: Optional[str] = None) -> str:
        """This request's content-addressed cache key."""
        return cache_key(
            self.structure(), self.settings, self.charge,
            commit=commit, seed=self.seed,
        )

    def payload(self) -> Dict[str, Any]:
        """The self-contained task payload a worker can execute."""
        return {
            "kind": "physics",
            "structure": structure_to_dict(self.structure()),
            "settings": canonical_settings(self.settings),
            "charge": int(self.charge),
            "seed": self.seed,
        }


def submit_job(
    store: StateStore,
    request: JobRequest,
    *,
    commit: Optional[str] = None,
    now: Optional[float] = None,
) -> SubmitOutcome:
    """Submit one request to a statestore (idempotently, quota-checked)."""
    return store.submit(
        request.payload(),
        key=request.key(commit=commit),
        client=request.client,
        priority=request.priority,
        max_retries=request.max_retries,
        now=now,
    )


def submit_batch(
    store: StateStore,
    requests: Iterable[JobRequest],
    *,
    commit: Optional[str] = None,
    now: Optional[float] = None,
) -> List[SubmitOutcome]:
    """Submit many requests in order; duplicates dedup onto one task.

    Outcomes are returned in submission order, so callers can line
    results up with their request list.
    """
    return [
        submit_job(store, req, commit=commit, now=now) for req in requests
    ]

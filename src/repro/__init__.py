"""repro — portable and scalable all-electron quantum perturbation simulations.

Python reproduction of Wu et al., SC '23 (DOI 10.1145/3581784.3607085):
a real all-electron DFPT engine plus executable models of the paper's
two supercomputers and its scalability/portability innovations.

Public entry points:

>>> from repro import PerturbationSimulator, water, get_settings
>>> sim = PerturbationSimulator(water(), get_settings("minimal"))
>>> result = sim.run_physics()          # doctest: +SKIP
"""

from repro.backends import (
    BackendProfile,
    ExecutionBackend,
    available_backends,
    create_backend,
)
from repro.atoms import (
    Structure,
    hiv_ligand,
    hydrogen_molecule,
    methane,
    polyethylene,
    rbd_like_protein,
    water,
)
from repro.config import RunSettings, get_settings
from repro.core import OptimizationFlags, PerturbationSimulator
from repro.dfpt import (
    finite_difference_polarizability,
    isotropic_polarizability,
    polarizability_tensor,
)
from repro.dft import SCFDriver
from repro.runtime import HPC1_SUNWAY, HPC2_AMD, machine_by_name

__version__ = "1.0.0"

__all__ = [
    "Structure",
    "water",
    "hydrogen_molecule",
    "methane",
    "polyethylene",
    "hiv_ligand",
    "rbd_like_protein",
    "RunSettings",
    "get_settings",
    "OptimizationFlags",
    "PerturbationSimulator",
    "SCFDriver",
    "ExecutionBackend",
    "BackendProfile",
    "available_backends",
    "create_backend",
    "polarizability_tensor",
    "isotropic_polarizability",
    "finite_difference_polarizability",
    "HPC1_SUNWAY",
    "HPC2_AMD",
    "machine_by_name",
    "__version__",
]

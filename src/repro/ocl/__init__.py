"""Simulated OpenCL device layer (Section 4).

Kernels are real Python callables executed over explicit device
buffers — numerics are exact — while a per-launch performance model
(launch overhead, compute width, off-chip traffic, indirect-access
latency) prices each invocation on a device preset.  The paper's four
kernel optimizations are implemented as transforms over these kernel
objects:

* vertical fusion via on-chip RMA (4.2.1, Sunway),
* horizontal fusion across ranks sharing a GPU (4.2.2, AMD),
* indirect-access elimination via a prebuilt gather map (4.3),
* fine-grained parallelization by loop collapse (4.4).
"""

from repro.ocl.buffers import DeviceBuffer, AddressSpace
from repro.ocl.kernel import Kernel, NDRange, LaunchReport
from repro.ocl.device import Device
from repro.ocl.transforms import (
    collapse_pm_loop,
    expand_pm_index,
    collapse_kernel,
    build_gather_map,
    apply_gather_map,
    eliminate_indirect_accesses,
    IndirectEliminationReport,
)
from repro.ocl.fusion import (
    vertical_fusion,
    horizontal_fusion,
    FusionReport,
)
from repro.ocl.kernels import OpenCLDFPTKernels, OpenCLResponsePipeline

__all__ = [
    "DeviceBuffer",
    "AddressSpace",
    "Kernel",
    "NDRange",
    "LaunchReport",
    "Device",
    "collapse_pm_loop",
    "expand_pm_index",
    "collapse_kernel",
    "build_gather_map",
    "apply_gather_map",
    "eliminate_indirect_accesses",
    "IndirectEliminationReport",
    "vertical_fusion",
    "horizontal_fusion",
    "FusionReport",
    "OpenCLDFPTKernels",
    "OpenCLResponsePipeline",
]

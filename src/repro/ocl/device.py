"""The simulated accelerator: executes kernels, prices every launch.

One :class:`Device` instance models one accelerator (a Sunway core
group or an AMD GPU).  ``launch`` runs the kernel's real computation
(if it has one) and returns a :class:`LaunchReport` from the
performance model; counters accumulate for phase-level reporting.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import DeviceError
from repro.ocl.buffers import AddressSpace, DeviceBuffer
from repro.ocl.kernel import Kernel, LaunchReport, NDRange
from repro.runtime.machines import AcceleratorSpec


class Device:
    """A priced, executable accelerator model."""

    def __init__(self, spec: AcceleratorSpec) -> None:
        self.spec = spec
        self.n_launches = 0
        self.modeled_time = 0.0
        self.bytes_transferred = 0
        self.transfer_time = 0.0

    # ------------------------------------------------------------------
    # Host <-> device transfers
    # ------------------------------------------------------------------
    def to_device(self, buffer: DeviceBuffer, persistent: bool = False) -> DeviceBuffer:
        """Move a host buffer into __global memory (charged)."""
        if buffer.space is AddressSpace.GLOBAL:
            return buffer
        if persistent and not self.spec.persistent_buffers:
            raise DeviceError(
                f"{self.spec.name} cannot keep buffers resident across launches"
            )
        self.bytes_transferred += buffer.nbytes
        self.transfer_time += buffer.nbytes / self.spec.host_bandwidth
        buffer.space = AddressSpace.GLOBAL
        buffer.persistent = persistent
        return buffer

    def from_device(self, buffer: DeviceBuffer) -> DeviceBuffer:
        """Move a __global buffer back to the host (charged)."""
        if buffer.space is AddressSpace.HOST:
            return buffer
        self.bytes_transferred += buffer.nbytes
        self.transfer_time += buffer.nbytes / self.spec.host_bandwidth
        buffer.space = AddressSpace.HOST
        buffer.persistent = False
        return buffer

    # ------------------------------------------------------------------
    # Launch
    # ------------------------------------------------------------------
    def estimate(self, kernel: Kernel, ndrange: NDRange) -> LaunchReport:
        """Price one launch without executing anything."""
        if kernel.local_bytes > self.spec.onchip_bytes:
            raise DeviceError(
                f"kernel {kernel.name!r} needs {kernel.local_bytes} B of "
                f"__local memory; {self.spec.name} has {self.spec.onchip_bytes} B"
            )
        n_items = ndrange.n_items

        # Compute: items run on compute_units x lanes; a limited
        # parallel_width idles the remaining lanes of each unit.
        lanes = self.spec.lanes_per_unit
        width = kernel.parallel_width
        active_lanes = lanes if width is None else min(width, lanes)
        throughput = self.spec.compute_units * active_lanes * self.spec.flop_rate
        compute_time = kernel.flops_per_item * n_items / throughput

        stream_bytes = n_items * (
            kernel.bytes_read_per_item + kernel.bytes_written_per_item
        )
        stream_time = stream_bytes / self.spec.offchip_bandwidth

        # Indirect accesses: latency-bound gathers, overlapped across
        # compute units and (on latency-hiding devices) across the
        # outstanding requests each unit keeps in flight.
        n_indirect = n_items * kernel.indirect_accesses_per_item
        concurrency = self.spec.compute_units * self.spec.memory_level_parallelism
        indirect_time = n_indirect * self.spec.offchip_latency / concurrency

        return LaunchReport(
            kernel=kernel.name,
            n_items=n_items,
            launch_overhead=self.spec.kernel_launch_overhead,
            compute_time=compute_time,
            stream_time=stream_time,
            indirect_time=indirect_time,
        )

    def launch(
        self,
        kernel: Kernel,
        ndrange: NDRange,
        buffers: Optional[Dict[str, DeviceBuffer]] = None,
    ) -> LaunchReport:
        """Execute (if the kernel has a body) and price one launch."""
        buffers = buffers or {}
        for buf in buffers.values():
            if buf.space is AddressSpace.HOST:
                raise DeviceError(
                    f"buffer {buf.name!r} still on host; call to_device() first"
                )
        report = self.estimate(kernel, ndrange)
        if kernel.func is not None:
            kernel.func(buffers)
        self.n_launches += 1
        self.modeled_time += report.total_time
        return report

    # ------------------------------------------------------------------
    def rma_supported(self, nbytes: int) -> bool:
        """Can *nbytes* be shared on-chip via RMA (Section 4.2.1)?"""
        return 0 < nbytes <= self.spec.rma_max_bytes

    def reset_counters(self) -> None:
        self.n_launches = 0
        self.modeled_time = 0.0
        self.bytes_transferred = 0
        self.transfer_time = 0.0

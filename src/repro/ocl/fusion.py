"""Fusing kernels with wide dependence (Section 4.2).

The response-potential phase launches a *producer* (spline coefficients:
``rho_multipole_spl``, ``delta_v_hart_part_spl``) and a *consumer*
(spline-interpolated multipole components at every grid point); every
consumer thread needs all producer outputs — wide dependence.

* **Vertical fusion** (4.2.1, Sunway): both phases in one kernel, the
  intermediate held on-chip and exchanged over RMA.  Legal only when it
  fits the 64 KB RMA window; Fig. 12(a) shows ``delta_v_hart_part_spl``
  (498 KB) does not, so the paper observes no vertical gain.
* **Horizontal fusion** (4.2.2, AMD): the g ranks sharing one GPU run
  identical producers; fusion keeps one producer, leaves the
  intermediate resident in GPU memory, and merges the g consumers into
  one launch — eliminating g-1 redundant producers, 2g host transfers
  and g-1 launch overheads (Fig. 12(b)).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import KernelFusionError
from repro.ocl.device import Device
from repro.ocl.kernel import Kernel, NDRange


@dataclass
class FusionReport:
    """Before/after cost of one fusion decision."""

    mode: str  # "vertical" | "horizontal"
    applied: bool
    reason: str
    time_before: float
    time_after: float

    @property
    def speedup(self) -> float:
        if self.time_after <= 0.0:
            raise KernelFusionError("fusion produced non-positive time")
        return self.time_before / self.time_after


def vertical_fusion(
    device: Device,
    producer: Kernel,
    producer_range: NDRange,
    consumer: Kernel,
    consumer_range: NDRange,
    intermediate_bytes: int,
) -> FusionReport:
    """Fuse producer into consumer on one rank, keeping data on-chip.

    The un-fused pipeline writes the intermediate to off-chip memory and
    reads it back; the fused kernel holds it on-chip behind a global
    barrier built on RMA.  If the intermediate exceeds the device's RMA
    window the fusion is refused (``applied=False``) — the Fig. 12(a)
    outcome for the 498 KB spline table.
    """
    if intermediate_bytes <= 0:
        raise KernelFusionError(f"intermediate size must be positive, got {intermediate_bytes}")
    t_prod = device.estimate(producer, producer_range).total_time
    t_cons = device.estimate(consumer, consumer_range).total_time
    round_trip = 2.0 * intermediate_bytes / device.spec.offchip_bandwidth
    before = t_prod + t_cons + round_trip

    if not device.rma_supported(intermediate_bytes):
        limit = device.spec.rma_max_bytes
        reason = (
            f"intermediate ({intermediate_bytes} B) exceeds the RMA window "
            f"({limit} B)"
            if limit
            else "device has no on-chip RMA mechanism"
        )
        return FusionReport(
            mode="vertical",
            applied=False,
            reason=reason,
            time_before=before,
            time_after=before,
        )

    # Fused: one launch, no off-chip round trip; the phase barrier costs
    # one RMA broadcast of the intermediate among compute units.
    barrier = intermediate_bytes / device.spec.offchip_bandwidth * 0.1
    after = (
        t_prod
        + t_cons
        - device.spec.kernel_launch_overhead  # one launch instead of two
        + barrier
    )
    return FusionReport(
        mode="vertical",
        applied=True,
        reason="intermediate fits the RMA window; kept on-chip",
        time_before=before,
        time_after=after,
    )


def horizontal_fusion(
    device: Device,
    producer: Kernel,
    producer_range: NDRange,
    consumer: Kernel,
    consumer_range: NDRange,
    intermediate_bytes: int,
    group_size: int,
) -> FusionReport:
    """Fuse the kernels of *group_size* ranks sharing this device.

    ``consumer_range`` is one rank's consumer NDRange; the fused
    consumer executes all g ranks' items in a single launch.
    """
    if group_size < 1:
        raise KernelFusionError(f"group size must be >= 1, got {group_size}")
    t_prod = device.estimate(producer, producer_range).total_time
    t_cons = device.estimate(consumer, consumer_range).total_time
    transfer = 2.0 * intermediate_bytes / device.spec.host_bandwidth

    # Un-fused: every rank launches its own producer + consumer in turn
    # and ships the intermediate through host memory.
    before = group_size * (t_prod + t_cons + transfer)

    if not device.spec.persistent_buffers:
        return FusionReport(
            mode="horizontal",
            applied=False,
            reason="device buffers do not persist across launches",
            time_before=before,
            time_after=before,
        )

    fused_consumer_range = NDRange(
        n_groups=consumer_range.n_groups * group_size,
        items_per_group=consumer_range.items_per_group,
    )
    t_fused_cons = device.estimate(consumer, fused_consumer_range).total_time
    after = t_prod + t_fused_cons  # one producer, resident intermediate
    return FusionReport(
        mode="horizontal",
        applied=True,
        reason=(
            f"1 producer serves {group_size} fused consumers; intermediate "
            "resides in device memory"
        ),
        time_before=before,
        time_after=after,
    )

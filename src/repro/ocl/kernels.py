"""The paper's four OpenCL-accelerated calculations, as executable kernels.

Section 4.1 lists the offloaded parts: the response density matrix
(P^(1)), the real-space integration of the response density (n^(1)),
the Poisson solver for the response potential (v^(1)) and the response
Hamiltonian (H^(1)).  This module implements them as *real* kernels on
the :class:`~repro.ocl.device.Device` abstraction — one work-group per
batch, one work-item per grid point, explicit ``__global`` buffers —
and the tests assert the results equal the direct numpy pipeline to
machine precision.  This is the "functional portability" claim made
executable: the same kernel bodies run under any device preset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.dft.scf import GroundState
from repro.errors import DeviceError
from repro.ocl.buffers import DeviceBuffer
from repro.ocl.device import Device
from repro.ocl.kernel import Kernel, LaunchReport, NDRange


@dataclass
class KernelInvocation:
    """One launch's bookkeeping (returned alongside the physics)."""

    report: LaunchReport
    kernel: str


class OpenCLDFPTKernels:
    """Executable kernel set bound to a converged ground state + device."""

    def __init__(self, ground_state: GroundState, device: Device) -> None:
        self.gs = ground_state
        self.device = device
        builder = ground_state.builder
        self.batches = builder.batches
        # Stage the density-independent tables into device memory once
        # (basis values per point, integration weights, point indices).
        self._phi = DeviceBuffer("basis_values", builder.basis_values())
        self._weights = DeviceBuffer("weights", ground_state.grid.weights)
        device.to_device(self._phi)
        device.to_device(self._weights)
        self._n_points = ground_state.grid.n_points
        self._n_basis = ground_state.basis.n_basis
        self.invocations: List[KernelInvocation] = []

    # ------------------------------------------------------------------
    def _ndrange(self) -> NDRange:
        # One work-group per batch; work-items must cover the *largest*
        # batch.  Sizing by the mean (n_points // n_batches) used to
        # under-provision work-items whenever batches were uneven.
        items = max(1, max((b.n_points for b in self.batches), default=1))
        return NDRange(n_groups=len(self.batches), items_per_group=items)

    def _launch(self, kernel: Kernel, buffers: Dict[str, DeviceBuffer]) -> None:
        report = self.device.launch(kernel, self._ndrange(), buffers)
        self.invocations.append(KernelInvocation(report=report, kernel=kernel.name))

    # ------------------------------------------------------------------
    # Kernel 1: response density matrix (DM phase)
    # ------------------------------------------------------------------
    def response_density_matrix(
        self, h1: np.ndarray, inv_gaps: np.ndarray,
        c_occ: np.ndarray, c_virt: np.ndarray, f_occ: np.ndarray,
    ) -> np.ndarray:
        """P^(1) from a response Hamiltonian (Eq. 7, Sternheimer form)."""
        out = DeviceBuffer("p1", np.zeros((self._n_basis, self._n_basis)))
        h1_buf = DeviceBuffer("h1", np.asarray(h1))
        self.device.to_device(out)
        self.device.to_device(h1_buf)

        def body(bufs: Dict[str, DeviceBuffer]) -> None:
            h1_local = bufs["h1"].data
            u = (c_virt.T @ h1_local @ c_occ) * inv_gaps
            c1 = c_virt @ u
            p1 = (c1 * f_occ[None, :]) @ c_occ.T
            bufs["p1"].data[...] = p1 + p1.T

        kernel = Kernel(
            name="dm_response",
            func=body,
            flops_per_item=2.0 * self._n_basis,
            bytes_read_per_item=16.0,
            bytes_written_per_item=8.0,
        )
        self._launch(kernel, {"h1": h1_buf, "p1": out})
        self.device.from_device(out)
        return out.data

    # ------------------------------------------------------------------
    # Kernel 2: response density on the grid (Sumup phase)
    # ------------------------------------------------------------------
    def response_density(self, p1: np.ndarray) -> np.ndarray:
        """n^(1)(r) = sum_mu_nu P^(1) chi_mu chi_nu (Eq. 8), batch-wise."""
        p1_buf = DeviceBuffer("p1", np.asarray(p1))
        out = DeviceBuffer("n1", np.zeros(self._n_points))
        self.device.to_device(p1_buf)
        self.device.to_device(out)
        batches = self.batches

        def body(bufs: Dict[str, DeviceBuffer]) -> None:
            phi = bufs["basis_values"].data
            p1_local = bufs["p1"].data
            n1 = bufs["n1"].data
            # One work-group per batch; the inner contraction is the
            # work-items' parallel loop over the batch's points.
            for b in batches:
                idx = b.point_indices
                phi_b = phi[idx]
                n1[idx] = np.einsum("pi,pi->p", phi_b @ p1_local, phi_b)

        kernel = Kernel(
            name="sumup_n1",
            func=body,
            flops_per_item=2.0 * self._n_basis**2,
            bytes_read_per_item=8.0 * self._n_basis,
            bytes_written_per_item=8.0,
        )
        self._launch(kernel, {"basis_values": self._phi, "p1": p1_buf, "n1": out})
        self.device.from_device(out)
        return out.data

    # ------------------------------------------------------------------
    # Kernels 3a/3b: response potential (Rho phase, producer + consumer)
    # ------------------------------------------------------------------
    def response_potential(self, n1: np.ndarray) -> np.ndarray:
        """v^(1)_H via the multipole solver, split into the two
        widely-dependent kernels of Section 4.2 (producer: multipole
        projection + radial solve + splines; consumer: interpolation at
        every grid point)."""
        solver = self.gs.solver
        n1_buf = DeviceBuffer("n1", np.asarray(n1))
        self.device.to_device(n1_buf)
        state: Dict[str, object] = {}

        def producer(bufs: Dict[str, DeviceBuffer]) -> None:
            state["expansion"] = solver.solve(solver.expand(bufs["n1"].data))

        producer_kernel = Kernel(
            name="rho_producer_splines",
            func=producer,
            flops_per_item=400.0,
            bytes_read_per_item=8.0,
            bytes_written_per_item=24.0,
        )
        self._launch(producer_kernel, {"n1": n1_buf})

        out = DeviceBuffer("v1", np.zeros(self._n_points))
        self.device.to_device(out)

        def consumer(bufs: Dict[str, DeviceBuffer]) -> None:
            bufs["v1"].data[...] = solver.evaluate(state["expansion"])

        consumer_kernel = Kernel(
            name="rho_consumer_interp",
            func=consumer,
            flops_per_item=900.0,
            bytes_read_per_item=48.0,
            bytes_written_per_item=8.0,
        )
        self._launch(consumer_kernel, {"v1": out})
        self.device.from_device(out)
        return out.data

    # ------------------------------------------------------------------
    # Kernel 4: response Hamiltonian (H phase)
    # ------------------------------------------------------------------
    def response_hamiltonian(self, v1_total: np.ndarray) -> np.ndarray:
        """H^(1)_mu_nu = <chi_mu| v^(1) |chi_nu> (Eq. 10), batch-wise."""
        v_buf = DeviceBuffer("v1", np.asarray(v1_total))
        out = DeviceBuffer("h1", np.zeros((self._n_basis, self._n_basis)))
        self.device.to_device(v_buf)
        self.device.to_device(out)
        batches = self.batches

        def body(bufs: Dict[str, DeviceBuffer]) -> None:
            phi = bufs["basis_values"].data
            w = bufs["weights"].data
            v = bufs["v1"].data
            h1 = bufs["h1"].data
            acc = np.zeros_like(h1)
            for b in batches:
                idx = b.point_indices
                wv = (w[idx] * v[idx])[:, None]
                phi_b = phi[idx]
                acc += phi_b.T @ (phi_b * wv)
            h1[...] = 0.5 * (acc + acc.T)

        kernel = Kernel(
            name="h1_integration",
            func=body,
            flops_per_item=3.0 * self._n_basis**2,
            bytes_read_per_item=8.0 * self._n_basis,
            bytes_written_per_item=8.0,
        )
        self._launch(
            kernel,
            {"basis_values": self._phi, "weights": self._weights, "v1": v_buf, "h1": out},
        )
        self.device.from_device(out)
        return out.data

    # ------------------------------------------------------------------
    @property
    def total_modeled_time(self) -> float:
        """Predicted device seconds across all launches so far."""
        return sum(inv.report.total_time for inv in self.invocations)


class OpenCLResponsePipeline:
    """One CPSCF iteration through the kernel set.

    Drop-in functional twin of one loop body of
    :meth:`repro.dfpt.response.DFPTSolver.solve_direction`, used to
    prove the OpenCL decomposition computes identical physics.
    """

    def __init__(self, ground_state: GroundState, device: Optional[Device] = None):
        from repro.runtime.machines import HPC2_AMD

        self.gs = ground_state
        self.device = device or Device(HPC2_AMD.accelerator)
        self.kernels = OpenCLDFPTKernels(ground_state, self.device)

        from repro.dfpt.response import DFPTSolver

        self._ref = DFPTSolver(ground_state)
        self._fxc = self._ref._fxc

    def iterate(self, p1: np.ndarray, direction: int) -> np.ndarray:
        """One cycle: P^(1) -> n^(1) -> v^(1) -> H^(1) -> new P^(1)."""
        if direction not in (0, 1, 2):
            raise DeviceError(f"direction must be 0..2, got {direction}")
        n1 = self.kernels.response_density(p1)
        v1_h = self.kernels.response_potential(n1)
        v1 = v1_h + self._fxc * n1
        h1 = self.kernels.response_hamiltonian(v1) - self.gs.dipoles[direction]
        return self.kernels.response_density_matrix(
            h1,
            self._ref._inv_gaps,
            self._ref._c_occ,
            self._ref._c_virt,
            self._ref._f_occ,
        )

"""Device buffers with explicit address spaces and transfer accounting.

A :class:`DeviceBuffer` wraps a real numpy array; ``__global`` buffers
live in off-chip device memory, ``__local`` in per-CU scratch.  The
owning :class:`~repro.ocl.device.Device` charges host<->device transfer
time and enforces on-chip capacity.
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

from repro.errors import DeviceError


class AddressSpace(enum.Enum):
    """OpenCL address spaces the model distinguishes."""

    GLOBAL = "__global"
    LOCAL = "__local"
    HOST = "host"


class DeviceBuffer:
    """A named array in a specific address space.

    Attributes
    ----------
    name:
        Identifier used in kernel signatures and reports.
    data:
        The actual numpy array (numerics are real).
    space:
        Where the buffer lives; transfers between spaces go through
        :meth:`repro.ocl.device.Device.to_device` / ``from_device``.
    persistent:
        Whether the buffer stays resident on the device across kernel
        launches (possible only if the device supports it) — the
        mechanism horizontal fusion exploits (Section 4.2.2).
    """

    def __init__(
        self,
        name: str,
        data: np.ndarray,
        space: AddressSpace = AddressSpace.HOST,
        persistent: bool = False,
    ) -> None:
        self.name = name
        self.data = np.asarray(data)
        self.space = space
        self.persistent = persistent

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def require_space(self, space: AddressSpace) -> None:
        if self.space is not space:
            raise DeviceError(
                f"buffer {self.name!r} is in {self.space.value}, "
                f"kernel expects {space.value}"
            )

    def __repr__(self) -> str:
        return (
            f"DeviceBuffer({self.name!r}, shape={self.data.shape}, "
            f"space={self.space.value}, {self.nbytes} B)"
        )

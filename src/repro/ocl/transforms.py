"""Kernel-level code transforms: loop collapse (4.4), indirect
elimination (4.3).

Both are *real* transformations over real index math/data — tested as
bijections/equalities — whose performance effect is expressed by
updating the kernel's model declarations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import DeviceError
from repro.ocl.kernel import Kernel


# ----------------------------------------------------------------------
# Fine-grained parallelization: collapsing the (p, m) loop (Section 4.4)
# ----------------------------------------------------------------------
def collapse_pm_loop(p_max: int) -> np.ndarray:
    """Enumerate the collapsed (p, m) loop: idx -> (p, m).

    The paper's transformation of the Adams-Moulton multipole loop::

        for (idx = 0; idx < (pmax+1)^2; idx++) {
            p = sqrt(idx); m = idx - p^2 - p;

    Returns an ``((p_max+1)^2, 2)`` table of (p, m) pairs in idx order,
    exactly the pairs the original nest ``for p: for m in [-p, p]``
    produces — the bijection the tests verify.
    """
    if p_max < 0:
        raise DeviceError(f"p_max must be >= 0, got {p_max}")
    idx = np.arange((p_max + 1) ** 2)
    p = np.floor(np.sqrt(idx)).astype(np.int64)
    m = idx - p * p - p
    return np.stack([p, m], axis=1)


def expand_pm_index(p: int, m: int) -> int:
    """The original nest's flat index: idx = p^2 + m + p."""
    if abs(m) > p:
        raise DeviceError(f"invalid (p, m) = ({p}, {m})")
    return p * p + m + p


def collapse_kernel(kernel: Kernel, p_max: int) -> Kernel:
    """Apply the loop collapse to a kernel's parallelism declaration.

    The un-collapsed nest can only spread over ``p_max + 1`` threads
    (outer loop); the collapsed loop exposes ``(p_max + 1)^2`` —
    Section 4.4's fine-grained parallelization.
    """
    if kernel.parallel_width is None:
        raise DeviceError(
            f"kernel {kernel.name!r} is already fully parallel; nothing to collapse"
        )
    return kernel.with_updates(
        name=f"{kernel.name}_collapsed",
        parallel_width=(p_max + 1) ** 2,
    )


# ----------------------------------------------------------------------
# Indirect-access elimination (Section 4.3)
# ----------------------------------------------------------------------
@dataclass
class IndirectEliminationReport:
    """Outcome of replacing A[B[i]] by C[i]."""

    array_name: str
    n_accesses: int
    build_reused: bool  # map built in a previous simulation of the system

    def __post_init__(self) -> None:
        if self.n_accesses < 0:
            raise DeviceError("negative access count")


def build_gather_map(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Materialize C = f(A) with C[i] = A[B[i]].

    This is the once-per-system mapping of Section 4.3 (e.g. permuting
    ``coord_center`` into global-atom-ID order); after it exists, every
    kernel reads C directly.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if b.ndim != 1:
        raise DeviceError(f"index array must be 1-D, got shape {b.shape}")
    if b.size and (b.min() < 0 or b.max() >= a.shape[0]):
        raise DeviceError("index array points outside the source array")
    return a[b]


def apply_gather_map(c: np.ndarray, i: np.ndarray) -> np.ndarray:
    """The transformed direct access: just C[i]."""
    return np.asarray(c)[np.asarray(i)]


def eliminate_indirect_accesses(kernel: Kernel) -> Kernel:
    """Update a kernel's model: indirect gathers become streamed reads."""
    if kernel.indirect_accesses_per_item == 0:
        raise DeviceError(
            f"kernel {kernel.name!r} declares no indirect accesses"
        )
    extra_stream = 8.0 * kernel.indirect_accesses_per_item  # now contiguous
    return kernel.with_updates(
        name=f"{kernel.name}_direct",
        indirect_accesses_per_item=0.0,
        bytes_read_per_item=kernel.bytes_read_per_item + extra_stream,
    )

"""Kernel objects and the per-launch performance model.

A :class:`Kernel` bundles a real Python function with the traffic and
compute declarations the device model prices.  The two-level NDRange of
Section 4.1 maps batches to work-groups and grid points to work-items.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.errors import DeviceError


@dataclass(frozen=True)
class NDRange:
    """The execution space of one launch (Section 4.1's two levels).

    ``n_groups`` work-groups (one per batch) of ``items_per_group``
    work-items (one per grid point).
    """

    n_groups: int
    items_per_group: int

    def __post_init__(self) -> None:
        if self.n_groups < 1 or self.items_per_group < 1:
            raise DeviceError(
                f"NDRange must be positive, got {self.n_groups} x {self.items_per_group}"
            )

    @property
    def n_items(self) -> int:
        return self.n_groups * self.items_per_group


@dataclass
class Kernel:
    """One OpenCL kernel: real computation + model declarations.

    Attributes
    ----------
    name:
        Kernel identifier.
    func:
        The computation: ``func(buffers: dict[str, DeviceBuffer]) -> None``
        (writes its outputs into the bound buffers).  May be ``None`` for
        model-only kernels used in scale studies.
    flops_per_item:
        Arithmetic work per work-item.
    bytes_read_per_item / bytes_written_per_item:
        Streaming off-chip traffic per work-item.
    indirect_accesses_per_item:
        Number of data-dependent (``A[B[i]]``) off-chip reads per item;
        each costs a full off-chip latency instead of streaming.
    parallel_width:
        Number of work-items that can make progress concurrently inside
        a work-group; ``None`` means all of them.  The un-collapsed
        (p, m) Adams-Moulton loop has width ``p_max + 1`` (Section 4.4).
    local_bytes:
        ``__local`` scratch needed per work-group (capacity-checked).
    """

    name: str
    func: Optional[Callable[[Dict[str, object]], None]] = None
    flops_per_item: float = 0.0
    bytes_read_per_item: float = 0.0
    bytes_written_per_item: float = 0.0
    indirect_accesses_per_item: float = 0.0
    parallel_width: Optional[int] = None
    local_bytes: int = 0
    metadata: dict = field(default_factory=dict)

    def with_updates(self, **kwargs) -> "Kernel":
        """Copy with some declarations replaced (used by transforms)."""
        from dataclasses import replace

        return replace(self, **kwargs)


@dataclass
class LaunchReport:
    """Predicted cost decomposition of one kernel launch."""

    kernel: str
    n_items: int
    launch_overhead: float
    compute_time: float
    stream_time: float
    indirect_time: float

    @property
    def total_time(self) -> float:
        return (
            self.launch_overhead
            + self.compute_time
            + self.stream_time
            + self.indirect_time
        )

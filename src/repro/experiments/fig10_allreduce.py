"""Figure 10 — AllReduce time on rho_multipole for the three schemes.

Sweeps rank counts for the 30 002- and 60 002-atom polyethylene chains
on both machines: baseline row-wise, packed (512 rows / <=30 MB), and
packed-hierarchical (HPC #2 only, one data copy per 32-rank node).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.basis.ylm import n_lm
from repro.comm.schemes import (
    BaselineRowwiseAllreduce,
    PackedAllreduce,
    PackedHierarchicalAllreduce,
    ReductionReport,
)
from repro.config import get_settings
from repro.grids.shells import radial_shells_for_species
from repro.runtime.machines import HPC1_SUNWAY, HPC2_AMD, MachineSpec
from repro.utils.reports import TableFormatter, format_seconds

#: Paper sweep: (atoms, rank counts) per machine.
PAPER_RANKS_HPC1 = {30002: (256, 512, 1024, 2048, 4096), 60002: (512, 1024, 2048, 4096, 8192)}
PAPER_RANKS_HPC2 = PAPER_RANKS_HPC1


def rho_multipole_row_bytes(level: str = "light") -> int:
    """Bytes of one rho_multipole row (one atom's shells x lm channels).

    Uses the carbon radial mesh (the heavier species of the chain).
    """
    settings = get_settings(level)
    shells = radial_shells_for_species(6, settings.grids.n_radial_base)
    return shells.n * n_lm(settings.l_max_hartree) * 8


@dataclass
class Fig10Result:
    machine: str
    rows: List[Tuple[int, int, str, float, float]]
    # (atoms, ranks, scheme, comm_time, local_time)

    def render(self) -> str:
        t = TableFormatter(
            ["atoms", "ranks", "scheme", "comm", "local update", "speedup"],
            title=f"Fig 10: rho_multipole AllReduce time, {self.machine}",
        )
        base: Dict[Tuple[int, int], float] = {}
        for atoms, ranks, scheme, comm, local in self.rows:
            total = comm + local
            if scheme == "baseline":
                base[(atoms, ranks)] = total
            speedup = base.get((atoms, ranks), total) / total
            t.add_row(
                [
                    atoms,
                    ranks,
                    scheme,
                    format_seconds(comm),
                    format_seconds(local),
                    f"{speedup:.1f}x",
                ]
            )
        return t.render()

    def speedups(self, scheme: str) -> Dict[Tuple[int, int], float]:
        """Speedup of *scheme* over baseline per (atoms, ranks)."""
        totals: Dict[Tuple[int, int, str], float] = {
            (a, r, s): c + l for a, r, s, c, l in self.rows
        }
        out = {}
        for (a, r, s), tt in totals.items():
            if s == scheme:
                out[(a, r)] = totals[(a, r, "baseline")] / tt
        return out


def run_fig10_allreduce(
    machine: MachineSpec,
    sweeps: Optional[Dict[int, Sequence[int]]] = None,
) -> Fig10Result:
    """Estimate all schemes across the sweep for one machine."""
    if sweeps is None:
        sweeps = PAPER_RANKS_HPC1 if machine is HPC1_SUNWAY else PAPER_RANKS_HPC2
    row_bytes = rho_multipole_row_bytes()
    schemes = [BaselineRowwiseAllreduce(), PackedAllreduce()]
    if machine.shm_windows:
        schemes.append(PackedHierarchicalAllreduce())
    rows = []
    for atoms, rank_list in sorted(sweeps.items()):
        for p in rank_list:
            for scheme in schemes:
                rep: ReductionReport = scheme.estimate(machine, p, atoms, row_bytes)
                rows.append(
                    (atoms, p, rep.scheme, rep.communication_time, rep.local_update_time)
                )
    return Fig10Result(machine=machine.name, rows=rows)

"""Figure 12 — fusing the widely-dependent response-potential kernels.

(a) the inter-kernel shared data volumes (``rho_multipole_spl`` ~28 KB,
    ``delta_v_hart_part_spl`` ~498 KB per atom batch) against the 64 KB
    RMA limit of HPC #1 — vertical fusion only helps the former;
(b) horizontal-fusion speedups of the v^(1) phase on HPC #2, growing
    with rank count (less consumer work per rank -> producer redundancy
    dominates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.basis.spline import spline_coefficient_nbytes
from repro.basis.ylm import n_lm
from repro.config import get_settings
from repro.core.flags import OptimizationFlags
from repro.core.phasemodel import PhaseModel
from repro.experiments.common import polyethylene_simulator
from repro.grids.shells import radial_shells_for_species
from repro.ocl.device import Device
from repro.ocl.fusion import vertical_fusion
from repro.ocl.kernel import Kernel, NDRange
from repro.runtime.machines import HPC1_SUNWAY, HPC2_AMD
from repro.utils.reports import TableFormatter, format_bytes

#: Paper sweep for Fig. 12(b).
PAPER_SWEEP_12B: Dict[int, Tuple[int, ...]] = {
    30002: (256, 512, 1024, 2048, 4096),
    60002: (1024, 2048, 4096, 8192),
    117602: (4096, 8192, 16384),
}


@dataclass
class Fig12aResult:
    rma_limit: int
    volumes: Dict[str, int]
    vertical_applied: Dict[str, bool]

    def render(self) -> str:
        t = TableFormatter(
            ["array", "volume", "fits 64 KB RMA?", "vertical fusion"],
            title="Fig 12(a): inter-kernel shared data vs HPC#1 RMA limit",
        )
        for name, nbytes in self.volumes.items():
            t.add_row(
                [
                    name,
                    format_bytes(nbytes),
                    "yes" if nbytes <= self.rma_limit else "NO",
                    "applied" if self.vertical_applied[name] else "refused",
                ]
            )
        return t.render()


def spline_buffer_volumes(level: str = "light") -> Dict[str, int]:
    """Coefficient-table sizes of the two shared spline arrays.

    Derived from the real radial meshes: ``rho_multipole_spl`` holds one
    atom's multipole density spline; ``delta_v_hart_part_spl`` holds the
    partial-potential splines of every lm channel of the atoms a batch
    touches (~18 atoms' worth), matching the paper's 28 KB / 498 KB.
    """
    settings = get_settings(level)
    shells = radial_shells_for_species(6, settings.grids.n_radial_base)
    lm = n_lm(settings.l_max_hartree)
    rho_spl = spline_coefficient_nbytes(shells.n, lm)
    v_spl = 18 * spline_coefficient_nbytes(shells.n, lm)
    return {
        "rho_multipole_spl": rho_spl,
        "delta_v_hart_part_spl": v_spl,
    }


def run_fig12a_volumes() -> Fig12aResult:
    """Check both arrays against HPC #1's RMA window via vertical fusion."""
    volumes = spline_buffer_volumes()
    device = Device(HPC1_SUNWAY.accelerator)
    producer = Kernel("producer", flops_per_item=1e5)
    consumer = Kernel("consumer", flops_per_item=1e4)
    applied = {}
    for name, nbytes in volumes.items():
        rep = vertical_fusion(
            device,
            producer,
            NDRange(8, 49),
            consumer,
            NDRange(64, 200),
            intermediate_bytes=nbytes,
        )
        applied[name] = rep.applied
    return Fig12aResult(
        rma_limit=HPC1_SUNWAY.accelerator.rma_max_bytes,
        volumes=volumes,
        vertical_applied=applied,
    )


@dataclass
class Fig12bResult:
    rows: List[Tuple[int, int, float, float, float]]
    # (atoms, ranks, t_unfused, t_fused, speedup)

    def render(self) -> str:
        t = TableFormatter(
            ["atoms", "ranks", "v(1) unfused", "v(1) fused", "speedup"],
            title="Fig 12(b): horizontal fusion of the v(1) phase, HPC#2",
        )
        for atoms, p, t0, t1, s in self.rows:
            t.add_row([atoms, p, f"{t0:.3f} s", f"{t1:.3f} s", f"{s:.2f}x"])
        return t.render()

    def speedups(self) -> List[float]:
        return [s for _, _, _, _, s in self.rows]


def run_fig12b_horizontal(
    sweep: Dict[int, Sequence[int]] = None
) -> Fig12bResult:
    """Rho-phase time with and without horizontal fusion across the sweep."""
    sweep = sweep or PAPER_SWEEP_12B
    rows = []
    for atoms, ranks in sorted(sweep.items()):
        sim = polyethylene_simulator(atoms)
        for p in ranks:
            times = []
            for fusion in (False, True):
                model = PhaseModel(
                    workload=sim.workload,
                    machine=HPC2_AMD,
                    n_ranks=p,
                    flags=OptimizationFlags.all().but(kernel_fusion=fusion),
                    batches=sim.batches,
                    assignment=sim.assignment(p, True),
                )
                times.append(model.rho_time())
            rows.append((atoms, p, times[0], times[1], times[0] / times[1]))
    return Fig12bResult(rows=rows)

"""Shared infrastructure for the figure experiments.

Scale experiments can be expensive to *generate* (hundreds of thousands
of batches); by default they run a representative subset of the paper's
parameter grid and expand to the full grid when ``REPRO_FULL_SCALE=1``
is set in the environment.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

from repro.atoms.builders import polyethylene, polyethylene_units_for_atoms
from repro.config import get_settings
from repro.core.simulator import PerturbationSimulator

#: The paper's H(C2H4)nH sizes (6n+2 atoms): 15 002 ... 200 012.
POLY_ATOM_COUNTS: Tuple[int, ...] = (15002, 30002, 60002, 117602, 200012)


def full_scale_enabled() -> bool:
    """Run the paper's complete parameter grid (env REPRO_FULL_SCALE=1)."""
    return os.environ.get("REPRO_FULL_SCALE", "0") == "1"


@lru_cache(maxsize=8)
def polyethylene_simulator(n_atoms: int, level: str = "light") -> PerturbationSimulator:
    """Cached simulator (workload + batches are the expensive parts)."""
    n_units = polyethylene_units_for_atoms(n_atoms)
    return PerturbationSimulator(polyethylene(n_units), get_settings(level))


def polyethylene_workloads(
    atom_counts: Sequence[int],
) -> Dict[int, PerturbationSimulator]:
    """Simulators for several chain lengths."""
    return {n: polyethylene_simulator(n) for n in atom_counts}


def default_rank_grid(paper_grid: Sequence[int], quick: Sequence[int]) -> List[int]:
    """Choose the sweep: full paper grid or the quick subset."""
    return list(paper_grid) if full_scale_enabled() else list(quick)

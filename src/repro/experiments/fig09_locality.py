"""Figure 9 — effects of the locality-enhancing task mapping.

(a) per-rank Hamiltonian memory (existing vs proposed), RBD, 64-512 ranks;
(b) n^(1)/H^(1) phase gains from dense local access, HIV-1 ligand,
    two basis-set sizes, both machines;
(c) cubic splines constructed per rank, RBD, 512 ranks.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.atoms.builders import hiv_ligand, rbd_like_protein
from repro.config import get_settings
from repro.core.flags import OptimizationFlags
from repro.core.phasemodel import PhaseModel
from repro.core.workload import build_workload, synthetic_batches
from repro.grids.batching import GridBatch
from repro.mapping.memory_model import HamiltonianMemoryModel, atom_cutoffs_light
from repro.mapping.spline_model import spline_counts_per_rank
from repro.mapping.strategies import (
    load_balancing_mapping,
    locality_enhancing_mapping,
)
from repro.runtime.machines import HPC1_SUNWAY, HPC2_AMD
from repro.utils.reports import TableFormatter, format_bytes


@lru_cache(maxsize=2)
def _rbd_batches(n_atoms: int = 3006) -> tuple:
    """RBD-like structure + summary batches (cached across sub-figures)."""
    structure = rbd_like_protein(n_atoms)
    workload = build_workload(structure, get_settings("light"))
    batches = synthetic_batches(workload)
    return structure, workload, batches


@dataclass
class Fig09aResult:
    ranks: List[int]
    existing_kb: List[float]  # replicated global sparse CSR
    proposed_avg_kb: List[float]
    proposed_max_kb: List[float]

    def render(self) -> str:
        t = TableFormatter(
            ["ranks", "existing (CSR, per rank)", "proposed avg", "proposed max"],
            title="Fig 9(a): per-rank Hamiltonian memory, RBD-like 3006 atoms",
        )
        for i, p in enumerate(self.ranks):
            t.add_row(
                [
                    p,
                    format_bytes(self.existing_kb[i] * 1024),
                    format_bytes(self.proposed_avg_kb[i] * 1024),
                    format_bytes(self.proposed_max_kb[i] * 1024),
                ]
            )
        return t.render()


def run_fig09a_memory(ranks: Sequence[int] = (64, 128, 256, 512)) -> Fig09aResult:
    """Per-rank Hamiltonian storage under both mappings."""
    structure, _, batches = _rbd_batches()
    model = HamiltonianMemoryModel(structure)
    existing, avg_kb, max_kb = [], [], []
    csr_kb = model.global_sparse_csr_bytes() / 1024.0
    for p in ranks:
        a_loc = locality_enhancing_mapping(batches, p)
        dense = model.dense_local_bytes(a_loc, batches) / 1024.0
        existing.append(csr_kb)
        avg_kb.append(float(dense.mean()))
        max_kb.append(float(dense.max()))
    return Fig09aResult(
        ranks=list(ranks),
        existing_kb=existing,
        proposed_avg_kb=avg_kb,
        proposed_max_kb=max_kb,
    )


@dataclass
class Fig09bResult:
    cases: List[Tuple[str, str, float, float]]  # (machine, phase, t_sparse, t_dense)

    def render(self) -> str:
        t = TableFormatter(
            ["machine", "phase", "improvement"],
            title="Fig 9(b): dense-vs-sparse access gains, HIV-1 ligand",
        )
        for machine, phase, t_sparse, t_dense in self.cases:
            gain = (t_sparse - t_dense) / t_sparse * 100.0
            t.add_row([machine, phase, f"+{gain:.1f}%"])
        return t.render()

    def improvements(self) -> Dict[Tuple[str, str], float]:
        return {
            (m, ph): (ts - td) / ts * 100.0 for m, ph, ts, td in self.cases
        }


def run_fig09b_dense_access(n_ranks: int = 8) -> Fig09bResult:
    """n^(1) and H^(1) phase gains from dense local Hamiltonian access.

    The ligand is small, so the phases run on a handful of ranks; the
    paper varies the basis size (1359/2143) — we use the light basis and
    report both machines' gains for the two phases.
    """
    structure = hiv_ligand()
    workload = build_workload(structure, get_settings("light"))
    batches = synthetic_batches(workload, target_points=120)
    # One fixed assignment for both access modes: Fig. 9(b) isolates the
    # dense-vs-sparse *access* effect from the load distribution.
    assignment = locality_enhancing_mapping(batches, n_ranks)
    cases = []
    for machine, label in ((HPC1_SUNWAY, "HPC#1"), (HPC2_AMD, "HPC#2")):
        for locality in (False, True):
            model = PhaseModel(
                workload=workload,
                machine=machine,
                n_ranks=n_ranks,
                flags=OptimizationFlags.all().but(locality_mapping=locality),
                batches=batches,
                assignment=assignment,
            )
            if locality:
                sumup_dense, h_dense = model.sumup_time(), model.h_time()
            else:
                sumup_sparse, h_sparse = model.sumup_time(), model.h_time()
        cases.append((label, "n(1)", sumup_sparse, sumup_dense))
        cases.append((label, "H(1)", h_sparse, h_dense))
    return Fig09bResult(cases=cases)


@dataclass
class Fig09cResult:
    n_ranks: int
    existing_counts: np.ndarray
    proposed_counts: np.ndarray

    def render(self) -> str:
        t = TableFormatter(
            ["strategy", "min", "mean", "max", "total splines"],
            title=f"Fig 9(c): cubic splines per rank, RBD-like, {self.n_ranks} ranks",
        )
        for name, c in (
            ("existing", self.existing_counts),
            ("proposed", self.proposed_counts),
        ):
            t.add_row(
                [name, int(c.min()), f"{c.mean():.0f}", int(c.max()), int(c.sum())]
            )
        return t.render()


def run_fig09c_splines(n_ranks: int = 512) -> Fig09cResult:
    """Cubic-spline constructions per rank under both mappings."""
    structure, _, batches = _rbd_batches()
    a_ex = load_balancing_mapping(batches, n_ranks)
    a_lo = locality_enhancing_mapping(batches, n_ranks)
    return Fig09cResult(
        n_ranks=n_ranks,
        existing_counts=spline_counts_per_rank(a_ex, batches, structure),
        proposed_counts=spline_counts_per_rank(a_lo, batches, structure),
    )

"""Figure 14 — overall per-phase impact of all innovations.

Per-phase execution time before (all flags off) and after (all on) for
the paper's representative cases: the RBD-like protein on few ranks and
the 30 002-atom polyethylene chain at scale, on both machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.atoms.builders import rbd_like_protein
from repro.config import get_settings
from repro.core.flags import OptimizationFlags
from repro.core.simulator import PerturbationSimulator, SimulationReport
from repro.experiments.common import polyethylene_simulator
from repro.runtime.machines import HPC1_SUNWAY, HPC2_AMD, MachineSpec
from repro.utils.reports import TableFormatter, format_seconds

#: The paper's showcased cases: (label, system, machine, ranks).
DEFAULT_CASES: Tuple[Tuple[str, str, str, int], ...] = (
    ("RBD/64@HPC1", "rbd", "hpc1", 64),
    ("RBD/256@HPC2", "rbd", "hpc2", 256),
    ("Poly/2048@HPC2", "poly30002", "hpc2", 2048),
    ("Poly/4096@HPC1", "poly30002", "hpc1", 4096),
)


@dataclass
class Fig14Case:
    label: str
    before: SimulationReport
    after: SimulationReport

    @property
    def overall_speedup(self) -> float:
        return self.before.cycle_seconds / self.after.cycle_seconds

    def phase_speedups(self) -> Dict[str, float]:
        out = {}
        for phase, t0 in self.before.per_cycle_seconds.items():
            t1 = self.after.per_cycle_seconds[phase]
            out[phase] = t0 / t1 if t1 > 0 else float("inf")
        return out


@dataclass
class Fig14Result:
    cases: List[Fig14Case]

    def render(self) -> str:
        t = TableFormatter(
            ["case", "phase", "before", "after", "speedup"],
            title="Fig 14: per-phase impact of all innovations",
        )
        for case in self.cases:
            for phase, t0 in case.before.per_cycle_seconds.items():
                t1 = case.after.per_cycle_seconds[phase]
                s = t0 / t1 if t1 > 0 else float("inf")
                t.add_row(
                    [case.label, phase, format_seconds(t0), format_seconds(t1), f"{s:.2f}x"]
                )
            t.add_row(
                [
                    case.label,
                    "TOTAL",
                    format_seconds(case.before.cycle_seconds),
                    format_seconds(case.after.cycle_seconds),
                    f"{case.overall_speedup:.2f}x",
                ]
            )
        return t.render()


def _simulator(system: str) -> PerturbationSimulator:
    if system == "rbd":
        return PerturbationSimulator(rbd_like_protein(), get_settings("light"))
    if system == "poly30002":
        return polyethylene_simulator(30002)
    raise ValueError(f"unknown system {system!r}")


def _machine(name: str) -> MachineSpec:
    return HPC1_SUNWAY if name == "hpc1" else HPC2_AMD


def run_fig14_overall(cases=DEFAULT_CASES) -> Fig14Result:
    """Before/after phase breakdowns for the showcased cases."""
    sims: Dict[str, PerturbationSimulator] = {}
    out = []
    for label, system, machine_name, ranks in cases:
        if system not in sims:
            sims[system] = _simulator(system)
        sim = sims[system]
        machine = _machine(machine_name)
        before = sim.run_model(machine, ranks, OptimizationFlags.none())
        after = sim.run_model(machine, ranks, OptimizationFlags.all())
        out.append(Fig14Case(label=label, before=before, after=after))
    return Fig14Result(cases=out)

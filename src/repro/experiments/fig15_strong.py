"""Figure 15 — strong scaling.

(a) speedup curves for the 60 002-atom chain on HPC #1, HPC #2 (CPU
    only) and HPC #2 (with GPUs);
(b) time to solution per CPSCF cycle on HPC #2 (GPUs) across the
    polyethylene family — the paper's headline: one cycle on 200 002
    atoms completes within a minute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.simulator import PerturbationSimulator
from repro.experiments.common import polyethylene_simulator
from repro.obs.analyze.scaling import ScalingPoint, strong_scaling
from repro.runtime.machines import HPC1_SUNWAY, HPC2_AMD
from repro.utils.reports import TableFormatter, format_seconds

#: Paper rank grids for the 60 002-atom strong-scaling study.
STRONG_RANKS_HPC1: Tuple[int, ...] = (5000, 10000, 20000, 40000)
STRONG_RANKS_HPC2: Tuple[int, ...] = (1024, 2048, 4096, 8192)

#: Fig. 15(b): (atoms, ranks) pairs for time-per-cycle on HPC #2 GPUs.
TIME_PER_CYCLE_CASES: Tuple[Tuple[int, int], ...] = (
    (15002, 1024),
    (30002, 2048),
    (60002, 4096),
    (117602, 8192),
    (200012, 16384),
)


@dataclass
class StrongSeries:
    label: str
    ranks: List[int]
    cycle_seconds: List[float]

    def points(self) -> List[ScalingPoint]:
        """The series through the shared strong-scaling definition."""
        return strong_scaling(self.ranks, self.cycle_seconds)

    def speedups(self) -> List[float]:
        return [pt.speedup for pt in self.points()]

    def efficiencies(self) -> List[float]:
        return [pt.efficiency for pt in self.points()]


@dataclass
class Fig15Result:
    series: List[StrongSeries]

    def render(self) -> str:
        t = TableFormatter(
            ["machine", "ranks", "cycle time", "speedup", "efficiency"],
            title="Fig 15(a): strong scaling, 60 002 atoms",
        )
        for s in self.series:
            for p, ct, sp, eff in zip(
                s.ranks, s.cycle_seconds, s.speedups(), s.efficiencies()
            ):
                t.add_row([s.label, p, format_seconds(ct), f"{sp:.2f}x", f"{eff*100:.0f}%"])
        return t.render()


def run_fig15_strong(
    n_atoms: int = 60002,
    ranks_hpc1: Sequence[int] = STRONG_RANKS_HPC1,
    ranks_hpc2: Sequence[int] = STRONG_RANKS_HPC2,
) -> Fig15Result:
    """Strong-scaling speedups on all three configurations."""
    sim = polyethylene_simulator(n_atoms)
    series = []
    series.append(
        StrongSeries(
            label="HPC#1",
            ranks=list(ranks_hpc1),
            cycle_seconds=[
                sim.run_model(HPC1_SUNWAY, p).cycle_seconds for p in ranks_hpc1
            ],
        )
    )
    series.append(
        StrongSeries(
            label="HPC#2 (CPU only)",
            ranks=list(ranks_hpc2),
            cycle_seconds=[
                sim.run_model(HPC2_AMD, p, use_accelerator=False).cycle_seconds
                for p in ranks_hpc2
            ],
        )
    )
    series.append(
        StrongSeries(
            label="HPC#2 (with GPUs)",
            ranks=list(ranks_hpc2),
            cycle_seconds=[
                sim.run_model(HPC2_AMD, p).cycle_seconds for p in ranks_hpc2
            ],
        )
    )
    return Fig15Result(series=series)


@dataclass
class Fig15bResult:
    rows: List[Tuple[int, int, Dict[str, float], float]]
    # (atoms, ranks, per-phase seconds, total)

    def render(self) -> str:
        t = TableFormatter(
            ["atoms", "ranks", "DM", "Sumup", "Rho", "H", "Comm", "cycle total"],
            title="Fig 15(b): time per CPSCF cycle, HPC#2 (GPUs)",
        )
        for atoms, p, phases, total in self.rows:
            t.add_row(
                [
                    atoms,
                    p,
                    *[format_seconds(phases[k]) for k in ("DM", "Sumup", "Rho", "H", "Comm")],
                    format_seconds(total),
                ]
            )
        return t.render()


def run_fig15b_time_per_cycle(
    cases: Sequence[Tuple[int, int]] = TIME_PER_CYCLE_CASES
) -> Fig15bResult:
    """Per-cycle phase breakdown across the chain family."""
    rows = []
    for atoms, ranks in cases:
        sim = polyethylene_simulator(atoms)
        rep = sim.run_model(HPC2_AMD, ranks)
        rows.append((atoms, ranks, rep.per_cycle_seconds, rep.cycle_seconds))
    return Fig15bResult(rows=rows)

"""Figure 16 — weak scaling from 30 002 to 200 012 atoms.

Atoms and ranks grow together (paper: HPC #1 uses 2500/5000/10000/20480
ranks, HPC #2 uses 2048/4096/8192/16384).  Efficiency is
``t_first / t_last`` of per-cycle times normalized by the per-rank
workload, which would be constant under perfect weak scaling; the
response-potential's O(N^1.7) growth drags it down at large N exactly
as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.experiments.common import polyethylene_simulator
from repro.obs.analyze.scaling import ScalingPoint, weak_scaling
from repro.runtime.machines import HPC1_SUNWAY, HPC2_AMD
from repro.utils.reports import TableFormatter, format_seconds

#: (atoms, ranks_hpc1, ranks_hpc2) per paper caption.
WEAK_CASES: Tuple[Tuple[int, int, int], ...] = (
    (30002, 2500, 2048),
    (60002, 5000, 4096),
    (117602, 10000, 8192),
    (200012, 20480, 16384),
)


@dataclass
class WeakSeries:
    label: str
    atoms: List[int]
    ranks: List[int]
    cycle_seconds: List[float]

    def points(self) -> List[ScalingPoint]:
        """The series through the shared weak-scaling definition."""
        return weak_scaling(self.atoms, self.ranks, self.cycle_seconds)

    def efficiencies(self) -> List[float]:
        """Weak-scaling efficiency vs the first point.

        Work per rank is ~constant across the series (atoms/ranks fixed
        by construction), so efficiency is simply t_0 / t_i.
        """
        return [pt.efficiency for pt in self.points()]


@dataclass
class Fig16Result:
    series: List[WeakSeries]

    def render(self) -> str:
        t = TableFormatter(
            ["machine", "atoms", "ranks", "cycle time", "efficiency"],
            title="Fig 16: weak scaling, H(C2H4)nH",
        )
        for s in self.series:
            for a, p, ct, eff in zip(
                s.atoms, s.ranks, s.cycle_seconds, s.efficiencies()
            ):
                t.add_row([s.label, a, p, format_seconds(ct), f"{eff*100:.1f}%"])
        return t.render()


def run_fig16_weak(
    cases: Sequence[Tuple[int, int, int]] = WEAK_CASES
) -> Fig16Result:
    """Weak scaling on HPC #1, HPC #2 (CPU) and HPC #2 (GPU)."""
    hpc1 = WeakSeries("HPC#1", [], [], [])
    hpc2_cpu = WeakSeries("HPC#2 (CPU only)", [], [], [])
    hpc2_gpu = WeakSeries("HPC#2 (with GPUs)", [], [], [])
    for atoms, p1, p2 in cases:
        sim = polyethylene_simulator(atoms)
        hpc1.atoms.append(atoms)
        hpc1.ranks.append(p1)
        hpc1.cycle_seconds.append(sim.run_model(HPC1_SUNWAY, p1).cycle_seconds)
        hpc2_cpu.atoms.append(atoms)
        hpc2_cpu.ranks.append(p2)
        hpc2_cpu.cycle_seconds.append(
            sim.run_model(HPC2_AMD, p2, use_accelerator=False).cycle_seconds
        )
        hpc2_gpu.atoms.append(atoms)
        hpc2_gpu.ranks.append(p2)
        hpc2_gpu.cycle_seconds.append(sim.run_model(HPC2_AMD, p2).cycle_seconds)
    return Fig16Result(series=[hpc1, hpc2_cpu, hpc2_gpu])

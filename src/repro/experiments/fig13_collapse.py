"""Figure 13 — fine-grained parallelization of the (p, m) loop.

Collapsing the Adams-Moulton nest (parallel width p_max+1 = 10) into a
flat loop of width (p_max+1)^2 = 100 lets a full GPU wavefront stay
busy; the v^(1) phase gains grow with rank count (the producer kernel
is a larger share of the shrinking per-rank work) up to the paper's
1.34x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.flags import OptimizationFlags
from repro.core.phasemodel import PhaseModel
from repro.experiments.common import polyethylene_simulator
from repro.runtime.machines import HPC2_AMD
from repro.utils.reports import TableFormatter

#: Paper sweep (subset shown per atom count).
PAPER_SWEEP_13: Dict[int, Tuple[int, ...]] = {
    15002: (128, 256, 512, 1024, 2048),
    30002: (256, 512, 1024, 2048, 4096),
    60002: (1024, 2048, 4096, 8192),
    117602: (4096, 8192, 16384, 32768),
    200012: (16384, 32768),
}


@dataclass
class Fig13Result:
    rows: List[Tuple[int, int, float, float, float]]
    # (atoms, ranks, t_nested, t_collapsed, speedup)

    def render(self) -> str:
        t = TableFormatter(
            ["atoms", "ranks", "v(1) nested", "v(1) collapsed", "speedup"],
            title="Fig 13: fine-grained parallelism (loop collapse), HPC#2",
        )
        for atoms, p, t0, t1, s in self.rows:
            t.add_row([atoms, p, f"{t0:.3f} s", f"{t1:.3f} s", f"{s:.2f}x"])
        return t.render()

    def speedups(self) -> List[float]:
        return [s for _, _, _, _, s in self.rows]


def run_fig13_collapse(sweep: Dict[int, Sequence[int]] = None) -> Fig13Result:
    """Rho-phase time with the nested vs collapsed (p, m) loop."""
    sweep = sweep or PAPER_SWEEP_13
    rows = []
    for atoms, ranks in sorted(sweep.items()):
        sim = polyethylene_simulator(atoms)
        for p in ranks:
            times = []
            for collapse in (False, True):
                model = PhaseModel(
                    workload=sim.workload,
                    machine=HPC2_AMD,
                    n_ranks=p,
                    flags=OptimizationFlags.all().but(loop_collapse=collapse),
                    batches=sim.batches,
                    assignment=sim.assignment(p, True),
                )
                times.append(model.rho_time())
            rows.append((atoms, p, times[0], times[1], times[0] / times[1]))
    return Fig13Result(rows=rows)

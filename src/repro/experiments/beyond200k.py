"""Beyond Fig. 16's 200 012-atom ceiling — modeled block-sparse reach.

The paper's weak-scaling series tops out at 200 012 atoms.  At that
scale the quadratically growing dense atom-pair block count — every
batch against every atom — is what exhausts both memory and Sumup/H
work.  The block-sparse locality seam (:mod:`repro.grids.sparsity`)
replaces it with the *active* block count, which batch-local screening
bounds linearly in N for chain-like systems.

This experiment extends the modeled scale past the ceiling by counting
active blocks with the same per-atom fragment decomposition the real
grid batcher uses (:func:`repro.grids.sparsity.modeled_block_counts`):
no grid is built and no basis is evaluated, so million-atom chains
price in seconds.  Two diagnostics matter:

* ``block_reduction`` — dense/active block ratio, the Sumup/H work the
  screening pattern removes (grows ~linearly with N);
* ``blocks_per_atom`` — active blocks per atom, which must stay flat
  across the series: that flatness *is* the linear-scaling claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.atoms.builders import polyethylene, polyethylene_units_for_atoms
from repro.experiments.common import full_scale_enabled
from repro.grids.sparsity import DEFAULT_SCREENING_THRESHOLD, modeled_block_counts
from repro.utils.reports import TableFormatter

#: The paper's largest weak-scaling workload (Fig. 16).
PAPER_CEILING_ATOMS = 200012

#: Default H(C2H4)nH sizes: the ceiling bracketed, then past it.
BEYOND_CASES_QUICK = (30002, 200012, 500006)
BEYOND_CASES_FULL = (30002, 117602, 200012, 500006, 1000010)


@dataclass(frozen=True)
class ScalePoint:
    """Modeled pattern counts for one chain length."""

    n_atoms: int
    n_basis: int
    n_batches: int
    blocks_active: int
    blocks_dense: int
    block_reduction: float
    fill_fraction: float
    elements_active: int
    elements_dense: int

    @property
    def blocks_per_atom(self) -> float:
        """Active blocks per atom — flat across N under linear scaling."""
        return self.blocks_active / self.n_atoms


@dataclass
class Beyond200kResult:
    """The modeled series, renderable as the scale-extension table."""

    threshold: float
    points: List[ScalePoint]

    @property
    def max_atoms(self) -> int:
        return max(p.n_atoms for p in self.points)

    def linearity(self) -> float:
        """Largest relative spread of ``blocks_per_atom`` over the series.

        0 means perfectly linear scaling; chain-end effects keep real
        series slightly below ~0.1.
        """
        per_atom = [p.blocks_per_atom for p in self.points]
        lo, hi = min(per_atom), max(per_atom)
        return (hi - lo) / hi if hi > 0 else 0.0

    def render(self) -> str:
        t = TableFormatter(
            [
                "atoms",
                "basis",
                "dense blocks",
                "active blocks",
                "reduction",
                "fill",
                "blocks/atom",
            ],
            title=(
                f"beyond 200k: modeled block-sparse reach, H(C2H4)nH, "
                f"threshold {self.threshold:g}"
            ),
        )
        for p in self.points:
            marker = " *" if p.n_atoms > PAPER_CEILING_ATOMS else ""
            t.add_row(
                [
                    f"{p.n_atoms:,}{marker}",
                    f"{p.n_basis:,}",
                    f"{p.blocks_dense:,}",
                    f"{p.blocks_active:,}",
                    f"{p.block_reduction:,.0f}x",
                    f"{p.fill_fraction:.2e}",
                    f"{p.blocks_per_atom:.1f}",
                ]
            )
        return t.render() + "\n* past the paper's largest run (Fig. 16)"


def run_beyond200k(
    atom_counts: Optional[Sequence[int]] = None,
    threshold: float = DEFAULT_SCREENING_THRESHOLD,
) -> Beyond200kResult:
    """Model the active-block series across (and past) the paper's scale."""
    if atom_counts is None:
        atom_counts = (
            BEYOND_CASES_FULL if full_scale_enabled() else BEYOND_CASES_QUICK
        )
    points: List[ScalePoint] = []
    for n_atoms in atom_counts:
        n_units = polyethylene_units_for_atoms(n_atoms)
        doc = modeled_block_counts(polyethylene(n_units), threshold=threshold)
        points.append(
            ScalePoint(
                n_atoms=doc["n_atoms"],
                n_basis=doc["n_basis"],
                n_batches=doc["n_batches"],
                blocks_active=doc["blocks_active"],
                blocks_dense=doc["blocks_dense"],
                block_reduction=doc["block_reduction"],
                fill_fraction=doc["fill_fraction"],
                elements_active=doc["elements_active"],
                elements_dense=doc["elements_dense"],
            )
        )
    return Beyond200kResult(threshold=float(threshold), points=points)

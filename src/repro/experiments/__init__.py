"""Per-figure experiment generators (evaluation section, Figs. 9-16).

Each module exposes a ``run_*`` function returning structured results
plus a rendered table matching the series the paper plots.  The
benchmark harness under ``benchmarks/`` is a thin wrapper around these;
EXPERIMENTS.md records measured-vs-paper values.
"""

from repro.experiments.common import (
    polyethylene_workloads,
    POLY_ATOM_COUNTS,
    full_scale_enabled,
)
from repro.experiments.fig09_locality import (
    run_fig09a_memory,
    run_fig09b_dense_access,
    run_fig09c_splines,
)
from repro.experiments.fig10_allreduce import run_fig10_allreduce
from repro.experiments.fig11_indirect import run_fig11_indirect
from repro.experiments.fig12_fusion import run_fig12a_volumes, run_fig12b_horizontal
from repro.experiments.fig13_collapse import run_fig13_collapse
from repro.experiments.fig14_overall import run_fig14_overall
from repro.experiments.fig15_strong import run_fig15_strong, run_fig15b_time_per_cycle
from repro.experiments.fig16_weak import run_fig16_weak
from repro.experiments.beyond200k import run_beyond200k

__all__ = [
    "polyethylene_workloads",
    "POLY_ATOM_COUNTS",
    "full_scale_enabled",
    "run_fig09a_memory",
    "run_fig09b_dense_access",
    "run_fig09c_splines",
    "run_fig10_allreduce",
    "run_fig11_indirect",
    "run_fig12a_volumes",
    "run_fig12b_horizontal",
    "run_fig13_collapse",
    "run_fig14_overall",
    "run_fig15_strong",
    "run_fig15b_time_per_cycle",
    "run_fig16_weak",
    "run_beyond200k",
]

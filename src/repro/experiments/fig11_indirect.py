"""Figure 11 — init-phase speedup from eliminating indirect accesses.

The grid-partitioning initialization contains the
``coord_center[atom_list[i_center]]`` pattern; Section 4.3 replaces it
with a permuted direct array.  Speedups are largest on HPC #1 (long
off-chip latency, no latency hiding) and shrink as ranks grow (fixed
launch/compute costs dominate once per-rank point counts are small).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.flags import OptimizationFlags
from repro.core.phasemodel import PhaseModel
from repro.core.simulator import PerturbationSimulator
from repro.experiments.common import polyethylene_simulator
from repro.runtime.machines import HPC1_SUNWAY, HPC2_AMD, MachineSpec
from repro.utils.reports import TableFormatter

#: Paper sweep: atoms -> rank counts (Fig. 11's x axis).
PAPER_SWEEP: Dict[int, Tuple[int, ...]] = {
    30002: (256, 512, 1024, 2048, 4096),
    60002: (1024, 2048, 4096, 8192),
    117602: (4096, 8192, 16384),
}


@dataclass
class Fig11Result:
    rows: List[Tuple[str, int, int, float, float, float]]
    # (machine, atoms, ranks, t_indirect, t_direct, speedup)

    def render(self) -> str:
        t = TableFormatter(
            ["machine", "atoms", "ranks", "init before", "init after", "speedup"],
            title="Fig 11: indirect-access elimination, init phase",
        )
        for m, atoms, p, t0, t1, s in self.rows:
            t.add_row([m, atoms, p, f"{t0*1e3:.2f} ms", f"{t1*1e3:.2f} ms", f"{s:.1f}x"])
        return t.render()

    def speedups(self, machine_name: str) -> List[float]:
        return [s for m, _, _, _, _, s in self.rows if m == machine_name]


def _init_times(
    sim: PerturbationSimulator, machine: MachineSpec, n_ranks: int
) -> Tuple[float, float]:
    times = []
    for indirect in (False, True):
        flags = OptimizationFlags.all().but(indirect_elimination=indirect)
        model = PhaseModel(
            workload=sim.workload,
            machine=machine,
            n_ranks=n_ranks,
            flags=flags,
            batches=sim.batches,
            assignment=sim.assignment(n_ranks, True),
        )
        times.append(model.init_time())
    return times[0], times[1]  # (before, after)


def run_fig11_indirect(
    sweep: Dict[int, Sequence[int]] = None,
    machines: Sequence[MachineSpec] = (HPC1_SUNWAY, HPC2_AMD),
) -> Fig11Result:
    """Init-phase before/after times across the sweep."""
    sweep = sweep or PAPER_SWEEP
    rows = []
    for atoms, ranks in sorted(sweep.items()):
        sim = polyethylene_simulator(atoms)
        for machine in machines:
            label = "HPC#1" if machine is HPC1_SUNWAY else "HPC#2"
            for p in ranks:
                before, after = _init_times(sim, machine, p)
                rows.append((label, atoms, p, before, after, before / after))
    return Fig11Result(rows=rows)

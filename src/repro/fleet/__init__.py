"""Fleet execution: many molecules through one backend, bit-exactly.

Public surface of the cross-molecule batching layer:

* :class:`~repro.fleet.driver.FleetDriver` — round-robin pipeline
  interleaving SCF/CPSCF cycles of deduplicated request groups;
* :class:`~repro.fleet.device.FleetDevice` — shared device model that
  fuses same-kernel launches across molecules at round boundaries;
* :mod:`repro.fleet.shared` — register-once basis tables and
  per-geometry substrate sharing.
"""

from repro.fleet.device import FleetDevice
from repro.fleet.driver import (
    FleetDriver,
    FleetOutcome,
    FleetPlan,
    FleetReport,
    FleetTask,
    fleet_tasks_from_requests,
    physics_fingerprint,
    plan_fleet,
)
from repro.fleet.shared import (
    Substrate,
    SubstrateCache,
    basis_signature,
    register_basis_tables,
)

__all__ = [
    "FleetDevice",
    "FleetDriver",
    "FleetOutcome",
    "FleetPlan",
    "FleetReport",
    "FleetTask",
    "Substrate",
    "SubstrateCache",
    "basis_signature",
    "fleet_tasks_from_requests",
    "physics_fingerprint",
    "plan_fleet",
    "register_basis_tables",
]

"""Shared read-only substrate for fleets of molecules.

Two amortization layers sit here, both bit-exactness-safe because they
share *identical* density-independent data rather than recomputing it:

* :func:`register_basis_tables` — the per-species radial spline tables
  (knots, values, second derivatives) of a basis set are registered
  **once per distinct basis signature** in a
  :class:`~repro.runtime.shm.SharedTableRegistry` and reused, read-only,
  by every later molecule of the fleet;
* :class:`SubstrateCache` — molecules with the same geometry and grid
  settings (fleet groups that differ only in SCF/CPSCF settings or
  request seed) share one basis/grid/batch decomposition instead of
  rebuilding it per group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.runtime.shm import SharedTableRegistry


def basis_signature(structure) -> str:
    """The distinct-basis-set key of a structure.

    Radial tables depend only on the element species (and the basis
    level, of which only ``light`` exists), so two molecules share one
    table set exactly when their element sets coincide.

    >>> from repro.atoms import hydrogen_molecule, water
    >>> basis_signature(hydrogen_molecule())
    'light:H'
    >>> basis_signature(water())
    'light:H|O'
    """
    return "light:" + "|".join(sorted(set(structure.symbols)))


def register_basis_tables(
    registry: SharedTableRegistry, structure
) -> Tuple[np.ndarray, ...]:
    """Register the structure's radial spline tables once per basis set.

    Returns the read-only knot/value/curvature arrays of every species
    shell the structure's basis uses.  The first molecule of a
    signature builds (or fetches from the species cache) the tables;
    every later molecule gets the same physical arrays, counted as a
    reuse by the registry.
    """
    from repro.basis.basis_set import _species_shells

    species = sorted(
        {(sym, elem.z) for sym, elem in zip(structure.symbols, structure.elements)}
    )

    def build() -> List[np.ndarray]:
        arrays: List[np.ndarray] = []
        for sym, z in species:
            for _shell, spline, _cutoff in _species_shells(sym, z):
                arrays.extend([spline.x, spline.y, spline.m])
        return arrays

    return registry.register(basis_signature(structure), build)


@dataclass
class Substrate:
    """One geometry's shared basis/grid/batch decomposition."""

    basis: object
    grid: object
    batches: list


class SubstrateCache:
    """Per-geometry substrates shared by same-shape fleet groups.

    Keyed on ``(structure fingerprint, grid-settings key)``: building a
    substrate is deterministic, so the cached object carries exactly
    the arrays a fresh build would — sharing it cannot change bits.
    """

    def __init__(self) -> None:
        self._substrates: Dict[Tuple[str, str], Substrate] = {}
        self.built = 0
        self.reused = 0

    def __len__(self) -> int:
        return len(self._substrates)

    def substrate(self, structure, settings) -> Substrate:
        """The (possibly shared) substrate for one structure + settings."""
        import json

        from repro.basis.basis_set import build_basis
        from repro.grids.atom_grid import build_grid
        from repro.grids.batching import attach_relevant_atoms, build_batches
        from repro.service.jobs import structure_fingerprint

        grids_key = json.dumps(
            settings.as_canonical_dict().get("grids", {}), sort_keys=True
        )
        key = (structure_fingerprint(structure), grids_key)
        cached = self._substrates.get(key)
        if cached is not None:
            self.reused += 1
            return cached
        basis = build_basis(structure)
        grid = build_grid(structure, settings.grids, with_partition=True)
        batches = build_batches(grid)
        batches = attach_relevant_atoms(batches, structure, basis.atom_cutoffs)
        built = Substrate(basis=basis, grid=grid, batches=batches)
        self._substrates[key] = built
        self.built += 1
        return built

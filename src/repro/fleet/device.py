"""Cross-molecule launch fusion on the priced device model.

The paper's horizontal fusion (§Kernel Optimizations) merges the same
kernel launched by several ranks sharing one GPU into a single launch,
paying one launch overhead instead of m.  :class:`FleetDevice`
generalizes that to fusion across *requests*: every molecule of a
fleet launches through one shared device, and at each round boundary
the launches queued during the round are priced in per-kernel fused
groups.

Execution and pricing are deliberately decoupled:

* ``launch`` runs the kernel body **immediately** — each molecule's
  data flow (and therefore every result bit) is identical to an
  isolated run;
* the returned :class:`~repro.ocl.kernel.LaunchReport` is the
  **unfused** estimate, which is exactly what a sequential run would
  have been charged, so per-molecule backend profiles stay
  attribution-correct;
* the device's own ``n_launches`` / ``modeled_time`` counters are only
  advanced at :meth:`end_round`, with one launch overhead per fused
  group — the fleet-level account the throughput benchmark compares
  against the sequential one.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ocl.buffers import AddressSpace, DeviceBuffer
from repro.ocl.device import Device
from repro.ocl.kernel import Kernel, LaunchReport, NDRange
from repro.errors import DeviceError


class FleetDevice(Device):
    """A shared accelerator model that prices launches in fused rounds.

    Same-name kernels queued within one round (one sweep of the fleet
    driver's round-robin over molecules) are charged a single launch
    overhead; compute, streaming and indirect-access time still
    accumulate per member, exactly as in the unfused estimates.
    """

    def __init__(self, spec) -> None:
        super().__init__(spec)
        self._round: List[LaunchReport] = []
        #: Launches as an isolated sequential run would count them.
        self.sequential_launches = 0
        #: Modeled seconds as an isolated sequential run would pay them.
        self.sequential_modeled_time = 0.0
        #: Fused launches actually charged (== ``n_launches``).
        self.fused_launches = 0
        #: Launch overhead the fusion avoided (seconds).
        self.overhead_saved = 0.0
        #: Rounds that priced at least one launch.
        self.rounds = 0

    def launch(
        self,
        kernel: Kernel,
        ndrange: NDRange,
        buffers: Optional[Dict[str, DeviceBuffer]] = None,
    ) -> LaunchReport:
        """Execute now, return the unfused price, defer the fleet account."""
        buffers = buffers or {}
        for buf in buffers.values():
            if buf.space is AddressSpace.HOST:
                raise DeviceError(
                    f"buffer {buf.name!r} still on host; call to_device() first"
                )
        report = self.estimate(kernel, ndrange)
        if kernel.func is not None:
            kernel.func(buffers)
        self._round.append(report)
        self.sequential_launches += 1
        self.sequential_modeled_time += report.total_time
        return report

    def end_round(self) -> int:
        """Price the round's queued launches as per-kernel fused groups.

        Returns the number of fused groups charged (0 for an empty
        round).  Grouping is by kernel name in first-queued order, so
        the account is deterministic for a deterministic schedule.
        """
        groups: Dict[str, List[LaunchReport]] = {}
        for report in self._round:
            groups.setdefault(report.kernel, []).append(report)
        for reports in groups.values():
            overhead = max(r.launch_overhead for r in reports)
            work = sum(r.total_time - r.launch_overhead for r in reports)
            self.n_launches += 1
            self.fused_launches += 1
            self.modeled_time += overhead + work
            self.overhead_saved += (
                sum(r.launch_overhead for r in reports) - overhead
            )
        self._round.clear()
        if groups:
            self.rounds += 1
        return len(groups)

    def model_stats(self) -> Dict[str, object]:
        """Deterministic fused-vs-sequential account for fleet reports."""
        fused = self.modeled_time
        sequential = self.sequential_modeled_time
        return {
            "launches": {
                "sequential": self.sequential_launches,
                "fused": self.fused_launches,
            },
            "rounds": self.rounds,
            "modeled": {
                "sequential": {"modeled_seconds": sequential},
                "fused": {"modeled_seconds": fused},
                "overhead_saved": {"modeled_seconds": self.overhead_saved},
            },
            "fusion_speedup": (sequential / fused) if fused > 0 else 1.0,
            "bytes_transferred": self.bytes_transferred,
        }

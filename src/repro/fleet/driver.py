"""Fleet driver: many molecules through one backend, bit-exactly.

The throughput idea of the paper's weak-scaling section turned sideways:
instead of one huge system across many ranks, many *small* requests
share one execution substrate.  Three amortizations compose, none of
which may change a single result bit:

1. **Shared read-only tables** — radial spline tables are registered
   once per distinct basis signature
   (:func:`repro.fleet.shared.register_basis_tables`) and geometry
   substrates once per distinct structure
   (:class:`repro.fleet.shared.SubstrateCache`);
2. **Physics dedup** — requests with identical physics payloads
   (structure + settings + charge; the seed is provenance only) are
   grouped by :func:`physics_fingerprint` and computed once, then each
   request's result document is stamped individually;
3. **Cross-molecule interleaving** — every group advances one SCF or
   CPSCF cycle per round through the generator seams
   (:meth:`~repro.dft.scf.SCFDriver.iter_cycles`,
   :meth:`~repro.dfpt.response.DFPTSolver.iter_direction`), so a shared
   :class:`~repro.fleet.device.FleetDevice` can fuse the same-name
   kernel launches of different molecules at each round boundary.

Each group's floating-point sequence is exactly the sequence of an
isolated :meth:`~repro.core.simulator.PerturbationSimulator.run_physics`
call, which is what the fleet parity suite pins byte for byte.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

import numpy as np

from repro.backends.batched import DEFAULT_CACHE_BYTES, BatchedBackend, BlockCache
from repro.fleet.device import FleetDevice
from repro.fleet.shared import SubstrateCache, register_basis_tables
from repro.runtime.shm import SharedTableRegistry


@dataclass
class FleetTask:
    """The slice of a statestore task a fleet run needs.

    Mirrors the :class:`~repro.service.statestore.TaskRecord` fields
    that :func:`~repro.service.worker.result_payload` reads (``key``,
    ``payload``), so fleet results are byte-identical to worker
    results whether the task came from a store or straight from a
    :class:`~repro.service.jobs.JobRequest`.
    """

    key: str
    payload: Dict[str, Any]
    task_id: str = ""


def fleet_tasks_from_requests(requests, commit: str = "fleet") -> List[FleetTask]:
    """Wrap :class:`~repro.service.jobs.JobRequest` objects as fleet tasks."""
    return [
        FleetTask(key=req.key(commit), payload=req.payload()) for req in requests
    ]


def physics_fingerprint(payload: Dict[str, Any]) -> str:
    """The dedup key of one physics payload.

    Hashes exactly the fields that determine the computed numbers —
    structure, canonical settings, charge.  The request ``seed`` is
    deliberately excluded: it only stamps provenance, so two requests
    differing only by seed share one computation.

    >>> a = physics_fingerprint({"structure": {"x": 1}, "settings": {}, "seed": 1})
    >>> b = physics_fingerprint({"structure": {"x": 1}, "settings": {}, "seed": 2})
    >>> c = physics_fingerprint({"structure": {"x": 2}, "settings": {}})
    >>> a == b, a == c
    (True, False)
    """
    doc = {
        "structure": payload.get("structure"),
        "settings": payload.get("settings"),
        "charge": int(payload.get("charge", 0)),
    }
    return hashlib.sha256(
        json.dumps(doc, sort_keys=True).encode()
    ).hexdigest()[:16]


@dataclass
class FleetGroup:
    """All requests sharing one physics fingerprint (computed once)."""

    fingerprint: str
    tasks: List[FleetTask]


@dataclass
class FleetPlan:
    """Deterministic grouping of a fleet's tasks."""

    groups: List[FleetGroup]

    @property
    def n_requests(self) -> int:
        """Total requests across every group."""
        return sum(len(g.tasks) for g in self.groups)

    def canonical(self) -> Dict[str, List[str]]:
        """Fingerprint -> sorted request keys (permutation-invariant)."""
        return {
            g.fingerprint: sorted(t.key for t in g.tasks) for g in self.groups
        }


def plan_fleet(tasks: Iterable[FleetTask]) -> FleetPlan:
    """Group tasks by physics fingerprint, ordered by fingerprint.

    Sorting by fingerprint (not submission order) makes the plan — and
    therefore the interleaved execution schedule — invariant under
    request permutation, one of the fleet parity suite's properties.

    >>> t = lambda k, x: FleetTask(key=k, payload={"structure": {"x": x}})
    >>> plan = plan_fleet([t("a", 1), t("b", 1), t("c", 2)])
    >>> len(plan.groups), plan.n_requests
    (2, 3)
    >>> plan.canonical() == plan_fleet([t("c", 2), t("b", 1), t("a", 1)]).canonical()
    True
    """
    by_fp: Dict[str, List[FleetTask]] = {}
    for task in tasks:
        by_fp.setdefault(physics_fingerprint(task.payload), []).append(task)
    return FleetPlan(
        groups=[
            FleetGroup(fingerprint=fp, tasks=by_fp[fp])
            for fp in sorted(by_fp)
        ]
    )


@dataclass
class _GroupOutcome:
    """One group's finished physics, ready for per-request stamping."""

    structure: Any
    settings: Any
    physics: Any


@dataclass
class FleetReport:
    """Deterministic account of one fleet run."""

    n_requests: int = 0
    n_groups: int = 0
    rounds: int = 0
    registry: Dict[str, int] = field(default_factory=dict)
    substrates: Dict[str, int] = field(default_factory=dict)
    profiles: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    cache: Dict[str, int] = field(default_factory=dict)
    device: Dict[str, Any] = field(default_factory=dict)


@dataclass
class FleetOutcome:
    """Per-request result payloads plus the run's shared-resource report."""

    results: Dict[str, Dict[str, Any]]
    errors: Dict[str, str]
    report: FleetReport


class FleetDriver:
    """Run many physics requests through one shared execution substrate.

    The driver owns the cross-run :class:`SharedTableRegistry` (basis
    tables outlive individual fleet waves — a service worker reuses
    them across :meth:`run_tasks` calls), while per-run resources (the
    substrate cache, the shared block cache, the fused device) are
    fresh each run so reports stay attributable.
    """

    def __init__(
        self,
        machine: str = "hpc2",
        max_cache_bytes: int = DEFAULT_CACHE_BYTES,
    ) -> None:
        self.machine = machine
        self.max_cache_bytes = int(max_cache_bytes)
        self.registry = SharedTableRegistry()

    # ------------------------------------------------------------------
    def _backend_for(self, settings, scope: str):
        """One molecule's backend, wired into the run's shared resources."""
        from repro.backends.registry import create_backend
        from repro.backends.device import DeviceBackend

        name = settings.backend
        if name == "batched":
            return BatchedBackend(cache=self._cache, scope=scope)
        if name == "device":
            return DeviceBackend(device=self._device)
        return create_backend(name)

    def _group_pipeline(self, group: FleetGroup):
        """Generator running one group's physics, one cycle per ``next()``.

        The body replicates
        :meth:`~repro.core.simulator.PerturbationSimulator.run_physics`
        call for call — same driver construction, same solver, same
        verifier phases — with ``yield from`` threading the per-cycle
        suspension points out to the round-robin scheduler.
        """
        from repro.config import RunSettings
        from repro.core.simulator import PhysicsResult
        from repro.dfpt.response import DFPTSolver
        from repro.dft.scf import SCFDriver
        from repro.service.jobs import structure_from_dict
        from repro.utils.timing import PhaseTimer

        payload = group.tasks[0].payload
        structure = structure_from_dict(payload["structure"])
        settings = RunSettings.from_canonical_dict(payload["settings"])
        register_basis_tables(self.registry, structure)
        sub = self._substrates.substrate(structure, settings)
        timer = PhaseTimer()
        driver = SCFDriver(
            structure,
            settings,
            charge=int(payload.get("charge", 0)),
            timer=timer,
            backend=self._backend_for(settings, scope=group.fingerprint),
            basis=sub.basis,
            grid=sub.grid,
            batches=sub.batches,
        )
        yield "constructed"
        gs = yield from driver.iter_cycles()
        solver = DFPTSolver(
            gs, settings.cpscf, timer=timer, verifier=driver.verifier
        )
        alpha = np.empty((3, 3))
        iterations = []
        for j in range(3):
            result = yield from solver.iter_direction(j)
            alpha[:, j] = result.polarizability_column(gs.dipoles)
            iterations.append(result.iterations)
        if driver.verifier is not None:
            driver.verifier.run_phase("polarizability", polarizability=alpha)
        physics = PhysicsResult(
            ground_state=gs,
            polarizability=alpha,
            phase_seconds=timer.as_dict(),
            cpscf_iterations_per_direction=iterations,
            backend_profile=driver.backend.profile,
            verify_report=driver.verifier.report if driver.verifier else None,
        )
        return _GroupOutcome(
            structure=structure, settings=settings, physics=physics
        )

    # ------------------------------------------------------------------
    def run_tasks(self, tasks: Iterable[FleetTask]) -> FleetOutcome:
        """Execute a fleet of tasks; per-request payloads keyed by task key.

        Groups are advanced round-robin, one cycle each per round; the
        shared device prices each round's launches as fused groups at
        the round boundary.  A group that raises poisons only its own
        requests (recorded in ``errors``), never its neighbours.
        """
        from repro.runtime.machines import machine_by_name
        from repro.service.worker import result_payload

        plan = plan_fleet(tasks)
        self._substrates = SubstrateCache()
        self._cache = BlockCache(self.max_cache_bytes)
        self._device = FleetDevice(machine_by_name(self.machine).accelerator)

        active = [(g, self._group_pipeline(g)) for g in plan.groups]
        outcomes: Dict[str, _GroupOutcome] = {}
        failures: Dict[str, str] = {}
        rounds = 0
        while active:
            rounds += 1
            survivors = []
            for group, gen in active:
                try:
                    next(gen)
                except StopIteration as stop:
                    outcomes[group.fingerprint] = stop.value
                except Exception as exc:  # noqa: BLE001 — isolate group failures
                    failures[group.fingerprint] = (
                        f"{type(exc).__name__}: {exc}"
                    )
                else:
                    survivors.append((group, gen))
            # Round boundary: fuse and price every launch the round queued.
            self._device.end_round()
            active = survivors

        results: Dict[str, Dict[str, Any]] = {}
        errors: Dict[str, str] = {}
        profiles: Dict[str, Dict[str, Any]] = {}
        for group in plan.groups:
            out = outcomes.get(group.fingerprint)
            if out is None:
                message = failures.get(group.fingerprint, "fleet group failed")
                for task in group.tasks:
                    errors[task.key] = message
                continue
            profile = out.physics.backend_profile
            if profile is not None:
                profiles[group.fingerprint] = profile.as_dict()
            for task in group.tasks:
                results[task.key] = result_payload(
                    task, out.structure, out.settings, out.physics
                )

        report = FleetReport(
            n_requests=plan.n_requests,
            n_groups=len(plan.groups),
            rounds=rounds,
            registry=self.registry.stats(),
            substrates={
                "built": self._substrates.built,
                "reused": self._substrates.reused,
            },
            profiles=profiles,
            cache={
                "hits": self._cache.hits,
                "misses": self._cache.misses,
                "evictions": self._cache.evictions,
                "peak_bytes": self._cache.peak_bytes,
            },
            device=self._device.model_stats(),
        )
        return FleetOutcome(results=results, errors=errors, report=report)

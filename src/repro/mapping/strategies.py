"""The two task-mapping strategies of Section 3.1.

* :func:`load_balancing_mapping` — the *existing* scheme: each batch
  goes to the rank currently owning the fewest grid points, ignoring
  which atoms the points belong to (Fig. 3(a)).
* :func:`locality_enhancing_mapping` — the paper's Algorithm 1:
  recursive bisection of the batch set, splitting ranks in half and
  batches along the widest-spread coordinate at the grid-point-count
  pivot, so each rank ends up with spatially adjacent batches
  (Fig. 3(b)).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import MappingError
from repro.grids.batching import GridBatch
from repro.utils.balance import max_mean_imbalance


@dataclass(frozen=True)
class BatchAssignment:
    """Result of a mapping: rank -> batch ids, plus convenience metrics."""

    strategy: str
    n_ranks: int
    batches_of_rank: Tuple[Tuple[int, ...], ...]

    def points_per_rank(self, batches: Sequence[GridBatch]) -> np.ndarray:
        """Grid points owned by each rank."""
        return np.array(
            [
                sum(batches[b].n_points for b in owned)
                for owned in self.batches_of_rank
            ],
            dtype=np.int64,
        )

    def atoms_per_rank(
        self, batches: Sequence[GridBatch], use_relevant: bool = True
    ) -> List[np.ndarray]:
        """Union of (relevant or owner) atom ids per rank (sorted arrays)."""
        out: List[np.ndarray] = []
        empty = np.empty(0, dtype=np.int64)
        for owned in self.batches_of_rank:
            parts = [
                np.asarray(
                    batches[b].relevant_atoms if use_relevant else batches[b].owner_atoms,
                    dtype=np.int64,
                )
                for b in owned
            ]
            out.append(np.unique(np.concatenate(parts)) if parts else empty)
        return out

    def imbalance(self, batches: Sequence[GridBatch]) -> float:
        """max/mean point-count ratio (1.0 = perfect balance).

        Delegates to :func:`repro.utils.balance.max_mean_imbalance`,
        the repo-wide imbalance definition also used by the modeled
        timelines and the analysis layer.
        """
        try:
            return max_mean_imbalance(self.points_per_rank(batches))
        except ValueError:
            raise MappingError("assignment owns no grid points") from None


def _validate(batches: Sequence[GridBatch], n_ranks: int) -> None:
    if n_ranks < 1:
        raise MappingError(f"need >= 1 rank, got {n_ranks}")
    if len(batches) < n_ranks:
        raise MappingError(
            f"{len(batches)} batches cannot feed {n_ranks} ranks"
        )


def load_balancing_mapping(
    batches: Sequence[GridBatch], n_ranks: int
) -> BatchAssignment:
    """Existing strategy: greedy least-loaded (by grid points).

    Batches are visited in construction order; ties broken by rank id —
    deterministic.  Because construction order interleaves space, the
    batches of one rank end up scattered across the whole system.
    """
    _validate(batches, n_ranks)
    heap: List[Tuple[int, int]] = [(0, r) for r in range(n_ranks)]
    heapq.heapify(heap)
    owned: List[List[int]] = [[] for _ in range(n_ranks)]
    # Visit in an order that interleaves space (round-robin over the
    # spatially sorted list), mirroring how FHI-aims' batch stream
    # arrives atom by atom rather than sorted.
    for b in batches:
        points, rank = heapq.heappop(heap)
        owned[rank].append(b.index)
        heapq.heappush(heap, (points + b.n_points, rank))
    return BatchAssignment(
        strategy="load_balancing",
        n_ranks=n_ranks,
        batches_of_rank=tuple(tuple(o) for o in owned),
    )


def locality_enhancing_mapping(
    batches: Sequence[GridBatch], n_ranks: int
) -> BatchAssignment:
    """Algorithm 1: locality-enhancing recursive bisection.

    Direct transcription of the paper's pseudo-code: processes are halved
    (ceil left), batches are projected on the dimension where their
    centroids spread the largest range, sorted, and split at the pivot
    ``p`` with ``sum_{i<=p} points_i <= (total points) * |P_l|/|P|`` —
    generalized from the paper's 1/2 so odd process counts stay balanced.
    """
    _validate(batches, n_ranks)
    centroids = np.array([b.centroid for b in batches])
    points = np.array([b.n_points for b in batches], dtype=np.int64)

    owned: List[List[int]] = [[] for _ in range(n_ranks)]

    def recurse(rank_lo: int, rank_hi: int, idx: np.ndarray) -> None:
        n_procs = rank_hi - rank_lo
        if n_procs == 1:
            owned[rank_lo].extend(int(i) for i in idx)
            return
        if idx.size < n_procs:
            raise MappingError(
                f"bisection ran out of batches ({idx.size} for {n_procs} ranks)"
            )
        left_procs = (n_procs + 1) // 2  # ceil(n/2), paper line 5
        # Line 7: dimension of largest centroid spread.
        sub = centroids[idx]
        spans = sub.max(axis=0) - sub.min(axis=0)
        dim = int(np.argmax(spans))
        # Line 8: sort by projection.
        order = np.argsort(sub[:, dim], kind="stable")
        sorted_idx = idx[order]
        # Lines 9-11: point-count pivot, proportional to |P_l|.
        cum = np.cumsum(points[sorted_idx])
        pivot = cum[-1] * left_procs / n_procs
        p = int(np.searchsorted(cum, pivot, side="right"))
        # Both sides must receive at least as many batches as ranks.
        p = max(p, left_procs)
        p = min(p, idx.size - (n_procs - left_procs))
        recurse(rank_lo, rank_lo + left_procs, sorted_idx[:p])
        recurse(rank_lo + left_procs, rank_hi, sorted_idx[p:])

    recurse(0, n_ranks, np.arange(len(batches), dtype=np.int64))
    return BatchAssignment(
        strategy="locality_enhancing",
        n_ranks=n_ranks,
        batches_of_rank=tuple(tuple(o) for o in owned),
    )

"""Task mapping: how batches of grid points land on MPI ranks (Section 3.1).

Two strategies — the *existing* least-loaded assignment and the paper's
*locality-enhancing* recursive bisection (Algorithm 1) — plus the
per-rank Hamiltonian memory model and cubic-spline-count model that
quantify why locality wins (Figs. 9(a) and 9(c)).
"""

from repro.mapping.strategies import (
    BatchAssignment,
    load_balancing_mapping,
    locality_enhancing_mapping,
)
from repro.mapping.memory_model import (
    HamiltonianMemoryModel,
    atom_cutoffs_light,
    atom_basis_counts,
)
from repro.mapping.spline_model import spline_counts_per_rank, MULTIPOLE_MESH_RADIUS

__all__ = [
    "BatchAssignment",
    "load_balancing_mapping",
    "locality_enhancing_mapping",
    "HamiltonianMemoryModel",
    "atom_cutoffs_light",
    "atom_basis_counts",
    "spline_counts_per_rank",
    "spline_counts_per_rank",
    "MULTIPOLE_MESH_RADIUS",
]

"""Per-rank Hamiltonian storage model (the scaling obstacle of Fig. 3/9(a)).

Under the existing mapping, a rank touching delocalized atoms must keep
the *global sparse* Hamiltonian (CSR: 8-byte value + 4-byte column per
nonzero, 4-byte row pointers).  Under the locality mapping, each rank
keeps a *small dense* matrix over the union of atoms relevant to its
batches.  Both estimates here are driven by the real geometry: actual
basis cutoff radii decide which atom blocks are nonzero.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.atoms.structure import Structure
from repro.basis.basis_set import _species_shells
from repro.errors import MappingError
from repro.grids.batching import GridBatch
from repro.mapping.strategies import BatchAssignment

_BYTES_VALUE = 8
_BYTES_COL = 4
_BYTES_ROWPTR = 4


def atom_cutoffs_light(structure: Structure) -> np.ndarray:
    """Farthest basis-function reach per atom for the light basis (Bohr).

    Uses the species-level radial tables directly — no per-atom basis
    objects — so it is cheap even for the 200 012-atom chain.
    """
    by_symbol: Dict[str, float] = {}
    out = np.empty(structure.n_atoms)
    for i, (sym, elem) in enumerate(zip(structure.symbols, structure.elements)):
        if sym not in by_symbol:
            by_symbol[sym] = max(
                cutoff for _, _, cutoff in _species_shells(sym, elem.z)
            )
        out[i] = by_symbol[sym]
    return out


def atom_basis_counts(structure: Structure) -> np.ndarray:
    """Light-basis function count per atom."""
    return np.array([e.n_basis_light for e in structure.elements], dtype=np.int64)


def interacting_atom_pairs(
    structure: Structure, cutoffs: np.ndarray
) -> List[Tuple[int, int]]:
    """Atom pairs (i <= j, including i == j) with overlapping cutoff spheres.

    Near-linear cell-list search; this is the atom-block sparsity
    pattern of H and S.
    """
    coords = structure.coords
    cutoffs = np.asarray(cutoffs, dtype=float)
    if cutoffs.shape[0] != structure.n_atoms:
        raise MappingError(
            f"{cutoffs.shape[0]} cutoffs for {structure.n_atoms} atoms"
        )
    reach = 2.0 * float(cutoffs.max())
    cell = max(reach, 1e-6)
    keys = np.floor(coords / cell).astype(np.int64)
    buckets: Dict[Tuple[int, int, int], List[int]] = {}
    for idx, key in enumerate(map(tuple, keys)):
        buckets.setdefault(key, []).append(idx)
    offsets = [
        (dx, dy, dz) for dx in (-1, 0, 1) for dy in (-1, 0, 1) for dz in (-1, 0, 1)
    ]
    pairs: List[Tuple[int, int]] = []
    for i in range(structure.n_atoms):
        pairs.append((i, i))
        kx, ky, kz = keys[i]
        ci = coords[i]
        for off in offsets:
            for j in buckets.get((kx + off[0], ky + off[1], kz + off[2]), ()):
                if j <= i:
                    continue
                if np.linalg.norm(ci - coords[j]) <= cutoffs[i] + cutoffs[j]:
                    pairs.append((i, j))
    return pairs


class HamiltonianMemoryModel:
    """Storage estimates for both mapping strategies on one system."""

    def __init__(self, structure: Structure, cutoffs=None, basis_counts=None) -> None:
        self.structure = structure
        self.cutoffs = (
            atom_cutoffs_light(structure) if cutoffs is None else np.asarray(cutoffs)
        )
        self.basis_counts = (
            atom_basis_counts(structure)
            if basis_counts is None
            else np.asarray(basis_counts, dtype=np.int64)
        )
        self.n_basis_total = int(self.basis_counts.sum())
        self._nnz_cache = None

    # ------------------------------------------------------------------
    def global_sparse_nnz(self) -> int:
        """Nonzeros of the global Hamiltonian at atom-block granularity."""
        if self._nnz_cache is None:
            nnz = 0
            for i, j in interacting_atom_pairs(self.structure, self.cutoffs):
                block = int(self.basis_counts[i]) * int(self.basis_counts[j])
                nnz += block if i == j else 2 * block
            self._nnz_cache = nnz
        return self._nnz_cache

    def global_sparse_csr_bytes(self) -> int:
        """CSR storage of the global sparse Hamiltonian (per rank!).

        The existing mapping replicates this structure on every rank —
        the constant, large curve of Fig. 9(a).
        """
        nnz = self.global_sparse_nnz()
        return (
            nnz * (_BYTES_VALUE + _BYTES_COL)
            + (self.n_basis_total + 1) * _BYTES_ROWPTR
        )

    def dense_local_bytes(
        self,
        assignment: BatchAssignment,
        batches: Sequence[GridBatch],
    ) -> np.ndarray:
        """Dense local Hamiltonian bytes per rank.

        Each rank's matrix spans the union of atoms *relevant* to its
        batches: ``8 * N_loc^2`` bytes.  Under the locality mapping this
        union is small (adjacent atoms only); under the existing mapping
        it typically covers most of the system — the same formula then
        reproduces why dense storage is not even an option there.
        """
        if batches and not batches[0].relevant_atoms and len(batches[0].owner_atoms):
            # Fall back to owner atoms when relevance was never attached.
            atom_sets = assignment.atoms_per_rank(batches, use_relevant=False)
        else:
            atom_sets = assignment.atoms_per_rank(batches, use_relevant=True)
        out = np.empty(assignment.n_ranks, dtype=np.int64)
        for r, atoms in enumerate(atom_sets):
            atoms = np.asarray(list(atoms), dtype=np.int64)
            n_loc = int(self.basis_counts[atoms].sum()) if atoms.size else 0
            out[r] = _BYTES_VALUE * n_loc * n_loc
        return out

    def per_rank_bytes(
        self,
        assignment: BatchAssignment,
        batches: Sequence[GridBatch],
    ) -> np.ndarray:
        """Storage each rank actually needs under a given strategy.

        Existing (scattered) mapping -> replicated global CSR;
        locality mapping -> per-rank dense local matrix.
        """
        if assignment.strategy == "load_balancing":
            return np.full(
                assignment.n_ranks, self.global_sparse_csr_bytes(), dtype=np.int64
            )
        return self.dense_local_bytes(assignment, batches)

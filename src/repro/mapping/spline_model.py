"""Cubic-spline-count model for the response-potential phase (Figs. 4, 9(c)).

When a rank evaluates the response potential over its grid points, it
needs the splined partial potential of every atom whose radial mesh
(extent :data:`MULTIPOLE_MESH_RADIUS`) reaches one of its batches.
Adjacent batches share those atoms, so the locality mapping reuses one
spline construction across many batches; the scattered mapping
constructs it once per rank that touches the atom anywhere — far more
total work and far more per-rank splines.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.atoms.structure import Structure
from repro.grids.batching import GridBatch
from repro.mapping.strategies import BatchAssignment

#: Outer radius of the per-atom radial mesh on which partial Hartree
#: potentials are splined (matches grids.shells default r_outer).
MULTIPOLE_MESH_RADIUS: float = 10.0


def spline_counts_per_rank(
    assignment: BatchAssignment,
    batches: Sequence[GridBatch],
    structure: Structure,
    mesh_radius: float = MULTIPOLE_MESH_RADIUS,
    chunk: int = 1024,
) -> np.ndarray:
    """Cubic splines each rank constructs for the v^(1) evaluation.

    One spline per distinct atom whose mesh sphere intersects any of the
    rank's batch bounding spheres (reuse within a rank is free — the
    paper's Fig. 4(b) insight).
    """
    coords = structure.coords
    centroids = np.array([b.centroid for b in batches])
    radii = np.array([b.radius for b in batches])

    # Relevant-atom bitsets per batch, computed in chunks.
    batch_atoms: List[np.ndarray] = []
    for start in range(0, len(batches), chunk):
        stop = min(start + chunk, len(batches))
        d = np.linalg.norm(centroids[start:stop, None, :] - coords[None, :, :], axis=2)
        hits = d <= (mesh_radius + radii[start:stop, None])
        for row in range(stop - start):
            batch_atoms.append(np.nonzero(hits[row])[0])

    counts = np.empty(assignment.n_ranks, dtype=np.int64)
    for r, owned in enumerate(assignment.batches_of_rank):
        atoms: set = set()
        for b in owned:
            atoms.update(batch_atoms[b].tolist())
        counts[r] = len(atoms)
    return counts

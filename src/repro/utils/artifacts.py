"""Safe handling of run-output artifact paths.

Every CLI artifact writer (``repro trace``, ``repro physics --report``,
the analysis dashboards) funnels its output path through
:func:`prepare_artifact_path` so the behaviour is uniform:

* missing parent directories are created;
* an existing artifact is never silently overwritten — the caller must
  pass ``force=True`` (the CLI's ``--force`` flag) or the preparation
  raises :class:`~repro.errors.ArtifactError` with a message naming
  the collision and the way out.

>>> import tempfile, os
>>> d = tempfile.mkdtemp()
>>> p = prepare_artifact_path(os.path.join(d, "sub", "trace.json"))
>>> p.parent.is_dir()
True
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.errors import ArtifactError


def prepare_artifact_path(path: Union[str, Path], force: bool = False) -> Path:
    """Validate one output path before an expensive run produces it.

    Creates missing parent directories and refuses to clobber an
    existing file unless ``force`` is set.  Returns the normalized
    :class:`~pathlib.Path`.  Called *before* the run starts so a
    doomed write fails fast instead of after minutes of computation.

    >>> import tempfile, os
    >>> from repro.errors import ArtifactError
    >>> d = tempfile.mkdtemp()
    >>> existing = os.path.join(d, "report.json")
    >>> _ = open(existing, "w").write("{}")
    >>> try:
    ...     prepare_artifact_path(existing)
    ... except ArtifactError as e:
    ...     "refusing to overwrite" in str(e) and "--force" in str(e)
    True
    >>> prepare_artifact_path(existing, force=True).name
    'report.json'
    """
    out = Path(path)
    if out.exists() and out.is_dir():
        raise ArtifactError(f"artifact path {out} is a directory")
    if out.exists() and not force:
        raise ArtifactError(
            f"refusing to overwrite existing artifact {out}; "
            "pass --force to replace it"
        )
    out.parent.mkdir(parents=True, exist_ok=True)
    return out

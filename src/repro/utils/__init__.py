"""Shared utilities: timing, structured reports, small linear-algebra helpers."""

from repro.utils.timing import Stopwatch, PhaseTimer
from repro.utils.reports import TableFormatter, format_bytes, format_seconds
from repro.utils.linalg import (
    symmetrize,
    lowdin_orthogonalization,
    solve_generalized_eigenproblem,
)

__all__ = [
    "Stopwatch",
    "PhaseTimer",
    "TableFormatter",
    "format_bytes",
    "format_seconds",
    "symmetrize",
    "lowdin_orthogonalization",
    "solve_generalized_eigenproblem",
]

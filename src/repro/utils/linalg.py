"""Small dense linear-algebra helpers shared by the DFT/DFPT engines."""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.linalg


def symmetrize(a: np.ndarray) -> np.ndarray:
    """Return the symmetric part ``(A + A.T) / 2`` of a square matrix."""
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"expected square matrix, got shape {a.shape}")
    return 0.5 * (a + a.T)


def lowdin_orthogonalization(s: np.ndarray, threshold: float = 1e-10) -> np.ndarray:
    """Return ``X`` with ``X.T @ S @ X = I`` via symmetric (Lowdin) scheme.

    Eigenvalues of ``S`` below *threshold* are dropped (canonical
    orthogonalization) to protect against near-linear-dependent basis
    sets, which occur for compressed geometries.
    """
    evals, evecs = np.linalg.eigh(symmetrize(s))
    keep = evals > threshold
    if not np.any(keep):
        raise np.linalg.LinAlgError("overlap matrix has no significant eigenvalues")
    return evecs[:, keep] / np.sqrt(evals[keep])


def solve_generalized_eigenproblem(
    h: np.ndarray, s: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Solve ``H C = S C diag(eps)`` for a symmetric pencil.

    Returns ``(eps, C)`` with eigenvalues ascending and eigenvectors
    S-orthonormal (``C.T @ S @ C = I`` on the retained subspace).  Uses
    canonical orthogonalization so mildly ill-conditioned overlaps are
    handled gracefully; in that case fewer eigenpairs than ``len(h)`` may
    be returned.
    """
    x = lowdin_orthogonalization(s)
    h_ortho = symmetrize(x.T @ h @ x)
    eps, c_ortho = np.linalg.eigh(h_ortho)
    return eps, x @ c_ortho


def density_matrix_from_orbitals(
    c: np.ndarray, occupations: np.ndarray
) -> np.ndarray:
    """Build ``P = C diag(f) C.T`` restricted to occupied columns.

    Parameters
    ----------
    c:
        Orbital coefficients, one column per molecular orbital.
    occupations:
        Occupation numbers ``f_i`` aligned with the columns of *c*.
    """
    occupations = np.asarray(occupations, dtype=float)
    if occupations.shape[0] != c.shape[1]:
        raise ValueError(
            f"{occupations.shape[0]} occupations for {c.shape[1]} orbitals"
        )
    occ = occupations > 0.0
    c_occ = c[:, occ]
    return (c_occ * occupations[occ]) @ c_occ.T


def pack_lower_triangle(a: np.ndarray) -> np.ndarray:
    """Pack the lower triangle (including diagonal) of a symmetric matrix."""
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"expected square matrix, got shape {a.shape}")
    idx = np.tril_indices(a.shape[0])
    return a[idx]


def unpack_lower_triangle(packed: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_lower_triangle` producing a symmetric matrix."""
    expected = n * (n + 1) // 2
    if packed.shape[0] != expected:
        raise ValueError(f"packed length {packed.shape[0]} != n(n+1)/2 = {expected}")
    out = np.zeros((n, n), dtype=packed.dtype)
    idx = np.tril_indices(n)
    out[idx] = packed
    out.T[idx] = packed
    return out

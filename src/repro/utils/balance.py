"""The single load-imbalance definition shared across the codebase.

Load imbalance is always the **max/mean ratio** of per-worker load
(1.0 = perfect balance).  Two subsystems historically carried their own
copies of this formula — the modeled per-rank timelines
(:meth:`repro.runtime.trace.CycleTrace.imbalance`, load = busy seconds)
and the batch mappings
(:meth:`repro.mapping.strategies.BatchAssignment.imbalance`, load =
grid points) — and the analysis layer
(:mod:`repro.obs.analyze.imbalance`) adds a third caller.  All three
now delegate here, so "imbalance" can never silently mean two different
things in one report.

>>> max_mean_imbalance([3.0, 1.0])
1.5
>>> max_mean_imbalance([2, 2, 2])
1.0
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np


def max_mean_imbalance(loads: Union[Sequence[float], np.ndarray]) -> float:
    """Max/mean ratio of per-worker loads (1.0 = perfect balance).

    Raises :class:`ValueError` when there are no workers or no work
    (mean <= 0) — callers translate that into their own subsystem
    error types.

    >>> max_mean_imbalance([1.0, 1.0, 4.0])
    2.0
    >>> max_mean_imbalance([])
    Traceback (most recent call last):
        ...
    ValueError: imbalance of zero workers is undefined
    """
    arr = np.asarray(loads, dtype=float)
    if arr.size == 0:
        raise ValueError("imbalance of zero workers is undefined")
    mean = float(arr.mean())
    if mean <= 0.0:
        raise ValueError("imbalance of zero total load is undefined")
    return float(arr.max() / mean)

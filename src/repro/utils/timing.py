"""Wall-clock timing helpers used by the SCF/CPSCF drivers and benchmarks.

Two levels are provided:

* :class:`Stopwatch` — a context-manager around one measurement.
* :class:`PhaseTimer` — named, accumulating phase timings mirroring the
  per-phase breakdown the paper's artifact extracts from its output file
  (``DM`` / ``Sumup`` / ``Rho`` / ``H`` / ``Comm``).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, Optional


class Stopwatch:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Stopwatch() as sw:
    ...     pass
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start


class PhaseTimer:
    """Accumulate wall time per named phase across repeated visits.

    The same phase may be entered many times (once per SCF/CPSCF cycle);
    totals and visit counts accumulate.
    """

    def __init__(self) -> None:
        self._totals: "OrderedDict[str, float]" = OrderedDict()
        self._counts: Dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one visit of *name*."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._totals[name] = self._totals.get(name, 0.0) + elapsed
            self._counts[name] = self._counts.get(name, 0) + 1

    def add(self, name: str, seconds: float, visits: int = 1) -> None:
        """Record externally-measured (e.g. model-predicted) time."""
        if seconds < 0.0:
            raise ValueError(f"negative phase time for {name!r}: {seconds}")
        self._totals[name] = self._totals.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + visits

    def total(self, name: str) -> float:
        """Accumulated seconds for one phase (0.0 if never visited)."""
        return self._totals.get(name, 0.0)

    def visits(self, name: str) -> int:
        """Number of recorded visits for one phase."""
        return self._counts.get(name, 0)

    @property
    def grand_total(self) -> float:
        """Sum over all phases."""
        return sum(self._totals.values())

    def as_dict(self) -> Dict[str, float]:
        """Phase name -> accumulated seconds, in first-seen order."""
        return dict(self._totals)

    def merge(self, other: "PhaseTimer") -> None:
        """Fold another timer's totals into this one."""
        for name, seconds in other._totals.items():
            self.add(name, seconds, visits=other._counts.get(name, 1))

"""Wall-clock timing helpers used by the SCF/CPSCF drivers and benchmarks.

Two levels are provided:

* :class:`Stopwatch` — a context-manager around one measurement.
* :class:`PhaseTimer` — named, accumulating phase timings mirroring the
  per-phase breakdown the paper's artifact extracts from its output file
  (``DM`` / ``Sumup`` / ``Rho`` / ``H`` / ``Comm``).

When a :class:`~repro.obs.tracer.Tracer` is active (see
:func:`repro.obs.tracer.activate`), every :meth:`PhaseTimer.phase`
visit additionally records a span of category ``"phase"``, which is how
``repro physics --trace`` gets its per-phase timeline without the
drivers being instrumented twice.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.obs.tracer import obs_span


class Stopwatch:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Stopwatch() as sw:
    ...     pass
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start


class PhaseTimer:
    """Accumulate wall time per named phase across repeated visits.

    The same phase may be entered many times (once per SCF/CPSCF cycle);
    totals and visit counts accumulate.

    >>> t = PhaseTimer()
    >>> with t.phase("Sumup"):
    ...     pass
    >>> t.visits("Sumup")
    1
    >>> t.add("DM", 0.5, visits=2)
    >>> sorted(t.as_dict()) == ["DM", "Sumup"]
    True
    """

    def __init__(self) -> None:
        self._totals: "OrderedDict[str, float]" = OrderedDict()
        self._counts: Dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one visit of *name* (and span it when a tracer is active).

        >>> t = PhaseTimer()
        >>> with t.phase("H"):
        ...     pass
        >>> t.total("H") >= 0.0
        True
        """
        start = time.perf_counter()
        try:
            with obs_span(name, category="phase"):
                yield
        finally:
            elapsed = time.perf_counter() - start
            self._totals[name] = self._totals.get(name, 0.0) + elapsed
            self._counts[name] = self._counts.get(name, 0) + 1

    def add(self, name: str, seconds: float, visits: int = 1) -> None:
        """Record externally-measured (e.g. model-predicted) time.

        >>> t = PhaseTimer()
        >>> t.add("Comm", 1.5)
        >>> t.total("Comm")
        1.5
        """
        if seconds < 0.0:
            raise ValueError(f"negative phase time for {name!r}: {seconds}")
        self._totals[name] = self._totals.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + visits

    def total(self, name: str) -> float:
        """Accumulated seconds for one phase (0.0 if never visited).

        >>> PhaseTimer().total("DM")
        0.0
        """
        return self._totals.get(name, 0.0)

    def visits(self, name: str) -> int:
        """Number of recorded visits for one phase.

        >>> PhaseTimer().visits("DM")
        0
        """
        return self._counts.get(name, 0)

    @property
    def grand_total(self) -> float:
        """Sum over all phases.

        >>> t = PhaseTimer()
        >>> t.add("DM", 1.0); t.add("H", 2.0)
        >>> t.grand_total
        3.0
        """
        return sum(self._totals.values())

    def as_dict(self) -> Dict[str, float]:
        """Phase name -> accumulated seconds, in first-seen order.

        >>> t = PhaseTimer()
        >>> t.add("DM", 1.0)
        >>> t.as_dict()
        {'DM': 1.0}
        """
        return dict(self._totals)

    def merge(self, other: "PhaseTimer") -> None:
        """Fold another timer's totals into this one.

        >>> a, b = PhaseTimer(), PhaseTimer()
        >>> a.add("DM", 1.0); b.add("DM", 2.0)
        >>> a.merge(b)
        >>> a.total("DM"), a.visits("DM")
        (3.0, 2)
        """
        for name, seconds in other._totals.items():
            self.add(name, seconds, visits=other._counts.get(name, 1))

"""Plain-text report formatting shared by examples and the bench harness.

The paper's figures are reproduced as printed series; these helpers keep
the output uniform (fixed-width tables, human-readable byte/second units).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.backends.base import BackendProfile
    from repro.verify.invariants import VerifyReport


def format_bytes(n: float) -> str:
    """Render a byte count with binary units, e.g. ``21373.0 KB``-style.

    Values are shown in the largest unit that keeps the mantissa >= 1.
    """
    n = float(n)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(n) < 1024.0 or unit == "TB":
            return f"{n:.1f} {unit}"
        n /= 1024.0
    raise AssertionError("unreachable")


def format_seconds(s: float) -> str:
    """Render seconds with an adaptive unit (us/ms/s/min)."""
    if s < 0:
        raise ValueError(f"negative duration: {s}")
    if s < 1e-3:
        return f"{s * 1e6:.1f} us"
    if s < 1.0:
        return f"{s * 1e3:.2f} ms"
    if s < 120.0:
        return f"{s:.3f} s"
    return f"{s / 60.0:.2f} min"


def format_backend_profile(profile: "BackendProfile") -> str:
    """Render a backend's per-phase profile as a fixed-width table.

    One row per phase (calls, elements processed, wall seconds), plus
    block-cache and device-launch summary lines when those counters are
    live — the CLI's per-phase observability of the DM/Sumup/H work.
    """
    table = TableFormatter(
        ["phase", "calls", "elements", "wall"],
        title=f"backend profile [{profile.backend}]",
    )
    for name, stats in profile.phases.items():
        table.add_row(
            [name, stats.calls, f"{stats.elements:,}", format_seconds(stats.seconds)]
        )
    lines = [table.render()]
    if profile.cache_hits or profile.cache_misses:
        total = profile.cache_hits + profile.cache_misses
        lines.append(
            f"block cache: {profile.cache_hits}/{total} hits, "
            f"{profile.cache_evictions} evictions, "
            f"peak {format_bytes(profile.cache_peak_bytes)} "
            f"(bound {format_bytes(profile.cache_max_bytes)})"
        )
    if profile.device_launches:
        lines.append(
            f"device: {profile.device_launches} launches, "
            f"{format_seconds(profile.device_modeled_seconds)} modeled, "
            f"{format_bytes(profile.device_bytes_transferred)} transferred"
        )
    if profile.screen_blocks_evaluated or profile.screen_blocks_skipped:
        dense = profile.screen_blocks_evaluated + profile.screen_blocks_skipped
        lines.append(
            f"screening: {profile.screen_blocks_evaluated:,}/{dense:,} "
            f"blocks evaluated ({profile.screen_blocks_skipped:,} skipped, "
            f"fill {profile.screen_fill_fraction:.3f})"
        )
    return "\n".join(lines)


def format_verify_report(report: "VerifyReport") -> str:
    """Render an invariant-verification report as a fixed-width table.

    One row per evaluated check (phase, tolerance class, residual,
    tolerance, status), a summary line, and — when anything failed —
    one detail line per failure so a regression names the exact
    invariant that broke.
    """
    table = TableFormatter(
        ["invariant", "phase", "class", "residual", "tolerance", "status"],
        title=f"verification report [level={report.level}]",
    )
    for r in report.results:
        table.add_row(
            [
                r.name,
                r.phase,
                r.tol_class,
                f"{r.residual:.3e}",
                f"{r.tolerance:.1e}",
                r.status,
            ]
        )
    n = len(report.results)
    n_fail = len(report.failures)
    lines = [table.render()]
    lines.append(
        f"{n - n_fail}/{n} checks passed"
        + ("" if report.ok else f"; FAILED: {', '.join(report.failed_names)}")
    )
    for r in report.failures:
        if r.detail:
            lines.append(f"  {r.name}: {r.detail}")
    return "\n".join(lines)


class TableFormatter:
    """Fixed-width text tables for experiment output.

    >>> t = TableFormatter(["a", "b"])
    >>> t.add_row([1, "x"])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, values: Iterable[object]) -> None:
        row = [str(v) for v in values]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

#!/usr/bin/env python
"""Fail when an audited public module/class/function lacks a docstring.

Part of ``make docs-check`` (DESIGN §10.7); the audited module list
lives in :mod:`repro.testing.docs`.  Run from the repo root::

    PYTHONPATH=src python tools/check_docstrings.py
"""

from __future__ import annotations

import sys

from repro.testing.docs import AUDITED_MODULES, missing_docstrings


def main() -> int:
    offenders = missing_docstrings()
    if offenders:
        print(f"{len(offenders)} public object(s) missing docstrings:")
        for path in offenders:
            print(f"  {path}")
        return 1
    print(f"docstring lint: {len(AUDITED_MODULES)} modules audited, all public "
          "objects documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""The observability layer: tracer, ambient context, metrics, RunReport."""

import json

import pytest

from repro.atoms import hydrogen_molecule
from repro.config import get_settings
from repro.dft import SCFDriver
from repro.obs import (
    MetricsRegistry,
    RunReport,
    Tracer,
    activate,
    current_context,
    current_tracer,
    obs_counter,
    obs_event,
    obs_span,
    trace_context,
)


class TestTracer:
    def test_span_records_duration_and_attrs(self):
        t = Tracer()
        with t.span("Sumup", category="backend", cycle=2) as sp:
            pass
        assert t.spans == [sp]
        assert sp.name == "Sumup"
        assert sp.category == "backend"
        assert sp.attrs == {"cycle": 2}
        assert sp.end >= sp.start >= 0.0

    def test_ambient_context_merges_into_spans(self):
        t = Tracer()
        with activate(t):
            with trace_context(backend="numpy", cycle=1):
                with trace_context(cycle=2):  # inner wins
                    with obs_span("H"):
                        pass
                obs_event("cycle_fault", site="scf[1]")
        assert t.spans[0].attrs == {"backend": "numpy", "cycle": 2}
        fault = t.spans[1]
        assert fault.instant and fault.duration == 0.0
        assert fault.attrs == {"backend": "numpy", "cycle": 1, "site": "scf[1]"}

    def test_context_restored_after_block(self):
        with trace_context(cycle=1):
            pass
        assert current_context() == {}

    def test_helpers_are_noops_without_tracer(self):
        assert current_tracer() is None
        with obs_span("Rho") as sp:
            assert sp is None
        assert obs_event("fault") is None
        obs_counter("bytes", 10)  # must not raise

    def test_activate_restores_previous_tracer(self):
        outer, inner = Tracer(), Tracer()
        with activate(outer):
            with activate(inner):
                assert current_tracer() is inner
            assert current_tracer() is outer
        assert current_tracer() is None

    def test_phase_wall_sums_only_requested_category(self):
        t = Tracer()
        with t.span("density", category="phase"):
            pass
        with t.span("allreduce", category="comm"):
            pass
        assert t.phase_wall("phase") == sum(
            s.duration for s in t.spans_of("phase")
        )
        assert len(t.spans_of("comm")) == 1


class TestMetricsRegistry:
    def test_counter_accumulates_and_rejects_negative(self):
        reg = MetricsRegistry()
        reg.counter("retries").inc()
        reg.counter("retries").inc(4)
        assert reg.counter("retries").value == 5
        with pytest.raises(ValueError):
            reg.counter("retries").inc(-1)

    def test_snapshot_is_sorted_and_json_stable(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        # Register in opposite orders: snapshots must still match.
        for reg, order in ((a, ("z", "a")), (b, ("a", "z"))):
            for name in order:
                reg.counter(name).inc(3)
            reg.gauge("peak").set_max(7.0)
            reg.histogram("batch").observe(100.0)
        assert json.dumps(a.as_dict()) == json.dumps(b.as_dict())
        assert a.names() == ["a", "batch", "peak", "z"]

    def test_merge_folds_accumulations(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        b.gauge("peak").set(9.0)
        b.histogram("batch").observe(1.0)
        a.merge(b)
        assert a.counter("n").value == 5
        assert a.gauge("peak").value == 9.0
        assert a.histogram("batch").count == 1


def _traced_scf(backend: str) -> Tracer:
    tracer = Tracer()
    with activate(tracer):
        SCFDriver(
            hydrogen_molecule(), get_settings("minimal"), backend=backend
        ).run()
    return tracer


class TestCrossBackendDeterminism:
    """Metric values depend only on the work, never on the clock."""

    def test_same_backend_repeat_is_bit_identical(self):
        first = _traced_scf("numpy").metrics.as_dict()
        second = _traced_scf("numpy").metrics.as_dict()
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_shared_work_counters_identical_across_backends(self):
        # The backends are bit-exact over the same batch schedule, so
        # the per-phase work counters must agree exactly; only the
        # backend-private counters (cache hits, launches) may differ.
        snaps = {b: _traced_scf(b).metrics.as_dict() for b in ("numpy", "batched")}
        shared = [
            f"backend.{phase}.{leaf}"
            for phase in ("Sumup", "H")
            for leaf in ("calls", "elements")
        ]
        for key in shared:
            assert (
                snaps["numpy"]["counters"][key]
                == snaps["batched"]["counters"][key]
            ), key

    def test_batched_backend_emits_cache_counters(self):
        counters = _traced_scf("batched").metrics.as_dict()["counters"]
        assert counters.get("backend.cache.misses", 0) > 0


class TestRunReport:
    def test_from_run_unifies_tracer_and_provenance(self):
        tracer = Tracer()
        with tracer.span("density", category="phase"):
            pass
        tracer.metrics.counter("comm.bytes_reduced").inc(512)
        report = RunReport.from_run("unit", tracer=tracer, seed=7, note="x")
        doc = report.as_dict()
        assert doc["trace"]["spans"] == 1
        assert doc["metrics"]["counters"]["comm.bytes_reduced"] == 512
        assert doc["extra"] == {"note": "x"}
        assert doc["provenance"]["seed"] == 7
        # JSON round-trip must be loadable and stable.
        assert json.loads(report.to_json())["label"] == "unit"

    def test_render_ascii_includes_every_section(self):
        tracer = Tracer()
        tracer.metrics.counter("backend.Sumup.calls").inc(8)
        report = RunReport.from_run("unit", tracer=tracer)
        report.phase_seconds = {"Sumup": 0.5, "H": 0.25}
        art = report.render_ascii()
        assert "run report [unit]" in art
        assert "Sumup" in art and "backend.Sumup.calls" in art
        assert "> provenance:" in art

    def test_write_artifact(self, tmp_path):
        path = RunReport(label="t", phase_seconds={"H": 1.0}).write(
            tmp_path / "report.json"
        )
        doc = json.loads(path.read_text())
        assert doc["wall_seconds"] == 1.0

"""The perf-regression gate: tolerance bands, baseline comparison, CLI."""

import json

import pytest

from repro.cli import main as cli_main
from repro.errors import ExperimentError
from repro.obs.bench import backend_emission
from repro.obs.regress import (
    Band,
    baseline_run_parameters,
    compare_reports,
    default_band,
    flatten,
    load_baseline,
)


class TestBands:
    def test_exact_band(self):
        band = Band("exact")
        assert band.allows(8, 8)
        assert not band.allows(8, 9)

    def test_slowdown_band_is_one_sided(self):
        band = Band("slowdown", 2.0)
        assert band.allows(baseline=1.0, fresh=0.1)  # faster always passes
        assert band.allows(baseline=1.0, fresh=2.9)
        assert not band.allows(baseline=1.0, fresh=3.1)

    def test_floor_band_is_one_sided(self):
        band = Band("floor", 3.0)
        assert band.allows(baseline=9.0, fresh=100.0)  # higher always passes
        assert band.allows(baseline=9.0, fresh=3.5)
        assert not band.allows(baseline=9.0, fresh=2.9)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ExperimentError):
            Band("fuzzy").allows(1.0, 1.0)

    def test_default_band_policy(self):
        assert default_band("backends.numpy.profile.phases.H.calls").kind == "exact"
        assert default_band("backends.batched.wall_seconds").kind == "slowdown"
        assert default_band("backends.device.speedup_vs_numpy").kind == "floor"
        assert default_band("model.modeled_seconds").kind == "relative"
        # Per-phase micro-times get a wider band than the aggregate wall.
        phase = default_band("backends.device.profile.phases.Sumup.seconds")
        wall = default_band("backends.device.wall_seconds")
        assert phase.kind == "slowdown" and phase.tol > wall.tol


class TestFlatten:
    def test_numeric_leaves_only(self):
        doc = {
            "a": {"b": 2, "label": "x"},
            "ok": True,  # bools are not measurements
            "wall": 0.5,
        }
        assert flatten(doc) == {"a.b": 2.0, "wall": 0.5}


class TestCompareReports:
    BASE = {
        "n_sweeps": 8,
        "backends": {
            "numpy": {"wall_seconds": 1.0, "profile": {"calls": 16}},
            "batched": {"wall_seconds": 0.1, "speedup_vs_numpy": 10.0},
        },
    }

    def test_identical_reports_pass(self):
        report = compare_reports(json.loads(json.dumps(self.BASE)), self.BASE)
        assert report.ok
        assert "PASS" in report.render()

    def test_slowdown_beyond_tolerance_fails_naming_metric(self):
        fresh = json.loads(json.dumps(self.BASE))
        fresh["backends"]["batched"]["wall_seconds"] = 0.9  # 9x slower
        report = compare_reports(fresh, self.BASE)
        assert not report.ok
        offenders = [d.key for d in report.offenders]
        assert offenders == ["backends.batched.wall_seconds"]
        assert "backends.batched.wall_seconds" in report.render()
        assert "FAIL" in report.render()

    def test_in_band_slowdown_passes(self):
        fresh = json.loads(json.dumps(self.BASE))
        fresh["backends"]["batched"]["wall_seconds"] = 0.25  # 2.5x < 3x band
        assert compare_reports(fresh, self.BASE).ok

    def test_perturbed_work_counter_fails_exactly(self):
        fresh = json.loads(json.dumps(self.BASE))
        fresh["backends"]["numpy"]["profile"]["calls"] = 17
        report = compare_reports(fresh, self.BASE)
        assert [d.key for d in report.offenders] == [
            "backends.numpy.profile.calls"
        ]

    def test_vanished_metric_is_a_regression(self):
        fresh = json.loads(json.dumps(self.BASE))
        del fresh["backends"]["batched"]["speedup_vs_numpy"]
        report = compare_reports(fresh, self.BASE)
        assert [d.key for d in report.offenders] == [
            "backends.batched.speedup_vs_numpy"
        ]

    def test_new_metric_passes(self):
        fresh = json.loads(json.dumps(self.BASE))
        fresh["backends"]["device"] = {"wall_seconds": 0.01}
        assert compare_reports(fresh, self.BASE).ok

    def test_missing_baseline_file(self, tmp_path):
        with pytest.raises(ExperimentError):
            load_baseline(tmp_path / "nope.json")

    def test_baseline_run_parameters(self):
        assert baseline_run_parameters({"level": "light", "n_sweeps": 8}) == (
            "light",
            8,
        )
        with pytest.raises(ExperimentError):
            baseline_run_parameters({"level": "light"})


@pytest.fixture(scope="module")
def emission():
    """One real (tiny) benchmark emission shared by the gate tests."""
    return backend_emission("minimal", 1)


class TestEmissionGate:
    def test_emission_carries_parameters_and_provenance(self, emission):
        assert emission["level"] == "minimal"
        assert emission["n_sweeps"] == 1
        assert set(emission["backends"]) == {"numpy", "batched", "device"}
        assert emission["provenance"]["seed"] == 2023

    def test_emission_vs_itself_passes(self, emission):
        assert compare_reports(emission, emission).ok

    def test_injected_slowdown_fails_gate(self, emission):
        slow = json.loads(json.dumps(emission))
        slow["backends"]["batched"]["timings"]["wall_seconds"] *= 10.0
        report = compare_reports(slow, emission)
        assert not report.ok
        assert "backends.batched.timings.wall_seconds" in [
            d.key for d in report.offenders
        ]


def _relaxed_baseline(emission: dict) -> dict:
    """A timing-jitter-proof baseline: deterministic counters stay exact,
    wall/speedup bands get extra slack for a re-run on a loaded machine."""
    doc = json.loads(json.dumps(emission))
    for entry in doc["backends"].values():
        entry["timings"]["wall_seconds"] *= 4.0
        entry["timings"]["speedup_vs_numpy"] /= 4.0
        for stats in entry["timings"]["phases"].values():
            stats["seconds"] *= 4.0
    doc["timings"]["batched_speedup_vs_numpy"] /= 4.0
    return doc


class TestBenchCheckCLI:
    def test_passes_against_committed_style_baseline(
        self, emission, tmp_path, capsys
    ):
        baseline = tmp_path / "BENCH_backends.json"
        baseline.write_text(json.dumps(_relaxed_baseline(emission)))
        rc = cli_main(["bench-check", "--baseline", str(baseline)])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "PASS" in out

    def test_perturbed_counter_exits_nonzero_naming_metric(
        self, emission, tmp_path, capsys
    ):
        doc = _relaxed_baseline(emission)
        doc["backends"]["numpy"]["profile"]["phases"]["Sumup"]["calls"] += 1
        baseline = tmp_path / "BENCH_perturbed.json"
        baseline.write_text(json.dumps(doc))
        rc = cli_main(["bench-check", "--baseline", str(baseline)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "backends.numpy.profile.phases.Sumup.calls" in out
        assert "FAIL" in out

"""Property-based tests of Algorithm 1 on random 3-D point clouds.

The chain tests in test_mapping.py cover the paper's geometry; these
verify the invariants hold for arbitrary (globular, anisotropic,
clustered) batch clouds.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.grids.batching import GridBatch
from repro.mapping.strategies import (
    load_balancing_mapping,
    locality_enhancing_mapping,
)


def _random_batches(rng: np.random.Generator, n: int, clustered: bool) -> list:
    if clustered:
        n_clusters = max(2, n // 20)
        centers = rng.uniform(-50, 50, size=(n_clusters, 3))
        which = rng.integers(0, n_clusters, size=n)
        pos = centers[which] + rng.normal(scale=2.0, size=(n, 3))
    else:
        pos = rng.uniform(-50, 50, size=(n, 3))
    points = rng.integers(50, 300, size=n)
    return [
        GridBatch(
            index=i,
            point_indices=np.empty(int(points[i]), dtype=np.int64),
            centroid=pos[i],
            radius=2.0,
            owner_atoms=(i % max(1, n // 4),),
            relevant_atoms=(i % max(1, n // 4),),
        )
        for i in range(n)
    ]


class TestAlgorithm1Properties:
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(16, 200),
        ranks=st.sampled_from([2, 3, 4, 7, 8, 16]),
        clustered=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_partition_and_balance(self, seed, n, ranks, clustered):
        rng = np.random.default_rng(seed)
        batches = _random_batches(rng, n, clustered)
        a = locality_enhancing_mapping(batches, ranks)
        # Exact partition.
        owned = sorted(b for r in a.batches_of_rank for b in r)
        assert owned == list(range(n))
        # Every rank owns at least one batch.
        assert all(len(r) >= 1 for r in a.batches_of_rank)
        # Point balance within a factor of ~3 even adversarially
        # (pivot splits by points with batch granularity).
        pts = a.points_per_rank(batches)
        assert pts.max() <= 3.5 * max(pts.mean(), 1.0)

    @given(seed=st.integers(0, 10_000), ranks=st.sampled_from([4, 8]))
    @settings(max_examples=20, deadline=None)
    def test_locality_beats_scatter_spatially(self, seed, ranks):
        """Per-rank centroid spread: Algorithm 1 << least-loaded."""
        rng = np.random.default_rng(seed)
        batches = _random_batches(rng, 120, clustered=False)

        def mean_spread(assignment):
            spreads = []
            for owned in assignment.batches_of_rank:
                pos = np.array([batches[b].centroid for b in owned])
                spreads.append(np.linalg.norm(pos - pos.mean(0), axis=1).mean())
            return float(np.mean(spreads))

        s_lo = mean_spread(locality_enhancing_mapping(batches, ranks))
        s_ex = mean_spread(load_balancing_mapping(batches, ranks))
        assert s_lo < s_ex

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_deterministic(self, seed):
        rng = np.random.default_rng(seed)
        batches = _random_batches(rng, 64, clustered=True)
        a1 = locality_enhancing_mapping(batches, 8)
        a2 = locality_enhancing_mapping(batches, 8)
        assert a1.batches_of_rank == a2.batches_of_rank


class TestModelInvariants:
    """Cost-model sanity that must hold for any calibration."""

    def test_allreduce_cost_monotone_in_everything(self):
        from repro.runtime import CommCostModel, HPC1_SUNWAY, HPC2_AMD

        for machine in (HPC1_SUNWAY, HPC2_AMD):
            cost = CommCostModel(machine)
            assert cost.allreduce(1024, 2**20) > cost.allreduce(1024, 2**10)
            assert cost.allreduce(4096, 2**20) > cost.allreduce(256, 2**20)
            assert cost.allreduce(1, 2**20) == 0.0

    def test_device_estimate_additive_in_items(self):
        from repro.ocl import Device, Kernel, NDRange
        from repro.runtime import HPC2_AMD

        dev = Device(HPC2_AMD.accelerator)
        k = Kernel("k", flops_per_item=1e4, bytes_read_per_item=32)
        t1 = dev.estimate(k, NDRange(100, 64))
        t2 = dev.estimate(k, NDRange(200, 64))
        # Compute+stream double; launch overhead does not.
        assert t2.compute_time == pytest.approx(2 * t1.compute_time)
        assert t2.stream_time == pytest.approx(2 * t1.stream_time)
        assert t2.launch_overhead == t1.launch_overhead

    def test_dense_local_crossover(self):
        """Dense-local memory shrinks with ranks and beats the replicated
        CSR once ranks are numerous — at very low rank counts a rank's
        local block can legitimately exceed the sparse global matrix
        (which is exactly why the paper needs many ranks + locality)."""
        from repro.atoms import polyethylene
        from repro.config import get_settings
        from repro.core.workload import build_workload, synthetic_batches
        from repro.mapping import HamiltonianMemoryModel

        structure = polyethylene(60)
        workload = build_workload(structure, get_settings("light"))
        batches = synthetic_batches(workload)
        model = HamiltonianMemoryModel(structure)
        csr = model.global_sparse_csr_bytes()
        maxima = []
        for ranks in (2, 5, 13):
            a = locality_enhancing_mapping(batches, ranks)
            maxima.append(int(model.dense_local_bytes(a, batches).max()))
        assert maxima[0] > maxima[1] > maxima[2]  # shrinks with ranks
        assert maxima[-1] < csr / 5  # clear win once ranks are plentiful

"""The physics-invariant registry and its driver hooks (DESIGN §9.1)."""

import numpy as np
import pytest

from repro.atoms import hydrogen_molecule
from repro.config import get_settings
from repro.core import PerturbationSimulator
from repro.errors import VerificationError
from repro.utils.reports import format_verify_report
from repro.verify import InvariantResult, Verifier, VerifyReport
from repro.verify.invariants import (
    BIT_EXACT,
    PHASES,
    VERIFY_LEVELS,
    all_invariants,
    invariants_for,
)


class TestRegistry:
    def test_names_unique_and_phases_valid(self):
        invs = all_invariants()
        names = [i.name for i in invs]
        assert len(names) == len(set(names))
        assert {i.phase for i in invs} <= set(PHASES)
        assert len(invs) >= 15

    def test_bit_exact_checks_have_zero_tolerance(self):
        for inv in all_invariants():
            if inv.tol_class == BIT_EXACT:
                assert inv.tolerance == 0.0

    def test_cheap_subset_of_full(self):
        for phase in PHASES:
            cheap = {i.name for i in invariants_for(phase, "cheap")}
            full = {i.name for i in invariants_for(phase, "full")}
            assert cheap <= full
        assert invariants_for("scf", "off") == ()

    def test_full_strictly_larger_somewhere(self):
        n_cheap = sum(len(invariants_for(p, "cheap")) for p in PHASES)
        n_full = sum(len(invariants_for(p, "full")) for p in PHASES)
        assert n_full > n_cheap

    def test_unknown_level_rejected(self):
        with pytest.raises(VerificationError):
            invariants_for("scf", "paranoid")


class TestVerifier:
    def test_from_level_off_is_none(self):
        assert Verifier.from_level("off") is None
        for level in ("cheap", "full"):
            v = Verifier.from_level(level)
            assert v is not None and v.level == level

    def test_bad_level_rejected(self):
        with pytest.raises(VerificationError):
            Verifier("off")
        with pytest.raises(VerificationError):
            Verifier.from_level("nope")

    def test_missing_context_is_a_failure_not_a_crash(self):
        v = Verifier("cheap")
        results = v.run_phase("integrals")  # no overlap/dipoles supplied
        assert results and all(not r.passed for r in results)
        assert all(r.residual == float("inf") for r in results)
        assert any("missing" in r.detail for r in results)

    def test_raise_on_failure_names_the_check(self):
        report = VerifyReport(level="cheap")
        report.add(
            InvariantResult(
                name="dm_trace",
                phase="scf",
                tol_class="allclose",
                residual=1.0,
                tolerance=1e-8,
                passed=False,
            )
        )
        with pytest.raises(VerificationError, match="dm_trace"):
            report.raise_on_failure()


class TestHonestRun:
    """An unmutated pipeline must pass every invariant at every level."""

    @pytest.fixture(scope="class")
    def full_result(self):
        settings = get_settings("minimal", verify="full")
        return PerturbationSimulator(hydrogen_molecule(), settings).run_physics()

    def test_off_produces_no_report(self):
        settings = get_settings("minimal")  # verify defaults to "off"
        result = PerturbationSimulator(hydrogen_molecule(), settings).run_physics()
        assert result.verify_report is None

    def test_full_run_all_checks_pass(self, full_result):
        report = full_result.verify_report
        assert report is not None and report.level == "full"
        assert report.ok, report.render()
        # Every phase boundary actually fired.
        assert {r.phase for r in report.results} == set(PHASES)
        # Three CPSCF directions each re-ran the cpscf checks.
        n_cpscf = len(invariants_for("cpscf", "full"))
        assert sum(r.phase == "cpscf" for r in report.results) == 3 * n_cpscf

    def test_cheap_run_skips_full_checks(self):
        settings = get_settings("minimal", verify="cheap")
        result = PerturbationSimulator(hydrogen_molecule(), settings).run_physics()
        report = result.verify_report
        assert report.ok, report.render()
        names = {r.name for r in report.results}
        assert "scf_stationarity" not in names
        assert "density_consistency" not in names
        assert "dm_idempotent" in names

    def test_report_renders_with_summary(self, full_result):
        text = format_verify_report(full_result.verify_report)
        n = len(full_result.verify_report.results)
        assert f"{n}/{n} checks passed" in text
        assert "dm_trace" in text and "bit-exact" in text

    def test_physical_residuals_are_small(self, full_result):
        by_name = {}
        for r in full_result.verify_report.results:
            by_name.setdefault(r.name, r)
        assert by_name["overlap_hermitian"].residual == 0.0
        assert by_name["charge_integration"].residual < 1e-10
        assert by_name["polarizability_symmetric"].residual < 1e-10


class TestDetectsBrokenInputs:
    """Handing a corrupted quantity to the right phase flags the check."""

    def test_asymmetric_overlap_fails_hermiticity(self):
        v = Verifier("cheap")
        s = np.eye(4)
        s[0, 1] = 1e-9  # asymmetric by one ULP-scale element
        v.run_phase("integrals", overlap=s, dipoles=np.zeros((3, 4, 4)))
        assert "overlap_hermitian" in v.report.failed_names

    def test_collapsed_basis_fails_positive_definiteness(self):
        v = Verifier("cheap")
        s = np.ones((3, 3))  # rank-1: two zero eigenvalues... and symmetric
        s = s - 0.5 * np.eye(3)  # make it indefinite
        v.run_phase("integrals", overlap=s, dipoles=np.zeros((3, 3, 3)))
        assert "overlap_positive_definite" in v.report.failed_names

    def test_asymmetric_alpha_fails_symmetry(self):
        v = Verifier("cheap")
        alpha = np.diag([3.0, 3.0, 4.0])
        alpha[0, 1] = 0.1
        v.run_phase("polarizability", polarizability=alpha)
        assert "polarizability_symmetric" in v.report.failed_names

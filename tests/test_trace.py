"""Per-rank cycle timelines."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.runtime import CycleTrace, Interval, trace_cycle

PHASES = {"DM": 1.0, "Sumup": 2.0, "Rho": 1.0, "H": 2.0, "Comm": 0.5}


class TestTraceCycle:
    def test_balanced_ranks_fully_utilized(self):
        trace = trace_cycle(PHASES, [100, 100, 100, 100])
        assert trace.utilization() == pytest.approx(1.0)
        assert trace.imbalance() == pytest.approx(1.0)
        assert trace.span == pytest.approx(sum(PHASES.values()))

    def test_imbalanced_ranks_idle(self):
        trace = trace_cycle(PHASES, [100, 50])
        assert trace.utilization() < 1.0
        assert trace.imbalance() > 1.0
        # The light rank's grid phases are half as long.
        sumup = {iv.rank: iv.duration for iv in trace.intervals if iv.phase == "Sumup"}
        assert sumup[1] == pytest.approx(0.5 * sumup[0])

    def test_dm_uniform_across_ranks(self):
        trace = trace_cycle(PHASES, [100, 25])
        dm = {iv.rank: iv.duration for iv in trace.intervals if iv.phase == "DM"}
        assert dm[0] == pytest.approx(dm[1])

    def test_comm_synchronizes(self):
        trace = trace_cycle(PHASES, [100, 10])
        comm = [iv for iv in trace.intervals if iv.phase == "Comm"]
        starts = {iv.start for iv in comm}
        assert len(starts) == 1  # everyone enters together
        compute_end = max(
            iv.end for iv in trace.intervals if iv.phase != "Comm"
        )
        assert comm[0].start == pytest.approx(compute_end)

    def test_render_ascii(self):
        trace = trace_cycle(PHASES, [100, 60, 30])
        art = trace.render_ascii(width=40)
        assert "rank    0" in art and "legend:" in art

    def test_validation(self):
        with pytest.raises(ExperimentError):
            trace_cycle(PHASES, [])
        with pytest.raises(ExperimentError):
            trace_cycle(PHASES, [0, 0])

    def test_empty_phases(self):
        trace = CycleTrace(n_ranks=2, intervals=[])
        assert trace.span == 0.0
        assert trace.render_ascii() == "(empty trace)"

    def test_interval_duration(self):
        iv = Interval(0, "DM", 1.0, 3.5)
        assert iv.duration == pytest.approx(2.5)

"""Per-rank cycle timelines."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.runtime import CycleTrace, Interval, trace_cycle

PHASES = {"DM": 1.0, "Sumup": 2.0, "Rho": 1.0, "H": 2.0, "Comm": 0.5}


class TestTraceCycle:
    def test_balanced_ranks_fully_utilized(self):
        trace = trace_cycle(PHASES, [100, 100, 100, 100])
        assert trace.utilization() == pytest.approx(1.0)
        assert trace.imbalance() == pytest.approx(1.0)
        assert trace.span == pytest.approx(sum(PHASES.values()))

    def test_imbalanced_ranks_idle(self):
        trace = trace_cycle(PHASES, [100, 50])
        assert trace.utilization() < 1.0
        assert trace.imbalance() > 1.0
        # The light rank's grid phases are half as long.
        sumup = {iv.rank: iv.duration for iv in trace.intervals if iv.phase == "Sumup"}
        assert sumup[1] == pytest.approx(0.5 * sumup[0])

    def test_dm_uniform_across_ranks(self):
        trace = trace_cycle(PHASES, [100, 25])
        dm = {iv.rank: iv.duration for iv in trace.intervals if iv.phase == "DM"}
        assert dm[0] == pytest.approx(dm[1])

    def test_comm_synchronizes(self):
        trace = trace_cycle(PHASES, [100, 10])
        comm = [iv for iv in trace.intervals if iv.phase == "Comm"]
        starts = {iv.start for iv in comm}
        assert len(starts) == 1  # everyone enters together
        compute_end = max(
            iv.end for iv in trace.intervals if iv.phase != "Comm"
        )
        assert comm[0].start == pytest.approx(compute_end)

    def test_render_ascii(self):
        trace = trace_cycle(PHASES, [100, 60, 30])
        art = trace.render_ascii(width=40)
        assert "rank    0" in art and "legend:" in art

    def test_render_ascii_elision_marker(self):
        # Regression: elided ranks used to disappear without a count.
        trace = trace_cycle(PHASES, [100] * 12)
        art = trace.render_ascii(width=40, max_ranks=8)
        assert "... (+4 ranks elided)" in art
        assert art.count("rank ") == 8
        # No marker when every rank fits.
        assert "elided" not in trace.render_ascii(width=40, max_ranks=12)

    def test_render_ascii_legend_covers_elided_phases(self):
        # A phase that occurs only on an elided rank must still be in
        # the legend — nothing about hidden rows is silently dropped.
        intervals = [
            Interval(0, "DM", 0.0, 1.0),
            Interval(1, "Retry", 0.0, 1.0),
        ]
        trace = CycleTrace(n_ranks=2, intervals=intervals)
        art = trace.render_ascii(width=20, max_ranks=1)
        assert "... (+1 ranks elided)" in art
        assert "R=Retry" in art

    def test_validation(self):
        with pytest.raises(ExperimentError):
            trace_cycle(PHASES, [])
        with pytest.raises(ExperimentError):
            trace_cycle(PHASES, [0, 0])

    def test_empty_phases(self):
        trace = CycleTrace(n_ranks=2, intervals=[])
        assert trace.span == 0.0
        assert trace.render_ascii() == "(empty trace)"

    def test_interval_duration(self):
        iv = Interval(0, "DM", 1.0, 3.5)
        assert iv.duration == pytest.approx(2.5)


class TestEdgeCases:
    """utilization()/imbalance() on degenerate traces."""

    def test_zero_span_cycle(self):
        trace = CycleTrace(
            n_ranks=2,
            intervals=[Interval(0, "DM", 0.0, 0.0), Interval(1, "DM", 0.0, 0.0)],
        )
        assert trace.span == 0.0
        assert trace.utilization() == 1.0  # no time elapsed = no idle time
        with pytest.raises(ExperimentError):
            trace.imbalance()

    def test_single_rank(self):
        trace = trace_cycle({"DM": 1.0, "Comm": 0.5}, [42])
        assert trace.n_ranks == 1
        assert trace.utilization() == pytest.approx(1.0)
        assert trace.imbalance() == pytest.approx(1.0)

    def test_empty_interval_list(self):
        trace = CycleTrace(n_ranks=3, intervals=[])
        assert trace.utilization() == 1.0
        with pytest.raises(ExperimentError):
            trace.imbalance()

    def test_zero_ranks_rejected(self):
        trace = CycleTrace(n_ranks=0, intervals=[])
        with pytest.raises(ExperimentError):
            trace.utilization()
        with pytest.raises(ExperimentError):
            trace.imbalance()


class TestFaultIntervals:
    def test_retry_and_idle_intervals_appended(self):
        from repro.runtime import FaultEvent

        base = trace_cycle(PHASES, [100, 100])
        events = [
            FaultEvent(kind="message_corruption", site="allreduce[0]", rank=0,
                       delay=0.25),
            FaultEvent(kind="straggler", site="allreduce[1]", rank=1, delay=0.5),
            FaultEvent(kind="collective_error", site="bcast[2]", delay=0.0),
        ]
        faulted = base.with_fault_events(events)
        assert base.span == pytest.approx(sum(PHASES.values()))  # unchanged
        assert faulted.span == pytest.approx(base.span + 0.25 + 0.5)
        retry = [iv for iv in faulted.intervals if iv.phase == "Retry"]
        idle = [iv for iv in faulted.intervals if iv.phase == "Idle"]
        assert len(retry) == 2  # both ranks stall in backoff
        assert len(idle) == 1  # everyone but the straggler idles
        assert idle[0].rank == 0
        assert faulted.utilization() < base.utilization()
        art = faulted.render_ascii(width=50)
        assert "R=Retry" in art and "I=Idle" in art

    def test_no_delay_events_are_noops(self):
        from repro.runtime import FaultEvent

        base = trace_cycle(PHASES, [10, 10])
        same = base.with_fault_events(
            [FaultEvent(kind="message_drop", site="x", delay=0.0)]
        )
        assert same.span == base.span
        assert len(same.intervals) == len(base.intervals)

"""Mutation smoke tests: every seeded bug must trip >= 1 invariant.

These are the teeth of the verification layer — if a mutation ever
stops being caught, the registry has lost the ability to detect that
whole class of porting bug.
"""

import pytest

from repro.atoms import hydrogen_molecule
from repro.config import get_settings
from repro.dfpt.response import DFPTSolver
from repro.dft.scf import SCFDriver
from repro.errors import CPSCFConvergenceError, VerificationError
from repro.verify import MUTATIONS, MutantBackend, Verifier, flip_xc_kernel_sign
from repro.verify.mutations import BACKEND_MUTATIONS, SCREENING_MUTATIONS

#: Invariants expected to flag each backend mutation (at least these;
#: the assertion is ">= 1 of them", plus "no silent pass overall").
EXPECTED_CATCHERS = {
    "transposed_gather_map": {"density_consistency", "scf_stationarity"},
    "dropped_batch": {"density_consistency", "scf_stationarity"},
    "stale_dm_snapshot": {"density_consistency"},
    "off_by_one_batch_slice": {"density_consistency", "scf_stationarity"},
    "overscreened_block": {"screening_vs_dense"},
}


def _run_mutated(mutation):
    """Full pipeline under one backend mutation, at verify='full'.

    A mutated run may legitimately fail to converge in CPSCF (the wrong
    density makes the fixed point unreachable) — the invariants logged
    up to that point are still the detection record.  Screening-seam
    mutations only bite on the active-block path, so those runs enable
    block-sparse screening.
    """
    settings = get_settings("minimal")
    if mutation in SCREENING_MUTATIONS:
        from repro.grids.sparsity import DEFAULT_SCREENING_THRESHOLD

        settings = get_settings(
            "minimal", screening_threshold=DEFAULT_SCREENING_THRESHOLD
        )
    verifier = Verifier("full")
    driver = SCFDriver(
        hydrogen_molecule(),
        settings,
        backend=MutantBackend(mutation),
        verifier=verifier,
    )
    gs = driver.run()
    solver = DFPTSolver(gs, settings.cpscf, verifier=verifier)
    try:
        for j in range(3):
            solver.solve_direction(j)
    except CPSCFConvergenceError:
        pass
    return verifier.report


class TestBackendMutations:
    def test_every_mutation_is_named(self):
        assert set(BACKEND_MUTATIONS) | {"wrong_xc_sign"} == set(MUTATIONS)

    def test_unknown_mutation_rejected(self):
        with pytest.raises(VerificationError):
            MutantBackend("swapped_loop_order")

    @pytest.mark.parametrize("mutation", BACKEND_MUTATIONS)
    def test_mutation_is_caught(self, mutation):
        report = _run_mutated(mutation)
        failed = set(report.failed_names)
        assert failed, f"{mutation} passed every invariant — no teeth"
        assert failed & EXPECTED_CATCHERS[mutation], (
            f"{mutation} caught by {sorted(failed)}, expected at least one "
            f"of {sorted(EXPECTED_CATCHERS[mutation])}"
        )

    def test_cheap_level_misses_stale_dm(self):
        """Documents the cost tiers: the stale-DM bug is self-consistent
        at the cheap (algebra-only) level and needs the full tier's
        independent re-derivation — exactly why 'full' exists."""
        settings = get_settings("minimal")
        verifier = Verifier("cheap")
        SCFDriver(
            hydrogen_molecule(),
            settings,
            backend=MutantBackend("stale_dm_snapshot"),
            verifier=verifier,
        ).run()
        assert "density_consistency" not in verifier.report.failed_names


class TestXCSignMutation:
    def test_wrong_xc_sign_breaks_cpscf_stationarity(self):
        settings = get_settings("minimal")
        verifier = Verifier("full")
        gs = SCFDriver(hydrogen_molecule(), settings, verifier=verifier).run()
        assert verifier.report.ok  # SCF itself is untouched
        solver = DFPTSolver(gs, settings.cpscf, verifier=verifier)
        flip_xc_kernel_sign(solver)
        try:
            for j in range(3):
                solver.solve_direction(j)
        except CPSCFConvergenceError:
            pass
        assert "cpscf_stationarity" in verifier.report.failed_names

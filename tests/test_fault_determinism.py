"""Cross-process determinism of the FaultPlan decision stream.

The resilience suite's bit-exact recovery assertions rest on one
contract: the same ``(seed, rates, schedule)`` produces the same fault
decisions at the same sites *in any process* — the per-site RNG streams
are seeded by ``(seed, crc32(site), attempt)``, never by interpreter
state, hash randomization or call ordering.  An in-process check cannot
establish that, so the probe also runs in a fresh subprocess.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"

#: Probe shared by the in-process and subprocess runs: a fixed tour of
#: (site, call_index, attempt) decisions under mixed fault rates.
PROBE = """
import json
from repro.runtime.faults import FaultPlan, FaultRates

def decision_stream(seed):
    plan = FaultPlan(
        seed=seed,
        rates=FaultRates(
            message_corruption=0.1,
            straggler=0.15,
            message_drop=0.05,
            cycle_fault=0.2,
        ),
        max_rank_failures=0,
    )
    stream = []
    for site in ("scf/allreduce", "cpscf/gather", "sumup/h_reduce"):
        for call_index in range(25):
            for attempt in range(2):
                ev = plan.collective_fault(
                    site, call_index, attempt, ranks=list(range(8))
                )
                stream.append(
                    None if ev is None else [ev.kind, ev.site, ev.rank]
                )
    for cycle in range(25):
        ev = plan.cycle_fault("scf/cycle", cycle, attempt=0)
        stream.append(None if ev is None else [ev.kind, ev.site])
    return stream
"""

_SUBPROCESS_MAIN = PROBE + """
import sys
print(json.dumps(decision_stream(int(sys.argv[1]))))
"""


def _local_stream(seed):
    scope = {}
    exec(PROBE, scope)
    return scope["decision_stream"](seed)


def _subprocess_stream(seed, extra_args=()):
    out = subprocess.run(
        [sys.executable, *extra_args, "-c", _SUBPROCESS_MAIN, str(seed)],
        capture_output=True,
        text=True,
        check=True,
        env={**os.environ, "PYTHONPATH": str(SRC)},
    )
    return json.loads(out.stdout)


def test_stream_is_reproducible_across_processes():
    seed = 2023
    local = _local_stream(seed)
    remote = _subprocess_stream(seed)
    # JSON-normalize the local stream (tuples/lists) before comparing.
    assert json.loads(json.dumps(local)) == remote
    # The mixed rates actually fire: a silent all-None stream would make
    # this test vacuous.
    assert any(d is not None for d in local)
    assert any(d is None for d in local)


def test_stream_survives_hash_randomization():
    """crc32 site hashing must not inherit PYTHONHASHSEED."""
    seed = 7
    a = _subprocess_stream(seed, extra_args=())
    b = _subprocess_stream(seed, extra_args=("-R",))
    assert a == b


def test_different_seeds_differ():
    assert _local_stream(1) != _local_stream(2)


def test_stream_independent_of_interleaving():
    """Decisions depend only on (site, index, attempt), not the order
    other sites were queried in — the property that lets a recovered
    rank replay its own faults without global coordination."""
    from repro.runtime.faults import FaultPlan, FaultRates

    rates = FaultRates(message_corruption=0.2, straggler=0.2)

    def probe(order):
        plan = FaultPlan(seed=11, rates=rates, max_rank_failures=0)
        decisions = {}
        for site, idx in order:
            ev = plan.collective_fault(site, idx, 0, ranks=[0, 1, 2, 3])
            decisions[(site, idx)] = None if ev is None else ev.kind
        return decisions

    forward = [(s, i) for s in ("a/x", "b/y") for i in range(20)]
    assert probe(forward) == probe(list(reversed(forward)))

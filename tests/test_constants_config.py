"""Units, conversions and settings presets."""

import pytest

from repro import constants
from repro.config import get_settings, GridSettings


class TestConstants:
    def test_bohr_angstrom_roundtrip(self):
        assert constants.angstrom_to_bohr(constants.bohr_to_angstrom(3.7)) == pytest.approx(3.7)

    def test_one_angstrom_in_bohr(self):
        assert constants.angstrom_to_bohr(1.0) == pytest.approx(1.8897, abs=1e-3)

    def test_hartree_in_ev(self):
        assert constants.hartree_to_ev(1.0) == pytest.approx(27.2114, abs=1e-3)

    def test_polarizability_conversion_is_bohr_cubed(self):
        assert constants.POLARIZABILITY_AU_IN_A3 == pytest.approx(
            constants.BOHR_IN_ANGSTROM**3
        )


class TestSettings:
    def test_presets_exist(self):
        for level in ("minimal", "light", "tight"):
            s = get_settings(level)
            assert s.level == level

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError, match="unknown settings level"):
            get_settings("ultra")

    def test_override_top_level(self):
        s = get_settings("light", l_max_hartree=4)
        assert s.l_max_hartree == 4

    def test_with_grids_returns_modified_copy(self):
        s = get_settings("light")
        s2 = s.with_grids(n_angular=26)
        assert s2.grids.n_angular == 26
        assert s.grids.n_angular != 26 or s.grids.n_angular == 50

    def test_with_scf_and_cpscf(self):
        s = get_settings("light").with_scf(max_iterations=5).with_cpscf(mixing_factor=0.2)
        assert s.scf.max_iterations == 5
        assert s.cpscf.mixing_factor == 0.2

    def test_tight_has_finer_grids_than_light(self):
        light, tight = get_settings("light"), get_settings("tight")
        assert tight.grids.n_radial_base > light.grids.n_radial_base
        assert tight.grids.n_angular > light.grids.n_angular

    def test_grid_settings_defaults(self):
        g = GridSettings()
        assert 100 <= g.batch_target_points <= 300  # paper's batch size

"""Differential conformance: backends x mappings x comm schemes."""

import numpy as np
import pytest

from repro.atoms import hydrogen_molecule
from repro.config import get_settings
from repro.errors import VerificationError
from repro.verify import (
    MutantBackend,
    capture_physics_trace,
    classify,
    first_divergent_phase,
    run_conformance,
)
from repro.verify.differential import (
    CLASS_THRESHOLDS,
    COMM_SCHEMES,
    DIVERGENT,
    MAPPING_STRATEGIES,
    _comm_scheme,
    _mapping_fn,
)


class TestClassify:
    def test_thresholds(self):
        assert classify(0.0) == "bit-exact"
        assert classify(1e-12) == "allclose"
        assert classify(1e-9) == "allclose"
        assert classify(1e-6) == "physics"
        assert classify(1e-3) == DIVERGENT
        assert classify(float("inf")) == DIVERGENT
        assert classify(float("nan")) == DIVERGENT

    def test_threshold_table_is_ordered(self):
        values = [t for _, t in CLASS_THRESHOLDS]
        assert values == sorted(values)

    def test_unknown_axis_names_rejected(self):
        with pytest.raises(VerificationError):
            _mapping_fn("round_robin")
        with pytest.raises(VerificationError):
            _comm_scheme("ring")


class TestFirstDivergentPhase:
    def _traces(self):
        a = {
            "integrals/overlap": np.eye(2),
            "scf/density": np.array([1.0, 2.0]),
            "polarizability": np.full((3, 3), 5.0),
        }
        b = {k: v.copy() for k, v in a.items()}
        return a, b

    def test_identical_traces_have_no_divergence(self):
        a, b = self._traces()
        assert first_divergent_phase(a, b) is None

    def test_earliest_phase_wins(self):
        a, b = self._traces()
        b["scf/density"] += 1.0
        b["polarizability"] += 10.0
        hit = first_divergent_phase(a, b)
        assert hit == ("scf/density", 1.0)

    def test_shape_mismatch_is_infinite(self):
        a, b = self._traces()
        b["scf/density"] = np.zeros(3)
        phase, diff = first_divergent_phase(a, b)
        assert phase == "scf/density" and diff == float("inf")

    def test_mismatched_keys_rejected(self):
        a, b = self._traces()
        del b["scf/density"]
        with pytest.raises(VerificationError):
            first_divergent_phase(a, b)


class TestConformanceMatrix:
    @pytest.fixture(scope="class")
    def report(self):
        return run_conformance(hydrogen_molecule(), level="minimal", n_ranks=4)

    def test_full_matrix_conforms(self, report):
        assert report.ok, report.render()

    def test_matrix_covers_every_axis(self, report):
        combo = [p for p in report.pairs if p.axis == "backend x mapping x comm"]
        labels = {p.a for p in combo}
        # 3 backends x 2 mappings x 3 comm schemes
        assert len(labels) == 3 * len(MAPPING_STRATEGIES) * len(COMM_SCHEMES)
        backend_pairs = [p for p in report.pairs if p.axis == "backend"]
        assert len(backend_pairs) == 3  # C(3, 2)

    def test_backends_are_bit_exact(self, report):
        for p in report.pairs:
            if p.axis == "backend":
                assert p.classification == "bit-exact", p.render if False else p

    def test_render_mentions_verdict(self, report):
        text = report.render()
        assert "all configurations conform" in text
        assert "bit-exact" in text


class TestDivergenceAttribution:
    def test_mutated_backend_bisects_to_scf(self):
        """A seeded backend bug must be attributed to the first broken
        phase (SCF artifacts), not just 'the polarizability differs'."""
        settings = get_settings("minimal")
        structure = hydrogen_molecule()
        honest = capture_physics_trace(structure, settings)
        mutated = capture_physics_trace(
            structure, settings, backend=MutantBackend("stale_dm_snapshot")
        )
        hit = first_divergent_phase(honest, mutated)
        assert hit is not None
        phase, diff = hit
        assert phase.startswith("scf/")
        assert diff > CLASS_THRESHOLDS[-1][1]

"""Extension features: smearing, LSDA/UKS, vibrations, Raman, collectives."""

import numpy as np
import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro.atoms import Structure, hydrogen_molecule
from repro.dft.occupations import (
    aufbau_occupations,
    fermi_occupations,
    smearing_entropy,
)
from repro.dft.uks import UKSDriver
from repro.dft.xc import lda_exchange_correlation
from repro.dft.xc_spin import lsda_exchange_correlation, lsda_energy_density
from repro.errors import CommunicationError, SCFConvergenceError
from repro.runtime.algorithms import (
    rabenseifner_allreduce,
    recursive_doubling_allreduce,
    ring_allreduce,
)

#: The minimal-model H2 equilibrium bond (Bohr), found by PES scan.
H2_MODEL_BOND = 1.5449


class TestOccupations:
    def test_aufbau_integer(self):
        eps = np.array([-1.0, -0.5, 0.1, 0.3])
        f = aufbau_occupations(eps, 4)
        assert f.tolist() == [2.0, 2.0, 0.0, 0.0]

    def test_aufbau_fractional_frontier(self):
        f = aufbau_occupations(np.array([-1.0, -0.5]), 3)
        assert f.tolist() == [2.0, 1.0]

    def test_aufbau_unsorted_input(self):
        eps = np.array([0.3, -1.0, 0.1, -0.5])
        f = aufbau_occupations(eps, 4)
        assert f.tolist() == [0.0, 2.0, 0.0, 2.0]

    def test_aufbau_overfull_raises(self):
        with pytest.raises(SCFConvergenceError):
            aufbau_occupations(np.array([-1.0]), 4)

    def test_fermi_conserves_electrons(self):
        eps = np.linspace(-1.0, 1.0, 20)
        f, mu = fermi_occupations(eps, 13.0, width=0.05)
        assert f.sum() == pytest.approx(13.0, abs=1e-10)
        assert eps.min() < mu < eps.max()

    def test_fermi_zero_width_is_aufbau(self):
        eps = np.array([-1.0, -0.5, 0.1])
        f, _ = fermi_occupations(eps, 4, width=0.0)
        assert f.tolist() == [2.0, 2.0, 0.0]

    def test_fermi_degenerate_states_share(self):
        eps = np.array([-1.0, 0.0, 0.0])
        f, _ = fermi_occupations(eps, 3.0, width=0.01)
        assert f[1] == pytest.approx(f[2], rel=1e-9)
        assert f[1] == pytest.approx(0.5, abs=1e-6)

    @given(ne=st.floats(0.5, 7.5), width=st.floats(1e-3, 0.2))
    @hyp_settings(max_examples=30, deadline=None)
    def test_fermi_conservation_property(self, ne, width):
        eps = np.linspace(-2.0, 2.0, 8)
        f, _ = fermi_occupations(eps, ne, width=width)
        assert f.sum() == pytest.approx(ne, abs=1e-9)
        assert np.all(f >= 0) and np.all(f <= 2.0)

    def test_entropy_nonnegative_and_zero_for_integers(self):
        assert smearing_entropy(np.array([2.0, 0.0]), 0.05) == pytest.approx(0.0, abs=1e-8)
        s = smearing_entropy(np.array([1.0, 1.0]), 0.05)
        assert s < 0.0  # -T*S lowers the free energy


class TestLSDA:
    def test_reduces_to_lda_for_closed_shell(self):
        n = np.linspace(0.01, 2.0, 30)
        res_lda = lda_exchange_correlation(n)
        res_lsda = lsda_exchange_correlation(n / 2, n / 2)
        assert np.allclose(res_lsda.exc, res_lda.exc, rtol=1e-6)
        assert np.allclose(res_lsda.vxc_up, res_lda.vxc, rtol=1e-4)

    def test_polarized_exchange_deeper(self):
        n = np.array([0.5])
        para = lsda_energy_density(n / 2, n / 2)
        ferro = lsda_energy_density(n, np.zeros(1))
        assert ferro[0] < para[0]  # full polarization lowers exchange

    def test_spin_symmetry(self):
        a, b = np.array([0.3]), np.array([0.1])
        r1 = lsda_exchange_correlation(a, b)
        r2 = lsda_exchange_correlation(b, a)
        assert r1.exc[0] == pytest.approx(r2.exc[0])
        assert r1.vxc_up[0] == pytest.approx(r2.vxc_dn[0], rel=1e-6)

    def test_zero_density_safe(self):
        r = lsda_exchange_correlation(np.zeros(3), np.zeros(3))
        assert np.all(r.exc == 0) and np.all(r.vxc_up == 0)


class TestUKS:
    def test_hydrogen_atom_lsda(self, minimal_settings):
        h = Structure(["H"], np.zeros((1, 3)), name="H atom")
        gs = UKSDriver(h, minimal_settings).run()
        # LSDA reference: -0.4787 Ha.
        assert gs.total_energy == pytest.approx(-0.4787, abs=0.01)
        assert gs.spin_moment == pytest.approx(1.0)

    def test_h2_singlet_matches_rks(self, minimal_settings, h2_ground_state):
        gs = UKSDriver(hydrogen_molecule(), minimal_settings).run()
        assert gs.spin_moment == 0.0
        assert gs.total_energy == pytest.approx(
            h2_ground_state.total_energy, abs=5e-3
        )

    def test_incompatible_multiplicity_rejected(self, minimal_settings):
        with pytest.raises(SCFConvergenceError):
            UKSDriver(hydrogen_molecule(), minimal_settings, multiplicity=2)

    def test_triplet_h2_above_singlet(self, minimal_settings):
        singlet = UKSDriver(hydrogen_molecule(), minimal_settings).run()
        triplet = UKSDriver(
            hydrogen_molecule(), minimal_settings, multiplicity=3
        ).run()
        assert triplet.total_energy > singlet.total_energy
        assert triplet.spin_moment == pytest.approx(2.0)


@pytest.fixture(scope="module")
def h2_modes(minimal_settings):
    from repro.dfpt.vibrations import normal_modes

    return normal_modes(hydrogen_molecule(H2_MODEL_BOND), minimal_settings)


class TestVibrations:
    def test_h2_stretch_frequency(self, h2_modes):
        vib = h2_modes.vibrational_frequencies(n_rigid=5)
        assert vib.shape == (1,)
        # Minimal model at its own equilibrium: the stretch should land
        # in the physical ballpark of H2 (expt 4161 cm^-1).
        assert 2500.0 < vib[0] < 6500.0

    def test_rigid_modes_below_stretch(self, h2_modes):
        freqs = np.abs(h2_modes.frequencies_cm1)
        vib = h2_modes.vibrational_frequencies(n_rigid=5)[0]
        # Translations are clean (< 2% of the stretch); rotations pick
        # up spurious stiffness from the finite angular grid breaking
        # rotational invariance, but stay well below the stretch.
        assert np.sort(freqs)[:3].max() < 0.02 * vib
        assert freqs[:5].max() < 0.6 * vib

    def test_hessian_symmetric(self, h2_modes):
        h = h2_modes.hessian
        assert np.allclose(h, h.T, atol=1e-10)

    def test_step_validation(self, minimal_settings):
        from repro.dfpt.vibrations import finite_difference_hessian

        with pytest.raises(ValueError):
            finite_difference_hessian(hydrogen_molecule(), minimal_settings, step=0.0)


class TestRaman:
    def test_h2_stretch_is_raman_active(self, minimal_settings, h2_modes):
        from repro.dfpt.raman import raman_spectrum

        rs = raman_spectrum(
            hydrogen_molecule(H2_MODEL_BOND), h2_modes, minimal_settings, n_rigid=5
        )
        assert rs.activities.shape == (1,)
        assert rs.activities[0] > 0.0  # homonuclear stretch: Raman active
        assert rs.dominant_mode() == 0


class TestCollectiveAlgorithms:
    @pytest.mark.parametrize(
        "fn", [ring_allreduce, recursive_doubling_allreduce, rabenseifner_allreduce]
    )
    def test_matches_direct_sum(self, fn, rng):
        data = [rng.normal(size=53) for _ in range(8)]
        ref = np.sum(data, axis=0)
        out, log = fn(data)
        assert len(out) == 8
        for o in out:
            assert np.allclose(o, ref, atol=1e-10)
        assert log.messages > 0

    def test_ring_handles_odd_rank_counts(self, rng):
        data = [rng.normal(size=20) for _ in range(5)]
        out, _ = ring_allreduce(data)
        assert np.allclose(out[3], np.sum(data, axis=0), atol=1e-10)

    def test_power_of_two_required(self, rng):
        data = [rng.normal(size=4) for _ in range(6)]
        with pytest.raises(CommunicationError):
            recursive_doubling_allreduce(data)
        with pytest.raises(CommunicationError):
            rabenseifner_allreduce(data)

    def test_round_counts(self, rng):
        data = [rng.normal(size=64) for _ in range(8)]
        _, ring_log = ring_allreduce(data)
        _, rd_log = recursive_doubling_allreduce(data)
        _, rab_log = rabenseifner_allreduce(data)
        assert ring_log.rounds == 2 * (8 - 1)
        assert rd_log.rounds == 3
        assert rab_log.rounds == 6

    def test_rabenseifner_moves_less_than_doubling(self, rng):
        """The reduce-scatter pattern's bandwidth advantage."""
        data = [rng.normal(size=1024) for _ in range(16)]
        _, rd_log = recursive_doubling_allreduce(data)
        _, rab_log = rabenseifner_allreduce(data)
        assert rab_log.bytes_sent < rd_log.bytes_sent

    @given(p=st.sampled_from([2, 4, 8]), n=st.integers(8, 64))
    @hyp_settings(max_examples=15, deadline=None)
    def test_all_algorithms_agree_property(self, p, n):
        rng = np.random.default_rng(p * 1000 + n)
        data = [rng.normal(size=n) for _ in range(p)]
        ref = np.sum(data, axis=0)
        for fn in (ring_allreduce, recursive_doubling_allreduce, rabenseifner_allreduce):
            out, _ = fn(data)
            assert np.allclose(out[0], ref, atol=1e-9)

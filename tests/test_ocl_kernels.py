"""The executable OpenCL DFPT kernels must match the direct pipeline."""

import numpy as np
import pytest

from repro.dfpt.response import DFPTSolver
from repro.dft.density import density_on_grid
from repro.ocl.device import Device
from repro.ocl.kernels import OpenCLDFPTKernels, OpenCLResponsePipeline
from repro.runtime import HPC1_SUNWAY, HPC2_AMD


@pytest.fixture(scope="module", params=["hpc1", "hpc2"])
def device(request):
    spec = (HPC1_SUNWAY if request.param == "hpc1" else HPC2_AMD).accelerator
    return Device(spec)


@pytest.fixture(scope="module")
def kernels(h2_ground_state):
    return OpenCLDFPTKernels(h2_ground_state, Device(HPC2_AMD.accelerator))


class TestKernelEquivalence:
    def test_sumup_matches_direct(self, h2_ground_state, kernels, rng):
        p1 = rng.normal(size=(h2_ground_state.basis.n_basis,) * 2)
        p1 = p1 + p1.T
        n1_kernel = kernels.response_density(p1)
        n1_direct = density_on_grid(h2_ground_state.builder, p1)
        assert np.allclose(n1_kernel, n1_direct, atol=1e-12)

    def test_h1_matches_direct(self, h2_ground_state, kernels, rng):
        v1 = rng.normal(size=h2_ground_state.grid.n_points)
        h1_kernel = kernels.response_hamiltonian(v1)
        h1_direct = h2_ground_state.builder.potential_matrix(v1)
        assert np.allclose(h1_kernel, h1_direct, atol=1e-10)

    def test_rho_matches_direct(self, h2_ground_state, kernels):
        n1 = h2_ground_state.density - h2_ground_state.density.mean()
        v_kernel = kernels.response_potential(n1)
        v_direct = h2_ground_state.solver.hartree_potential(n1)
        assert np.allclose(v_kernel, v_direct, atol=1e-12)

    def test_dm_matches_reference(self, h2_ground_state, kernels, rng):
        ref = DFPTSolver(h2_ground_state)
        h1 = rng.normal(size=(h2_ground_state.basis.n_basis,) * 2)
        h1 = h1 + h1.T
        p1_kernel = kernels.response_density_matrix(
            h1, ref._inv_gaps, ref._c_occ, ref._c_virt, ref._f_occ
        )
        _, _, p1_direct = ref._first_order_dm(h1)
        assert np.allclose(p1_kernel, p1_direct, atol=1e-12)

    def test_launch_accounting(self, h2_ground_state):
        device = Device(HPC2_AMD.accelerator)
        k = OpenCLDFPTKernels(h2_ground_state, device)
        k.response_density(np.zeros((h2_ground_state.basis.n_basis,) * 2))
        assert device.n_launches == 1
        assert k.total_modeled_time > 0.0
        assert device.bytes_transferred > 0


class TestPipeline:
    def test_one_iteration_matches_solver_step(self, h2_ground_state):
        """Starting from P1=0, one OpenCL cycle equals the solver's first
        unmixed update."""
        pipeline = OpenCLResponsePipeline(h2_ground_state)
        p1_ocl = pipeline.iterate(
            np.zeros((h2_ground_state.basis.n_basis,) * 2), direction=2
        )

        ref = DFPTSolver(h2_ground_state)
        h1_ext = -h2_ground_state.dipoles[2]
        _, _, p1_ref = ref._first_order_dm(h1_ext)
        # With P1 = 0, n1 = 0, so v1 = 0 and H1 = h1_ext exactly.
        assert np.allclose(p1_ocl, p1_ref, atol=1e-10)

    def test_fixed_point_is_converged_response(self, h2_ground_state):
        """Iterating the OpenCL pipeline with mixing converges to the
        same P^(1) as the reference solver."""
        pipeline = OpenCLResponsePipeline(h2_ground_state)
        nb = h2_ground_state.basis.n_basis
        p1 = np.zeros((nb, nb))
        for _ in range(30):
            p1_new = pipeline.iterate(p1, direction=2)
            if np.abs(p1_new - p1).max() < 1e-8:
                p1 = p1_new
                break
            p1 = p1 + 0.5 * (p1_new - p1)
        ref = DFPTSolver(h2_ground_state).solve_direction(2)
        assert np.allclose(p1, ref.response_density_matrix, atol=1e-5)

    def test_direction_validation(self, h2_ground_state):
        from repro.errors import DeviceError

        pipeline = OpenCLResponsePipeline(h2_ground_state)
        with pytest.raises(DeviceError):
            pipeline.iterate(np.zeros((2, 2)), direction=5)

    def test_runs_on_both_device_presets(self, h2_ground_state, device):
        pipeline = OpenCLResponsePipeline(h2_ground_state, device)
        nb = h2_ground_state.basis.n_basis
        p1 = pipeline.iterate(np.zeros((nb, nb)), direction=0)
        assert p1.shape == (nb, nb)
        assert np.allclose(p1, p1.T)


class TestNDRangeSizing:
    def test_items_cover_largest_batch(self, h2_ground_state):
        """Regression: the NDRange used to size work-items by the *mean*
        batch (n_points // n_batches), under-provisioning whenever the
        batches were uneven.  It must cover the largest batch."""
        from types import SimpleNamespace

        kernels = OpenCLDFPTKernels(h2_ground_state, Device(HPC2_AMD.accelerator))
        kernels.batches = [
            SimpleNamespace(n_points=n) for n in (4, 4, 4, 4, 4, 4, 4, 100)
        ]
        nd = kernels._ndrange()
        assert nd.n_groups == 8
        # Mean sizing would give 128 // 8 = 16 items — too few for the
        # 100-point batch; every batch must fit in one work-group.
        assert nd.items_per_group == 100

    def test_real_batches_cover_every_batch(self, h2_ground_state):
        kernels = OpenCLDFPTKernels(h2_ground_state, Device(HPC2_AMD.accelerator))
        nd = kernels._ndrange()
        assert nd.items_per_group >= max(b.n_points for b in kernels.batches)

    def test_empty_batches_rejected(self, h2_ground_state):
        from repro.errors import DeviceError

        kernels = OpenCLDFPTKernels(h2_ground_state, Device(HPC2_AMD.accelerator))
        kernels.batches = []
        with pytest.raises(DeviceError, match="NDRange must be positive"):
            kernels._ndrange()
